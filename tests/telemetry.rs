//! Telemetry invariants across the stack: profiling changes no answer,
//! phase breakdowns account for the wall time they claim to cover, and
//! the metrics a pipeline reports equal the accounting its reports
//! already pin.

use proptest::prelude::*;
use tcim_repro::graph::generators::{barabasi_albert, classic, gnm, rmat, RmatParams};
use tcim_repro::graph::CsrGraph;
use tcim_repro::service::{QueryRequest, ServiceConfig, TcimService};
use tcim_repro::stream::UpdateBatch;
use tcim_repro::tcim::{Backend, Query, SchedPolicy, TcimConfig, TcimPipeline};
use tcim_repro::telemetry::{profile, recent_spans, set_flight_recorder, span};

fn suite() -> Vec<Backend> {
    let mut suite = Backend::default_suite();
    suite.push(Backend::Sharded(tcim_repro::tcim::ShardPolicy::with_shards(3)));
    suite
}

/// A profiled service query carries a per-phase breakdown whose phase
/// sum is within 5% of the total profiled wall time (the acceptance
/// criterion): `route` + `execute` cover everything `query_with` does.
#[test]
fn profiled_query_phases_sum_to_wall_time() {
    let config = ServiceConfig { profile_queries: true, ..ServiceConfig::default() };
    let service = TcimService::new(&config).unwrap();
    let g = gnm(400, 2600, 7).unwrap();
    service.register("g", &g).unwrap();

    for backend in suite() {
        let request = QueryRequest::new("g", Query::TotalTriangles).with_backend(backend);
        let response = service.query_with(&request).unwrap();
        let phases = response.phases.expect("profiling is enabled");
        let names: Vec<&str> = phases.phases.iter().map(|p| p.name).collect();
        assert!(names.contains(&"route"), "{names:?}");
        assert!(names.contains(&"execute"), "{names:?}");
        let sum = phases.phase_sum();
        assert!(sum <= phases.total, "phases cannot exceed the total");
        let covered = sum.as_secs_f64() / phases.total.as_secs_f64();
        assert!(
            covered >= 0.95,
            "{}: phases cover only {:.1}% of {:?}",
            response.backend,
            covered * 100.0,
            phases.total
        );
    }
}

/// Profiling disabled → no breakdown; enabling it changes no answer.
#[test]
fn profiling_is_inert_on_answers() {
    let g = barabasi_albert(260, 5, 3).unwrap();
    let plain = TcimService::new(&ServiceConfig::default()).unwrap();
    let profiled =
        TcimService::new(&ServiceConfig { profile_queries: true, ..ServiceConfig::default() })
            .unwrap();
    plain.register("g", &g).unwrap();
    profiled.register("g", &g).unwrap();

    for query in Query::example_suite() {
        let a = plain.query("g", &query).unwrap();
        let b = profiled.query("g", &query).unwrap();
        assert!(a.phases.is_none(), "plain service must not profile");
        assert!(b.phases.is_some(), "profiled service must report phases");
        assert_eq!(a.value, b.value, "{query}");
        assert_eq!(a.triangles, b.triangles, "{query}");
        assert_eq!(a.kernel, b.kernel, "{query}");
    }
}

/// Live-graph queries profile too: the breakdown covers the
/// incremental answer path.
#[test]
fn live_queries_carry_phase_breakdowns() {
    let config = ServiceConfig { profile_queries: true, ..ServiceConfig::default() };
    let service = TcimService::new(&config).unwrap();
    service.register_live("feed", &classic::fig2_example()).unwrap();
    let mut batch = UpdateBatch::new();
    batch.insert(0, 3);
    service.update("feed", &batch).unwrap();

    let response = service.query("feed", &Query::PerVertexTriangles).unwrap();
    assert!(response.live);
    let phases = response.phases.expect("profiling is enabled");
    assert!(phases.phases.iter().any(|p| p.name == "execute"));
}

/// The pipeline's metric counters equal the values its own reports
/// carry — the same `KernelStats` the existing tests pin.
#[test]
fn pipeline_metrics_equal_report_accounting() {
    let p = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let g = rmat(8, 1500, RmatParams::default(), 5).unwrap();
    let prepared = p.prepare(&g);

    let mut kernels = 0u64;
    let mut pairs = 0u64;
    let mut readouts = 0u64;
    let mut executions = 0u64;
    for backend in suite() {
        for query in [Query::TotalTriangles, Query::PerVertexTriangles] {
            let report = p.query(&prepared, &backend, &query).unwrap();
            kernels += report.kernel.kernel_invocations;
            pairs += report.kernel.slice_pairs;
            readouts += report.kernel.result_readouts;
            executions += 1;
        }
    }

    let snap = p.metrics_snapshot();
    assert_eq!(snap.counter("tcim_executions_total"), Some(executions));
    assert_eq!(snap.counter("tcim_kernel_invocations_total"), Some(kernels));
    assert_eq!(snap.counter("tcim_slice_pairs_total"), Some(pairs));
    assert_eq!(snap.counter("tcim_result_readouts_total"), Some(readouts));
    // Cache counters fold into the snapshot from the caches themselves.
    assert_eq!(snap.counter("tcim_prepared_cache_hits_total"), Some(p.cache().hits()));
    assert_eq!(snap.counter("tcim_prepared_cache_misses_total"), Some(p.cache().misses()));
    assert_eq!(snap.counter("tcim_prepared_builds_total"), Some(1));
    let latency = snap.histogram("tcim_execute_latency_nanoseconds").unwrap();
    assert_eq!(latency.count, executions);
    assert!(latency.p50 <= latency.p99);
}

/// The service's Prometheus rendering exposes service, pipeline and
/// cache series in the text exposition format.
#[test]
fn prometheus_export_covers_the_stack() {
    let service = TcimService::new(&ServiceConfig::default()).unwrap();
    service.register("w", &classic::wheel(20)).unwrap();
    service.query("w", &Query::TotalTriangles).unwrap();
    service.query("w", &Query::GlobalClustering).unwrap();
    assert!(service.query("missing", &Query::TotalTriangles).is_err());

    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter("tcim_service_queries_total"), Some(3));
    assert_eq!(snap.counter("tcim_service_query_failures_total"), Some(1));
    assert_eq!(snap.counter("tcim_executions_total"), Some(2));
    assert_eq!(snap.gauge("tcim_service_inflight_queries"), Some(0));
    assert_eq!(snap.gauge("tcim_service_static_graphs"), Some(1));

    let text = service.render_prometheus();
    for series in [
        "# TYPE tcim_service_queries_total counter",
        "tcim_service_queries_total 3",
        "# TYPE tcim_service_query_wall_nanoseconds summary",
        "tcim_service_query_wall_nanoseconds_count 3",
        "tcim_kernel_invocations_total",
        "tcim_prepared_cache_hits_total",
        "tcim_service_static_graphs 1",
    ] {
        assert!(text.contains(series), "missing {series:?} in:\n{text}");
    }
}

/// The flight recorder retains the most recent spans across profiles,
/// bounded by its capacity.
#[test]
fn flight_recorder_retains_recent_spans() {
    set_flight_recorder(64);
    let p = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let g = classic::wheel(16);
    let ((), report) = profile("prepare_once", || {
        let _x = span("caller");
        p.prepare(&g);
    });
    assert!(report.is_some());
    let names: Vec<&str> = recent_spans().iter().map(|s| s.name).collect();
    assert!(names.contains(&"prepare"), "{names:?}");
    assert!(names.contains(&"slice"), "{names:?}");
    assert!(names.contains(&"prepare_once"), "{names:?}");
    set_flight_recorder(0);
    assert!(recent_spans().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bit-identical answers with and without profiling, across the
    /// backend suite on arbitrary graphs — telemetry can never change
    /// a result.
    #[test]
    fn profiling_never_changes_query_values(
        n in 2usize..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120),
        backend_idx in 0usize..6,
    ) {
        let edges: Vec<(u32, u32)> =
            edges.into_iter().filter(|(u, v)| (*u as usize) < n && (*v as usize) < n).collect();
        let g = CsrGraph::from_edges(n, edges).unwrap();
        let backend = suite()[backend_idx % suite().len()].clone();
        let p = TcimPipeline::new(&TcimConfig::default()).unwrap();
        let prepared = p.prepare(&g);

        let bare = p.query(&prepared, &backend, &Query::PerVertexTriangles).unwrap();
        let (profiled, report) = profile("query", || {
            p.query(&prepared, &backend, &Query::PerVertexTriangles).unwrap()
        });
        prop_assert!(report.is_some());
        prop_assert_eq!(bare.value, profiled.value);
        prop_assert_eq!(bare.triangles, profiled.triangles);
        prop_assert_eq!(bare.kernel, profiled.kernel);
    }
}

/// Scheduled-PIM backends answer identically under profiling too (the
/// scheduled path runs its own spans around planning and the array
/// fan-out).
#[test]
fn scheduled_path_profiles_without_drift() {
    let g = gnm(300, 2000, 9).unwrap();
    let p = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let prepared = p.prepare(&g);
    let backend = Backend::ScheduledPim(SchedPolicy::with_arrays(4));

    let bare = p.query(&prepared, &backend, &Query::TotalTriangles).unwrap();
    let (profiled, report) =
        profile("query", || p.query(&prepared, &backend, &Query::TotalTriangles).unwrap());
    let report = report.expect("top-level profile");
    assert_eq!(bare.triangles, profiled.triangles);
    let names: Vec<&str> = report.spans.iter().map(|s| s.name).collect();
    assert!(names.contains(&"schedule"), "{names:?}");
    assert!(names.contains(&"array"), "{names:?}");
}
