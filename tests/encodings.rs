//! The encoding-equivalence grid: sparse rows answer every `Query`
//! bit-identically to dense rows, across all six backends × the
//! generator grid × both orientations — while strictly reducing kernel
//! dispatches and AND+BitCount work on power-law graphs.
//!
//! These are the PR's acceptance properties: the hierarchical sparse
//! encoding is an *exact* filter (skipped pairs are provably zero), so
//! only the work accounting may change, never an answer.

use tcim_repro::bitmatrix::popcount::PopcountMethod;
use tcim_repro::bitmatrix::EncodingPolicy;
use tcim_repro::graph::generators::{barabasi_albert, gnm, rmat, watts_strogatz, RmatParams};
use tcim_repro::graph::{CsrGraph, Orientation};
use tcim_repro::shard::{ShardMode, ShardSpec};
use tcim_repro::tcim::{Backend, Query, SchedPolicy, ShardPolicy, TcimConfig, TcimPipeline};

/// The generator grid the satellite task names.
fn generator_grid() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("erdos-renyi", gnm(640, 4800, 7).unwrap()),
        ("barabasi-albert", barabasi_albert(600, 5, 7).unwrap()),
        ("rmat", rmat(9, 2600, RmatParams::default(), 17).unwrap()),
        ("watts-strogatz", watts_strogatz(576, 8, 0.2, 5).unwrap()),
    ]
}

/// All six backend families.
fn backends() -> Vec<Backend> {
    vec![
        Backend::SerialPim,
        Backend::ScheduledPim(SchedPolicy::with_arrays(4)),
        Backend::Software(PopcountMethod::Native),
        Backend::CpuMerge,
        Backend::CpuForward,
        Backend::Sharded(ShardPolicy {
            spec: ShardSpec { shards: 4, mode: ShardMode::OneD },
            inner: SchedPolicy::with_arrays(2),
        }),
    ]
}

fn pipeline_for(orientation: Orientation, encoding: EncodingPolicy) -> TcimPipeline {
    TcimPipeline::new(&TcimConfig { orientation, encoding, ..TcimConfig::default() }).unwrap()
}

/// Sparse and dense artifacts answer every query shape identically —
/// the whole `QueryValue`, on every backend, under both orientations.
#[test]
fn sparse_answers_are_bit_identical_to_dense_across_the_grid() {
    for (name, g) in generator_grid() {
        for orientation in [Orientation::Natural, Orientation::Degree] {
            let dense_pipeline = pipeline_for(orientation, EncodingPolicy::ForceDense);
            let sparse_pipeline = pipeline_for(orientation, EncodingPolicy::ForceSparse);
            let dense = dense_pipeline.prepare(&g);
            let sparse = sparse_pipeline.prepare(&g);
            for query in Query::example_suite() {
                for backend in backends() {
                    let ctx = format!("{name} {orientation:?} {query} {backend:?}");
                    let d = dense_pipeline.query(&dense, &backend, &query).unwrap();
                    let s = sparse_pipeline.query(&sparse, &backend, &query).unwrap();
                    assert_eq!(s.triangles, d.triangles, "{ctx}");
                    assert_eq!(s.value, d.value, "{ctx}");
                }
            }
        }
    }
}

/// The motif extension of the equivalence grid: `KTruss` and
/// `FourCliques` answers are bit-identical between forced-sparse and
/// forced-dense artifacts on every backend — the skip-empty filter
/// must stay exact through peeling's in-place row mutations and the
/// chained witness-row ANDs, not just on static rows.
#[test]
fn sparse_motif_answers_are_bit_identical_to_dense() {
    let graphs = vec![
        ("barabasi-albert", barabasi_albert(220, 5, 7).unwrap()),
        ("rmat", rmat(8, 1100, RmatParams::default(), 17).unwrap()),
    ];
    for (name, g) in graphs {
        for orientation in [Orientation::Natural, Orientation::Degree] {
            let dense_pipeline = pipeline_for(orientation, EncodingPolicy::ForceDense);
            let sparse_pipeline = pipeline_for(orientation, EncodingPolicy::ForceSparse);
            let dense = dense_pipeline.prepare(&g);
            let sparse = sparse_pipeline.prepare(&g);
            for query in [Query::KTruss { k: 3 }, Query::KTruss { k: 5 }, Query::FourCliques] {
                for backend in backends() {
                    let ctx = format!("{name} {orientation:?} {query} {backend:?}");
                    let d = dense_pipeline.query(&dense, &backend, &query).unwrap();
                    let s = sparse_pipeline.query(&sparse, &backend, &query).unwrap();
                    assert_eq!(s.triangles, d.triangles, "{ctx}");
                    assert_eq!(s.value, d.value, "{ctx}");
                }
            }
        }
    }
}

/// On power-law graphs (BA, rmat) the sparse encoding strictly reduces
/// both kernel dispatches and AND+BitCount slice pairs, at equal exact
/// counts — the PR's headline win, read off `KernelStats`.
#[test]
fn sparse_reduces_kernel_work_on_power_law_graphs() {
    let graphs = vec![
        ("barabasi-albert", barabasi_albert(600, 5, 7).unwrap()),
        ("rmat", rmat(9, 2600, RmatParams::default(), 17).unwrap()),
    ];
    for (name, g) in graphs {
        let dense_pipeline = pipeline_for(Orientation::Natural, EncodingPolicy::ForceDense);
        let sparse_pipeline = pipeline_for(Orientation::Natural, EncodingPolicy::ForceSparse);
        let dense = dense_pipeline.prepare(&g);
        let sparse = sparse_pipeline.prepare(&g);
        for backend in [Backend::SerialPim, Backend::Software(PopcountMethod::Native)] {
            let ctx = format!("{name} {backend:?}");
            let d = dense_pipeline.query(&dense, &backend, &Query::TotalTriangles).unwrap();
            let s = sparse_pipeline.query(&sparse, &backend, &Query::TotalTriangles).unwrap();
            assert_eq!(s.triangles, d.triangles, "{ctx}");
            assert!(
                s.kernel.kernel_invocations < d.kernel.kernel_invocations,
                "{ctx}: sparse must dispatch fewer kernels \
                 ({} vs {})",
                s.kernel.kernel_invocations,
                d.kernel.kernel_invocations
            );
            assert!(
                s.kernel.slice_pairs < d.kernel.slice_pairs,
                "{ctx}: sparse must AND fewer pairs ({} vs {})",
                s.kernel.slice_pairs,
                d.kernel.slice_pairs
            );
            // The byte-mask filter is exact: every pair it drops was a
            // mutually valid pair of the dense walk, so visited and
            // skipped partition the dense census.
            assert_eq!(
                s.kernel.slice_pairs + s.kernel.blocks_skipped,
                d.kernel.slice_pairs,
                "{ctx}: visited + skipped must partition the dense pairs"
            );
            assert!(s.kernel.blocks_skipped > 0, "{ctx}");
            assert_eq!(d.kernel.blocks_skipped, 0, "{ctx}: dense rows never skip");
            // Compression provenance: sparse rows spend fewer bytes on
            // these graphs, and both reports expose the footprint.
            assert!(
                s.compressed_bytes < d.compressed_bytes,
                "{ctx}: sparse bytes {} vs dense bytes {}",
                s.compressed_bytes,
                d.compressed_bytes
            );
        }
    }
}

/// The default automatic policy picks sparse exactly when the measured
/// valid-slice density is below the threshold: rmat at 2600 edges over
/// 512 vertices sits under 25%, the denser ER graph stays dense.
#[test]
fn automatic_policy_resolves_from_measured_density() {
    use tcim_repro::bitmatrix::RowEncoding;
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let sparse = pipeline.prepare(&rmat(9, 2600, RmatParams::default(), 17).unwrap());
    assert_eq!(sparse.encoding(), RowEncoding::Sparse);
    assert!(sparse.slice_stats().valid_fraction() < 0.25);
    let dense = pipeline.prepare(&gnm(640, 4800, 7).unwrap());
    assert_eq!(dense.encoding(), RowEncoding::Dense);
    assert!(dense.slice_stats().valid_fraction() >= 0.25);
}
