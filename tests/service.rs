//! Acceptance tests of the `tcim-service` facade: concurrent mixed
//! queries across multiple registered graphs with correct per-response
//! provenance, live (incrementally maintained) graphs that survive
//! randomized churn, and registry lifecycle.

use tcim_repro::graph::generators::{barabasi_albert, classic, gnm};
use tcim_repro::service::{QueryRequest, ServiceConfig, ServiceError, TcimService};
use tcim_repro::stream::UpdateBatch;
use tcim_repro::tcim::{baseline, Backend, Query, QueryValue};

fn service() -> TcimService {
    TcimService::new(&ServiceConfig::default()).unwrap()
}

/// The headline acceptance criterion: ≥ 4 concurrent mixed queries
/// across ≥ 2 registered graphs, every response carrying correct
/// provenance (graph, fingerprint, backend, cache hit, wall time).
#[test]
fn serves_concurrent_mixed_queries_across_graphs_with_provenance() {
    let service = service();
    let ba = barabasi_albert(300, 5, 21).unwrap();
    let er = gnm(250, 1700, 4).unwrap();
    let info_ba = service.register("ba", &ba).unwrap();
    let info_er = service.register("er", &er).unwrap();
    assert_ne!(info_ba.fingerprint, info_er.fingerprint);

    let requests = vec![
        QueryRequest::new("ba", Query::TotalTriangles),
        QueryRequest::new("er", Query::PerVertexTriangles),
        QueryRequest::new("ba", Query::LocalClustering { vertices: Some(vec![0, 5, 17]) })
            .with_backend(Backend::CpuForward),
        QueryRequest::new("er", Query::GlobalClustering).with_backend(Backend::CpuMerge),
        QueryRequest::new("ba", Query::TopKVertices { k: 3 }),
        QueryRequest::new("er", Query::EdgeSupport).with_backend(Backend::CpuMerge),
    ];
    let responses = service.serve(&requests);
    assert_eq!(responses.len(), 6);
    let responses: Vec<_> = responses.into_iter().map(Result::unwrap).collect();

    let ba_total = baseline::edge_iterator_merge(&ba);
    let er_total = baseline::edge_iterator_merge(&er);
    let er_local = baseline::local_triangles(&er);

    // Response 0: total on ba, default backend.
    assert_eq!(responses[0].triangles, ba_total);
    assert_eq!(responses[0].backend, Backend::SerialPim.label());
    // Response 1: per-vertex on er.
    assert_eq!(responses[1].value.per_vertex().unwrap(), er_local.as_slice());
    // Response 2: explicit backend override is honoured and echoed.
    assert_eq!(responses[2].backend, Backend::CpuForward.label());
    assert_eq!(responses[2].value.local_clustering().unwrap().len(), 3);
    // Response 3: global clustering on er.
    let QueryValue::GlobalClustering { triangles, .. } = responses[3].value else {
        panic!("wrong shape");
    };
    assert_eq!(triangles, er_total);
    // Response 4/5 shapes.
    assert_eq!(responses[4].value.top_k().unwrap().len(), 3);
    assert_eq!(responses[5].value.edge_support().unwrap().len(), er.edge_count());

    // Shared provenance invariants.
    for (request, response) in requests.iter().zip(&responses) {
        assert_eq!(response.graph, request.graph);
        assert_eq!(response.query, request.query);
        assert!(
            response.prepared_cache_hit,
            "{}: registered artifacts always hit",
            response.graph
        );
        assert!(!response.live);
        let expected_fingerprint =
            if request.graph == "ba" { info_ba.fingerprint } else { info_er.fingerprint };
        assert_eq!(response.fingerprint, expected_fingerprint);
        assert!(response.wall.as_nanos() > 0);
    }
    // Serving counters advanced.
    let cards = service.list();
    assert_eq!(cards.len(), 2);
    assert_eq!(cards.iter().map(|c| c.queries_served).sum::<u64>(), 6);
}

/// Queries answer from the one artifact prepared at registration:
/// nothing re-orients or re-slices at serve time, pinned via the
/// global matrix-build counter.
#[test]
fn serving_never_reslices() {
    let service = service();
    service.register("a", &classic::wheel(60)).unwrap();
    service.register("b", &gnm(150, 900, 8).unwrap()).unwrap();
    let built = tcim_repro::bitmatrix::matrices_built();
    let requests: Vec<QueryRequest> = Query::example_suite()
        .into_iter()
        .flat_map(|q| [QueryRequest::new("a", q.clone()), QueryRequest::new("b", q)])
        .collect();
    for outcome in service.serve(&requests) {
        outcome.unwrap();
    }
    assert_eq!(tcim_repro::bitmatrix::matrices_built(), built);
    // Re-registering the same graph hits the prepared cache.
    let again = service.register("a-alias", &classic::wheel(60)).unwrap();
    assert!(again.prepared_cache_hit);
    assert_eq!(tcim_repro::bitmatrix::matrices_built(), built);
}

/// Live graphs serve the motif queries straight off the maintained
/// rows: after churn, `KTruss` and `FourCliques` answers from the
/// live path equal the naive oracle on the materialised snapshot, and
/// the response provenance names the incremental backend.
#[test]
fn live_graphs_serve_motif_queries_from_maintained_rows() {
    use tcim_repro::graph::oracle;
    let service = service();
    let g = gnm(90, 450, 5).unwrap();
    service.register_live("feed", &g).unwrap();
    let mut batch = UpdateBatch::new();
    for (i, (u, v)) in g.edges().enumerate() {
        if i % 4 == 0 {
            batch.delete(u, v);
        }
    }
    service.update("feed", &batch).unwrap();

    // Materialise the live edge set through the served edge-support
    // list (the same reconstruction the churn test below uses).
    let responses = service.serve(&[QueryRequest::new("feed", Query::EdgeSupport)]);
    let support = responses[0].as_ref().unwrap().value.edge_support().unwrap().to_vec();
    let snapshot = tcim_repro::graph::CsrGraph::from_edges(
        90,
        support.iter().map(|e| (e.u, e.v)).collect::<Vec<_>>(),
    )
    .unwrap();
    let truss = oracle::trussness(&snapshot);
    let (k4_total, k4_per_vertex) = oracle::four_cliques(&snapshot);

    let responses = service.serve(&[
        QueryRequest::new("feed", Query::KTruss { k: 4 }),
        QueryRequest::new("feed", Query::FourCliques),
    ]);
    let ktruss = responses[0].as_ref().unwrap();
    assert_eq!(ktruss.backend, "stream-incremental");
    assert!(ktruss.live);
    let got: Vec<(u32, u32, u32)> =
        ktruss.value.trussness().unwrap().iter().map(|e| (e.u, e.v, e.trussness)).collect();
    assert_eq!(got, truss, "live trussness equals the oracle on the snapshot");
    assert!(ktruss.kernel.kernel_invocations >= snapshot.edge_count() as u64);

    let cliques = responses[1].as_ref().unwrap();
    assert_eq!(cliques.backend, "stream-incremental");
    assert_eq!(
        cliques.value.four_cliques().unwrap(),
        (k4_total, k4_per_vertex.as_slice()),
        "live 4-cliques equal the oracle on the snapshot"
    );
}

/// Live graphs answer total + per-vertex queries from incrementally
/// maintained state; after randomized churn every answer equals a
/// from-scratch recount of the materialised snapshot.
#[test]
fn live_graph_answers_match_recount_after_randomized_churn() {
    let service = service();
    let g = gnm(120, 700, 33).unwrap();
    let info = service.register_live("feed", &g).unwrap();
    assert!(info.live);

    // Deterministic pseudo-random churn: mix of inserts and deletes.
    let mut x = 77u64;
    let mut step = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x >> 33
    };
    for round in 0..10 {
        let mut batch = UpdateBatch::new();
        for _ in 0..20 {
            let u = (step() % 120) as u32;
            let v = (step() % 120) as u32;
            if u == v {
                continue;
            }
            if step() % 2 == 0 {
                batch.insert(u, v);
            } else {
                batch.delete(u, v);
            }
        }
        // Invalid updates are rejected per-update, not per-batch.
        service.update("feed", &batch).unwrap();

        // Every round: the maintained answers must equal a from-scratch
        // recount of the live state, reconstructed independently from
        // the served edge list.
        let responses = service.serve(&[
            QueryRequest::new("feed", Query::TotalTriangles),
            QueryRequest::new("feed", Query::PerVertexTriangles),
            QueryRequest::new("feed", Query::EdgeSupport),
            QueryRequest::new("feed", Query::GlobalClustering),
        ]);
        let responses: Vec<_> = responses.into_iter().map(Result::unwrap).collect();
        assert!(responses.iter().all(|r| r.live), "round {round}");
        assert_eq!(responses[1].backend, "stream-incremental");
        let support = responses[2].value.edge_support().unwrap();
        let snapshot = tcim_repro::graph::CsrGraph::from_edges(
            120,
            support.iter().map(|e| (e.u, e.v)).collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(
            baseline::edge_iterator_merge(&snapshot),
            responses[0].triangles,
            "round {round}"
        );
        assert_eq!(
            baseline::local_triangles(&snapshot).as_slice(),
            responses[1].value.per_vertex().unwrap(),
            "round {round}"
        );
        let naive_support: Vec<u64> = snapshot
            .edges()
            .map(|(u, v)| {
                let nu = snapshot.neighbors(u);
                let nv = snapshot.neighbors(v);
                nu.iter().filter(|w| nv.binary_search(w).is_ok()).count() as u64
            })
            .collect();
        let served: Vec<u64> = support.iter().map(|e| e.support).collect();
        assert_eq!(served, naive_support, "round {round}");
        let QueryValue::GlobalClustering { triangles, .. } = responses[3].value else {
            panic!("wrong shape");
        };
        assert_eq!(triangles, responses[0].triangles, "round {round}");
    }
}

/// Registry lifecycle: names are exclusive across the static and live
/// namespaces, unknown names fail cleanly, and eviction frees the
/// name.
#[test]
fn registry_lifecycle_and_name_conflicts() {
    let service = service();
    service.register("g", &classic::wheel(12)).unwrap();
    assert!(matches!(
        service.register_live("g", &classic::wheel(12)),
        Err(ServiceError::NameInUse { .. })
    ));
    service.register_live("live", &classic::fig2_example()).unwrap();
    assert!(matches!(
        service.register("live", &classic::wheel(12)),
        Err(ServiceError::NameInUse { .. })
    ));
    assert!(matches!(
        service.query("missing", &Query::TotalTriangles),
        Err(ServiceError::UnknownGraph { .. })
    ));
    assert!(
        matches!(
            service.update("g", &UpdateBatch::new()),
            Err(ServiceError::UnknownGraph { .. }),
        ),
        "static graphs reject updates"
    );

    assert_eq!(service.list().len(), 2);
    let evicted = service.evict("g").unwrap();
    assert_eq!(evicted.name, "g");
    let evicted_live = service.evict("live").unwrap();
    assert!(evicted_live.live);
    assert!(service.list().is_empty());
    assert!(matches!(service.evict("g"), Err(ServiceError::UnknownGraph { .. })));
    // The freed names can be reused.
    service.register_live("g", &classic::wheel(12)).unwrap();
    let report = service.query("g", &Query::TotalTriangles).unwrap();
    assert_eq!(report.triangles, 11);
}

/// Out-of-bounds query parameters surface as wrapped core errors, for
/// static and live graphs alike.
#[test]
fn invalid_query_parameters_fail_cleanly() {
    let service = service();
    service.register("s", &classic::wheel(10)).unwrap();
    service.register_live("l", &classic::wheel(10)).unwrap();
    for name in ["s", "l"] {
        let err = service
            .query(name, &Query::LocalClustering { vertices: Some(vec![99]) })
            .unwrap_err();
        assert!(matches!(err, ServiceError::Core(_)), "{name}: {err}");
        assert!(err.to_string().contains("99"), "{name}");
    }
}
