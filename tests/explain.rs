//! Acceptance tests of query EXPLAIN: across every backend of the
//! default suite (plus sharded execution), both generators and every
//! encoding policy, the plan assembled *before* running must agree
//! with the executed run — same backend label, same resolved encoding,
//! same shard count, and a bit-exact kernel-dispatch census
//! (`kernel_invocations`, `slice_pairs`, `blocks_skipped`; readouts are
//! data-dependent and excluded by design).

use tcim_repro::bitmatrix::EncodingPolicy;
use tcim_repro::graph::generators::{barabasi_albert, gnm};
use tcim_repro::graph::CsrGraph;
use tcim_repro::service::{QueryRequest, ServiceConfig, ServiceError, TcimService};
use tcim_repro::tcim::{Backend, Query, ShardPolicy, TcimConfig, TcimPipeline};

fn generators() -> Vec<(&'static str, CsrGraph)> {
    vec![("ba", barabasi_albert(240, 5, 7).unwrap()), ("gnm", gnm(300, 2100, 17).unwrap())]
}

fn backends() -> Vec<Backend> {
    let mut suite = Backend::default_suite();
    suite.push(Backend::Sharded(ShardPolicy::with_shards(3)));
    suite
}

fn policies() -> [EncodingPolicy; 3] {
    [EncodingPolicy::default(), EncodingPolicy::ForceDense, EncodingPolicy::ForceSparse]
}

/// The headline property: the predicted census of every plan matches
/// the executed run bit-exactly, for every backend × generator ×
/// encoding-policy cell of the grid.
#[test]
fn predicted_census_matches_execution_across_the_grid() {
    for policy in policies() {
        let config = TcimConfig { encoding: policy, ..TcimConfig::default() };
        let pipeline = TcimPipeline::new(&config).unwrap();
        for (graph_name, g) in generators() {
            let prepared = pipeline.prepare(&g);
            for backend in backends() {
                let label = format!("{policy:?}/{graph_name}/{}", backend.label());
                let plan = pipeline.explain(&g, &backend, &Query::TotalTriangles).unwrap();
                let report =
                    pipeline.query(&prepared, &backend, &Query::TotalTriangles).unwrap();

                // Routing agrees.
                assert_eq!(plan.backend, report.backend, "{label}");
                assert_eq!(plan.encoding.resolved, prepared.encoding(), "{label}");
                assert_eq!(plan.encoding.policy, policy, "{label}");

                // The census is exact, component by component.
                assert_eq!(
                    plan.predicted.census.kernel_invocations, report.kernel.kernel_invocations,
                    "{label}: kernel invocations"
                );
                assert_eq!(
                    plan.predicted.census.slice_pairs, report.kernel.slice_pairs,
                    "{label}: slice pairs"
                );
                assert_eq!(
                    plan.predicted.census.blocks_skipped, report.kernel.blocks_skipped,
                    "{label}: blocks skipped"
                );
                assert!(plan.predicted.census.matches(&report.kernel), "{label}");

                // Shard plans agree with shard provenance.
                match (&plan.sharding, &report.sharding) {
                    (Some(planned), Some(ran)) => {
                        assert_eq!(planned.per_shard.len(), ran.shards, "{label}");
                        assert_eq!(planned.occupied_shards, ran.occupied_shards, "{label}");
                        assert_eq!(planned.cross_arcs, ran.boundary_arcs, "{label}");
                    }
                    (None, None) => {}
                    (planned, ran) => {
                        panic!("{label}: plan/run shard disagreement: {planned:?} vs {ran:?}")
                    }
                }

                // Modelled-time prediction exists exactly for the
                // backends that report a modelled time.
                assert_eq!(
                    plan.predicted.modelled_s.is_some(),
                    report.modelled_time_s.is_some(),
                    "{label}"
                );
            }
        }
    }
}

/// The census holds on the attributed (readout-heavy) execution path
/// too: per-vertex queries dispatch the same kernels as total counts.
#[test]
fn census_is_exact_on_the_attributed_path() {
    for policy in [EncodingPolicy::ForceDense, EncodingPolicy::ForceSparse] {
        let config = TcimConfig { encoding: policy, ..TcimConfig::default() };
        let pipeline = TcimPipeline::new(&config).unwrap();
        let g = gnm(200, 1500, 5).unwrap();
        let prepared = pipeline.prepare(&g);
        for backend in [Backend::SerialPim, Backend::Sharded(ShardPolicy::with_shards(2))] {
            let plan = pipeline.explain(&g, &backend, &Query::PerVertexTriangles).unwrap();
            assert!(plan.needs_attribution);
            let report =
                pipeline.query(&prepared, &backend, &Query::PerVertexTriangles).unwrap();
            assert!(
                plan.predicted.census.matches(&report.kernel),
                "{policy:?}/{}: {plan}",
                backend.label()
            );
        }
    }
}

/// Service-level explain runs the same backend auto-selection as a
/// real request: under a slice budget, the plan goes sharded with the
/// same shard count the executed response reports.
#[test]
fn service_explain_reuses_backend_auto_selection() {
    let config = ServiceConfig {
        shard_slice_budget: Some(64),
        shard: ShardPolicy::with_shards(2),
        ..ServiceConfig::default()
    };
    let service = TcimService::new(&config).unwrap();
    let g = gnm(400, 2800, 23).unwrap();
    service.register("big", &g).unwrap();

    let plan = service.explain("big", &Query::TotalTriangles).unwrap();
    assert!(plan.backend.starts_with("tcim-shard"), "{}", plan.backend);
    let response = service.query("big", &Query::TotalTriangles).unwrap();
    assert_eq!(plan.backend, response.backend);
    let planned = plan.sharding.as_ref().unwrap();
    let ran = response.sharding.as_ref().unwrap();
    assert_eq!(planned.per_shard.len(), ran.shards);
    assert!(plan.predicted.census.matches(&response.kernel), "{plan}");

    // Explicit overrides are honoured by the planner too.
    let merged = service
        .explain_with(
            &QueryRequest::new("big", Query::TotalTriangles).with_backend(Backend::CpuMerge),
        )
        .unwrap();
    assert_eq!(merged.backend, "cpu-merge");
}

/// With `explain_queries` on, every static response carries its plan
/// with measured accounting attached — and the census verdict is an
/// exact match.
#[test]
fn responses_carry_explain_with_measurement_when_enabled() {
    let config = ServiceConfig { explain_queries: true, ..ServiceConfig::default() };
    let service = TcimService::new(&config).unwrap();
    service.register("g", &barabasi_albert(150, 4, 3).unwrap()).unwrap();

    let response = service.query("g", &Query::TotalTriangles).unwrap();
    let explain = response.explain.as_ref().expect("explain_queries is on");
    assert_eq!(explain.backend, response.backend);
    assert_eq!(explain.census_matches(), Some(true), "{explain}");
    let measured = explain.measured.as_ref().unwrap();
    assert_eq!(measured.kernel, response.kernel);

    // Off by default: responses stay lean.
    let lean = TcimService::new(&ServiceConfig::default()).unwrap();
    lean.register("g", &barabasi_albert(150, 4, 3).unwrap()).unwrap();
    assert!(lean.query("g", &Query::TotalTriangles).unwrap().explain.is_none());
}

/// Slow-query capture: with a zero threshold every request is an
/// offender; records retain the full explain + phase breakdown, the
/// counter is monotonic, and live graphs refuse to be explained.
#[test]
fn slow_queries_are_captured_with_full_forensics() {
    let config = ServiceConfig {
        profile_queries: true,
        slow_query_threshold: Some(std::time::Duration::ZERO),
        slow_query_capacity: 8,
        ..ServiceConfig::default()
    };
    let service = TcimService::new(&config).unwrap();
    service.register("g", &gnm(120, 700, 9).unwrap()).unwrap();

    for _ in 0..3 {
        service.query("g", &Query::TotalTriangles).unwrap();
    }
    assert_eq!(service.slow_queries().total(), 3);
    let records = service.slow_queries().drain();
    assert_eq!(records.len(), 3);
    for record in &records {
        assert_eq!(record.graph, "g");
        let explain = record.explain.as_ref().expect("static answers carry their plan");
        assert_eq!(explain.census_matches(), Some(true));
        let phases = record.phases.as_ref().expect("profile_queries is on");
        assert!(phases.phases.iter().any(|p| p.name == "execute"));
        assert!(record.to_string().contains("SLOW g"));
    }
    // Drain empties retention but not the monotonic counter.
    assert!(service.slow_queries().is_empty());
    assert_eq!(service.slow_queries().total(), 3);
    // Responses do NOT carry explain (explain_queries is off) even
    // though the slow log captured it.
    assert!(service.query("g", &Query::TotalTriangles).unwrap().explain.is_none());
    assert_eq!(service.slow_queries().total(), 4);

    // The counter renders in the Prometheus exposition.
    let text = service.render_prometheus();
    assert!(text.contains("tcim_slow_queries_total 4"), "{text}");

    // Live graphs answer from maintained state: nothing to explain.
    service.register_live("live", &gnm(40, 120, 1).unwrap()).unwrap();
    assert!(matches!(
        service.explain("live", &Query::TotalTriangles),
        Err(ServiceError::NotPlannable { .. })
    ));
    assert!(matches!(
        service.explain("missing", &Query::TotalTriangles),
        Err(ServiceError::UnknownGraph { .. })
    ));
}

/// The observability surface of the metrics endpoint: flight-recorder
/// health, calibration histograms and the per-backend/per-encoding
/// labelled series all render.
#[test]
fn prometheus_exposition_carries_observability_families() {
    let service = TcimService::new(&ServiceConfig::default()).unwrap();
    service.register("g", &gnm(150, 900, 13).unwrap()).unwrap();
    service.query("g", &Query::TotalTriangles).unwrap();
    service
        .query_with(
            &QueryRequest::new("g", Query::TotalTriangles).with_backend(Backend::CpuMerge),
        )
        .unwrap();

    let text = service.render_prometheus();
    for family in [
        "tcim_slow_queries_total",
        "tcim_spans_dropped_total",
        "tcim_flight_recorder_capacity",
        "tcim_flight_recorder_retained_spans",
        "tcim_slow_query_log_retained",
        "tcim_model_error_permille",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }
    // Labelled per-backend/per-encoding execution series.
    assert!(
        text.contains("tcim_executions_total{backend=\"tcim-serial\",encoding="),
        "{text}"
    );
    assert!(text.contains("backend=\"cpu-merge\""), "{text}");
    // The calibration histogram recorded the serial-PIM run.
    assert!(text.contains("tcim_model_error_permille_count"), "{text}");
}
