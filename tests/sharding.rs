//! The sharded × unsharded agreement grid: `Backend::Sharded` answers
//! every `Query` variant bit-identically to the unsharded backends,
//! across the generator grid × shard counts {1, 2, 4, 8} × both
//! composition modes — plus the service's slice-budget auto-selection
//! with shard provenance.

use tcim_repro::graph::generators::{barabasi_albert, gnm, rmat, watts_strogatz, RmatParams};
use tcim_repro::graph::CsrGraph;
use tcim_repro::service::{QueryRequest, ServiceConfig, TcimService};
use tcim_repro::shard::{ShardMode, ShardSpec};
use tcim_repro::tcim::{
    Backend, Query, QueryValue, SchedPolicy, ShardPolicy, TcimConfig, TcimPipeline,
};

/// The generator grid the satellite task names — sized so 64-bit
/// slice-aligned cuts produce genuinely occupied shards at count 8.
fn generator_grid() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("erdos-renyi", gnm(640, 4800, 7).unwrap()),
        ("barabasi-albert", barabasi_albert(600, 5, 3).unwrap()),
        ("rmat", rmat(9, 2600, RmatParams::default(), 11).unwrap()),
        ("watts-strogatz", watts_strogatz(576, 8, 0.2, 5).unwrap()),
    ]
}

fn sharded(shards: usize, mode: ShardMode) -> Backend {
    Backend::Sharded(ShardPolicy {
        spec: ShardSpec { shards, mode },
        inner: SchedPolicy::with_arrays(2),
    })
}

/// Sharded answers equal the CPU reference backend's answer for every
/// query shape, shard count and composition mode — the whole
/// `QueryValue`, not just the count.
#[test]
fn sharded_matches_unsharded_across_the_grid() {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    for (name, g) in generator_grid() {
        let prepared = pipeline.prepare(&g);
        for query in Query::example_suite() {
            let reference = pipeline.query(&prepared, &Backend::CpuMerge, &query).unwrap();
            // The dispatch census depends on the resolved row encoding
            // (sparse skips provably-empty arcs), so it is compared
            // against an unsharded run of the same artifact, not the
            // CPU reference.
            let pim = pipeline.query(&prepared, &Backend::SerialPim, &query).unwrap();
            for shards in [1usize, 2, 4, 8] {
                for mode in [ShardMode::OneD, ShardMode::TwoD] {
                    let spec = sharded(shards, mode);
                    let report = pipeline.query(&prepared, &spec, &query).unwrap();
                    let ctx = format!("{name} {query} {shards}x{mode}");
                    assert_eq!(report.triangles, reference.triangles, "{ctx}");
                    assert_eq!(report.value, reference.value, "{ctx}");
                    // Per-arc dispatch census is partition-invariant
                    // under one encoding.
                    assert_eq!(
                        report.kernel.kernel_invocations, pim.kernel.kernel_invocations,
                        "{ctx}"
                    );
                    assert_eq!(report.kernel.slice_pairs, pim.kernel.slice_pairs, "{ctx}");
                    assert_eq!(
                        report.kernel.blocks_skipped, pim.kernel.blocks_skipped,
                        "{ctx}"
                    );
                    let prov = report.sharding.expect("sharded runs carry provenance");
                    assert_eq!(prov.shards, shards, "{ctx}");
                    assert_eq!(
                        prov.intra_triangles + prov.cross_triangles,
                        report.triangles,
                        "{ctx}"
                    );
                    if shards == 1 {
                        assert_eq!(prov.boundary_arcs, 0, "{ctx}");
                    }
                    assert!(prov.imbalance >= 1.0, "{ctx}");
                }
            }
        }
    }
}

/// Once a sharded artifact is cached, further sharded queries build no
/// new sliced matrices — partitioning happens once per (graph, policy).
#[test]
fn sharded_queries_reuse_the_partitioned_artifact() {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let prepared = pipeline.prepare(&gnm(512, 3600, 13).unwrap());
    let spec = sharded(4, ShardMode::OneD);
    pipeline.query(&prepared, &spec, &Query::TotalTriangles).unwrap();
    let built = tcim_repro::bitmatrix::matrices_built();
    for query in Query::example_suite() {
        pipeline.query(&prepared, &spec, &query).unwrap();
    }
    assert_eq!(
        tcim_repro::bitmatrix::matrices_built(),
        built,
        "queries after the first sharded build must not re-slice"
    );
    assert!(pipeline.sharded_cache().hits() >= 6);

    // The same reuse story told by the metrics snapshot: sharded-cache
    // counters fold in from the cache itself, and the execution counter
    // equals the 1 + example-suite queries run above.
    let snap = pipeline.metrics_snapshot();
    assert_eq!(
        snap.counter("tcim_sharded_cache_hits_total"),
        Some(pipeline.sharded_cache().hits())
    );
    assert_eq!(
        snap.counter("tcim_sharded_cache_misses_total"),
        Some(pipeline.sharded_cache().misses())
    );
    assert_eq!(
        snap.counter("tcim_executions_total"),
        Some(1 + Query::example_suite().len() as u64)
    );
}

/// Sharded runs account their work into the pipeline's metrics exactly
/// as their reports do — the per-shard sums that `KernelStats::merge`
/// folds reach the counters unchanged.
#[test]
fn sharded_kernel_work_reaches_the_metrics() {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let prepared = pipeline.prepare(&rmat(9, 2600, RmatParams::default(), 11).unwrap());
    let mut kernels = 0u64;
    let mut readouts = 0u64;
    for shards in [2usize, 4] {
        let report = pipeline
            .query(&prepared, &sharded(shards, ShardMode::TwoD), &Query::TotalTriangles)
            .unwrap();
        kernels += report.kernel.kernel_invocations;
        readouts += report.kernel.result_readouts;
    }
    let snap = pipeline.metrics_snapshot();
    assert_eq!(snap.counter("tcim_kernel_invocations_total"), Some(kernels));
    assert_eq!(snap.counter("tcim_result_readouts_total"), Some(readouts));
    assert_eq!(snap.counter("tcim_executions_total"), Some(2));
}

/// The service auto-selects sharded execution above the slice budget
/// (with provenance on the response) and keeps the default backend
/// below it or when the request names a backend explicitly.
#[test]
fn service_auto_selects_sharding_above_the_slice_budget() {
    let g = gnm(640, 5200, 17).unwrap();

    // Budget low enough that this graph exceeds it.
    let config = ServiceConfig { shard_slice_budget: Some(500), ..ServiceConfig::default() };
    let service = TcimService::new(&config).unwrap();
    service.register("big", &g).unwrap();

    let auto = service.query("big", &Query::TotalTriangles).unwrap();
    assert!(
        auto.backend.starts_with("tcim-shard["),
        "expected sharded auto-selection, got {}",
        auto.backend
    );
    let prov = auto.sharding.as_ref().expect("auto-sharded responses carry provenance");
    assert!(prov.shards >= 2);
    assert!(prov.boundary_arcs > 0);

    // The answer agrees with an explicitly unsharded request.
    let explicit = service
        .query_with(
            &QueryRequest::new("big", Query::PerVertexTriangles)
                .with_backend(Backend::CpuMerge),
        )
        .unwrap();
    assert!(explicit.sharding.is_none());
    let auto_pv = service.query("big", &Query::PerVertexTriangles).unwrap();
    match (&auto_pv.value, &explicit.value) {
        (QueryValue::PerVertex(a), QueryValue::PerVertex(b)) => assert_eq!(a, b),
        other => panic!("unexpected value shapes {other:?}"),
    }

    // A graph under the budget keeps the default backend.
    let service_small = TcimService::new(&config).unwrap();
    service_small.register("small", &gnm(96, 300, 1).unwrap()).unwrap();
    let small = service_small.query("small", &Query::TotalTriangles).unwrap();
    assert!(small.sharding.is_none());
    assert_eq!(small.backend, Backend::SerialPim.label());

    // No budget → never auto-shards.
    let service_off = TcimService::new(&ServiceConfig::default()).unwrap();
    service_off.register("big", &g).unwrap();
    let off = service_off.query("big", &Query::TotalTriangles).unwrap();
    assert!(off.sharding.is_none());
}

/// Concurrent mixed sharded/unsharded serving stays exact and each
/// response's provenance matches how it was answered.
#[test]
fn mixed_sharded_serving_is_exact() {
    let g = gnm(640, 5200, 23).unwrap();
    let config = ServiceConfig {
        shard_slice_budget: Some(600),
        serve_threads: Some(4),
        ..ServiceConfig::default()
    };
    let service = TcimService::new(&config).unwrap();
    service.register("g", &g).unwrap();
    let requests = vec![
        QueryRequest::new("g", Query::TotalTriangles),
        QueryRequest::new("g", Query::TotalTriangles).with_backend(Backend::CpuForward),
        QueryRequest::new("g", Query::GlobalClustering),
        QueryRequest::new("g", Query::TopKVertices { k: 3 }),
    ];
    let responses: Vec<_> =
        service.serve(&requests).into_iter().collect::<Result<_, _>>().unwrap();
    assert_eq!(responses[0].triangles, responses[1].triangles);
    assert!(responses[0].sharding.is_some(), "auto-sharded");
    assert!(responses[1].sharding.is_none(), "explicit backend wins");
    assert!(responses[2].sharding.is_some());
    assert_eq!(responses[3].triangles, responses[0].triangles);
}
