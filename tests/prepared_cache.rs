//! Acceptance proof for the prepared-graph cache: a second execution on
//! a cached `PreparedGraph` performs **no re-slicing** — the
//! `tcim-bitmatrix` build counter and the slice statistics are
//! unchanged.
//!
//! This file holds a single test on purpose: the slicing build counter
//! is process-global, so the proof lives in its own integration-test
//! binary where no concurrent test can build matrices.

use std::sync::Arc;

use tcim_repro::graph::generators::gnm;
use tcim_repro::tcim::{Backend, TcimConfig, TcimPipeline};

#[test]
fn cached_prepared_graph_is_never_resliced() {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let g = gnm(300, 2200, 19).unwrap();

    // First preparation slices exactly once.
    let builds_before_prepare = tcim_bitmatrix::matrices_built();
    let prepared = pipeline.prepare(&g);
    assert_eq!(tcim_bitmatrix::matrices_built(), builds_before_prepare + 1);
    let stats = prepared.slice_stats();
    let pricing = prepared.pricing();

    // Execute the full backend suite twice over the cached artifact:
    // no backend, planner or popcount path may slice anything.
    let builds_after_prepare = tcim_bitmatrix::matrices_built();
    let mut counts = Vec::new();
    for round in 0..2 {
        let again = pipeline.prepare(&g);
        assert!(
            Arc::ptr_eq(&prepared, &again),
            "round {round}: prepare must return the cached artifact"
        );
        for spec in Backend::default_suite() {
            counts.push(pipeline.execute(&again, &spec).unwrap().triangles);
        }
    }
    assert_eq!(
        tcim_bitmatrix::matrices_built(),
        builds_after_prepare,
        "execution must not re-slice"
    );

    // Work counters of the artifact are untouched…
    assert_eq!(prepared.slice_stats(), stats);
    assert_eq!(prepared.pricing(), pricing);
    // …and every execution agreed.
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");

    // Cache accounting: one miss (the initial build), hits ever after.
    assert_eq!(pipeline.cache().misses(), 1);
    assert_eq!(pipeline.cache().hits(), 2);
}
