//! Repository-level end-to-end tests of the multi-array scheduler: the
//! acceptance criteria of the `tcim-sched` subsystem, checked through
//! the public `TcimAccelerator` API against the software baselines.

use tcim_repro::graph::generators::{barabasi_albert, classic, gnm};
use tcim_repro::sched::{BatchRunner, PlacementPolicy, SchedPolicy};
use tcim_repro::tcim::{baseline, TcimAccelerator, TcimConfig};

fn accelerator() -> TcimAccelerator {
    TcimAccelerator::new(&TcimConfig::default()).unwrap()
}

/// For every policy and array count in {1, 2, 4, 8, 16}: scheduled ==
/// serial == software baseline.
#[test]
fn scheduled_serial_and_software_counts_agree_everywhere() {
    let acc = accelerator();
    let graphs = vec![
        classic::fig2_example(),
        classic::complete(25),
        gnm(300, 2200, 9).unwrap(),
        barabasi_albert(300, 5, 4).unwrap(),
    ];
    for g in graphs {
        let software = baseline::edge_iterator_merge(&g);
        let serial = acc.count_triangles(&g).triangles;
        assert_eq!(serial, software);
        for placement in PlacementPolicy::ALL {
            for arrays in [1usize, 2, 4, 8, 16] {
                let policy = SchedPolicy { arrays, placement, host_threads: None };
                let scheduled = acc.count_triangles_scheduled(&g, &policy).unwrap();
                assert_eq!(scheduled.triangles, software, "{placement} x{arrays} on {g:?}");
            }
        }
    }
}

/// On a skewed (Barabási–Albert) graph the load-balanced policy's
/// critical path never exceeds round-robin's, at any width.
#[test]
fn load_balancing_never_loses_to_round_robin_on_skewed_graphs() {
    let acc = accelerator();
    for seed in [1u64, 7, 23] {
        let g = barabasi_albert(500, 7, seed).unwrap();
        for arrays in [1usize, 2, 4, 8, 16] {
            let rr = acc
                .count_triangles_scheduled(
                    &g,
                    &SchedPolicy::with_arrays(arrays).placement(PlacementPolicy::RoundRobin),
                )
                .unwrap();
            let lpt = acc
                .count_triangles_scheduled(
                    &g,
                    &SchedPolicy::with_arrays(arrays).placement(PlacementPolicy::LoadBalanced),
                )
                .unwrap();
            assert!(
                lpt.critical_path_s <= rr.critical_path_s + 1e-18,
                "seed {seed} x{arrays}: LPT {} vs RR {}",
                lpt.critical_path_s,
                rr.critical_path_s
            );
            assert!(lpt.imbalance <= rr.imbalance + 1e-12);
        }
    }
}

/// More arrays shorten the modelled critical path (the parallelism the
/// scheduler exists to expose) while counts stay fixed.
#[test]
fn wider_schedules_shorten_the_critical_path() {
    let acc = accelerator();
    let g = barabasi_albert(800, 8, 5).unwrap();
    let expected = baseline::edge_iterator_merge(&g);
    let mut previous = f64::INFINITY;
    for arrays in [1usize, 2, 4, 8, 16] {
        let report =
            acc.count_triangles_scheduled(&g, &SchedPolicy::with_arrays(arrays)).unwrap();
        assert_eq!(report.triangles, expected);
        assert!(
            report.critical_path_s <= previous + 1e-18,
            "{arrays} arrays: {} after {previous}",
            report.critical_path_s
        );
        previous = report.critical_path_s;
    }
}

/// The batch API processes independent graphs deterministically and in
/// submission order.
#[test]
fn batch_runner_end_to_end() {
    let acc = accelerator();
    let graphs = [classic::wheel(40), gnm(200, 1200, 3).unwrap(), classic::complete(15)];
    let expected: Vec<u64> = graphs.iter().map(baseline::edge_iterator_merge).collect();
    let matrices: Vec<_> = graphs.iter().map(|g| acc.compress(g)).collect();
    let runner = BatchRunner::new(acc.engine(), SchedPolicy::with_arrays(4));
    let first: Vec<u64> =
        runner.run_all(&matrices).unwrap().iter().map(|r| r.triangles).collect();
    let second: Vec<u64> =
        runner.run_all(&matrices).unwrap().iter().map(|r| r.triangles).collect();
    assert_eq!(first, expected);
    assert_eq!(first, second, "batch execution must be deterministic");
}
