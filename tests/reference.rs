//! The differential reference-oracle harness for the motif queries:
//! every backend's [`Query::KTruss`] and [`Query::FourCliques`] answer
//! is compared whole-`QueryValue` against the naive CPU oracle
//! (`tcim_repro::graph::oracle`), across generators × orientations ×
//! encodings × shard counts — plus golden fixtures whose decomposition
//! is checkable by hand.
//!
//! The oracle enumerates triangles and quadruples directly on the raw
//! adjacency; the engine peels supports and chains ANDs over sliced
//! rows. Any divergence anywhere in the grid is a bug in exactly one
//! of them, which is the point of keeping both.

use tcim_repro::bitmatrix::popcount::PopcountMethod;
use tcim_repro::bitmatrix::EncodingPolicy;
use tcim_repro::graph::generators::{
    barabasi_albert, classic, gnm, rmat, watts_strogatz, RmatParams,
};
use tcim_repro::graph::{oracle, CsrGraph, Orientation};
use tcim_repro::shard::{ShardMode, ShardSpec};
use tcim_repro::tcim::{
    Backend, EdgeTruss, Query, QueryValue, SchedPolicy, ShardPolicy, TcimConfig, TcimPipeline,
};

/// The generator grid the satellite task names.
fn generator_grid() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("erdos-renyi", gnm(220, 1500, 7).unwrap()),
        ("barabasi-albert", barabasi_albert(200, 5, 3).unwrap()),
        ("rmat", rmat(8, 1100, RmatParams::default(), 11).unwrap()),
        ("watts-strogatz", watts_strogatz(180, 8, 0.2, 5).unwrap()),
    ]
}

/// All six backend families (the sharded member is parameterized
/// separately by `sharded(n)` for the shard-count axis).
fn backends() -> Vec<Backend> {
    vec![
        Backend::SerialPim,
        Backend::ScheduledPim(SchedPolicy::with_arrays(4)),
        Backend::Software(PopcountMethod::Native),
        Backend::CpuMerge,
        Backend::CpuForward,
        sharded(4),
    ]
}

fn sharded(shards: usize) -> Backend {
    Backend::Sharded(ShardPolicy {
        spec: ShardSpec { shards, mode: ShardMode::OneD },
        inner: SchedPolicy::with_arrays(2),
    })
}

/// The oracle's trussness, shaped like the engine's answer: every edge
/// once, ascending `(u, v)`, input ids.
fn oracle_truss_edges(g: &CsrGraph) -> Vec<EdgeTruss> {
    oracle::trussness(g)
        .into_iter()
        .map(|(u, v, trussness)| EdgeTruss { u, v, trussness })
        .collect()
}

/// Asserts one backend's two motif answers are bit-identical to the
/// oracle's, whole `QueryValue`.
fn assert_motifs_match_oracle(
    pipeline: &TcimPipeline,
    prepared: &std::sync::Arc<tcim_repro::tcim::PreparedGraph>,
    g: &CsrGraph,
    backend: &Backend,
    ctx: &str,
) {
    let truss = oracle_truss_edges(g);
    let (total, per_vertex) = oracle::four_cliques(g);
    for k in [3u32, 4] {
        let report = pipeline.query(prepared, backend, &Query::KTruss { k }).unwrap();
        assert_eq!(
            report.value,
            QueryValue::KTruss { k, edges: truss.clone() },
            "{ctx}: {k}-truss"
        );
        // The membership view filters the same decomposition.
        let members = report.value.truss_members().unwrap();
        let expected = oracle::ktruss_edges(g, k);
        assert_eq!(members, expected, "{ctx}: {k}-truss members");
    }
    let report = pipeline.query(prepared, backend, &Query::FourCliques).unwrap();
    assert_eq!(
        report.value,
        QueryValue::FourCliques { total, per_vertex: per_vertex.clone() },
        "{ctx}: four-cliques"
    );
    // Every K4 holds four vertices: the attribution must tally to 4·total.
    let (t, pv) = report.value.four_cliques().unwrap();
    assert_eq!(pv.iter().sum::<u64>(), 4 * t, "{ctx}: per-vertex tallies 4 per clique");
}

/// Golden fixtures with hand-checkable decompositions: the paper's
/// Fig. 2 graph, a wheel, and the complete graphs K5/K6.
#[test]
fn golden_fixtures_match_hand_derived_values() {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();

    // Fig. 2: triangles {0,1,2}, {1,2,3}; edge (1,2) closes both, the
    // other four close one each — all five edges form the 3-truss (each
    // has 1 ≥ 3−2 support inside it), none survive at level 4.
    let fig2 = classic::fig2_example();
    let prepared = pipeline.prepare(&fig2);
    let report =
        pipeline.query(&prepared, &Backend::SerialPim, &Query::KTruss { k: 3 }).unwrap();
    let edges = report.value.trussness().unwrap();
    assert_eq!(edges.len(), 5);
    assert!(edges.iter().all(|e| e.trussness == 3), "{edges:?}");
    let report = pipeline.query(&prepared, &Backend::SerialPim, &Query::FourCliques).unwrap();
    assert_eq!(report.value.four_cliques().unwrap().0, 0, "fig2 holds no K4");

    // Wheel(8): hub + 7-cycle rim. Every triangle is {hub, rim, rim};
    // all 14 edges sit in the 3-truss and no K4 exists.
    let wheel = classic::wheel(8);
    let prepared = pipeline.prepare(&wheel);
    let report =
        pipeline.query(&prepared, &Backend::SerialPim, &Query::KTruss { k: 3 }).unwrap();
    assert!(report.value.trussness().unwrap().iter().all(|e| e.trussness == 3));
    assert_eq!(report.value.truss_members().unwrap().len(), 14);
    let report = pipeline.query(&prepared, &Backend::SerialPim, &Query::FourCliques).unwrap();
    assert_eq!(report.value.four_cliques().unwrap().0, 0, "wheels hold no K4");

    // K_n: every edge has support n−2, the whole graph is the n-truss,
    // and the K4 census is C(n, 4) with every vertex in C(n−1, 3).
    for (n, k4s, per_vertex) in [(5u32, 5u64, 4u64), (6, 15, 10)] {
        let g = classic::complete(n as usize);
        let prepared = pipeline.prepare(&g);
        let ctx = format!("K{n}");
        let report =
            pipeline.query(&prepared, &Backend::SerialPim, &Query::KTruss { k: 3 }).unwrap();
        let edges = report.value.trussness().unwrap();
        assert_eq!(edges.len(), (n * (n - 1) / 2) as usize, "{ctx}");
        assert!(edges.iter().all(|e| e.trussness == n), "{ctx}: K{n} is the {n}-truss");
        let report =
            pipeline.query(&prepared, &Backend::SerialPim, &Query::FourCliques).unwrap();
        let (total, pv) = report.value.four_cliques().unwrap();
        assert_eq!(total, k4s, "{ctx}");
        assert!(pv.iter().all(|&c| c == per_vertex), "{ctx}: symmetric attribution");
    }
}

/// The tentpole grid: six backends × four generators × both
/// orientations × forced dense and sparse encodings, every motif
/// answer bit-identical to the oracle, and zero matrix builds at query
/// time — peeling mutates rows in place, it never re-slices.
#[test]
fn motif_answers_match_the_oracle_across_the_grid() {
    for (name, g) in generator_grid() {
        for orientation in [Orientation::Natural, Orientation::Degree] {
            for encoding in [EncodingPolicy::ForceDense, EncodingPolicy::ForceSparse] {
                let pipeline = TcimPipeline::new(&TcimConfig {
                    orientation,
                    encoding,
                    ..TcimConfig::default()
                })
                .unwrap();
                let prepared = pipeline.prepare(&g);
                // Warm every backend's prepare-time artifacts (the
                // sharded member slices its shards once, cached) so
                // the pin below isolates the motif rounds themselves.
                for backend in backends() {
                    pipeline.query(&prepared, &backend, &Query::TotalTriangles).unwrap();
                }
                let built = tcim_repro::bitmatrix::matrices_built();
                for backend in backends() {
                    let ctx = format!("{name} {orientation:?} {encoding:?} {backend:?}");
                    assert_motifs_match_oracle(&pipeline, &prepared, &g, &backend, &ctx);
                }
                assert_eq!(
                    tcim_repro::bitmatrix::matrices_built(),
                    built,
                    "{name} {orientation:?} {encoding:?}: motif queries must never re-slice"
                );
            }
        }
    }
}

/// The shard-count axis: 1, 2, 4 and 8 shards all answer the motif
/// queries bit-identically to the oracle (and hence to each other) —
/// the sharded backend's anchor run merges shard-local counts, then
/// the motif rounds run over the merged input-id adjacency.
#[test]
fn sharded_motifs_are_shard_count_invariant() {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let graphs =
        vec![("ba", barabasi_albert(150, 5, 3).unwrap()), ("er", gnm(140, 900, 7).unwrap())];
    for (name, g) in graphs {
        let prepared = pipeline.prepare(&g);
        for shards in [1usize, 2, 4, 8] {
            let ctx = format!("{name} shards={shards}");
            assert_motifs_match_oracle(&pipeline, &prepared, &g, &sharded(shards), &ctx);
        }
    }
}
