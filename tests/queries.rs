//! The backend × query agreement grid: every execution backend answers
//! every `Query` variant from one `PreparedGraph`, and all answers
//! agree exactly with naive CPU references computed on the raw graph —
//! across the full generator grid and every orientation, without any
//! re-slicing at query time (pinned via `matrices_built()`).

use tcim_repro::graph::generators::{
    barabasi_albert, classic, gnm, rmat, watts_strogatz, RmatParams,
};
use tcim_repro::graph::{oracle, CsrGraph, Orientation};
use tcim_repro::shard::{ShardMode, ShardSpec};
use tcim_repro::tcim::{
    baseline, Backend, Query, QueryValue, SchedPolicy, ShardPolicy, TcimConfig, TcimPipeline,
};

/// The generator grid the satellite task names: fig2, wheel, ER, BA,
/// R-MAT and Watts–Strogatz.
fn generator_grid() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("fig2", classic::fig2_example()),
        ("wheel", classic::wheel(40)),
        ("erdos-renyi", gnm(300, 2100, 7).unwrap()),
        ("barabasi-albert", barabasi_albert(250, 5, 3).unwrap()),
        ("rmat", rmat(8, 1200, RmatParams::default(), 11).unwrap()),
        ("watts-strogatz", watts_strogatz(200, 8, 0.2, 5).unwrap()),
    ]
}

/// Naive per-edge triangle support on the raw graph: common-neighbour
/// count of the endpoints.
fn naive_edge_support(g: &CsrGraph) -> Vec<(u32, u32, u64)> {
    let mut support = Vec::with_capacity(g.edge_count());
    for (u, v) in g.edges() {
        let nu = g.neighbors(u);
        let nv = g.neighbors(v);
        let (mut i, mut j, mut common) = (0usize, 0usize, 0u64);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    common += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        support.push((u, v, common));
    }
    support.sort_unstable();
    support
}

/// Every backend × every query variant × the full generator grid: all
/// answers equal the naive references, and nothing re-slices after
/// preparation.
#[test]
fn backend_query_agreement_grid() {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    for (name, g) in generator_grid() {
        let total = baseline::edge_iterator_merge(&g);
        let local = baseline::local_triangles(&g);
        let support = naive_edge_support(&g);
        let wedges: u64 = g
            .vertices()
            .map(|v| {
                let d = g.degree(v) as u64;
                d * d.saturating_sub(1) / 2
            })
            .sum();

        let prepared = pipeline.prepare(&g);
        let built_after_prepare = tcim_repro::bitmatrix::matrices_built();
        for spec in Backend::default_suite() {
            let ctx = format!("{name} on {}", spec.label());
            for query in Query::example_suite() {
                let report = pipeline.query(&prepared, &spec, &query).unwrap();
                assert_eq!(report.triangles, total, "{ctx}: {query}");
                match report.value {
                    QueryValue::Total(t) => assert_eq!(t, total, "{ctx}"),
                    QueryValue::PerVertex(pv) => {
                        assert_eq!(pv, local, "{ctx}");
                        assert_eq!(pv.iter().sum::<u64>(), 3 * total, "{ctx}");
                    }
                    QueryValue::LocalClustering(entries) => {
                        assert_eq!(entries.len(), g.vertex_count(), "{ctx}");
                        for e in &entries {
                            assert_eq!(e.triangles, local[e.vertex as usize], "{ctx}");
                            assert_eq!(e.degree, g.degree(e.vertex) as u64, "{ctx}");
                            let wedge = e.degree * e.degree.saturating_sub(1) / 2;
                            let expected = if wedge == 0 {
                                0.0
                            } else {
                                e.triangles as f64 / wedge as f64
                            };
                            assert!((e.coefficient - expected).abs() < 1e-12, "{ctx}");
                        }
                    }
                    QueryValue::GlobalClustering { triangles, wedges: w, transitivity } => {
                        assert_eq!((triangles, w), (total, wedges), "{ctx}");
                        let expected =
                            if wedges == 0 { 0.0 } else { 3.0 * total as f64 / wedges as f64 };
                        assert!((transitivity - expected).abs() < 1e-12, "{ctx}");
                    }
                    QueryValue::EdgeSupport(entries) => {
                        let got: Vec<(u32, u32, u64)> =
                            entries.iter().map(|e| (e.u, e.v, e.support)).collect();
                        assert_eq!(got, support, "{ctx}");
                    }
                    QueryValue::TopK(ranked) => {
                        assert_eq!(ranked.len(), 5.min(g.vertex_count()), "{ctx}");
                        let mut expected: Vec<(u32, u64)> =
                            local.iter().enumerate().map(|(v, &t)| (v as u32, t)).collect();
                        expected.sort_by_key(|&(v, t)| (std::cmp::Reverse(t), v));
                        for (entry, &(v, t)) in ranked.iter().zip(&expected) {
                            assert_eq!((entry.vertex, entry.triangles), (v, t), "{ctx}");
                        }
                    }
                    other => panic!("{ctx}: unexpected value shape {other:?}"),
                }
            }
        }
        // Acceptance: every backend answered every query variant from
        // the one artifact — nothing was re-oriented or re-sliced.
        assert_eq!(
            tcim_repro::bitmatrix::matrices_built(),
            built_after_prepare,
            "{name}: queries must never re-slice"
        );
    }
}

/// The motif extension of the agreement grid: every backend (the
/// default suite plus a sharded member) answers `KTruss` and
/// `FourCliques` whole-`QueryValue`-identically to the naive oracle on
/// every generator, and the peeling rounds never re-slice — the pin is
/// taken after each backend's one-time prepare so it isolates the
/// motif rounds.
#[test]
fn motif_queries_agree_with_the_oracle_across_the_grid() {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let mut suite = Backend::default_suite();
    suite.push(Backend::Sharded(ShardPolicy {
        spec: ShardSpec { shards: 4, mode: ShardMode::OneD },
        inner: SchedPolicy::with_arrays(2),
    }));
    for (name, g) in generator_grid() {
        let truss = oracle::trussness(&g);
        let (k4_total, k4_per_vertex) = oracle::four_cliques(&g);
        let prepared = pipeline.prepare(&g);
        for spec in &suite {
            pipeline.query(&prepared, spec, &Query::TotalTriangles).unwrap();
        }
        let built = tcim_repro::bitmatrix::matrices_built();
        for spec in &suite {
            let ctx = format!("{name} on {}", spec.label());
            let report = pipeline.query(&prepared, spec, &Query::KTruss { k: 4 }).unwrap();
            let got: Vec<(u32, u32, u32)> = report
                .value
                .trussness()
                .unwrap()
                .iter()
                .map(|e| (e.u, e.v, e.trussness))
                .collect();
            assert_eq!(got, truss, "{ctx}: trussness");
            assert_eq!(
                report.value.truss_members().unwrap(),
                oracle::ktruss_edges(&g, 4),
                "{ctx}: 4-truss members"
            );
            let report = pipeline.query(&prepared, spec, &Query::FourCliques).unwrap();
            assert_eq!(
                report.value,
                QueryValue::FourCliques { total: k4_total, per_vertex: k4_per_vertex.clone() },
                "{ctx}: four-cliques"
            );
        }
        assert_eq!(
            tcim_repro::bitmatrix::matrices_built(),
            built,
            "{name}: motif peeling must never re-slice"
        );
    }
}

/// When *every* vertex ties (a p=0 Watts–Strogatz ring is
/// vertex-transitive: every vertex closes the same number of
/// triangles), the top-k ranking must still be deterministic and
/// backend-independent — ascending input id, on every backend, under
/// every orientation. This pins the documented tie-break on the
/// all-ties worst case.
#[test]
fn topk_breaks_total_ties_by_ascending_input_id_on_every_backend() {
    let g = watts_strogatz(64, 6, 0.0, 1).unwrap();
    let local = baseline::local_triangles(&g);
    assert!(
        local.iter().all(|&t| t == local[0]) && local[0] > 0,
        "the ring must be a non-trivial all-ties instance"
    );
    for orientation in [Orientation::Natural, Orientation::Degree, Orientation::Degeneracy] {
        let pipeline =
            TcimPipeline::new(&TcimConfig { orientation, ..TcimConfig::default() }).unwrap();
        let prepared = pipeline.prepare(&g);
        for spec in Backend::default_suite() {
            let ctx = format!("{orientation:?} on {}", spec.label());
            let report =
                pipeline.query(&prepared, &spec, &Query::TopKVertices { k: 7 }).unwrap();
            let ranked = match report.value {
                QueryValue::TopK(ranked) => ranked,
                other => panic!("{ctx}: unexpected value shape {other:?}"),
            };
            let got: Vec<(u32, u64)> =
                ranked.iter().map(|e| (e.vertex, e.triangles)).collect();
            let expected: Vec<(u32, u64)> = (0..7).map(|v| (v, local[0])).collect();
            assert_eq!(got, expected, "{ctx}: ties break by ascending input id");
        }
    }
}

/// Relabelling orientations (degree, degeneracy) must not change any
/// per-vertex-attributed answer: ids are mapped back to the input
/// graph inside the execution layer.
#[test]
fn attributed_queries_are_orientation_invariant() {
    let g = barabasi_albert(200, 6, 9).unwrap();
    let local = baseline::local_triangles(&g);
    let support = naive_edge_support(&g);
    for orientation in [Orientation::Natural, Orientation::Degree, Orientation::Degeneracy] {
        let pipeline =
            TcimPipeline::new(&TcimConfig { orientation, ..TcimConfig::default() }).unwrap();
        let prepared = pipeline.prepare(&g);
        for spec in Backend::default_suite() {
            let ctx = format!("{orientation:?} on {}", spec.label());
            let pv = pipeline.query(&prepared, &spec, &Query::PerVertexTriangles).unwrap();
            assert_eq!(pv.value.per_vertex().unwrap(), local.as_slice(), "{ctx}");
            let es = pipeline.query(&prepared, &spec, &Query::EdgeSupport).unwrap();
            let got: Vec<(u32, u32, u64)> = es
                .value
                .edge_support()
                .unwrap()
                .iter()
                .map(|e| (e.u, e.v, e.support))
                .collect();
            assert_eq!(got, support, "{ctx}");
        }
    }
}

/// The attributed PIM run pays for its readouts: the kernel stats of a
/// per-vertex query report one readout per non-zero AND result and the
/// modelled cost exceeds the plain count's, while slice pairs stay
/// identical between serial and scheduled paths.
#[test]
fn attributed_queries_cost_readouts_and_report_normalized_stats() {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let prepared = pipeline.prepare(&gnm(250, 1800, 2).unwrap());
    let total =
        pipeline.query(&prepared, &Backend::SerialPim, &Query::TotalTriangles).unwrap();
    let local =
        pipeline.query(&prepared, &Backend::SerialPim, &Query::PerVertexTriangles).unwrap();
    assert_eq!(total.kernel.result_readouts, 0);
    assert!(local.kernel.result_readouts > 0);
    assert_eq!(local.kernel.slice_pairs, total.kernel.slice_pairs);
    assert!(local.modelled_time_s.unwrap() > total.modelled_time_s.unwrap());
    assert!(local.modelled_energy_j.unwrap() > total.modelled_energy_j.unwrap());
    // Scheduled attribution reports the identical normalized stats.
    let sched = pipeline
        .query(
            &prepared,
            &Backend::ScheduledPim(tcim_repro::sched::SchedPolicy::with_arrays(4)),
            &Query::PerVertexTriangles,
        )
        .unwrap();
    assert_eq!(sched.kernel, local.kernel);
    assert_eq!(sched.value, local.value);
}
