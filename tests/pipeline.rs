//! Cross-crate pipeline properties: for every backend × orientation ×
//! graph family, prepare-once/execute-many equals the one-shot path and
//! all backends agree on the triangle count.

use proptest::prelude::*;
use tcim_repro::graph::generators::{
    barabasi_albert, classic, gnm, rmat, watts_strogatz, RmatParams,
};
use tcim_repro::graph::{CsrGraph, Orientation};
use tcim_repro::tcim::{baseline, Backend, TcimConfig, TcimPipeline};

const ORIENTATIONS: [Orientation; 3] =
    [Orientation::Natural, Orientation::Degree, Orientation::Degeneracy];

fn pipeline(orientation: Orientation) -> TcimPipeline {
    TcimPipeline::new(&TcimConfig { orientation, ..TcimConfig::default() }).unwrap()
}

fn test_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("fig2", classic::fig2_example()),
        ("wheel", classic::wheel(40)),
        ("er", gnm(250, 1600, 11).unwrap()),
        ("ba", barabasi_albert(300, 5, 7).unwrap()),
        ("rmat", rmat(8, 1800, RmatParams::default(), 17).unwrap()),
        ("ws", watts_strogatz(260, 6, 0.1, 23).unwrap()),
    ]
}

/// The acceptance grid: every backend × orientation × {fig2, wheel, ER,
/// BA, R-MAT, Watts–Strogatz}. A second execution of the same prepared
/// artifact and the one-shot `count` path must all equal the
/// graph-level baseline.
#[test]
fn every_backend_orientation_and_family_agrees() {
    for orientation in ORIENTATIONS {
        let p = pipeline(orientation);
        for (label, g) in test_graphs() {
            let expected = baseline::edge_iterator_merge(&g);
            let prepared = p.prepare(&g);
            for spec in Backend::default_suite() {
                let name = spec.label();
                let first = p.execute(&prepared, &spec).unwrap();
                let second = p.execute(&prepared, &spec).unwrap();
                let one_shot = p.count(&g, &spec).unwrap();
                assert_eq!(
                    first.triangles, expected,
                    "{label} {orientation:?} {name}: prepared execution"
                );
                assert_eq!(
                    second.triangles, expected,
                    "{label} {orientation:?} {name}: repeated execution"
                );
                assert_eq!(
                    one_shot.triangles, expected,
                    "{label} {orientation:?} {name}: one-shot path"
                );
                // Work statistics are deterministic across executions of
                // one artifact.
                assert_eq!(first.stats, second.stats, "{label} {orientation:?} {name}");
            }
        }
    }
}

/// The one-shot `count` calls above must have hit the cache (same
/// graph), never rebuilding the artifact.
#[test]
fn one_shot_counts_reuse_the_prepared_artifact() {
    let p = pipeline(Orientation::Natural);
    let g = gnm(200, 1300, 3).unwrap();
    let prepared = p.prepare(&g);
    assert_eq!(p.cache().misses(), 1);
    for spec in Backend::default_suite() {
        p.count(&g, &spec).unwrap();
    }
    // Five counts → five cache hits, zero further misses.
    assert_eq!(p.cache().misses(), 1);
    assert_eq!(p.cache().hits(), 5);
    assert!(std::sync::Arc::ptr_eq(&prepared, &p.prepare(&g)));
}

/// The pipeline's metric counters are the same accounting its reports
/// and caches carry: executions, kernel work sums, cache hits/misses
/// and prepared builds all line up exactly.
#[test]
fn pipeline_metrics_mirror_report_and_cache_accounting() {
    let p = pipeline(Orientation::Degree);
    let g = barabasi_albert(300, 5, 7).unwrap();
    let prepared = p.prepare(&g);

    let mut kernels = 0u64;
    let mut pairs = 0u64;
    let mut executions = 0u64;
    for spec in Backend::default_suite() {
        let report = p.execute(&prepared, &spec).unwrap();
        kernels += report.kernel.kernel_invocations;
        pairs += report.kernel.slice_pairs;
        executions += 1;
        // The one-shot path routes through the same instrumented
        // execute, so it counts too (and hits the prepared cache).
        let one_shot = p.count(&g, &spec).unwrap();
        kernels += one_shot.kernel.kernel_invocations;
        pairs += one_shot.kernel.slice_pairs;
        executions += 1;
    }

    let snap = p.metrics_snapshot();
    assert_eq!(snap.counter("tcim_executions_total"), Some(executions));
    assert_eq!(snap.counter("tcim_kernel_invocations_total"), Some(kernels));
    assert_eq!(snap.counter("tcim_slice_pairs_total"), Some(pairs));
    // One explicit prepare → one build and one miss; the five `count`
    // calls above all hit (the same pins as the cache test).
    assert_eq!(snap.counter("tcim_prepared_builds_total"), Some(1));
    assert_eq!(snap.counter("tcim_prepared_cache_misses_total"), Some(p.cache().misses()));
    assert_eq!(snap.counter("tcim_prepared_cache_hits_total"), Some(p.cache().hits()));
    assert_eq!(p.cache().misses(), 1);
    assert_eq!(p.cache().hits(), 5);
    let latency = snap.histogram("tcim_execute_latency_nanoseconds").unwrap();
    assert_eq!(latency.count, executions);
}

fn graph_strategy() -> impl Strategy<Value = CsrGraph> {
    (2usize..60).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..250)
            .prop_map(move |edges| CsrGraph::from_edges(n, edges).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary graphs under arbitrary orientations: the full backend
    /// suite is exact and agrees with the graph-level baseline.
    #[test]
    fn backend_suite_is_exact_on_arbitrary_graphs(
        g in graph_strategy(),
        orientation_idx in 0usize..3,
    ) {
        let expected = baseline::edge_iterator_merge(&g);
        let p = pipeline(ORIENTATIONS[orientation_idx]);
        let prepared = p.prepare(&g);
        for spec in Backend::default_suite() {
            let report = p.execute(&prepared, &spec).unwrap();
            prop_assert_eq!(report.triangles, expected, "{}", spec.label());
        }
    }
}
