//! Integration tests of the architecture layer against the device and
//! array models: cost accounting, cache behaviour, and ablations.

use tcim_repro::arch::{PimConfig, PimEngine, ReplacementPolicy};
use tcim_repro::bitmatrix::{SliceSize, SlicedMatrix};
use tcim_repro::graph::generators::gnm;
use tcim_repro::graph::Orientation;
use tcim_repro::tcim::baseline;

fn matrix_for(seed: u64) -> (tcim_repro::graph::CsrGraph, SlicedMatrix) {
    let g = gnm(600, 5000, seed).unwrap();
    let oriented = Orientation::Natural.orient(&g);
    let m = SlicedMatrix::from_adjacency(oriented.rows(), SliceSize::S64).unwrap();
    (g, m)
}

#[test]
fn op_counts_match_matrix_structure() {
    let (g, m) = matrix_for(1);
    let engine = PimEngine::new(&PimConfig::default()).unwrap();
    let run = engine.run(&m);

    assert_eq!(run.stats.edges as usize, g.edge_count());
    assert_eq!(run.stats.and_ops, run.stats.bitcount_ops);

    // AND ops must equal the matrix's total matching slice pairs.
    let expected_pairs: u64 = m
        .edges()
        .map(|(i, j)| m.row(i).matching_slices(m.col(j)).unwrap().count() as u64)
        .sum();
    assert_eq!(run.stats.and_ops, expected_pairs);

    // Every column access is hit, miss or exchange; with a 16 MB buffer
    // this graph never exchanges.
    assert_eq!(run.stats.col_accesses(), expected_pairs);
    assert_eq!(run.stats.col_exchanges, 0);
}

#[test]
fn energy_equals_sum_of_op_costs() {
    let (_, m) = matrix_for(2);
    let engine = PimEngine::new(&PimConfig::default()).unwrap();
    let run = engine.run(&m);
    let array = engine.array();
    let bits = engine.config().slice_size.bits();

    let expected_write = run.stats.total_writes() as f64 * array.write_slice_energy_j(bits);
    let expected_and = run.stats.and_ops as f64 * array.and_slice_energy_j(bits);
    let expected_bc = run.stats.bitcount_ops as f64 * engine.bitcounter().energy_j;
    assert!((run.energy.write_j - expected_write).abs() < 1e-15);
    assert!((run.energy.and_j - expected_and).abs() < 1e-15);
    assert!((run.energy.bitcount_j - expected_bc).abs() < 1e-15);
    let total = run.energy.write_j
        + run.energy.and_j
        + run.energy.bitcount_j
        + run.energy.leakage_j
        + run.energy.controller_j;
    assert!((run.total_energy_j() - total).abs() < 1e-15);
}

#[test]
fn shrinking_cache_never_increases_hits() {
    let (_, m) = matrix_for(3);
    let mut last_hits = u64::MAX;
    for capacity in [100_000usize, 2_000, 400, 80] {
        let config =
            PimConfig { capacity_slices_override: Some(capacity), ..PimConfig::default() };
        let run = PimEngine::new(&config).unwrap().run(&m);
        assert!(
            run.stats.col_hits <= last_hits,
            "capacity {capacity}: hits {} > previous {last_hits}",
            run.stats.col_hits
        );
        last_hits = run.stats.col_hits;
    }
}

#[test]
fn replacement_policy_changes_hits_but_not_counts() {
    let (g, m) = matrix_for(4);
    let expected = baseline::edge_iterator_merge(&g);
    let mut hit_rates = Vec::new();
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Random]
    {
        let config = PimConfig {
            replacement: policy,
            capacity_slices_override: Some(300),
            ..PimConfig::default()
        };
        let run = PimEngine::new(&config).unwrap().run(&m);
        assert_eq!(run.triangles, expected, "{policy:?} must stay exact");
        hit_rates.push((policy, run.stats.hit_rate()));
    }
    // LRU should not lose to Random on this reuse-heavy access stream.
    let lru = hit_rates[0].1;
    let random = hit_rates[2].1;
    assert!(lru >= random, "lru {lru} vs random {random}");
}

#[test]
fn parallelism_scales_pim_time_down() {
    let (_, m) = matrix_for(5);
    // One-bank organization vs the full 4-bank chip: identical op counts,
    // quarter the parallel sub-arrays, so more PIM time.
    let full = PimEngine::new(&PimConfig::default()).unwrap().run(&m);
    let one_bank_org = tcim_repro::nvsim::ArrayOrganization {
        banks: 1,
        ..tcim_repro::nvsim::ArrayOrganization::tcim_16mb()
    };
    let config = PimConfig {
        organization: one_bank_org,
        // Keep the buffer capacity equal so cache behaviour matches.
        capacity_slices_override: Some(PimConfig::default().capacity_slices().unwrap()),
        ..PimConfig::default()
    };
    let quarter = PimEngine::new(&config).unwrap().run(&m);
    assert_eq!(full.stats, quarter.stats);
    let full_pim = full.latency.write_s + full.latency.and_s + full.latency.bitcount_s;
    let quarter_pim =
        quarter.latency.write_s + quarter.latency.and_s + quarter.latency.bitcount_s;
    assert!(
        (quarter_pim / full_pim - 4.0).abs() < 0.01,
        "expected 4x, got {}",
        quarter_pim / full_pim
    );
}

#[test]
fn slice_size_ablation_preserves_counts_and_shifts_work() {
    let g = gnm(500, 4000, 6).unwrap();
    let oriented = Orientation::Natural.orient(&g);
    let expected = baseline::edge_iterator_merge(&g);
    let mut pair_counts = Vec::new();
    for s in SliceSize::ALL {
        let m = SlicedMatrix::from_adjacency(oriented.rows(), s).unwrap();
        let config = PimConfig { slice_size: s, ..PimConfig::default() };
        let run = PimEngine::new(&config).unwrap().run(&m);
        assert_eq!(run.triangles, expected, "|S| = {s}");
        pair_counts.push(run.stats.and_ops);
    }
    // Halving |S| at most doubles the AND ops: every small-slice match
    // lies inside a matching pair at the doubled size. (The count is NOT
    // monotone in |S|: finer slices also prune pairs whose set bits fall
    // in different sub-slices.)
    for w in pair_counts.windows(2) {
        assert!(w[0] <= 2 * w[1], "pair counts violate the 2x bound: {pair_counts:?}");
    }
}
