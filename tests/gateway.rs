//! Acceptance tests of the `tcim-gateway` serving front-end.
//!
//! Three claims from the issue, each proven here:
//! 1. **Bit-identity** — coalesced execution returns `QueryValue`s
//!    bit-identical to one-at-a-time serving, across backends ×
//!    generators × the full query suite.
//! 2. **Snapshot isolation** — under randomized concurrent churn,
//!    every reader sees exactly the state of the epoch its response is
//!    pinned to, and readers are never blocked by writers.
//! 3. **Quotas and backpressure** — a starved low-weight tenant still
//!    progresses, an over-quota tenant is shed with `QueueFull`, and
//!    the queue-depth gauge tracks reality.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

use tcim_repro::gateway::{
    AdmissionError, Gateway, GatewayConfig, GatewayError, PublishPolicy, TenantPolicy,
};
use tcim_repro::graph::generators::{barabasi_albert, classic, gnm};
use tcim_repro::service::{QueryRequest, ServiceConfig, TcimService};
use tcim_repro::stream::UpdateBatch;
use tcim_repro::tcim::{Backend, Query};

fn service() -> Arc<TcimService> {
    Arc::new(TcimService::new(&ServiceConfig::default()).unwrap())
}

/// Claim 1: for every backend × generator × query, a coalesced burst
/// answers bit-identically to one-at-a-time serving — including the
/// `f64` clustering coefficients, which must come from the same
/// integer inputs through the same expressions.
#[test]
fn coalesced_values_are_bit_identical_to_one_at_a_time() {
    let svc = service();
    let graphs = vec![
        ("ba", barabasi_albert(180, 4, 33).unwrap()),
        ("er", gnm(150, 900, 7).unwrap()),
        ("wheel", classic::wheel(40)),
    ];
    for (name, g) in &graphs {
        svc.register(name, g).unwrap();
    }

    for backend in [None, Some(Backend::CpuMerge), Some(Backend::CpuForward)] {
        // Reference: one-at-a-time, no coalescing, fresh responses.
        let mut solo: HashMap<(String, Query), _> = HashMap::new();
        for (name, _) in &graphs {
            for query in Query::example_suite() {
                let mut request = QueryRequest::new(*name, query.clone());
                if let Some(b) = &backend {
                    request = request.with_backend(b.clone());
                }
                let response = svc.serve(&[request]).remove(0).unwrap();
                solo.insert((name.to_string(), query), response);
            }
        }

        // Gateway: everything submitted as one burst, coalesced.
        let gateway = Gateway::new(Arc::clone(&svc), &GatewayConfig::default());
        let mut tickets = Vec::new();
        for (name, _) in &graphs {
            for query in Query::example_suite() {
                let mut request = QueryRequest::new(*name, query.clone());
                if let Some(b) = &backend {
                    request = request.with_backend(b.clone());
                }
                let ticket = gateway.submit("t", request).unwrap();
                tickets.push((name.to_string(), query, ticket));
            }
        }
        gateway.run_until_idle();

        for (name, query, ticket) in tickets {
            let coalesced = ticket.wait().unwrap();
            let reference = &solo[&(name.clone(), query.clone())];
            assert_eq!(
                coalesced.value, reference.value,
                "value mismatch: {name} / {query:?} / {backend:?}"
            );
            assert_eq!(coalesced.triangles, reference.triangles);
            let provenance = coalesced.batch.expect("gateway responses carry provenance");
            // The full suite shares one graph × backend group, so six
            // queries ran as one batch with one execution.
            assert_eq!(provenance.coalesced, 6);
            assert_eq!(provenance.executions, 1);
        }
    }
}

/// Claim 1 for the motif variants: a burst mixing `KTruss` (two
/// different levels), `FourCliques` and the classic suite coalesces
/// into one batch per graph × backend group, answers every member
/// bit-identically to one-at-a-time serving, and provenance shows the
/// motif classes shared executions — two truss levels ride one
/// decomposition, so ten queries cost exactly three executions.
#[test]
fn mixed_motif_and_classic_bursts_coalesce_bit_identically() {
    let svc = service();
    svc.register("ba", &barabasi_albert(150, 4, 33).unwrap()).unwrap();
    let queries: Vec<Query> = Query::example_suite()
        .into_iter()
        .chain([
            Query::KTruss { k: 3 },
            Query::KTruss { k: 4 },
            Query::FourCliques,
            Query::KTruss { k: 5 },
        ])
        .collect();

    // Reference: one-at-a-time, no coalescing.
    let mut solo: HashMap<Query, _> = HashMap::new();
    for query in &queries {
        let response = svc.serve(&[QueryRequest::new("ba", query.clone())]).remove(0).unwrap();
        solo.insert(query.clone(), response);
    }

    // Gateway: the whole mixed burst at once.
    let gateway = Gateway::new(Arc::clone(&svc), &GatewayConfig::default());
    let tickets: Vec<_> = queries
        .iter()
        .map(|query| {
            (
                query.clone(),
                gateway.submit("t", QueryRequest::new("ba", query.clone())).unwrap(),
            )
        })
        .collect();
    gateway.run_until_idle();

    for (query, ticket) in tickets {
        let coalesced = ticket.wait().unwrap();
        let reference = &solo[&query];
        assert_eq!(coalesced.value, reference.value, "value mismatch: {query:?}");
        assert_eq!(coalesced.triangles, reference.triangles, "{query:?}");
        let provenance = coalesced.batch.expect("gateway responses carry provenance");
        assert_eq!(provenance.coalesced, queries.len(), "{query:?}");
        // One classic carrier + one shared truss decomposition + one
        // clique census.
        assert_eq!(provenance.executions, 3, "{query:?}");
    }
}

/// Claim 1 corollary (the issue's load-test acceptance shape): a
/// compatible burst is answered with strictly fewer attributed
/// executions than queries answered, and provenance proves it.
#[test]
fn compatible_burst_runs_strictly_fewer_executions_than_queries() {
    let svc = service();
    svc.register("g", &barabasi_albert(200, 4, 5).unwrap()).unwrap();
    let gateway = Gateway::new(Arc::clone(&svc), &GatewayConfig::default());
    let queries = 24;
    let tickets: Vec<_> = (0..queries)
        .map(|i| {
            let query = match i % 3 {
                0 => Query::TotalTriangles,
                1 => Query::PerVertexTriangles,
                _ => Query::TopKVertices { k: 4 },
            };
            gateway.submit("burst", QueryRequest::new("g", query)).unwrap()
        })
        .collect();
    gateway.run_until_idle();
    let mut executions: HashMap<u64, u64> = HashMap::new();
    for ticket in tickets {
        let response = ticket.wait().unwrap();
        let batch = response.batch.unwrap();
        executions.insert(batch.batch_id, batch.executions);
    }
    let total: u64 = executions.values().sum();
    assert!(
        total < queries as u64,
        "coalescing must save executions: {total} executions for {queries} queries"
    );
}

/// Claim 2: readers pinned to an epoch see exactly that epoch's
/// triangle count, under randomized concurrent churn, and are never
/// blocked by the writer (they run while the writer holds the dynamic
/// state lock).
#[test]
fn snapshot_isolated_reads_match_their_pinned_epoch_under_churn() {
    let svc = service();
    let n = 120;
    svc.register_live("live", &gnm(n, 700, 91).unwrap()).unwrap();
    let gateway = Arc::new(Gateway::new(
        Arc::clone(&svc),
        &GatewayConfig {
            workers: 2,
            publish: PublishPolicy::EveryBatch,
            ..GatewayConfig::default()
        },
    ));
    gateway.start_workers();

    // The writer records the ground truth of every epoch it publishes;
    // epoch 0 is on record before any update.
    let truth: Arc<std::sync::Mutex<HashMap<u64, u64>>> =
        Arc::new(std::sync::Mutex::new(HashMap::new()));
    let initial = svc.pinned_snapshot("live").unwrap();
    truth.lock().unwrap().insert(initial.epoch, initial.triangles);

    let writer = {
        let gateway = Arc::clone(&gateway);
        let truth = Arc::clone(&truth);
        std::thread::spawn(move || {
            let mut rng = ChaCha12Rng::seed_from_u64(17);
            for _ in 0..25 {
                let mut batch = UpdateBatch::new();
                for _ in 0..8 {
                    let u = rng.gen_range(0..n as u32);
                    let v = rng.gen_range(0..n as u32);
                    if u == v {
                        continue;
                    }
                    if rng.gen_bool(0.7) {
                        batch.insert(u, v);
                    } else {
                        batch.delete(u, v);
                    }
                }
                gateway.update("live", &batch).unwrap();
                let snapshot = gateway.service().pinned_snapshot("live").unwrap();
                truth.lock().unwrap().insert(snapshot.epoch, snapshot.triangles);
            }
        })
    };

    let mut tickets = Vec::new();
    for _ in 0..200 {
        tickets.push(
            gateway
                .submit("reader", QueryRequest::new("live", Query::TotalTriangles))
                .unwrap(),
        );
        if tickets.len() % 20 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    writer.join().unwrap();
    gateway.shutdown();

    let truth = truth.lock().unwrap();
    for ticket in tickets {
        let response = ticket.wait().unwrap();
        let epoch = response.epoch.expect("pinned reads record their epoch");
        let expected = truth
            .get(&epoch)
            .unwrap_or_else(|| panic!("reader saw unpublished epoch {epoch}"));
        assert_eq!(
            response.triangles, *expected,
            "epoch {epoch}: reader saw {} but the published count was {expected}",
            response.triangles
        );
        assert!(response.live);
    }
}

/// Claim 3: weighted scheduling keeps a low-weight tenant progressing
/// while a heavy tenant floods; an over-quota tenant is shed with
/// `QueueFull` naming it; and the queue-depth gauge matches the
/// queue's actual depth through admit → dispatch.
#[test]
fn quotas_weights_and_backpressure_behave() {
    let svc = service();
    svc.register("g", &classic::wheel(48)).unwrap();
    let gateway = Gateway::new(
        Arc::clone(&svc),
        &GatewayConfig { queue_capacity: 32, max_wave: 4, ..GatewayConfig::default() },
    );
    gateway.set_tenant("whale", TenantPolicy::weighted(4).with_max_queued(24));
    gateway.set_tenant("minnow", TenantPolicy::weighted(1).with_max_queued(4));

    // Over-quota shed: the 5th queued minnow request trips its quota,
    // and the error names the tenant.
    let minnow_tickets: Vec<_> = (0..4)
        .map(|_| {
            gateway.submit("minnow", QueryRequest::new("g", Query::TotalTriangles)).unwrap()
        })
        .collect();
    let shed =
        gateway.submit("minnow", QueryRequest::new("g", Query::TotalTriangles)).unwrap_err();
    assert_eq!(shed, AdmissionError::QueueFull { capacity: 4, tenant: Some("minnow".into()) });

    // The whale trips its own (larger) quota the same way…
    let whale_tickets: Vec<_> = (0..24)
        .map(|_| {
            gateway.submit("whale", QueryRequest::new("g", Query::PerVertexTriangles)).unwrap()
        })
        .collect();
    let shed =
        gateway.submit("whale", QueryRequest::new("g", Query::TotalTriangles)).unwrap_err();
    assert_eq!(shed, AdmissionError::QueueFull { capacity: 24, tenant: Some("whale".into()) });

    // …and an unquota'd tenant filling the rest hits the global bound.
    let flood_tickets: Vec<_> = (0..4)
        .map(|_| {
            gateway.submit("flood", QueryRequest::new("g", Query::TotalTriangles)).unwrap()
        })
        .collect();
    let global =
        gateway.submit("flood", QueryRequest::new("g", Query::TotalTriangles)).unwrap_err();
    assert_eq!(global, AdmissionError::QueueFull { capacity: 32, tenant: None });

    // Queue-depth gauge matches actual depth while queued.
    assert_eq!(gateway.queue_depth(), 32);
    assert_eq!(
        gateway.metrics_snapshot().gauge("tcim_gateway_queue_depth"),
        Some(32),
        "gauge tracks the queue"
    );

    // One small wave: the minnow is not starved even though the whale
    // has 6× its backlog and 4× its weight.
    gateway.pump();
    assert!(
        gateway.tenant_depth("minnow") < 4,
        "low-weight tenant progressed in the first wave"
    );

    gateway.run_until_idle();
    assert_eq!(gateway.queue_depth(), 0);
    assert_eq!(gateway.metrics_snapshot().gauge("tcim_gateway_queue_depth"), Some(0));
    for ticket in minnow_tickets.into_iter().chain(whale_tickets).chain(flood_tickets) {
        ticket.wait().unwrap();
    }
    let snapshot = gateway.metrics_snapshot();
    assert_eq!(snapshot.counter("tcim_gateway_admitted_total"), Some(32));
    assert_eq!(snapshot.counter("tcim_gateway_served_total"), Some(32));
    assert_eq!(snapshot.counter("tcim_gateway_shed_quota_total"), Some(2));
    assert_eq!(snapshot.counter("tcim_gateway_shed_queue_full_total"), Some(1));
}

/// Deadlines: a request that expires in the queue resolves to
/// `DeadlineExceeded` instead of being served; fresh requests in the
/// same wave are unaffected.
#[test]
fn expired_deadlines_are_shed_not_served() {
    let svc = service();
    svc.register("g", &classic::wheel(16)).unwrap();
    let gateway = Gateway::new(Arc::clone(&svc), &GatewayConfig::default());
    let doomed = gateway
        .submit_with_deadline(
            "t",
            QueryRequest::new("g", Query::TotalTriangles),
            Duration::ZERO,
        )
        .unwrap();
    let fine = gateway.submit("t", QueryRequest::new("g", Query::TotalTriangles)).unwrap();
    std::thread::sleep(Duration::from_millis(2));
    gateway.run_until_idle();
    match doomed.wait() {
        Err(GatewayError::Admission(AdmissionError::DeadlineExceeded)) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(fine.wait().unwrap().triangles, 15);
    assert_eq!(
        gateway.metrics_snapshot().counter("tcim_gateway_shed_deadline_total"),
        Some(1)
    );
}

/// Shutdown drains in-flight work, then sheds new submissions.
#[test]
fn shutdown_drains_then_rejects() {
    let svc = service();
    svc.register("g", &classic::wheel(16)).unwrap();
    let gateway = Gateway::new(Arc::clone(&svc), &GatewayConfig::default());
    let ticket = gateway.submit("t", QueryRequest::new("g", Query::TotalTriangles)).unwrap();
    gateway.shutdown();
    assert_eq!(ticket.wait().unwrap().triangles, 15, "queued work drains on shutdown");
    let refused =
        gateway.submit("t", QueryRequest::new("g", Query::TotalTriangles)).unwrap_err();
    assert_eq!(refused, AdmissionError::ShuttingDown);
}
