//! Repository-level property tests: the PIM dataflow is exact on
//! arbitrary graphs under arbitrary configurations.

use proptest::prelude::*;
use tcim_repro::arch::{PimConfig, PimEngine, ReplacementPolicy};
use tcim_repro::bitmatrix::{SliceSize, SlicedMatrix};
use tcim_repro::graph::{CsrGraph, Orientation};
use tcim_repro::tcim::baseline;

fn graph_strategy() -> impl Strategy<Value = CsrGraph> {
    (2usize..80).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..400)
            .prop_map(move |edges| CsrGraph::from_edges(n, edges).unwrap())
    })
}

fn engine(capacity: Option<usize>, policy: ReplacementPolicy, s: SliceSize) -> PimEngine {
    let config = PimConfig {
        slice_size: s,
        replacement: policy,
        capacity_slices_override: capacity,
        ..PimConfig::default()
    };
    PimEngine::new(&config).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The simulated PIM dataflow is exact for every graph.
    #[test]
    fn pim_count_is_exact(g in graph_strategy()) {
        let expected = baseline::edge_iterator_merge(&g);
        let oriented = Orientation::Natural.orient(&g);
        let m = SlicedMatrix::from_adjacency(oriented.rows(), SliceSize::S64).unwrap();
        let run = engine(None, ReplacementPolicy::Lru, SliceSize::S64).run(&m);
        prop_assert_eq!(run.triangles, expected);
    }

    /// Neither cache capacity nor replacement policy may change counts.
    #[test]
    fn cache_configuration_is_functionally_invisible(
        g in graph_strategy(),
        capacity in 1usize..64,
        policy_idx in 0usize..3,
    ) {
        let policy = [ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Random][policy_idx];
        let expected = baseline::edge_iterator_merge(&g);
        let oriented = Orientation::Natural.orient(&g);
        let m = SlicedMatrix::from_adjacency(oriented.rows(), SliceSize::S64).unwrap();
        let run = engine(Some(capacity), policy, SliceSize::S64).run(&m);
        prop_assert_eq!(run.triangles, expected);
        // First touch of every distinct (column, slice) is never a hit:
        // hits < accesses unless there are no accesses.
        if run.stats.col_accesses() > 0 {
            prop_assert!(run.stats.col_hits < run.stats.col_accesses());
        }
    }

    /// Slice size is a pure performance knob.
    #[test]
    fn slice_size_is_functionally_invisible(g in graph_strategy(), s_idx in 0usize..6) {
        let s = SliceSize::ALL[s_idx];
        let expected = baseline::edge_iterator_merge(&g);
        let oriented = Orientation::Degree.orient(&g);
        let m = SlicedMatrix::from_adjacency(oriented.rows(), s).unwrap();
        let run = engine(None, ReplacementPolicy::Lru, s).run(&m);
        prop_assert_eq!(run.triangles, expected);
    }

    /// Write accounting: every miss/exchange writes exactly once, and row
    /// writes never exceed the row slice population.
    #[test]
    fn write_accounting_invariants(g in graph_strategy()) {
        let oriented = Orientation::Natural.orient(&g);
        let m = SlicedMatrix::from_adjacency(oriented.rows(), SliceSize::S64).unwrap();
        let run = engine(Some(8), ReplacementPolicy::Lru, SliceSize::S64).run(&m);
        let s = run.stats;
        prop_assert_eq!(s.total_writes(), s.row_slice_writes + s.col_misses + s.col_exchanges);
        let total_row_valid: u64 = (0..m.dim() as u32)
            .map(|i| m.row(i).valid_slice_count() as u64)
            .sum();
        prop_assert!(s.row_slice_writes <= total_row_valid);
        // Rates always form a probability distribution when traffic exists.
        if s.col_accesses() > 0 {
            let sum = s.hit_rate() + s.miss_rate() + s.exchange_rate();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
