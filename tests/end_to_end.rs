//! Cross-crate integration: every counting path in the repository must
//! agree on every graph family, end to end.

use tcim_repro::bitmatrix::popcount::PopcountMethod;
use tcim_repro::bitmatrix::{BitMatrix, SliceSize};
use tcim_repro::graph::datasets::TABLE_II;
use tcim_repro::graph::generators::{
    barabasi_albert, classic, gnm, rmat, road_grid, watts_strogatz, RmatParams,
};
use tcim_repro::graph::{CsrGraph, Orientation};
use tcim_repro::tcim::software::sliced_software_tc;
use tcim_repro::tcim::{baseline, TcimAccelerator, TcimConfig};

/// Counts with every implemented method and asserts unanimity.
fn assert_all_paths_agree(g: &CsrGraph, label: &str) -> u64 {
    let reference = baseline::edge_iterator_merge(g);
    assert_eq!(baseline::hash_intersect(g), reference, "{label}: hash");
    assert_eq!(baseline::forward(g), reference, "{label}: forward");
    assert_eq!(baseline::parallel_edge_iterator(g, 4), reference, "{label}: parallel");

    for orientation in [Orientation::Natural, Orientation::Degree, Orientation::Degeneracy] {
        let run = sliced_software_tc(g, SliceSize::S64, orientation, PopcountMethod::Lut8)
            .expect("software path runs");
        assert_eq!(run.triangles, reference, "{label}: software {orientation:?}");
    }

    let acc =
        TcimAccelerator::new(&TcimConfig::default()).expect("default config characterizes");
    assert_eq!(acc.count_triangles(g).triangles, reference, "{label}: tcim");

    // Dense verification is only affordable on small graphs.
    if g.vertex_count() <= 400 {
        let edges: Vec<(usize, usize)> =
            g.edges().map(|(u, v)| (u as usize, v as usize)).collect();
        let dense = BitMatrix::from_edges(g.vertex_count(), &edges).expect("edges in bounds");
        assert_eq!(dense.triangle_count_trace(), reference, "{label}: trace(A^3)/6");
        assert_eq!(
            dense.triangle_count_bitwise().expect("square matrix"),
            reference,
            "{label}: eq5"
        );
    }
    reference
}

#[test]
fn closed_form_families() {
    assert_eq!(assert_all_paths_agree(&classic::fig2_example(), "fig2"), 2);
    assert_eq!(
        assert_all_paths_agree(&classic::complete(20), "k20"),
        classic::complete_triangles(20)
    );
    assert_eq!(assert_all_paths_agree(&classic::wheel(25), "w25"), 24);
    assert_eq!(assert_all_paths_agree(&classic::star(100), "star"), 0);
    assert_eq!(assert_all_paths_agree(&classic::cycle(30), "c30"), 0);
    assert_eq!(assert_all_paths_agree(&classic::complete_bipartite(8, 9), "k89"), 0);
}

#[test]
fn random_families() {
    assert_all_paths_agree(&gnm(300, 2500, 1).unwrap(), "gnm");
    assert_all_paths_agree(&barabasi_albert(400, 5, 2).unwrap(), "ba");
    assert_all_paths_agree(&rmat(9, 4000, RmatParams::default(), 3).unwrap(), "rmat");
    assert_all_paths_agree(&watts_strogatz(350, 6, 0.1, 4).unwrap(), "ws");
    assert_all_paths_agree(&road_grid(18, 18, 0.9, 0.3, 5).unwrap(), "road");
}

#[test]
fn dataset_stand_ins_count_consistently() {
    for d in &TABLE_II {
        let g = d.synthesize(0.003, 11).unwrap();
        assert_all_paths_agree(&g, d.name);
    }
}

#[test]
fn snap_io_roundtrip_preserves_triangles() {
    let g = barabasi_albert(300, 4, 9).unwrap();
    let before = baseline::forward(&g);
    let mut buf = Vec::new();
    tcim_repro::graph::io::write_snap_edges(&g, &mut buf).unwrap();
    let parsed = tcim_repro::graph::io::read_snap_edges(buf.as_slice()).unwrap();
    assert_eq!(baseline::forward(&parsed), before);
}

#[test]
fn transitivity_is_consistent_between_metrics_and_counts() {
    let g = watts_strogatz(500, 6, 0.05, 13).unwrap();
    let triangles = assert_all_paths_agree(&g, "ws-metrics");
    let t = tcim_repro::tcim::metrics::transitivity(&g, triangles);
    // A barely rewired k=6 ring lattice keeps transitivity near the
    // lattice value of 0.6.
    assert!(t > 0.3 && t < 0.7, "transitivity {t}");
    let local_sum: u64 = baseline::local_triangles(&g).iter().sum();
    assert_eq!(local_sum, 3 * triangles);
}
