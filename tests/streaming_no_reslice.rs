//! Acceptance proof for the dynamic-graph subsystem: applying a batch
//! below the drift threshold performs **zero** new `SlicedMatrix`
//! builds (the per-update delta kernels run entirely on the in-place
//! patched rows), while exceeding the threshold triggers exactly one
//! rebuild that lands in the pipeline's `PreparedCache`.
//!
//! This file holds a single test on purpose: the slicing build counter
//! is process-global, so the proof lives in its own integration-test
//! binary where no concurrent test can build matrices.

use std::sync::Arc;

use tcim_repro::graph::generators::gnm;
use tcim_repro::stream::{DriftPolicy, DynamicGraph, StreamConfig, Update, UpdateBatch};

#[test]
fn deltas_never_reslice_and_drift_triggers_exactly_one_rebuild() {
    let g = gnm(200, 1200, 31).unwrap();
    let config = StreamConfig {
        drift: DriftPolicy {
            // 200 vertices: trip the fold once more than 25% of the
            // rows (50) were touched since the last fold.
            max_touched_fraction: Some(0.25),
            max_valid_slice_drift: None,
            max_updates: None,
        },
        verify_on_fold: true,
        ..StreamConfig::default()
    };

    // Construction prepares (slices) the epoch-0 artifact exactly once.
    let before_new = tcim_bitmatrix::matrices_built();
    let mut dg = DynamicGraph::new(&g, config).unwrap();
    assert_eq!(tcim_bitmatrix::matrices_built(), before_new + 1);
    assert_eq!(dg.pipeline().cache().len(), 1);

    // A small batch (touches ≤ 20 rows out of 200) stays below the
    // drift threshold: zero new SlicedMatrix builds, no fold.
    let mut small = UpdateBatch::new();
    for v in 0..10u32 {
        small.push(Update::Insert(2 * v, 2 * v + 1));
    }
    let before_small = tcim_bitmatrix::matrices_built();
    let outcome = dg.apply_batch(&small).unwrap();
    assert!(outcome.applied() > 0, "the batch did real work");
    assert!(!outcome.folded, "below the drift threshold");
    assert_eq!(
        tcim_bitmatrix::matrices_built(),
        before_small,
        "sub-threshold batches must not build any SlicedMatrix"
    );
    assert_eq!(dg.epoch(), 0);
    assert_eq!(dg.report().rebuilds, 0);

    // A wide batch (touches 120 distinct rows) exceeds the threshold:
    // exactly one rebuild, landing in the PreparedCache.
    let mut wide = UpdateBatch::new();
    for v in 20..80u32 {
        wide.push(Update::Insert(v, v + 100));
    }
    let before_wide = tcim_bitmatrix::matrices_built();
    let misses_before = dg.pipeline().cache().misses();
    let outcome = dg.apply_batch(&wide).unwrap();
    assert!(outcome.folded, "above the drift threshold");
    assert_eq!(
        tcim_bitmatrix::matrices_built(),
        before_wide + 1,
        "the fold rebuilds exactly one SlicedMatrix"
    );
    assert_eq!(dg.epoch(), 1);
    assert_eq!(dg.report().rebuilds, 1);
    // …and the artifact landed in the cache: one miss (the build), and
    // re-preparing the same snapshot is a pure hit on the same Arc.
    assert_eq!(dg.pipeline().cache().misses(), misses_before + 1);
    assert_eq!(dg.pipeline().cache().len(), 2);
    let hits_before = dg.pipeline().cache().hits();
    let again = dg.pipeline().prepare(&dg.snapshot());
    assert!(Arc::ptr_eq(dg.prepared(), &again));
    assert_eq!(dg.pipeline().cache().hits(), hits_before + 1);
    assert_eq!(tcim_bitmatrix::matrices_built(), before_wide + 1, "the hit resliced nothing");

    // The drift measure reset after the fold.
    assert_eq!(dg.drift().touched_rows, 0);
    assert_eq!(dg.drift().updates_since_fold, 0);
}
