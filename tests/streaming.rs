//! Acceptance property for the dynamic-graph subsystem: for randomized
//! insert/delete sequences over every graph family, the incrementally
//! maintained count equals a from-scratch recount after every batch,
//! and invalid updates are rejected cleanly.

use proptest::prelude::*;
use tcim_repro::graph::generators::{barabasi_albert, classic, gnm, rmat, RmatParams};
use tcim_repro::graph::CsrGraph;
use tcim_repro::stream::{
    DriftPolicy, DynamicGraph, StreamConfig, StreamError, Update, UpdateBatch,
};
use tcim_repro::tcim::baseline;

fn seed_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("fig2", classic::fig2_example()),
        ("wheel", classic::wheel(30)),
        ("er", gnm(80, 400, 5).unwrap()),
        ("ba", barabasi_albert(90, 4, 9).unwrap()),
        ("rmat", rmat(6, 220, RmatParams::default(), 21).unwrap()),
    ]
}

/// Turn a raw `(u, v, kind)` triple into an update; proptest drives the
/// raw values, the graph's vertex count bounds them only loosely so the
/// stream stays adversarial (out-of-range ids, self-loops, duplicates).
fn to_update(u: u32, v: u32, kind: bool) -> Update {
    if kind {
        Update::Insert(u, v)
    } else {
        Update::Delete(u, v)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized churn over every seed family: after every batch the
    /// incremental count equals the graph-level recount of the live
    /// snapshot, every update is either applied or rejected, and
    /// rejections leave the edge set untouched.
    #[test]
    fn incremental_count_equals_recount_after_every_batch(
        raw in proptest::collection::vec((0u32..100, 0u32..100, any::<bool>()), 1..120),
        batch_size in 1usize..24,
    ) {
        for (label, g) in seed_graphs() {
            let config = StreamConfig {
                drift: DriftPolicy {
                    max_touched_fraction: Some(0.5),
                    max_valid_slice_drift: None,
                    max_updates: None,
                },
                verify_on_fold: true,
                fanout_threshold: 6,
                ..StreamConfig::default()
            };
            let mut dg = DynamicGraph::new(&g, config).unwrap();
            for chunk in raw.chunks(batch_size) {
                let batch: UpdateBatch =
                    chunk.iter().map(|&(u, v, k)| to_update(u, v, k)).collect();
                let before_edges = dg.edge_count();
                let outcome = dg.apply_batch(&batch).unwrap();
                prop_assert_eq!(
                    outcome.applied() + outcome.rejected.len(),
                    batch.len(),
                    "{}: every update is accounted for", label
                );
                let recount = baseline::edge_iterator_merge(&dg.snapshot());
                prop_assert_eq!(
                    dg.triangles(), recount,
                    "{}: incremental count must equal recount", label
                );
                // Edge bookkeeping is consistent with the deltas.
                let net_edges: i64 = outcome
                    .deltas
                    .iter()
                    .map(|d| if d.update.is_insert() { 1 } else { -1 })
                    .sum();
                prop_assert_eq!(
                    dg.edge_count() as i64,
                    before_edges as i64 + net_edges,
                    "{}: edge count tracks applied updates", label
                );
            }
        }
    }
}

/// Churn, then motif: after a randomized insert/delete sequence, the
/// live graph's k-truss and 4-clique answers equal both the naive
/// oracle on the live snapshot and a from-scratch prepared-pipeline
/// recount of the same snapshot — the live motif path peels the
/// maintained rows, it never folds or re-slices.
#[test]
fn churned_motif_answers_equal_from_scratch_recount() {
    use tcim_repro::graph::oracle;
    use tcim_repro::tcim::{Backend, Query, TcimConfig, TcimPipeline};

    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    for (label, g) in seed_graphs() {
        let config = StreamConfig { drift: DriftPolicy::never(), ..StreamConfig::default() };
        let mut dg = DynamicGraph::new(&g, config).unwrap();
        // Deterministic churn: delete every third edge, then wire each
        // deleted endpoint to a handful of new partners.
        let edges: Vec<(u32, u32)> = g.edges().collect();
        let mut batch = UpdateBatch::new();
        for &(u, v) in edges.iter().step_by(3) {
            batch.delete(u, v);
        }
        let n = g.vertex_count() as u32;
        for (i, &(u, _)) in edges.iter().step_by(3).enumerate() {
            let w = (u + 2 + i as u32) % n;
            let pending = |a: u32, b: u32| {
                batch.iter().any(|up| {
                    let (x, y) = up.normalized().endpoints();
                    (x, y) == (a.min(b), a.max(b))
                })
            };
            if u != w && !dg.has_edge(u, w) && !pending(u, w) {
                batch.insert(u, w);
            }
        }
        let outcome = dg.apply_batch(&batch).unwrap();
        assert_eq!(outcome.rejected.len(), 0, "{label}: churn batch is valid");

        let live = dg.snapshot();
        let truss = oracle::trussness(&live);
        let (k4_total, k4_per_vertex) = oracle::four_cliques(&live);

        // Live answers against the oracle on the live snapshot.
        let (value, kernel) = dg.trussness(4);
        let got: Vec<(u32, u32, u32)> =
            value.trussness().unwrap().iter().map(|e| (e.u, e.v, e.trussness)).collect();
        assert_eq!(got, truss, "{label}: live trussness equals the oracle");
        assert!(kernel.kernel_invocations >= live.edge_count() as u64, "{label}");
        let (value, _) = dg.four_cliques();
        assert_eq!(
            value.four_cliques().unwrap(),
            (k4_total, k4_per_vertex.as_slice()),
            "{label}: live 4-cliques equal the oracle"
        );

        // And against a from-scratch prepared recount of the snapshot.
        let prepared = pipeline.prepare(&live);
        for (query, expected_truss) in
            [(Query::KTruss { k: 4 }, true), (Query::FourCliques, false)]
        {
            let report = pipeline.query(&prepared, &Backend::SerialPim, &query).unwrap();
            if expected_truss {
                let scratch: Vec<(u32, u32, u32)> = report
                    .value
                    .trussness()
                    .unwrap()
                    .iter()
                    .map(|e| (e.u, e.v, e.trussness))
                    .collect();
                assert_eq!(scratch, truss, "{label}: from-scratch trussness agrees");
            } else {
                assert_eq!(
                    report.value.four_cliques().unwrap(),
                    (k4_total, k4_per_vertex.as_slice()),
                    "{label}: from-scratch 4-cliques agree"
                );
            }
        }
    }
}

/// Deleting edges that were never inserted is rejected cleanly, with
/// the precise error and zero state change — including edges deleted
/// earlier in the same batch.
#[test]
fn never_inserted_deletions_are_rejected_cleanly() {
    let mut dg = DynamicGraph::new(&classic::fig2_example(), StreamConfig::default()).unwrap();
    let err = dg.apply(Update::Delete(0, 3)).unwrap_err();
    assert!(matches!(err, StreamError::UnknownEdge { u: 0, v: 3 }), "{err}");

    let mut batch = UpdateBatch::new();
    batch.delete(1, 2).delete(2, 1); // second delete hits a now-absent edge
    let outcome = dg.apply_batch(&batch).unwrap();
    assert_eq!(outcome.applied(), 1);
    assert_eq!(outcome.rejected.len(), 1);
    assert!(matches!(outcome.rejected[0].error, StreamError::UnknownEdge { u: 1, v: 2 }));
    assert_eq!(dg.triangles(), baseline::edge_iterator_merge(&dg.snapshot()));
    assert_eq!(dg.report().rejected, 2);
}

/// A full insert-everything / delete-everything cycle returns to the
/// empty graph with a zero count and an exact report trail.
#[test]
fn full_drain_returns_to_zero() {
    let g = classic::wheel(25);
    let config = StreamConfig { drift: DriftPolicy::never(), ..StreamConfig::default() };
    let mut dg = DynamicGraph::new(&g, config).unwrap();
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let deletions: UpdateBatch = edges.iter().map(|&(u, v)| Update::Delete(u, v)).collect();
    let outcome = dg.apply_batch(&deletions).unwrap();
    assert_eq!(outcome.applied(), edges.len());
    assert_eq!(dg.triangles(), 0);
    assert_eq!(dg.edge_count(), 0);
    assert_eq!(outcome.net_delta(), -24);

    let insertions: UpdateBatch = edges.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
    dg.apply_batch(&insertions).unwrap();
    assert_eq!(dg.triangles(), 24);
    assert_eq!(dg.edge_count(), edges.len());
    assert_eq!(dg.snapshot(), g);
    let r = dg.report();
    assert_eq!(r.inserts, edges.len() as u64);
    assert_eq!(r.deletes, edges.len() as u64);
    assert_eq!(r.kernel_invocations, 2 * edges.len() as u64);
}
