//! Batched attributed dispatch: answer many compatible queries from
//! one execution.
//!
//! Every [`Query`] shape is a projection of the same underlying
//! triangle quantities — the global count, the per-vertex
//! participation vector, undirected degrees, and the per-edge support
//! list. A *batch* of queries against one prepared artifact therefore
//! never needs one kernel sweep per member: a single **carrier**
//! execution, chosen as the weakest query shape whose report recovers
//! every quantity any member needs, is run once and its attribution
//! fans out into each member's [`QueryReport`] through the shared
//! [`shape_value`] path.
//!
//! The carrier ladder, from strongest requirement down:
//!
//! | any member needs            | carrier                    |
//! |-----------------------------|----------------------------|
//! | the per-edge support list   | [`Query::EdgeSupport`]     |
//! | per-triangle attribution    | [`Query::PerVertexTriangles`] |
//! | degrees (global clustering) | [`Query::GlobalClustering`]|
//! | only the count              | [`Query::TotalTriangles`]  |
//!
//! Because the recovered quantities are exact integers (per-vertex
//! counts recovered from edge support via `Σ support(e ∋ v) / 2`,
//! degrees re-read from the prepared DAG exactly as the unbatched path
//! reads them), every shaped value is **bit-identical** to what a
//! one-at-a-time execution of the same member would have produced —
//! floating-point clustering coefficients included, since they are
//! computed from the same integer inputs by the same expressions.

use crate::backend::Backend;
use crate::error::Result;
use crate::pipeline::{PreparedGraph, TcimPipeline};
use crate::query::{original_degrees, shape_value, EdgeSupport, Query, QueryReport};

/// The outcome of answering a batch of queries through one carrier
/// execution: per-member reports (in input order) plus the execution
/// accounting that proves the coalescing happened.
#[derive(Debug)]
pub struct CoalescedOutcome {
    /// One report per input query, in input order. Individual members
    /// can fail shaping (an out-of-bounds local-clustering vertex)
    /// without failing their batch-mates.
    pub reports: Vec<Result<QueryReport>>,
    /// Attributed executions actually performed: `1` for a non-empty
    /// batch, `0` for an empty one. The saving is
    /// `queries answered − executions`.
    pub executions: u64,
    /// The carrier query shape that ran, when one did.
    pub carrier: Option<Query>,
}

/// Picks the weakest carrier shape that recovers every quantity any
/// member of `queries` needs.
fn carrier_for(queries: &[Query]) -> Query {
    if queries.iter().any(|q| matches!(q, Query::EdgeSupport)) {
        Query::EdgeSupport
    } else if queries.iter().any(Query::needs_attribution) {
        Query::PerVertexTriangles
    } else if queries.iter().any(|q| matches!(q, Query::GlobalClustering)) {
        Query::GlobalClustering
    } else {
        Query::TotalTriangles
    }
}

/// Recovers the per-vertex participation vector from a complete
/// per-edge support list: every triangle through `v` has exactly two
/// edges incident to `v`, so `Σ support(e ∋ v) = 2 · triangles(v)`.
fn per_vertex_from_support(support: &[EdgeSupport], n: usize) -> Vec<u64> {
    let mut doubled = vec![0u64; n];
    for e in support {
        doubled[e.u as usize] += e.support;
        doubled[e.v as usize] += e.support;
    }
    for v in &mut doubled {
        *v /= 2;
    }
    doubled
}

impl TcimPipeline {
    /// Answers every query in `queries` over one prepared artifact on
    /// one backend with a **single** carrier execution, fanning the
    /// carrier's attribution out into per-member reports.
    ///
    /// Each member's report carries the carrier's execution envelope
    /// (backend label, kernel accounting, modelled cost, wall time) —
    /// the members shared that one run — with the member's own query
    /// and its bit-identical shaped value. Pipeline execution metrics
    /// record one execution, because one happened.
    ///
    /// # Errors
    ///
    /// Propagates carrier execution failures. Per-member *shaping*
    /// failures (invalid query parameters) are returned in that
    /// member's slot without failing the batch.
    pub fn query_coalesced(
        &self,
        prepared: &PreparedGraph,
        spec: &Backend,
        queries: &[Query],
    ) -> Result<CoalescedOutcome> {
        if queries.is_empty() {
            return Ok(CoalescedOutcome { reports: Vec::new(), executions: 0, carrier: None });
        }
        let carrier = carrier_for(queries);
        let report = self.query(prepared, spec, &carrier)?;

        let support: Option<Vec<EdgeSupport>> = match &report.value {
            crate::query::QueryValue::EdgeSupport(list) => Some(list.clone()),
            _ => None,
        };
        let per_vertex: Vec<u64> = match (&report.value, &support) {
            (crate::query::QueryValue::PerVertex(pv), _) => pv.clone(),
            (_, Some(list)) => per_vertex_from_support(list, prepared.key().vertices),
            _ => Vec::new(),
        };
        // Degrees are re-read from the prepared DAG exactly as the
        // unbatched shaping path reads them, so clustering members stay
        // bit-identical regardless of which carrier ran.
        let degrees: Vec<u64> = if queries
            .iter()
            .any(|q| matches!(q, Query::LocalClustering { .. } | Query::GlobalClustering))
        {
            original_degrees(prepared)
        } else {
            Vec::new()
        };

        let reports = queries
            .iter()
            .map(|query| {
                let member_support = matches!(query, Query::EdgeSupport).then(|| {
                    support.clone().expect("edge-support carrier ran for this batch")
                });
                let value = shape_value(
                    query,
                    report.triangles,
                    &per_vertex,
                    &degrees,
                    member_support,
                )?;
                Ok(QueryReport { query: query.clone(), value, ..report.clone() })
            })
            .collect();
        Ok(CoalescedOutcome { reports, executions: 1, carrier: Some(carrier) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::TcimConfig;
    use tcim_graph::generators::{barabasi_albert, classic};

    fn pipeline() -> TcimPipeline {
        TcimPipeline::new(&TcimConfig::default()).unwrap()
    }

    #[test]
    fn carrier_ladder_picks_the_weakest_sufficient_shape() {
        assert_eq!(carrier_for(&[Query::TotalTriangles]), Query::TotalTriangles);
        assert_eq!(
            carrier_for(&[Query::TotalTriangles, Query::GlobalClustering]),
            Query::GlobalClustering
        );
        assert_eq!(
            carrier_for(&[Query::TotalTriangles, Query::TopKVertices { k: 2 }]),
            Query::PerVertexTriangles
        );
        assert_eq!(
            carrier_for(&[Query::PerVertexTriangles, Query::EdgeSupport]),
            Query::EdgeSupport
        );
    }

    #[test]
    fn coalesced_reports_are_bit_identical_to_one_at_a_time() {
        let p = pipeline();
        let g = barabasi_albert(160, 4, 11).unwrap();
        let prepared = p.prepare(&g);
        let suite = Query::example_suite();
        for backend in [Backend::SerialPim, Backend::CpuMerge, Backend::CpuForward] {
            let outcome = p.query_coalesced(&prepared, &backend, &suite).unwrap();
            assert_eq!(outcome.executions, 1);
            assert_eq!(outcome.carrier, Some(Query::EdgeSupport));
            for (query, coalesced) in suite.iter().zip(&outcome.reports) {
                let coalesced = coalesced.as_ref().unwrap();
                let solo = p.query(&prepared, &backend, query).unwrap();
                assert_eq!(coalesced.value, solo.value, "{backend:?} {query}");
                assert_eq!(coalesced.triangles, solo.triangles);
                assert_eq!(&coalesced.query, query);
            }
        }
    }

    #[test]
    fn count_only_batches_never_pay_for_attribution() {
        let p = pipeline();
        let prepared = p.prepare(&classic::complete(6));
        let outcome = p
            .query_coalesced(
                &prepared,
                &Backend::SerialPim,
                &[Query::TotalTriangles, Query::TotalTriangles],
            )
            .unwrap();
        assert_eq!(outcome.carrier, Some(Query::TotalTriangles));
        for report in &outcome.reports {
            assert_eq!(report.as_ref().unwrap().kernel.result_readouts, 0);
            assert_eq!(report.as_ref().unwrap().triangles, 20);
        }
    }

    #[test]
    fn member_failures_do_not_poison_batch_mates() {
        let p = pipeline();
        let prepared = p.prepare(&classic::fig2_example());
        let outcome = p
            .query_coalesced(
                &prepared,
                &Backend::SerialPim,
                &[Query::LocalClustering { vertices: Some(vec![999]) }, Query::TotalTriangles],
            )
            .unwrap();
        assert!(outcome.reports[0].is_err());
        assert_eq!(outcome.reports[1].as_ref().unwrap().triangles, 2);
    }

    #[test]
    fn empty_batches_execute_nothing() {
        let p = pipeline();
        let prepared = p.prepare(&classic::fig2_example());
        let outcome = p.query_coalesced(&prepared, &Backend::SerialPim, &[]).unwrap();
        assert_eq!(outcome.executions, 0);
        assert!(outcome.reports.is_empty());
        assert!(outcome.carrier.is_none());
    }

    #[test]
    fn per_vertex_recovered_from_support_matches_attribution() {
        let p = pipeline();
        let g = classic::wheel(9);
        let prepared = p.prepare(&g);
        let outcome = p
            .query_coalesced(
                &prepared,
                &Backend::CpuForward,
                &[Query::EdgeSupport, Query::PerVertexTriangles],
            )
            .unwrap();
        let solo =
            p.query(&prepared, &Backend::CpuForward, &Query::PerVertexTriangles).unwrap();
        assert_eq!(outcome.reports[1].as_ref().unwrap().value, solo.value);
    }
}
