//! Batched attributed dispatch: answer many compatible queries from
//! one execution.
//!
//! Every [`Query`] shape is a projection of the same underlying
//! triangle quantities — the global count, the per-vertex
//! participation vector, undirected degrees, and the per-edge support
//! list. A *batch* of queries against one prepared artifact therefore
//! never needs one kernel sweep per member: a single **carrier**
//! execution, chosen as the weakest query shape whose report recovers
//! every quantity any member needs, is run once and its attribution
//! fans out into each member's [`QueryReport`] through the shared
//! [`shape_value`] path.
//!
//! The carrier ladder, from strongest requirement down:
//!
//! | any member needs            | carrier                    |
//! |-----------------------------|----------------------------|
//! | the per-edge support list   | [`Query::EdgeSupport`]     |
//! | per-triangle attribution    | [`Query::PerVertexTriangles`] |
//! | degrees (global clustering) | [`Query::GlobalClustering`]|
//! | only the count              | [`Query::TotalTriangles`]  |
//!
//! Because the recovered quantities are exact integers (per-vertex
//! counts recovered from edge support via `Σ support(e ∋ v) / 2`,
//! degrees re-read from the prepared DAG exactly as the unbatched path
//! reads them), every shaped value is **bit-identical** to what a
//! one-at-a-time execution of the same member would have produced —
//! floating-point clustering coefficients included, since they are
//! computed from the same integer inputs by the same expressions.
//!
//! **Motif queries** are not projections of those quantities, so they
//! form their own coalescing classes alongside the classic carrier:
//! all [`Query::KTruss`] members share one decomposition run (the
//! value carries *every* edge's trussness, so members differing only
//! in `k` re-filter without re-peeling) and all [`Query::FourCliques`]
//! members share one chained-AND run. A mixed batch therefore performs
//! one execution per non-empty class — still far fewer than one per
//! member — and `carrier` reports the classic class's carrier shape.

use crate::backend::Backend;
use crate::error::Result;
use crate::pipeline::{PreparedGraph, TcimPipeline};
use crate::query::{
    original_degrees, shape_value, EdgeSupport, Query, QueryReport, QueryValue,
};

/// The outcome of answering a batch of queries through one carrier
/// execution: per-member reports (in input order) plus the execution
/// accounting that proves the coalescing happened.
#[derive(Debug)]
pub struct CoalescedOutcome {
    /// One report per input query, in input order. Individual members
    /// can fail shaping (an out-of-bounds local-clustering vertex)
    /// without failing their batch-mates.
    pub reports: Vec<Result<QueryReport>>,
    /// Executions actually performed: one per non-empty coalescing
    /// class (classic carrier, k-truss decomposition, 4-clique run),
    /// `0` for an empty batch. The saving is
    /// `queries answered − executions`.
    pub executions: u64,
    /// The carrier query shape of the *classic* class, when one ran
    /// (`None` for empty or motif-only batches).
    pub carrier: Option<Query>,
}

/// Picks the weakest carrier shape that recovers every quantity any
/// member of `queries` needs.
fn carrier_for(queries: &[Query]) -> Query {
    if queries.iter().any(|q| matches!(q, Query::EdgeSupport)) {
        Query::EdgeSupport
    } else if queries.iter().any(Query::needs_attribution) {
        Query::PerVertexTriangles
    } else if queries.iter().any(|q| matches!(q, Query::GlobalClustering)) {
        Query::GlobalClustering
    } else {
        Query::TotalTriangles
    }
}

/// Recovers the per-vertex participation vector from a complete
/// per-edge support list: every triangle through `v` has exactly two
/// edges incident to `v`, so `Σ support(e ∋ v) = 2 · triangles(v)`.
fn per_vertex_from_support(support: &[EdgeSupport], n: usize) -> Vec<u64> {
    let mut doubled = vec![0u64; n];
    for e in support {
        doubled[e.u as usize] += e.support;
        doubled[e.v as usize] += e.support;
    }
    for v in &mut doubled {
        *v /= 2;
    }
    doubled
}

impl TcimPipeline {
    /// Answers every query in `queries` over one prepared artifact on
    /// one backend with a **single** carrier execution, fanning the
    /// carrier's attribution out into per-member reports.
    ///
    /// Each member's report carries the carrier's execution envelope
    /// (backend label, kernel accounting, modelled cost, wall time) —
    /// the members shared that one run — with the member's own query
    /// and its bit-identical shaped value. Pipeline execution metrics
    /// record one execution, because one happened.
    ///
    /// # Errors
    ///
    /// Propagates carrier execution failures. Per-member *shaping*
    /// failures (invalid query parameters) are returned in that
    /// member's slot without failing the batch.
    pub fn query_coalesced(
        &self,
        prepared: &PreparedGraph,
        spec: &Backend,
        queries: &[Query],
    ) -> Result<CoalescedOutcome> {
        if queries.is_empty() {
            return Ok(CoalescedOutcome { reports: Vec::new(), executions: 0, carrier: None });
        }
        let mut slots: Vec<Option<Result<QueryReport>>> =
            queries.iter().map(|_| None).collect();
        let mut executions = 0u64;

        // The k-truss class: one decomposition answers every member —
        // the value carries the full trussness map, so members that
        // only differ in `k` re-filter the same edges.
        let ktruss: Vec<usize> = (0..queries.len())
            .filter(|&i| matches!(queries[i], Query::KTruss { .. }))
            .collect();
        if let Some(&first) = ktruss.first() {
            executions += 1;
            let base = self.query(prepared, spec, &queries[first])?;
            let edges = base
                .value
                .trussness()
                .expect("a k-truss query always yields a k-truss value")
                .to_vec();
            for &i in &ktruss {
                let Query::KTruss { k } = queries[i] else { unreachable!() };
                slots[i] = Some(Ok(QueryReport {
                    query: queries[i].clone(),
                    value: QueryValue::KTruss { k, edges: edges.clone() },
                    ..base.clone()
                }));
            }
        }

        // The 4-clique class: members are identical; run once, share.
        let cliques: Vec<usize> =
            (0..queries.len()).filter(|&i| matches!(queries[i], Query::FourCliques)).collect();
        if !cliques.is_empty() {
            executions += 1;
            let base = self.query(prepared, spec, &Query::FourCliques)?;
            for &i in &cliques {
                slots[i] = Some(Ok(base.clone()));
            }
        }

        // The classic class: one carrier execution, attribution fanned
        // out through the shared shaping path.
        let classic: Vec<(usize, &Query)> =
            queries.iter().enumerate().filter(|(_, q)| !q.is_motif()).collect();
        let mut carrier = None;
        if !classic.is_empty() {
            executions += 1;
            let members: Vec<Query> = classic.iter().map(|(_, q)| (*q).clone()).collect();
            let carrier_query = carrier_for(&members);
            let report = self.query(prepared, spec, &carrier_query)?;
            carrier = Some(carrier_query);

            let support: Option<Vec<EdgeSupport>> = match &report.value {
                QueryValue::EdgeSupport(list) => Some(list.clone()),
                _ => None,
            };
            let per_vertex: Vec<u64> = match (&report.value, &support) {
                (QueryValue::PerVertex(pv), _) => pv.clone(),
                (_, Some(list)) => per_vertex_from_support(list, prepared.key().vertices),
                _ => Vec::new(),
            };
            // Degrees are re-read from the prepared DAG exactly as the
            // unbatched shaping path reads them, so clustering members
            // stay bit-identical regardless of which carrier ran.
            let degrees: Vec<u64> = if members
                .iter()
                .any(|q| matches!(q, Query::LocalClustering { .. } | Query::GlobalClustering))
            {
                original_degrees(prepared)
            } else {
                Vec::new()
            };

            for (i, query) in classic {
                let member_support = matches!(query, Query::EdgeSupport).then(|| {
                    support.clone().expect("edge-support carrier ran for this batch")
                });
                slots[i] = Some(
                    shape_value(
                        query,
                        report.triangles,
                        &per_vertex,
                        &degrees,
                        member_support,
                    )
                    .map(|value| QueryReport {
                        query: query.clone(),
                        value,
                        ..report.clone()
                    }),
                );
            }
        }

        let reports = slots
            .into_iter()
            .map(|slot| slot.expect("every member belongs to exactly one class"))
            .collect();
        Ok(CoalescedOutcome { reports, executions, carrier })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::TcimConfig;
    use tcim_graph::generators::{barabasi_albert, classic};

    fn pipeline() -> TcimPipeline {
        TcimPipeline::new(&TcimConfig::default()).unwrap()
    }

    #[test]
    fn carrier_ladder_picks_the_weakest_sufficient_shape() {
        assert_eq!(carrier_for(&[Query::TotalTriangles]), Query::TotalTriangles);
        assert_eq!(
            carrier_for(&[Query::TotalTriangles, Query::GlobalClustering]),
            Query::GlobalClustering
        );
        assert_eq!(
            carrier_for(&[Query::TotalTriangles, Query::TopKVertices { k: 2 }]),
            Query::PerVertexTriangles
        );
        assert_eq!(
            carrier_for(&[Query::PerVertexTriangles, Query::EdgeSupport]),
            Query::EdgeSupport
        );
    }

    #[test]
    fn coalesced_reports_are_bit_identical_to_one_at_a_time() {
        let p = pipeline();
        let g = barabasi_albert(160, 4, 11).unwrap();
        let prepared = p.prepare(&g);
        let suite = Query::example_suite();
        for backend in [Backend::SerialPim, Backend::CpuMerge, Backend::CpuForward] {
            let outcome = p.query_coalesced(&prepared, &backend, &suite).unwrap();
            assert_eq!(outcome.executions, 1);
            assert_eq!(outcome.carrier, Some(Query::EdgeSupport));
            for (query, coalesced) in suite.iter().zip(&outcome.reports) {
                let coalesced = coalesced.as_ref().unwrap();
                let solo = p.query(&prepared, &backend, query).unwrap();
                assert_eq!(coalesced.value, solo.value, "{backend:?} {query}");
                assert_eq!(coalesced.triangles, solo.triangles);
                assert_eq!(&coalesced.query, query);
            }
        }
    }

    #[test]
    fn count_only_batches_never_pay_for_attribution() {
        let p = pipeline();
        let prepared = p.prepare(&classic::complete(6));
        let outcome = p
            .query_coalesced(
                &prepared,
                &Backend::SerialPim,
                &[Query::TotalTriangles, Query::TotalTriangles],
            )
            .unwrap();
        assert_eq!(outcome.carrier, Some(Query::TotalTriangles));
        for report in &outcome.reports {
            assert_eq!(report.as_ref().unwrap().kernel.result_readouts, 0);
            assert_eq!(report.as_ref().unwrap().triangles, 20);
        }
    }

    #[test]
    fn member_failures_do_not_poison_batch_mates() {
        let p = pipeline();
        let prepared = p.prepare(&classic::fig2_example());
        let outcome = p
            .query_coalesced(
                &prepared,
                &Backend::SerialPim,
                &[Query::LocalClustering { vertices: Some(vec![999]) }, Query::TotalTriangles],
            )
            .unwrap();
        assert!(outcome.reports[0].is_err());
        assert_eq!(outcome.reports[1].as_ref().unwrap().triangles, 2);
    }

    #[test]
    fn empty_batches_execute_nothing() {
        let p = pipeline();
        let prepared = p.prepare(&classic::fig2_example());
        let outcome = p.query_coalesced(&prepared, &Backend::SerialPim, &[]).unwrap();
        assert_eq!(outcome.executions, 0);
        assert!(outcome.reports.is_empty());
        assert!(outcome.carrier.is_none());
    }

    /// The k-truss class shares one decomposition across members that
    /// differ only in `k`, and a mixed batch pays one execution per
    /// non-empty class while staying bit-identical to solo serving.
    #[test]
    fn motif_classes_coalesce_without_changing_answers() {
        let p = pipeline();
        let g = barabasi_albert(120, 5, 3).unwrap();
        let prepared = p.prepare(&g);
        let batch = vec![
            Query::KTruss { k: 3 },
            Query::TotalTriangles,
            Query::FourCliques,
            Query::KTruss { k: 4 },
            Query::EdgeSupport,
        ];
        let outcome = p.query_coalesced(&prepared, &Backend::SerialPim, &batch).unwrap();
        // Three classes ran: classic carrier, k-truss, 4-clique.
        assert_eq!(outcome.executions, 3);
        assert_eq!(outcome.carrier, Some(Query::EdgeSupport));
        for (query, coalesced) in batch.iter().zip(&outcome.reports) {
            let coalesced = coalesced.as_ref().unwrap();
            let solo = p.query(&prepared, &Backend::SerialPim, query).unwrap();
            assert_eq!(coalesced.value, solo.value, "{query}");
            assert_eq!(&coalesced.query, query);
        }
        // Both k-truss members carry the same full decomposition with
        // their own k.
        let (t3, t4) =
            (outcome.reports[0].as_ref().unwrap(), outcome.reports[3].as_ref().unwrap());
        assert_eq!(t3.value.trussness(), t4.value.trussness());
        assert!(
            t3.value.truss_members().unwrap().len() >= t4.value.truss_members().unwrap().len()
        );
    }

    #[test]
    fn motif_only_batches_have_no_classic_carrier() {
        let p = pipeline();
        let prepared = p.prepare(&classic::wheel(10));
        let outcome = p
            .query_coalesced(
                &prepared,
                &Backend::CpuMerge,
                &[Query::KTruss { k: 3 }, Query::KTruss { k: 4 }],
            )
            .unwrap();
        assert_eq!(outcome.executions, 1);
        assert!(outcome.carrier.is_none());
        assert!(outcome.reports.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn per_vertex_recovered_from_support_matches_attribution() {
        let p = pipeline();
        let g = classic::wheel(9);
        let prepared = p.prepare(&g);
        let outcome = p
            .query_coalesced(
                &prepared,
                &Backend::CpuForward,
                &[Query::EdgeSupport, Query::PerVertexTriangles],
            )
            .unwrap();
        let solo =
            p.query(&prepared, &Backend::CpuForward, &Query::PerVertexTriangles).unwrap();
        assert_eq!(outcome.reports[1].as_ref().unwrap().value, solo.value);
    }
}
