//! Self-verification: run every counting path in the repository on one
//! graph and cross-check them — the one-call version of the repository's
//! verification strategy (DESIGN.md §7).
//!
//! Downstream users porting the crate to a new platform (or modifying
//! the device model) can call [`cross_check`] on their own graphs to
//! confirm the full stack still counts exactly.

use std::fmt;
use std::time::{Duration, Instant};

use tcim_bitmatrix::popcount::PopcountMethod;
use tcim_bitmatrix::SliceSize;
use tcim_graph::{CsrGraph, Orientation};

use crate::accelerator::{TcimAccelerator, TcimConfig};
use crate::baseline;
use crate::error::Result;
use crate::software::sliced_software_tc;

/// One path's verdict inside a [`CrossCheckReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathResult {
    /// Human-readable path name.
    pub name: &'static str,
    /// The count this path produced.
    pub triangles: u64,
    /// Wall-clock time of the path (host time; for the PIM path this is
    /// simulator time, not modelled accelerator time).
    pub elapsed: Duration,
}

/// Outcome of a full cross-check run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossCheckReport {
    /// Every path's count and timing.
    pub paths: Vec<PathResult>,
}

impl CrossCheckReport {
    /// Whether all paths agreed.
    pub fn consistent(&self) -> bool {
        self.paths.windows(2).all(|w| w[0].triangles == w[1].triangles)
    }

    /// The agreed count.
    ///
    /// # Panics
    ///
    /// Panics when the paths disagree — check [`CrossCheckReport::consistent`]
    /// first, or rely on [`cross_check`] which already did.
    pub fn triangles(&self) -> u64 {
        assert!(self.consistent(), "counting paths disagree: {self}");
        self.paths.first().map(|p| p.triangles).unwrap_or(0)
    }
}

impl fmt::Display for CrossCheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cross-check ({}):",
            if self.consistent() { "consistent" } else { "INCONSISTENT" }
        )?;
        for p in &self.paths {
            writeln!(
                f,
                "  {:<24} {:>12} triangles  ({:.3} ms)",
                p.name,
                p.triangles,
                p.elapsed.as_secs_f64() * 1e3
            )?;
        }
        Ok(())
    }
}

/// Runs five independent counting implementations on `g` and verifies
/// unanimity: hash-intersect, merge edge-iterator, the forward
/// algorithm, the sliced software path (LUT popcount, degeneracy
/// orientation), and the simulated PIM accelerator.
///
/// # Errors
///
/// Propagates characterization errors from the accelerator path. A count
/// *disagreement* is not an error — it is reported in the returned
/// struct so callers can inspect all values.
///
/// # Example
///
/// ```
/// use tcim_core::verify::cross_check;
/// use tcim_graph::generators::classic;
///
/// let report = cross_check(&classic::wheel(20))?;
/// assert!(report.consistent());
/// assert_eq!(report.triangles(), 19);
/// # Ok::<(), tcim_core::CoreError>(())
/// ```
pub fn cross_check(g: &CsrGraph) -> Result<CrossCheckReport> {
    let mut paths = Vec::with_capacity(5);
    let mut timed = |name: &'static str, count: &mut dyn FnMut() -> u64| {
        let start = Instant::now();
        let triangles = count();
        paths.push(PathResult { name, triangles, elapsed: start.elapsed() });
    };

    timed("hash-intersect", &mut || baseline::hash_intersect(g));
    timed("edge-iterator (merge)", &mut || baseline::edge_iterator_merge(g));
    timed("forward", &mut || baseline::forward(g));

    let start = Instant::now();
    let sw =
        sliced_software_tc(g, SliceSize::S64, Orientation::Degeneracy, PopcountMethod::Lut8)?;
    paths.push(PathResult {
        name: "sliced software (LUT)",
        triangles: sw.triangles,
        elapsed: start.elapsed(),
    });

    let accelerator = TcimAccelerator::new(&TcimConfig::default())?;
    let start = Instant::now();
    let report = accelerator.count_triangles(g);
    paths.push(PathResult {
        name: "TCIM (simulated)",
        triangles: report.triangles,
        elapsed: start.elapsed(),
    });

    Ok(CrossCheckReport { paths })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_graph::generators::{classic, gnm};

    #[test]
    fn fig2_cross_checks_to_two() {
        let report = cross_check(&classic::fig2_example()).unwrap();
        assert!(report.consistent());
        assert_eq!(report.triangles(), 2);
        assert_eq!(report.paths.len(), 5);
    }

    #[test]
    fn random_graph_cross_checks() {
        let report = cross_check(&gnm(300, 2000, 17).unwrap()).unwrap();
        assert!(report.consistent());
    }

    #[test]
    fn display_lists_every_path() {
        let report = cross_check(&classic::complete(8)).unwrap();
        let text = report.to_string();
        assert!(text.contains("consistent"));
        assert!(text.contains("forward"));
        assert!(text.contains("TCIM"));
    }

    #[test]
    fn empty_graph_reports_zero() {
        let g = CsrGraph::from_edges(0, []).unwrap();
        let report = cross_check(&g).unwrap();
        assert!(report.consistent());
        assert_eq!(report.triangles(), 0);
    }
}
