//! Self-verification: run every counting path in the repository on one
//! graph and cross-check them — the one-call version of the repository's
//! verification strategy (DESIGN.md §7).
//!
//! Since the staged-pipeline refactor this is backend-driven: one
//! [`PreparedGraph`](crate::PreparedGraph) is built and every
//! [`Backend`] in the default suite executes it, plus one
//! pipeline-independent reference (the graph-level hash-intersect
//! baseline) so a preparation bug cannot hide by corrupting every
//! backend identically.
//!
//! Downstream users porting the crate to a new platform (or modifying
//! the device model) can call [`cross_check`] on their own graphs to
//! confirm the full stack still counts exactly.

use std::fmt;
use std::time::{Duration, Instant};

use tcim_graph::CsrGraph;

use crate::accelerator::TcimConfig;
use crate::backend::Backend;
use crate::baseline;
use crate::error::Result;
use crate::pipeline::TcimPipeline;

/// One path's verdict inside a [`CrossCheckReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathResult {
    /// Human-readable path name.
    pub name: String,
    /// The count this path produced.
    pub triangles: u64,
    /// Wall-clock time of the path (host time; for the PIM paths this is
    /// simulator time, not modelled accelerator time).
    pub elapsed: Duration,
}

/// Outcome of a full cross-check run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossCheckReport {
    /// Every path's count and timing.
    pub paths: Vec<PathResult>,
}

impl CrossCheckReport {
    /// Whether all paths agreed.
    pub fn consistent(&self) -> bool {
        self.paths.windows(2).all(|w| w[0].triangles == w[1].triangles)
    }

    /// The agreed count.
    ///
    /// # Panics
    ///
    /// Panics when the paths disagree — check [`CrossCheckReport::consistent`]
    /// first, or rely on [`cross_check`] which already did.
    pub fn triangles(&self) -> u64 {
        assert!(self.consistent(), "counting paths disagree: {self}");
        self.paths.first().map(|p| p.triangles).unwrap_or(0)
    }
}

impl fmt::Display for CrossCheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cross-check ({}):",
            if self.consistent() { "consistent" } else { "INCONSISTENT" }
        )?;
        for p in &self.paths {
            writeln!(
                f,
                "  {:<28} {:>12} triangles  ({:.3} ms)",
                p.name,
                p.triangles,
                p.elapsed.as_secs_f64() * 1e3
            )?;
        }
        Ok(())
    }
}

/// Runs every backend of the default suite (CPU merge, CPU forward,
/// sliced software, serial PIM, scheduled multi-array PIM) plus the
/// LUT-popcount software variant over one prepared graph, plus the
/// pipeline-independent hash-intersect baseline, and verifies unanimity.
///
/// The pipeline prepares with **degeneracy** orientation so the
/// relabelling machinery is exercised too — the hash-intersect
/// reference never sees the relabelled graph, so an orientation bug
/// cannot cancel out.
///
/// # Errors
///
/// Propagates characterization and backend failures. A count
/// *disagreement* is not an error — it is reported in the returned
/// struct so callers can inspect all values.
///
/// # Example
///
/// ```
/// use tcim_core::verify::cross_check;
/// use tcim_graph::generators::classic;
///
/// let report = cross_check(&classic::wheel(20))?;
/// assert!(report.consistent());
/// assert_eq!(report.triangles(), 19);
/// # Ok::<(), tcim_core::CoreError>(())
/// ```
pub fn cross_check(g: &CsrGraph) -> Result<CrossCheckReport> {
    use tcim_bitmatrix::popcount::PopcountMethod;
    use tcim_graph::Orientation;

    let mut backends = Backend::default_suite();
    backends.push(Backend::Software(PopcountMethod::Lut8));
    let config = TcimConfig { orientation: Orientation::Degeneracy, ..TcimConfig::default() };
    cross_check_with(g, &config, &backends)
}

/// [`cross_check`] with an explicit configuration and backend list; the
/// hash-intersect reference is always prepended.
///
/// # Errors
///
/// As [`cross_check`].
pub fn cross_check_with(
    g: &CsrGraph,
    config: &TcimConfig,
    backends: &[Backend],
) -> Result<CrossCheckReport> {
    let mut paths = Vec::with_capacity(backends.len() + 1);

    // Pipeline-independent reference: counts on the raw graph, touching
    // neither orientation, slicing, nor any backend.
    let start = Instant::now();
    let reference = baseline::hash_intersect(g);
    paths.push(PathResult {
        name: "hash-intersect (reference)".to_string(),
        triangles: reference,
        elapsed: start.elapsed(),
    });

    let pipeline = TcimPipeline::new(config)?;
    let prepared = pipeline.prepare(g);
    for backend in backends {
        let report = pipeline.execute(&prepared, backend)?;
        paths.push(PathResult {
            name: report.backend,
            triangles: report.triangles,
            elapsed: report.execute_time,
        });
    }

    Ok(CrossCheckReport { paths })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_graph::generators::{classic, gnm};

    #[test]
    fn fig2_cross_checks_to_two() {
        let report = cross_check(&classic::fig2_example()).unwrap();
        assert!(report.consistent());
        assert_eq!(report.triangles(), 2);
        // The reference, the five default backends, and the LUT variant.
        assert_eq!(report.paths.len(), 7);
    }

    #[test]
    fn random_graph_cross_checks() {
        let report = cross_check(&gnm(300, 2000, 17).unwrap()).unwrap();
        assert!(report.consistent());
    }

    #[test]
    fn display_lists_every_path() {
        let report = cross_check(&classic::complete(8)).unwrap();
        let text = report.to_string();
        assert!(text.contains("consistent"));
        assert!(text.contains("cpu-forward"));
        assert!(text.contains("tcim-serial"));
        assert!(text.contains("tcim-sched"));
        assert!(text.contains("software-sliced[lut8]"));
        assert!(text.contains("hash-intersect"));
    }

    #[test]
    fn explicit_backend_selection_is_respected() {
        let report = cross_check_with(
            &classic::wheel(15),
            &TcimConfig::default(),
            &[Backend::CpuMerge],
        )
        .unwrap();
        assert_eq!(report.paths.len(), 2);
        assert_eq!(report.triangles(), 14);
    }

    #[test]
    fn empty_graph_reports_zero() {
        let g = CsrGraph::from_edges(0, []).unwrap();
        let report = cross_check(&g).unwrap();
        assert!(report.consistent());
        assert_eq!(report.triangles(), 0);
    }
}
