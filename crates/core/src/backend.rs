//! The unified execution layer: interchangeable query engines behind
//! one [`ExecutionBackend`] trait, selected by value via [`Backend`] and
//! all consuming the same [`PreparedGraph`] artifact.
//!
//! Since the typed-query redesign the trait answers [`Query`] values
//! rather than only counting: every backend implements two primitives —
//! [`execute`](ExecutionBackend::execute) (the global count, returned
//! as the legacy [`CountReport`]) and
//! [`execute_attributed`](ExecutionBackend::execute_attributed) (the
//! per-triangle attribution every richer query shape is derived from) —
//! and the provided [`query`](ExecutionBackend::query) method dispatches
//! a [`Query`] onto whichever primitive it needs. Swap the engine, keep
//! the call site *and* the question.

use std::fmt;
use std::time::{Duration, Instant};

use tcim_arch::{
    AccessStats, PimEngine, PimRunResult, SliceCostModel, TriangleSink, TriangleTally,
};
use tcim_bitmatrix::popcount::PopcountMethod;
use tcim_sched::{SchedPolicy, ScheduledReport, ScheduledRun};

use crate::error::{CoreError, Result};
use crate::motifs::{self, MotifFlavor, MotifPricing};
use crate::pipeline::PreparedGraph;
use crate::query::{self, KernelStats, Query, QueryReport};
use crate::sharded::{ShardPolicy, ShardProvenance, ShardedBackend};
use crate::software;

/// A query engine that executes prepared graphs.
///
/// Implementations must be *pure executors*: they consume the prepared
/// oriented/sliced artifacts as-is and never re-orient or re-slice —
/// that is the pipeline's preparation stage. All faithful backends
/// produce identical answers for every query shape (property-tested
/// across the repository).
pub trait ExecutionBackend {
    /// Human-readable backend name (stable per configuration).
    fn name(&self) -> String;

    /// Executes the global count over a prepared graph — the engine's
    /// cheap primitive (no AND-result readouts), equivalent to
    /// [`Query::TotalTriangles`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Pipeline`] when the artifact does not match
    /// the backend (wrong slice size), and propagates engine-specific
    /// failures (e.g. invalid scheduling policies).
    fn execute(&self, prepared: &PreparedGraph) -> Result<CountReport>;

    /// Executes with per-triangle attribution — the engine's rich
    /// primitive: besides counting, every triangle is attributed to its
    /// three vertices (and, when `need_support` is set, to its three
    /// edges). On the PIM backends this reads each non-zero AND result
    /// back out of the array, which the modelled costs include.
    ///
    /// # Errors
    ///
    /// As [`ExecutionBackend::execute`].
    fn execute_attributed(
        &self,
        prepared: &PreparedGraph,
        need_support: bool,
    ) -> Result<AttributedRun>;

    /// How this backend's motif engine intersects neighbourhoods:
    /// sliced AND+BitCount kernels by default; the CPU baselines
    /// override to sorted-list merges, preserving their "zero slice
    /// pairs" accounting invariant.
    fn motif_flavor(&self) -> MotifFlavor {
        MotifFlavor::Sliced
    }

    /// The cost model motif kernels are priced with, for
    /// simulated-hardware backends; `None` (the default) leaves the
    /// modelled time/energy of motif reports at the anchor run's.
    fn motif_pricing(&self) -> Option<MotifPricing> {
        None
    }

    /// Answers a typed query over a prepared graph, dispatching to the
    /// cheapest primitive that can answer it: count-only queries run
    /// [`execute`](ExecutionBackend::execute), everything else runs
    /// [`execute_attributed`](ExecutionBackend::execute_attributed).
    /// Motif queries ([`Query::is_motif`]) anchor on an attributed run
    /// and then hand over to the motif engine ([`crate::motifs`]),
    /// which peels / chains further kernels without ever re-slicing.
    ///
    /// # Errors
    ///
    /// As [`ExecutionBackend::execute`], plus [`CoreError::Query`] for
    /// invalid query parameters (e.g. out-of-bounds vertices).
    fn query(&self, prepared: &PreparedGraph, query: &Query) -> Result<QueryReport> {
        match query {
            // The k-truss peel seeds from the anchor run's edge
            // supports (the kernels EdgeSupport already runs).
            Query::KTruss { k } => {
                let run = self.execute_attributed(prepared, true)?;
                return motifs::ktruss_report(
                    prepared,
                    query,
                    run,
                    self.motif_flavor(),
                    self.motif_pricing(),
                    *k,
                );
            }
            // The 4-clique witness pass re-derives the triangle census
            // as a built-in cross-check against the anchor run.
            Query::FourCliques => {
                let run = self.execute_attributed(prepared, false)?;
                return motifs::four_clique_report(
                    prepared,
                    query,
                    run,
                    self.motif_flavor(),
                    self.motif_pricing(),
                );
            }
            _ => {}
        }
        if !query.needs_attribution() {
            let report = self.execute(prepared)?;
            let sharding = match &report.detail {
                BackendDetail::Sharded(provenance) => Some((**provenance).clone()),
                _ => None,
            };
            let value = query::shape_count(query, prepared, report.triangles);
            return Ok(QueryReport {
                backend: report.backend,
                query: query.clone(),
                value,
                triangles: report.triangles,
                execute_time: report.execute_time,
                modelled_time_s: report.modelled_time_s,
                modelled_energy_j: report.modelled_energy_j,
                kernel: report.kernel,
                compressed_bytes: prepared.slice_stats().compressed_bytes,
                sharding,
            });
        }
        let need_support = matches!(query, Query::EdgeSupport);
        let run = self.execute_attributed(prepared, need_support)?;
        let per_vertex = query::to_original_ids(prepared, &run.per_vertex);
        let sharding = run.sharding.clone();
        let value = query::shape_attributed(query, prepared, per_vertex, run.support)?;
        Ok(QueryReport {
            backend: run.backend,
            query: query.clone(),
            value,
            triangles: run.triangles,
            execute_time: run.execute_time,
            modelled_time_s: run.modelled_time_s,
            modelled_energy_j: run.modelled_energy_j,
            kernel: run.kernel,
            compressed_bytes: prepared.slice_stats().compressed_bytes,
            sharding,
        })
    }
}

/// The raw product of an attributed execution, in *matrix* id space
/// (the query layer maps ids back to the input graph).
#[derive(Debug, Clone)]
pub struct AttributedRun {
    /// Which backend produced this run.
    pub backend: String,
    /// Exact triangle count.
    pub triangles: u64,
    /// Triangles each matrix vertex participates in; sums to
    /// `3 × triangles`.
    pub per_vertex: Vec<u64>,
    /// Triangle support per DAG arc `(i, j)`, ascending, covering every
    /// arc in at least one triangle; present only when requested.
    pub support: Option<Vec<(u32, u32, u64)>>,
    /// Host wall-clock time of the execution stage.
    pub execute_time: Duration,
    /// Modelled accelerator latency (s), for simulated-hardware backends.
    pub modelled_time_s: Option<f64>,
    /// Modelled accelerator energy (J), for simulated-hardware backends.
    pub modelled_energy_j: Option<f64>,
    /// Normalized kernel accounting (includes the readouts).
    pub kernel: KernelStats,
    /// Shard-level provenance, carried only by sharded executions so
    /// every query shape (including the motif queries, which consume
    /// the run whole) reports it without a backend-specific override.
    pub sharding: Option<ShardProvenance>,
}

/// Backend-specific payload of a [`CountReport`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum BackendDetail {
    /// Full serial PIM simulation result.
    SerialPim(Box<PimRunResult>),
    /// Full scheduled multi-array report.
    ScheduledPim(Box<ScheduledReport>),
    /// Software slicing payload (work counters live in the shared
    /// [`CountReport::kernel`]).
    Software {
        /// The popcount kernel used.
        popcount: PopcountMethod,
    },
    /// CPU baselines carry no extra payload.
    Cpu,
    /// Sharded execution provenance: shard count, imbalance, boundary
    /// arcs, per-shard kernel accounting.
    Sharded(Box<ShardProvenance>),
}

/// The common result every backend returns.
#[derive(Debug, Clone)]
pub struct CountReport {
    /// Which backend produced this report.
    pub backend: String,
    /// Exact triangle count.
    pub triangles: u64,
    /// Host wall-clock time of the execution stage only (preparation is
    /// accounted on the [`PreparedGraph`]).
    pub execute_time: Duration,
    /// Modelled accelerator latency (s), for simulated-hardware backends.
    pub modelled_time_s: Option<f64>,
    /// Modelled accelerator energy (J), for simulated-hardware backends.
    pub modelled_energy_j: Option<f64>,
    /// Access statistics, for backends that simulate the data buffer.
    pub stats: Option<AccessStats>,
    /// Normalized kernel accounting, identical in meaning across
    /// backends (the serial and scheduled PIM paths report identical
    /// `slice_pairs`/`kernel_invocations` by construction).
    pub kernel: KernelStats,
    /// Backend-specific payload.
    pub detail: BackendDetail,
}

impl fmt::Display for CountReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:>12} triangles  ({:.3} ms host",
            self.backend,
            self.triangles,
            self.execute_time.as_secs_f64() * 1e3
        )?;
        if let Some(t) = self.modelled_time_s {
            write!(f, ", {t:.3e} s modelled")?;
        }
        write!(f, ")")
    }
}

/// Value-based backend selection: which engine to run, with its
/// engine-specific knobs. Resolved against a pipeline's characterized
/// engine via [`Backend::bind`] (or [`TcimPipeline::execute`]).
///
/// [`TcimPipeline::execute`]: crate::TcimPipeline::execute
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Backend {
    /// The serial processing-in-MRAM engine (`tcim-arch`).
    SerialPim,
    /// The multi-array scheduled PIM runtime (`tcim-sched`).
    ScheduledPim(SchedPolicy),
    /// The paper's "w/o PIM" column: the sliced dataflow in software.
    Software(PopcountMethod),
    /// CPU baseline: merge intersection over the oriented DAG.
    CpuMerge,
    /// CPU baseline: the forward algorithm over the oriented DAG.
    CpuForward,
    /// Sharded execution for graphs beyond one array's slice budget:
    /// per-shard scheduled PIM runs plus a cross-shard composition
    /// pass (`tcim-shard`). Unlike the other backends this one derives
    /// a [`ShardedPreparedGraph`](crate::ShardedPreparedGraph) from
    /// the prepared artifact (cached when bound through a
    /// [`TcimPipeline`](crate::TcimPipeline)).
    Sharded(ShardPolicy),
}

impl Backend {
    /// The backend's display label (matches [`ExecutionBackend::name`]).
    pub fn label(&self) -> String {
        match self {
            Backend::SerialPim => "tcim-serial".to_string(),
            Backend::ScheduledPim(policy) => {
                format!("tcim-sched[{}x {}]", policy.arrays, policy.placement)
            }
            Backend::Software(PopcountMethod::Native) => "software-sliced[native]".to_string(),
            Backend::Software(PopcountMethod::Lut8) => "software-sliced[lut8]".to_string(),
            Backend::CpuMerge => "cpu-merge".to_string(),
            Backend::CpuForward => "cpu-forward".to_string(),
            Backend::Sharded(policy) => {
                format!(
                    "tcim-shard[{} via tcim-sched[{}x {}]]",
                    policy.spec, policy.inner.arrays, policy.inner.placement
                )
            }
        }
    }

    /// One representative of every backend family — the suite
    /// verification and experiments iterate.
    pub fn default_suite() -> Vec<Backend> {
        vec![
            Backend::CpuMerge,
            Backend::CpuForward,
            Backend::Software(PopcountMethod::Native),
            Backend::SerialPim,
            Backend::ScheduledPim(SchedPolicy::with_arrays(4)),
        ]
    }

    /// Binds this selection to a characterized engine, yielding an
    /// executable backend. CPU and software backends ignore the engine.
    pub fn bind<'e>(&self, engine: &'e PimEngine) -> Box<dyn ExecutionBackend + 'e> {
        match self {
            Backend::SerialPim => Box::new(SerialPimBackend::new(engine)),
            Backend::ScheduledPim(policy) => {
                Box::new(ScheduledPimBackend::new(engine, policy.clone()))
            }
            Backend::Software(popcount) => Box::new(SoftwareBackend::new(*popcount)),
            Backend::CpuMerge => Box::new(CpuMergeBackend),
            Backend::CpuForward => Box::new(CpuForwardBackend),
            // Uncached: every execution builds its sharded artifact.
            // Pipelines bind through their `ShardedCache` instead
            // (`TcimPipeline::backend`).
            Backend::Sharded(policy) => Box::new(ShardedBackend::new(engine, policy.clone())),
        }
    }
}

/// The shared [`KernelStats`] mapping for engines that simulate the
/// array: one kernel dispatch per processed edge, one slice pair per
/// AND.
fn kernel_from_stats(stats: &AccessStats) -> KernelStats {
    KernelStats {
        kernel_invocations: stats.edges,
        slice_pairs: stats.and_ops,
        result_readouts: stats.result_readouts,
        blocks_skipped: stats.blocks_skipped,
    }
}

fn check_slice_size(
    backend: &str,
    engine: &PimEngine,
    prepared: &PreparedGraph,
) -> Result<()> {
    if prepared.slice_size() != engine.config().slice_size {
        return Err(CoreError::Pipeline {
            reason: format!(
                "{backend}: prepared with |S| = {} but the engine is characterized for |S| = {}",
                prepared.slice_size(),
                engine.config().slice_size
            ),
        });
    }
    Ok(())
}

/// Serial PIM execution over the prepared sliced matrix.
#[derive(Debug, Clone)]
pub struct SerialPimBackend<'e> {
    engine: &'e PimEngine,
}

impl<'e> SerialPimBackend<'e> {
    /// A serial backend running on `engine`.
    pub fn new(engine: &'e PimEngine) -> Self {
        SerialPimBackend { engine }
    }
}

impl ExecutionBackend for SerialPimBackend<'_> {
    fn name(&self) -> String {
        Backend::SerialPim.label()
    }

    fn execute(&self, prepared: &PreparedGraph) -> Result<CountReport> {
        check_slice_size(&self.name(), self.engine, prepared)?;
        let start = Instant::now();
        let sim = self.engine.run(prepared.matrix());
        Ok(CountReport {
            backend: self.name(),
            triangles: sim.triangles,
            execute_time: start.elapsed(),
            modelled_time_s: Some(sim.total_time_s()),
            modelled_energy_j: Some(sim.total_energy_j()),
            stats: Some(sim.stats),
            kernel: kernel_from_stats(&sim.stats),
            detail: BackendDetail::SerialPim(Box::new(sim)),
        })
    }

    fn execute_attributed(
        &self,
        prepared: &PreparedGraph,
        need_support: bool,
    ) -> Result<AttributedRun> {
        check_slice_size(&self.name(), self.engine, prepared)?;
        let start = Instant::now();
        let mut tally = TriangleTally::new(prepared.matrix().dim(), need_support);
        let sim = self.engine.run_attributed(prepared.matrix(), &mut tally);
        let (_, per_vertex, support) = tally.into_parts();
        Ok(AttributedRun {
            backend: self.name(),
            triangles: sim.triangles,
            per_vertex,
            support,
            execute_time: start.elapsed(),
            modelled_time_s: Some(sim.total_time_s()),
            modelled_energy_j: Some(sim.total_energy_j()),
            kernel: kernel_from_stats(&sim.stats),
            sharding: None,
        })
    }

    fn motif_pricing(&self) -> Option<MotifPricing> {
        // The serial engine runs every kernel on its one array.
        Some(MotifPricing::new(self.engine.cost_model(), SchedPolicy::with_arrays(1)))
    }
}

/// Scheduled multi-array PIM execution over the prepared sliced matrix.
///
/// The cost model is resolved once at construction and shared by every
/// plan/execute cycle ([`ScheduledRun::plan_with_costs`]).
#[derive(Debug, Clone)]
pub struct ScheduledPimBackend<'e> {
    engine: &'e PimEngine,
    policy: SchedPolicy,
    costs: SliceCostModel,
}

impl<'e> ScheduledPimBackend<'e> {
    /// A scheduled backend running `policy` on `engine`.
    pub fn new(engine: &'e PimEngine, policy: SchedPolicy) -> Self {
        let costs = engine.cost_model();
        ScheduledPimBackend { engine, policy, costs }
    }

    /// The scheduling policy this backend executes with.
    pub fn policy(&self) -> &SchedPolicy {
        &self.policy
    }
}

impl ExecutionBackend for ScheduledPimBackend<'_> {
    fn name(&self) -> String {
        Backend::ScheduledPim(self.policy.clone()).label()
    }

    fn execute(&self, prepared: &PreparedGraph) -> Result<CountReport> {
        let start = Instant::now();
        let report = ScheduledRun::plan_with_costs(
            self.engine,
            prepared.matrix(),
            &self.policy,
            self.costs,
        )?
        .execute();
        Ok(CountReport {
            backend: self.name(),
            triangles: report.triangles,
            execute_time: start.elapsed(),
            modelled_time_s: Some(report.critical_path_s),
            modelled_energy_j: Some(report.total_energy_j),
            stats: Some(report.stats),
            kernel: kernel_from_stats(&report.stats),
            detail: BackendDetail::ScheduledPim(Box::new(report)),
        })
    }

    fn execute_attributed(
        &self,
        prepared: &PreparedGraph,
        need_support: bool,
    ) -> Result<AttributedRun> {
        let start = Instant::now();
        let run = ScheduledRun::plan_with_costs(
            self.engine,
            prepared.matrix(),
            &self.policy,
            self.costs,
        )?
        .execute_attributed(need_support);
        Ok(AttributedRun {
            backend: self.name(),
            triangles: run.report.triangles,
            per_vertex: run.per_vertex,
            support: run.support,
            execute_time: start.elapsed(),
            modelled_time_s: Some(run.report.critical_path_s),
            modelled_energy_j: Some(run.report.total_energy_j),
            kernel: kernel_from_stats(&run.report.stats),
            sharding: None,
        })
    }

    fn motif_pricing(&self) -> Option<MotifPricing> {
        // Peel passes and chained-AND waves are placed across the same
        // arrays, under the same policy, as the triangle kernels.
        Some(MotifPricing::new(self.costs, self.policy.clone()))
    }
}

/// The sliced dataflow executed in software over the prepared matrix
/// (the paper's "This Work w/o PIM" column).
#[derive(Debug, Clone, Copy)]
pub struct SoftwareBackend {
    popcount: PopcountMethod,
}

impl SoftwareBackend {
    /// A software backend using `popcount` for bit counting.
    pub fn new(popcount: PopcountMethod) -> Self {
        SoftwareBackend { popcount }
    }
}

impl ExecutionBackend for SoftwareBackend {
    fn name(&self) -> String {
        Backend::Software(self.popcount).label()
    }

    fn execute(&self, prepared: &PreparedGraph) -> Result<CountReport> {
        let start = Instant::now();
        let run = software::sliced_count(prepared.matrix(), self.popcount);
        Ok(CountReport {
            backend: self.name(),
            triangles: run.triangles,
            execute_time: start.elapsed(),
            modelled_time_s: None,
            modelled_energy_j: None,
            stats: None,
            kernel: KernelStats {
                kernel_invocations: run.kernel_invocations,
                slice_pairs: run.slice_pairs,
                result_readouts: 0,
                blocks_skipped: run.blocks_skipped,
            },
            detail: BackendDetail::Software { popcount: self.popcount },
        })
    }

    fn execute_attributed(
        &self,
        prepared: &PreparedGraph,
        need_support: bool,
    ) -> Result<AttributedRun> {
        let start = Instant::now();
        let mut tally = TriangleTally::new(prepared.matrix().dim(), need_support);
        let run = software::sliced_count_attributed(prepared.matrix(), |i, j, w| {
            tally.triangle(i, j, w)
        });
        let (_, per_vertex, support) = tally.into_parts();
        Ok(AttributedRun {
            backend: self.name(),
            triangles: run.triangles,
            per_vertex,
            support,
            execute_time: start.elapsed(),
            modelled_time_s: None,
            modelled_energy_j: None,
            kernel: KernelStats {
                kernel_invocations: run.kernel_invocations,
                slice_pairs: run.slice_pairs,
                result_readouts: 0,
                blocks_skipped: run.blocks_skipped,
            },
            sharding: None,
        })
    }
}

/// Intersection size of two sorted slices (shared by the CPU backends).
fn merge_intersect_count(a: &[u32], b: &[u32]) -> u64 {
    let mut count = 0u64;
    merge_intersect_visit(a, b, |_| count += 1);
    count
}

/// Visits each common element of two sorted slices — the one
/// implementation of the two-pointer walk both CPU baselines build on.
fn merge_intersect_visit(a: &[u32], b: &[u32], mut visit: impl FnMut(u32)) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                visit(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// The CPU baselines' [`KernelStats`]: one per-edge intersection per
/// arc, no slicing, no readouts.
fn cpu_kernel(prepared: &PreparedGraph) -> KernelStats {
    KernelStats {
        kernel_invocations: prepared.oriented().arc_count() as u64,
        slice_pairs: 0,
        result_readouts: 0,
        blocks_skipped: 0,
    }
}

/// CPU merge-intersection baseline over the prepared DAG: for every arc
/// `(i, j)`, count the common out-neighbours of `i` and `j`. Under any
/// acyclic orientation each triangle has exactly one vertex with arcs to
/// the other two, so the per-arc intersections sum to the triangle count
/// without division.
#[derive(Debug, Clone, Copy)]
pub struct CpuMergeBackend;

impl ExecutionBackend for CpuMergeBackend {
    fn name(&self) -> String {
        Backend::CpuMerge.label()
    }

    fn execute(&self, prepared: &PreparedGraph) -> Result<CountReport> {
        let start = Instant::now();
        let dag = prepared.oriented();
        let mut triangles = 0u64;
        for (i, j) in dag.arcs() {
            triangles += merge_intersect_count(dag.row(i), dag.row(j));
        }
        Ok(CountReport {
            backend: self.name(),
            triangles,
            execute_time: start.elapsed(),
            modelled_time_s: None,
            modelled_energy_j: None,
            stats: None,
            kernel: cpu_kernel(prepared),
            detail: BackendDetail::Cpu,
        })
    }

    fn execute_attributed(
        &self,
        prepared: &PreparedGraph,
        need_support: bool,
    ) -> Result<AttributedRun> {
        let start = Instant::now();
        let dag = prepared.oriented();
        let mut tally = TriangleTally::new(dag.vertex_count(), need_support);
        for (i, j) in dag.arcs() {
            merge_intersect_visit(dag.row(i), dag.row(j), |w| tally.triangle(i, j, w));
        }
        let (triangles, per_vertex, support) = tally.into_parts();
        Ok(AttributedRun {
            backend: self.name(),
            triangles,
            per_vertex,
            support,
            execute_time: start.elapsed(),
            modelled_time_s: None,
            modelled_energy_j: None,
            kernel: cpu_kernel(prepared),
            sharding: None,
        })
    }

    fn motif_flavor(&self) -> MotifFlavor {
        MotifFlavor::Adjacency
    }
}

/// CPU forward-algorithm baseline (Schank & Wagner) over the prepared
/// DAG: processing vertices in id order, intersect the dynamically grown
/// predecessor sets `A[i] ∩ A[j]` per arc `(i, j)`, then append `i` to
/// `A[j]`. Exact for any topologically ordered DAG, which every
/// [`Orientation`](tcim_graph::Orientation) produces.
#[derive(Debug, Clone, Copy)]
pub struct CpuForwardBackend;

impl ExecutionBackend for CpuForwardBackend {
    fn name(&self) -> String {
        Backend::CpuForward.label()
    }

    fn execute(&self, prepared: &PreparedGraph) -> Result<CountReport> {
        let start = Instant::now();
        let dag = prepared.oriented();
        let n = dag.vertex_count();
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut triangles = 0u64;
        for i in 0..n as u32 {
            for &j in dag.row(i) {
                triangles += merge_intersect_count(&preds[i as usize], &preds[j as usize]);
                // Predecessors arrive in ascending i, so lists stay sorted.
                preds[j as usize].push(i);
            }
        }
        Ok(CountReport {
            backend: self.name(),
            triangles,
            execute_time: start.elapsed(),
            modelled_time_s: None,
            modelled_energy_j: None,
            stats: None,
            kernel: cpu_kernel(prepared),
            detail: BackendDetail::Cpu,
        })
    }

    fn execute_attributed(
        &self,
        prepared: &PreparedGraph,
        need_support: bool,
    ) -> Result<AttributedRun> {
        let start = Instant::now();
        let dag = prepared.oriented();
        let n = dag.vertex_count();
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut tally = TriangleTally::new(n, need_support);
        for i in 0..n as u32 {
            for &j in dag.row(i) {
                // A common predecessor w closes the triangle {w, i, j},
                // whose arcs are (w, i), (w, j) and (i, j).
                merge_intersect_visit(&preds[i as usize], &preds[j as usize], |w| {
                    tally.triangle(w, i, j);
                });
                preds[j as usize].push(i);
            }
        }
        let (triangles, per_vertex, support) = tally.into_parts();
        Ok(AttributedRun {
            backend: self.name(),
            triangles,
            per_vertex,
            support,
            execute_time: start.elapsed(),
            modelled_time_s: None,
            modelled_energy_j: None,
            kernel: cpu_kernel(prepared),
            sharding: None,
        })
    }

    fn motif_flavor(&self) -> MotifFlavor {
        MotifFlavor::Adjacency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::TcimConfig;
    use crate::baseline;
    use crate::pipeline::TcimPipeline;
    use tcim_bitmatrix::SliceSize;
    use tcim_graph::generators::{classic, gnm};
    use tcim_graph::Orientation;

    fn pipeline() -> TcimPipeline {
        TcimPipeline::new(&TcimConfig::default()).unwrap()
    }

    #[test]
    fn every_backend_counts_fig2() {
        let p = pipeline();
        let prepared = p.prepare(&classic::fig2_example());
        for spec in Backend::default_suite() {
            let report = p.execute(&prepared, &spec).unwrap();
            assert_eq!(report.triangles, 2, "{}", spec.label());
            assert_eq!(report.backend, spec.label());
        }
    }

    #[test]
    fn backends_agree_with_the_graph_level_baseline() {
        let g = gnm(300, 2100, 5).unwrap();
        let expected = baseline::edge_iterator_merge(&g);
        for orientation in [Orientation::Natural, Orientation::Degree, Orientation::Degeneracy]
        {
            let p = TcimPipeline::new(&TcimConfig { orientation, ..TcimConfig::default() })
                .unwrap();
            let prepared = p.prepare(&g);
            for spec in Backend::default_suite() {
                let report = p.execute(&prepared, &spec).unwrap();
                assert_eq!(report.triangles, expected, "{orientation:?} {}", spec.label());
            }
        }
    }

    #[test]
    fn pim_backends_carry_modelled_costs_and_stats() {
        let p = pipeline();
        let prepared = p.prepare(&gnm(150, 900, 2).unwrap());
        for spec in [Backend::SerialPim, Backend::ScheduledPim(SchedPolicy::with_arrays(2))] {
            let report = p.execute(&prepared, &spec).unwrap();
            assert!(report.modelled_time_s.unwrap() > 0.0, "{}", spec.label());
            assert!(report.modelled_energy_j.unwrap() > 0.0, "{}", spec.label());
            let stats = report.stats.unwrap();
            assert_eq!(stats.edges as usize, prepared.matrix().edge_count());
            assert_eq!(stats.and_ops, prepared.pricing().slice_pairs);
        }
        let sw = p.execute(&prepared, &Backend::Software(PopcountMethod::Lut8)).unwrap();
        assert!(sw.modelled_time_s.is_none());
        assert!(matches!(
            sw.detail,
            BackendDetail::Software { popcount: PopcountMethod::Lut8 }
        ));
        assert_eq!(sw.kernel.slice_pairs, prepared.pricing().slice_pairs);
    }

    /// Satellite regression: the normalized `KernelStats` report the
    /// identical work for the serial and scheduled PIM paths, and the
    /// software path's pair count matches them too.
    #[test]
    fn kernel_stats_are_identical_across_faithful_backends() {
        let p = pipeline();
        let prepared = p.prepare(&gnm(220, 1600, 13).unwrap());
        let serial = p.execute(&prepared, &Backend::SerialPim).unwrap().kernel;
        for arrays in [1usize, 2, 4, 8] {
            let sched = p
                .execute(&prepared, &Backend::ScheduledPim(SchedPolicy::with_arrays(arrays)))
                .unwrap()
                .kernel;
            assert_eq!(sched, serial, "{arrays} arrays");
        }
        let sw = p.execute(&prepared, &Backend::Software(PopcountMethod::Native)).unwrap();
        assert_eq!(sw.kernel.slice_pairs, serial.slice_pairs);
        assert_eq!(sw.kernel.kernel_invocations, serial.kernel_invocations);
        // CPU baselines dispatch per arc but process no slices.
        let cpu = p.execute(&prepared, &Backend::CpuMerge).unwrap().kernel;
        assert_eq!(cpu.kernel_invocations, serial.kernel_invocations);
        assert_eq!(cpu.slice_pairs, 0);
    }

    #[test]
    fn slice_size_mismatch_is_a_pipeline_error() {
        let p = pipeline();
        // Prepare with a *different* slice size than the engine's.
        let g = classic::wheel(20);
        let prepared = crate::pipeline::PreparedGraph::build(
            &g,
            Orientation::Natural,
            SliceSize::S32,
            tcim_bitmatrix::EncodingPolicy::default(),
            p.engine(),
        );
        let err = p.execute(&prepared, &Backend::SerialPim).unwrap_err();
        assert!(matches!(err, CoreError::Pipeline { .. }), "{err}");
        // Scheduled PIM reports the same mismatch through sched's error.
        assert!(p.execute(&prepared, &Backend::ScheduledPim(SchedPolicy::default())).is_err());
        // Backends that do not touch the engine still run.
        assert_eq!(p.execute(&prepared, &Backend::CpuMerge).unwrap().triangles, 19);
    }

    #[test]
    fn invalid_policy_propagates() {
        let p = pipeline();
        let prepared = p.prepare(&classic::wheel(8));
        let err = p
            .execute(&prepared, &Backend::ScheduledPim(SchedPolicy::with_arrays(0)))
            .unwrap_err();
        assert!(matches!(err, CoreError::Sched(_)));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Backend::SerialPim.label(), "tcim-serial");
        assert_eq!(Backend::CpuMerge.label(), "cpu-merge");
        assert_eq!(Backend::CpuForward.label(), "cpu-forward");
        assert_eq!(Backend::Software(PopcountMethod::Lut8).label(), "software-sliced[lut8]");
        assert_eq!(
            Backend::ScheduledPim(SchedPolicy::with_arrays(4)).label(),
            "tcim-sched[4x load-balanced]"
        );
    }

    #[test]
    fn report_display_is_informative() {
        let p = pipeline();
        let prepared = p.prepare(&classic::fig2_example());
        let report = p.execute(&prepared, &Backend::SerialPim).unwrap();
        let text = report.to_string();
        assert!(text.contains("tcim-serial"));
        assert!(text.contains("2 triangles"));
        assert!(text.contains("modelled"));
    }
}
