//! Structured ablation drivers for the design choices DESIGN.md §5
//! calls out.
//!
//! The `tcim-bench` ablation binaries print these results; keeping the
//! logic here means the *findings* (e.g. "degree ordering raises the
//! column hit rate on collaboration graphs") are assertable in the test
//! suite rather than living only in harness stdout.

use tcim_arch::sweep::{capacity_sweep, policy_sweep, SweepPoint};
use tcim_arch::PimConfig;
use tcim_bitmatrix::{SliceSize, SlicedMatrix};
use tcim_graph::{CsrGraph, Orientation};

use crate::accelerator::{TcimAccelerator, TcimConfig};
use crate::error::Result;

/// One point of the orientation ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrientationPoint {
    /// The orientation used.
    pub orientation: Orientation,
    /// AND operations issued (valid slice pairs).
    pub and_ops: u64,
    /// Column-slice hit rate.
    pub hit_rate: f64,
    /// Valid-slice fraction of the compressed matrix.
    pub valid_fraction: f64,
    /// Triangles (must be invariant across points).
    pub triangles: u64,
}

/// Runs the orientation ablation on one graph with paper-default PIM
/// settings.
///
/// # Errors
///
/// Propagates accelerator characterization failures.
///
/// # Panics
///
/// Panics if two orientations disagree on the count — that would be a
/// correctness bug, not an ablation result.
pub fn orientation_ablation(g: &CsrGraph) -> Result<Vec<OrientationPoint>> {
    let mut points = Vec::with_capacity(3);
    let mut reference: Option<u64> = None;
    for orientation in [Orientation::Natural, Orientation::Degree, Orientation::Degeneracy] {
        let acc = TcimAccelerator::new(&TcimConfig { orientation, ..TcimConfig::default() })?;
        let report = acc.count_triangles(g);
        match reference {
            None => reference = Some(report.triangles),
            Some(r) => assert_eq!(r, report.triangles, "orientation changed the count"),
        }
        points.push(OrientationPoint {
            orientation,
            and_ops: report.sim.stats.and_ops,
            hit_rate: report.sim.stats.hit_rate(),
            valid_fraction: report.slice_stats.valid_fraction(),
            triangles: report.triangles,
        });
    }
    Ok(points)
}

/// One point of the slice-size ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceSizePoint {
    /// The slice size used.
    pub slice_size: SliceSize,
    /// Compressed bytes of the sliced matrix.
    pub compressed_bytes: u64,
    /// AND operations issued.
    pub and_ops: u64,
    /// Simulated runtime (s).
    pub time_s: f64,
    /// Triangles (invariant).
    pub triangles: u64,
}

/// Runs the |S| ablation on one graph.
///
/// # Errors
///
/// Propagates accelerator characterization failures.
///
/// # Panics
///
/// Panics if two slice sizes disagree on the count.
pub fn slice_size_ablation(g: &CsrGraph) -> Result<Vec<SliceSizePoint>> {
    let mut points = Vec::with_capacity(SliceSize::ALL.len());
    let mut reference: Option<u64> = None;
    for slice_size in SliceSize::ALL {
        let config = TcimConfig {
            pim: PimConfig { slice_size, ..PimConfig::default() },
            ..TcimConfig::default()
        };
        let report = TcimAccelerator::new(&config)?.count_triangles(g);
        match reference {
            None => reference = Some(report.triangles),
            Some(r) => assert_eq!(r, report.triangles, "slice size changed the count"),
        }
        points.push(SliceSizePoint {
            slice_size,
            compressed_bytes: report.slice_stats.compressed_bytes,
            and_ops: report.sim.stats.and_ops,
            time_s: report.sim.total_time_s(),
            triangles: report.triangles,
        });
    }
    Ok(points)
}

/// Runs the replacement-policy ablation (LRU/FIFO/Random at a fixed
/// capacity) over one graph, via the arch-level sweep API.
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn replacement_ablation(g: &CsrGraph, capacity_slices: usize) -> Result<Vec<SweepPoint>> {
    let oriented = Orientation::Natural.orient(g);
    let matrix =
        SlicedMatrix::from_adjacency(oriented.rows(), PimConfig::default().slice_size)?;
    Ok(policy_sweep(&PimConfig::default(), &matrix, capacity_slices)?)
}

/// Runs the buffer-capacity ablation over one graph.
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn capacity_ablation(g: &CsrGraph, capacities: &[usize]) -> Result<Vec<SweepPoint>> {
    let oriented = Orientation::Natural.orient(g);
    let matrix =
        SlicedMatrix::from_adjacency(oriented.rows(), PimConfig::default().slice_size)?;
    Ok(capacity_sweep(&PimConfig::default(), &matrix, capacities)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_arch::ReplacementPolicy;
    use tcim_graph::datasets::Dataset;

    fn dblp_standin() -> CsrGraph {
        Dataset::by_name("com-dblp").unwrap().synthesize(0.01, 42).unwrap()
    }

    fn road_standin() -> CsrGraph {
        Dataset::by_name("roadnet-pa").unwrap().synthesize(0.01, 42).unwrap()
    }

    #[test]
    fn degree_order_beats_natural_hit_rate_on_collaboration_graphs() {
        // The finding recorded in EXPERIMENTS.md: degree ordering lifts
        // the column-slice hit rate substantially on community graphs.
        let points = orientation_ablation(&dblp_standin()).unwrap();
        let natural = points.iter().find(|p| p.orientation == Orientation::Natural).unwrap();
        let degree = points.iter().find(|p| p.orientation == Orientation::Degree).unwrap();
        assert!(
            degree.hit_rate > natural.hit_rate,
            "degree {} vs natural {}",
            degree.hit_rate,
            natural.hit_rate
        );
    }

    #[test]
    fn slice_size_64_is_near_the_byte_size_knee_for_road_graphs() {
        // |S| = 64 must not be beaten by more than ~15 % by any other
        // size on a road-style graph — the reason the paper fixed it.
        let points = slice_size_ablation(&road_standin()).unwrap();
        let at_64 = points.iter().find(|p| p.slice_size == SliceSize::S64).unwrap();
        let best = points.iter().map(|p| p.compressed_bytes).min().unwrap();
        assert!(
            (at_64.compressed_bytes as f64) < 2.0 * best as f64,
            "64b {} vs best {}",
            at_64.compressed_bytes,
            best
        );
    }

    #[test]
    fn lru_never_loses_to_random_under_pressure() {
        let points = replacement_ablation(&road_standin(), 200).unwrap();
        let hit = |p: ReplacementPolicy| {
            points.iter().find(|x| x.policy == p).unwrap().stats.hit_rate()
        };
        assert!(hit(ReplacementPolicy::Lru) >= hit(ReplacementPolicy::Random));
    }

    #[test]
    fn capacity_ablation_converts_hits_to_exchanges() {
        let points = capacity_ablation(&road_standin(), &[100_000, 100]).unwrap();
        assert!(points[0].stats.col_exchanges <= points[1].stats.col_exchanges);
        assert!(points[0].stats.hit_rate() >= points[1].stats.hit_rate());
    }
}
