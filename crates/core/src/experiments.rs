//! Drivers that regenerate every table and figure of the paper's §V.
//!
//! Each function returns structured rows (so tests can assert on shapes)
//! and implements `Display` on its report type (so the `tcim-bench`
//! harness binaries print paper-style tables). All experiments run on the
//! synthetic Table II stand-ins at a configurable [`ExperimentScale`];
//! `scale = 1.0` reproduces the published graph sizes.

use std::fmt;
use std::time::Instant;

use tcim_arch::PimConfig;
use tcim_bitmatrix::popcount::PopcountMethod;
use tcim_bitmatrix::SliceSize;
use tcim_graph::datasets::{Dataset, TABLE_II};
use tcim_graph::{CsrGraph, Orientation};
use tcim_mtj::llg::LlgSolver;
use tcim_mtj::sense::SenseAmp;
use tcim_mtj::{MtjCell, MtjParams};

use crate::accelerator::TcimConfig;
use crate::backend::Backend;
use crate::baseline;
use crate::error::Result;
use crate::pipeline::TcimPipeline;
use crate::reported::{self, PaperRow};

/// Scale factor and seed shared by every dataset-driven experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Fraction of the published graph size (1.0 = full size).
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale { scale: 0.02, seed: 42 }
    }
}

impl ExperimentScale {
    /// Full published size.
    pub fn full() -> Self {
        ExperimentScale { scale: 1.0, seed: 42 }
    }

    fn synthesize(&self, d: &Dataset) -> Result<CsrGraph> {
        Ok(d.synthesize(self.scale, self.seed)?)
    }

    /// A PIM configuration whose data-buffer capacity is scaled with the
    /// graphs, so cache pressure (Fig. 5 exchanges) reproduces at reduced
    /// scale. At `scale = 1.0` this is exactly the paper's 16 MB buffer.
    pub fn scaled_pim_config(&self) -> PimConfig {
        let mut pim = PimConfig::default();
        if self.scale < 1.0 {
            let full = 16.0 * 1024.0 * 1024.0 / 12.0; // slices in 16 MiB
            pim.capacity_slices_override = Some(((full * self.scale) as usize).max(16));
        }
        pim
    }
}

// ---------------------------------------------------------------------
// Table I — device characterization
// ---------------------------------------------------------------------

/// Regenerated Table I: the input parameters plus the derived device
/// quantities the co-simulation produces from them.
#[derive(Debug, Clone)]
pub struct Table1Report {
    /// The Table I inputs.
    pub params: MtjParams,
    /// Characterized cell (resistances, currents, latencies).
    pub cell: MtjCell,
    /// Thermal stability factor Δ.
    pub thermal_stability: f64,
    /// AND sense margin at the nominal corner (A).
    pub and_margin_a: f64,
    /// READ sense margin at the nominal corner (A).
    pub read_margin_a: f64,
}

/// Runs the device-level co-simulation with Table I parameters.
///
/// # Errors
///
/// Propagates device characterization failures (cannot occur for the
/// published parameter set).
pub fn table1() -> Result<Table1Report> {
    let params = MtjParams::table_i();
    let cell = MtjCell::characterize(&params).map_err(tcim_arch::ArchError::from)?;
    let solver = LlgSolver::new(&params).map_err(tcim_arch::ArchError::from)?;
    let sa = SenseAmp::from_cell(&cell);
    Ok(Table1Report {
        thermal_stability: solver.thermal_stability(),
        and_margin_a: sa.and_margin().margin_a,
        read_margin_a: sa.read_margin().margin_a,
        params,
        cell,
    })
}

impl fmt::Display for Table1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table I: key parameters for MTJ simulation (inputs)")?;
        writeln!(f, "  MTJ surface length            {} nm", self.params.surface_length_nm)?;
        writeln!(f, "  MTJ surface width             {} nm", self.params.surface_width_nm)?;
        writeln!(f, "  Spin Hall angle               {}", self.params.spin_hall_angle)?;
        writeln!(
            f,
            "  RA product                    {:.0e} Ω·m²",
            self.params.ra_product_ohm_m2
        )?;
        writeln!(f, "  Oxide barrier thickness       {} nm", self.params.oxide_thickness_nm)?;
        writeln!(f, "  TMR                           {:.0} %", self.params.tmr * 100.0)?;
        writeln!(
            f,
            "  Saturation field              {:.0e} A/m",
            self.params.saturation_magnetization_a_per_m
        )?;
        writeln!(f, "  Gilbert damping               {}", self.params.gilbert_damping)?;
        writeln!(
            f,
            "  Perpendicular anisotropy      {:.1e} A/m",
            self.params.anisotropy_field_a_per_m
        )?;
        writeln!(f, "  Temperature                   {} K", self.params.temperature_k)?;
        writeln!(f, "Derived by the device co-simulation (Brinkman + LLG):")?;
        writeln!(
            f,
            "  R_P / R_AP                    {:.0} Ω / {:.0} Ω",
            self.cell.r_p_ohm, self.cell.r_ap_ohm
        )?;
        writeln!(
            f,
            "  critical current I_c0         {:.1} µA",
            self.cell.critical_current_a * 1e6
        )?;
        writeln!(
            f,
            "  write latency (worst dir.)    {:.2} ns",
            self.cell.write_latency_s * 1e9
        )?;
        writeln!(
            f,
            "  write energy per bit          {:.1} fJ",
            self.cell.write_energy_j * 1e15
        )?;
        writeln!(f, "  thermal stability Δ           {:.0}", self.thermal_stability)?;
        writeln!(
            f,
            "  READ / AND sense margin       {:.1} µA / {:.1} µA",
            self.read_margin_a * 1e6,
            self.and_margin_a * 1e6
        )
    }
}

// ---------------------------------------------------------------------
// Table II — dataset inventory
// ---------------------------------------------------------------------

/// One regenerated Table II row: published vs. synthetic stand-in.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// The catalog entry (published |V|, |E|, triangles).
    pub dataset: &'static Dataset,
    /// Stand-in vertex count at this scale.
    pub vertices: usize,
    /// Stand-in edge count at this scale.
    pub edges: usize,
    /// Stand-in triangle count, measured with the forward algorithm.
    pub triangles: u64,
}

/// Regenerated Table II over all nine datasets.
#[derive(Debug, Clone)]
pub struct Table2Report {
    /// The scale the stand-ins were generated at.
    pub scale: ExperimentScale,
    /// One row per dataset, paper order.
    pub rows: Vec<Table2Row>,
}

/// Synthesizes every Table II stand-in and measures its triangles.
///
/// # Errors
///
/// Propagates generator failures (cannot occur for catalog entries).
pub fn table2(scale: ExperimentScale) -> Result<Table2Report> {
    let mut rows = Vec::with_capacity(TABLE_II.len());
    for d in &TABLE_II {
        let g = scale.synthesize(d)?;
        rows.push(Table2Row {
            dataset: d,
            vertices: g.vertex_count(),
            edges: g.edge_count(),
            triangles: baseline::forward(&g),
        });
    }
    Ok(Table2Report { scale, rows })
}

impl fmt::Display for Table2Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table II: selected graph dataset (synthetic stand-ins at scale {})",
            self.scale.scale
        )?;
        writeln!(
            f,
            "{:<14} {:>10} {:>10} {:>12} | {:>10} {:>10} {:>12}",
            "dataset",
            "|V| paper",
            "|E| paper",
            "tri paper",
            "|V| ours",
            "|E| ours",
            "tri ours"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>10} {:>10} {:>12} | {:>10} {:>10} {:>12}",
                r.dataset.name,
                r.dataset.vertices,
                r.dataset.edges,
                r.dataset.triangles,
                r.vertices,
                r.edges,
                r.triangles
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Tables III & IV — slicing statistics
// ---------------------------------------------------------------------

/// One slicing-statistics row (Table III size + Table IV percentage).
#[derive(Debug, Clone, Copy)]
pub struct SlicingRow {
    /// The catalog entry.
    pub dataset: &'static Dataset,
    /// Paper's Table III valid-slice data size (MB, full-size graph).
    pub paper_mb: f64,
    /// Our measured compressed size at this scale (MiB).
    pub measured_mib: f64,
    /// Paper's Table IV valid-slice percentage.
    pub paper_valid_pct: f64,
    /// Our measured valid-slice percentage.
    pub measured_valid_pct: f64,
}

/// Regenerated Tables III and IV.
#[derive(Debug, Clone)]
pub struct SlicingReport {
    /// Generation scale.
    pub scale: ExperimentScale,
    /// One row per dataset, paper order.
    pub rows: Vec<SlicingRow>,
}

/// Measures valid-slice data size (Table III) and valid-slice percentage
/// (Table IV) on every stand-in.
///
/// # Errors
///
/// Propagates generator and slicing failures.
pub fn tables3_and_4(scale: ExperimentScale) -> Result<SlicingReport> {
    let mut rows = Vec::with_capacity(TABLE_II.len());
    for d in &TABLE_II {
        let g = scale.synthesize(d)?;
        let oriented = Orientation::Natural.orient(&g);
        let matrix =
            tcim_bitmatrix::SlicedMatrix::from_adjacency(oriented.rows(), SliceSize::S64)?;
        let stats = matrix.stats();
        let paper = reported::paper_row(d.name).expect("every dataset has a paper row");
        rows.push(SlicingRow {
            dataset: d,
            paper_mb: paper.valid_slice_mb,
            measured_mib: stats.compressed_mib(),
            paper_valid_pct: paper.valid_slice_pct,
            measured_valid_pct: 100.0 * stats.valid_fraction(),
        });
    }
    Ok(SlicingReport { scale, rows })
}

impl fmt::Display for SlicingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Tables III & IV: valid slice data size and percentage (|S| = 64, scale {})",
            self.scale.scale
        )?;
        writeln!(
            f,
            "{:<14} {:>12} {:>12} | {:>12} {:>12}",
            "dataset", "MB (paper)", "MiB (ours)", "% (paper)", "% (ours)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>12.3} {:>12.3} | {:>12.3} {:>12.3}",
                r.dataset.name,
                r.paper_mb,
                r.measured_mib,
                r.paper_valid_pct,
                r.measured_valid_pct
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Table V — runtime comparison
// ---------------------------------------------------------------------

/// One regenerated Table V row.
#[derive(Debug, Clone, Copy)]
pub struct Table5Row {
    /// The paper's published row (CPU/GPU/FPGA/w-o-PIM/TCIM, full size).
    pub paper: &'static PaperRow,
    /// Our measured framework-flavoured CPU baseline (s, at scale).
    pub cpu_s: f64,
    /// Our measured sliced software path (s, at scale).
    pub wo_pim_s: f64,
    /// Our simulated TCIM runtime (s, at scale).
    pub tcim_s: f64,
    /// Triangles (same count from all three of our paths).
    pub triangles: u64,
}

impl Table5Row {
    /// Measured speedup of the sliced software path over the CPU baseline.
    pub fn wo_pim_speedup(&self) -> f64 {
        self.cpu_s / self.wo_pim_s
    }

    /// Simulated speedup of TCIM over the sliced software path.
    pub fn tcim_speedup_vs_wo_pim(&self) -> f64 {
        self.wo_pim_s / self.tcim_s
    }
}

/// Regenerated Table V.
#[derive(Debug, Clone)]
pub struct Table5Report {
    /// Generation scale.
    pub scale: ExperimentScale,
    /// One row per dataset, paper order.
    pub rows: Vec<Table5Row>,
}

impl Table5Report {
    /// Geometric-mean speedup of w/o PIM over CPU (paper: 53.7×).
    pub fn mean_wo_pim_speedup(&self) -> f64 {
        geo_mean(self.rows.iter().map(Table5Row::wo_pim_speedup))
    }

    /// Geometric-mean speedup of TCIM over w/o PIM (paper: 25.5×).
    pub fn mean_tcim_speedup(&self) -> f64 {
        geo_mean(self.rows.iter().map(Table5Row::tcim_speedup_vs_wo_pim))
    }
}

fn geo_mean<I: Iterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

/// Runs all three of our paths (CPU baseline, sliced software, simulated
/// TCIM) on every stand-in and assembles Table V. The software and PIM
/// columns are two backends executing one shared
/// [`PreparedGraph`](crate::PreparedGraph) per dataset, so slicing cost
/// is paid once; the CPU column stays graph-level (that is the
/// framework-flavoured baseline being measured).
///
/// # Errors
///
/// Propagates generation/characterization failures.
pub fn table5(scale: ExperimentScale) -> Result<Table5Report> {
    let pipeline = TcimPipeline::new(&TcimConfig {
        orientation: Orientation::Natural,
        pim: scale.scaled_pim_config(),
        ..TcimConfig::default()
    })?;
    let mut rows = Vec::with_capacity(TABLE_II.len());
    for d in &TABLE_II {
        let g = scale.synthesize(d)?;

        let start = Instant::now();
        let cpu_triangles = baseline::hash_intersect(&g);
        let cpu_s = start.elapsed().as_secs_f64();

        let prepared = pipeline.prepare(&g);
        let sw = pipeline.execute(&prepared, &Backend::Software(PopcountMethod::Native))?;
        assert_eq!(sw.triangles, cpu_triangles, "software paths disagree on {}", d.name);

        let pim = pipeline.execute(&prepared, &Backend::SerialPim)?;
        assert_eq!(pim.triangles, cpu_triangles, "pim path disagrees on {}", d.name);

        rows.push(Table5Row {
            paper: reported::paper_row(d.name).expect("every dataset has a paper row"),
            cpu_s,
            wo_pim_s: sw.execute_time.as_secs_f64(),
            tcim_s: pim.modelled_time_s.expect("the PIM backend always models time"),
            triangles: cpu_triangles,
        });
    }
    Ok(Table5Report { scale, rows })
}

impl fmt::Display for Table5Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table V: runtime (s) — paper columns are full-size; ours run at scale {}",
            self.scale.scale
        )?;
        writeln!(
            f,
            "{:<14} {:>9} {:>8} {:>8} {:>9} {:>8} | {:>10} {:>10} {:>10}",
            "dataset",
            "CPU[p]",
            "GPU[p]",
            "FPGA[p]",
            "w/oPIM[p]",
            "TCIM[p]",
            "CPU",
            "w/o PIM",
            "TCIM"
        )?;
        for r in &self.rows {
            let opt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.3}"),
                None => "N/A".to_string(),
            };
            writeln!(
                f,
                "{:<14} {:>9.3} {:>8} {:>8} {:>9.3} {:>8.3} | {:>10.4} {:>10.4} {:>10.4}",
                r.paper.dataset,
                r.paper.cpu_s,
                opt(r.paper.gpu_s),
                opt(r.paper.fpga_s),
                r.paper.wo_pim_s,
                r.paper.tcim_s,
                r.cpu_s,
                r.wo_pim_s,
                r.tcim_s
            )?;
        }
        writeln!(
            f,
            "geo-mean speedups: w/o PIM vs CPU {:.1}x (paper {:.1}x); TCIM vs w/o PIM {:.1}x (paper {:.1}x)",
            self.mean_wo_pim_speedup(),
            reported::headline::WO_PIM_VS_CPU,
            self.mean_tcim_speedup(),
            reported::headline::TCIM_VS_WO_PIM
        )
    }
}

// ---------------------------------------------------------------------
// Fig. 5 — hit / miss / exchange
// ---------------------------------------------------------------------

/// One regenerated Fig. 5 bar.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// The catalog entry.
    pub dataset: &'static Dataset,
    /// Hit share of column-slice accesses.
    pub hit: f64,
    /// Miss share.
    pub miss: f64,
    /// Exchange share.
    pub exchange: f64,
}

/// Regenerated Fig. 5.
#[derive(Debug, Clone)]
pub struct Fig5Report {
    /// Generation scale (buffer capacity scales along).
    pub scale: ExperimentScale,
    /// One row per dataset, paper order.
    pub rows: Vec<Fig5Row>,
}

impl Fig5Report {
    /// Mean hit rate across datasets (the paper reports 72 %).
    pub fn mean_hit_rate(&self) -> f64 {
        self.rows.iter().map(|r| r.hit).sum::<f64>() / self.rows.len() as f64
    }
}

/// Runs the serial PIM backend on every stand-in (data buffer scaled
/// with the graphs) and collects hit/miss/exchange shares.
///
/// # Errors
///
/// Propagates generation/characterization failures.
pub fn fig5(scale: ExperimentScale) -> Result<Fig5Report> {
    let pipeline = TcimPipeline::new(&TcimConfig {
        orientation: Orientation::Natural,
        pim: scale.scaled_pim_config(),
        ..TcimConfig::default()
    })?;
    let mut rows = Vec::with_capacity(TABLE_II.len());
    for d in &TABLE_II {
        let g = scale.synthesize(d)?;
        let report = pipeline.count(&g, &Backend::SerialPim)?;
        let stats = report.stats.expect("the PIM backend always reports stats");
        rows.push(Fig5Row {
            dataset: d,
            hit: stats.hit_rate(),
            miss: stats.miss_rate(),
            exchange: stats.exchange_rate(),
        });
    }
    Ok(Fig5Report { scale, rows })
}

impl fmt::Display for Fig5Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 5: percentages of data hit/miss/exchange (scale {})",
            self.scale.scale
        )?;
        writeln!(f, "{:<14} {:>8} {:>8} {:>10}", "dataset", "hit %", "miss %", "exchange %")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>8.1} {:>8.1} {:>10.1}",
                r.dataset.name,
                100.0 * r.hit,
                100.0 * r.miss,
                100.0 * r.exchange
            )?;
        }
        writeln!(
            f,
            "mean hit rate {:.1}% (paper: 72% average hit / 28% miss)",
            100.0 * self.mean_hit_rate()
        )
    }
}

// ---------------------------------------------------------------------
// Fig. 6 — energy vs FPGA
// ---------------------------------------------------------------------

/// One regenerated Fig. 6 bar (datasets with published FPGA numbers).
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// The catalog entry.
    pub dataset: &'static Dataset,
    /// Simulated TCIM energy at this scale (J).
    pub tcim_j: f64,
    /// FPGA energy estimate at this scale (J): published runtime ×
    /// assumed board power × scale.
    pub fpga_j: f64,
    /// Our energy ratio (FPGA / TCIM).
    pub ratio: f64,
    /// The paper's normalized ratio.
    pub paper_ratio: f64,
}

/// Regenerated Fig. 6.
#[derive(Debug, Clone)]
pub struct Fig6Report {
    /// Generation scale.
    pub scale: ExperimentScale,
    /// One row per dataset that has published FPGA numbers.
    pub rows: Vec<Fig6Row>,
}

impl Fig6Report {
    /// Geometric-mean energy advantage over the FPGA (paper: 20.6×).
    pub fn mean_ratio(&self) -> f64 {
        geo_mean(self.rows.iter().map(|r| r.ratio))
    }
}

/// Simulates TCIM energy on the five Fig. 6 datasets and compares with
/// the FPGA energy estimated from the published runtimes.
///
/// # Errors
///
/// Propagates generation/characterization failures.
pub fn fig6(scale: ExperimentScale) -> Result<Fig6Report> {
    let pipeline = TcimPipeline::new(&TcimConfig {
        orientation: Orientation::Natural,
        pim: scale.scaled_pim_config(),
        ..TcimConfig::default()
    })?;
    let mut rows = Vec::new();
    for d in &TABLE_II {
        let paper = reported::paper_row(d.name).expect("every dataset has a paper row");
        let (Some(fpga_s), Some(paper_ratio)) = (paper.fpga_s, paper.fpga_energy_ratio) else {
            continue;
        };
        let g = scale.synthesize(d)?;
        let report = pipeline.count(&g, &Backend::SerialPim)?;
        let tcim_j = report.modelled_energy_j.expect("the PIM backend always models energy");
        // FPGA energy scales with runtime, which is roughly linear in the
        // edge count; scale the published full-size runtime accordingly.
        let fpga_j = fpga_s * reported::FPGA_POWER_W * scale.scale;
        rows.push(Fig6Row { dataset: d, tcim_j, fpga_j, ratio: fpga_j / tcim_j, paper_ratio });
    }
    Ok(Fig6Report { scale, rows })
}

impl fmt::Display for Fig6Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 6: energy vs FPGA[3] at {} W board power (scale {})",
            reported::FPGA_POWER_W,
            self.scale.scale
        )?;
        writeln!(
            f,
            "{:<14} {:>12} {:>12} {:>12} {:>12}",
            "dataset", "TCIM (J)", "FPGA (J)", "ratio", "paper ratio"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>12.3e} {:>12.3e} {:>12.1} {:>12.1}",
                r.dataset.name, r.tcim_j, r.fpga_j, r.ratio, r.paper_ratio
            )?;
        }
        writeln!(
            f,
            "geo-mean energy advantage {:.1}x (paper: {:.1}x)",
            self.mean_ratio(),
            reported::headline::ENERGY_VS_FPGA
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale { scale: 0.002, seed: 1 }
    }

    #[test]
    fn table1_device_summary() {
        let t = table1().unwrap();
        assert!((t.cell.r_p_ohm - 625.0).abs() < 5.0);
        assert!((t.thermal_stability - 142.0).abs() < 3.0);
        assert!(t.and_margin_a > 0.0);
        assert!(!t.to_string().is_empty());
    }

    #[test]
    fn table2_has_nine_measured_rows() {
        let t = table2(tiny()).unwrap();
        assert_eq!(t.rows.len(), 9);
        for r in &t.rows {
            assert!(r.vertices >= 64);
            assert!(r.edges > 0);
        }
        assert!(t.to_string().contains("ego-facebook"));
    }

    #[test]
    fn tables3_and_4_sparsity_shape() {
        let t = tables3_and_4(tiny()).unwrap();
        assert_eq!(t.rows.len(), 9);
        for r in &t.rows {
            assert!(r.measured_mib > 0.0);
            assert!(r.measured_valid_pct > 0.0 && r.measured_valid_pct < 100.0);
        }
        // The road networks must be far sparser than ego-facebook in valid
        // slices, as in the paper (7 % vs 0.01 %).
        let fb = t.rows.iter().find(|r| r.dataset.name == "ego-facebook").unwrap();
        let pa = t.rows.iter().find(|r| r.dataset.name == "roadnet-pa").unwrap();
        assert!(fb.measured_valid_pct > 5.0 * pa.measured_valid_pct);
    }

    #[test]
    fn table5_ordering_holds() {
        let t = table5(tiny()).unwrap();
        assert_eq!(t.rows.len(), 9);
        // Two domains live in Table V: *measured* host wall-clock
        // (cpu_s, wo_pim_s) and *modelled* accelerator latency (tcim_s).
        // Only same-domain comparisons are environment-independent — a
        // release-built software path on a modern host finishes the
        // 0.2 %-scale graphs in microseconds, under the modelled
        // latency, so the paper's full-size TCIM < w/o PIM claim is
        // pinned on its reported columns, not on this host's clock.
        const MEASURABLE_S: f64 = 5e-5;
        for r in &t.rows {
            // The paper's reported full-size columns always order.
            assert!(
                r.paper.tcim_s < r.paper.wo_pim_s && r.paper.wo_pim_s < r.paper.cpu_s,
                "{}: paper columns out of order",
                r.paper.dataset
            );
            assert!(r.tcim_s > 0.0, "{}: modelled time must be positive", r.paper.dataset);
            // Measured vs measured: slicing + reuse beats the
            // framework-flavoured hash intersection wherever the
            // measurement sits above timer noise.
            if r.cpu_s > MEASURABLE_S {
                assert!(
                    r.wo_pim_s < r.cpu_s,
                    "{}: sw {} vs cpu {}",
                    r.paper.dataset,
                    r.wo_pim_s,
                    r.cpu_s
                );
            }
        }
        // The modelled-TCIM aggregate speedup is environment-dependent at
        // reduced scale (see above); its full-size claim is pinned through
        // the paper columns, so only the measured aggregate is asserted.
        assert!(t.mean_wo_pim_speedup() > 1.0);
        assert!(t.mean_tcim_speedup() > 0.0);
    }

    #[test]
    fn fig5_rates_are_probabilities() {
        let t = fig5(tiny()).unwrap();
        for r in &t.rows {
            let sum = r.hit + r.miss + r.exchange;
            assert!((sum - 1.0).abs() < 1e-9, "{}: {}", r.dataset.name, sum);
        }
        assert!(t.mean_hit_rate() > 0.3, "hit rate {}", t.mean_hit_rate());
    }

    #[test]
    fn fig6_has_five_rows_with_positive_ratios() {
        let t = fig6(tiny()).unwrap();
        assert_eq!(t.rows.len(), 5);
        for r in &t.rows {
            assert!(r.tcim_j > 0.0);
            assert!(r.ratio > 1.0, "{}: ratio {}", r.dataset.name, r.ratio);
        }
    }
}
