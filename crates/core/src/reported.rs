//! Numbers quoted from the paper for platforms that cannot be rerun here.
//!
//! The paper's Table V compares against GPU and FPGA accelerators whose
//! runtimes are themselves quoted from Huang et al. (HPEC 2018) — the
//! authors did not rerun them and neither can we. This module records
//! those published values, the paper's own CPU/w-o-PIM/TCIM columns, and
//! the Fig. 6 energy ratios, so the regenerated tables can print
//! "paper" and "measured" side by side.

/// One row of the paper's Table V plus the Table III/IV statistics for
/// the same dataset. Times in seconds, `None` = "N/A" in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Dataset name (matches `tcim_graph::datasets::Dataset::name`).
    pub dataset: &'static str,
    /// CPU baseline (Spark GraphX, Intel E5430 single core).
    pub cpu_s: f64,
    /// GPU accelerator of \[3\] (HPEC 2018).
    pub gpu_s: Option<f64>,
    /// FPGA accelerator of \[3\] (HPEC 2018).
    pub fpga_s: Option<f64>,
    /// "This Work w/o PIM" — the sliced software path.
    pub wo_pim_s: f64,
    /// "TCIM" — the full in-memory accelerator.
    pub tcim_s: f64,
    /// Table III: valid slice data size in MB.
    pub valid_slice_mb: f64,
    /// Table IV: percentage of valid slices (e.g. `7.017` for 7.017 %).
    pub valid_slice_pct: f64,
    /// Fig. 6: FPGA energy normalized to TCIM = 1, where reported.
    pub fpga_energy_ratio: Option<f64>,
}

/// All nine rows of Table V in paper order.
pub const TABLE_V: [PaperRow; 9] = [
    PaperRow {
        dataset: "ego-facebook",
        cpu_s: 5.399,
        gpu_s: Some(0.15),
        fpga_s: Some(0.093),
        wo_pim_s: 0.169,
        tcim_s: 0.005,
        valid_slice_mb: 0.182,
        valid_slice_pct: 7.017,
        fpga_energy_ratio: Some(15.8),
    },
    PaperRow {
        dataset: "email-enron",
        cpu_s: 9.545,
        gpu_s: Some(0.146),
        fpga_s: Some(0.22),
        wo_pim_s: 0.8,
        tcim_s: 0.021,
        valid_slice_mb: 1.02,
        valid_slice_pct: 1.607,
        fpga_energy_ratio: Some(9.3),
    },
    PaperRow {
        dataset: "com-amazon",
        cpu_s: 20.344,
        gpu_s: None,
        fpga_s: None,
        wo_pim_s: 0.295,
        tcim_s: 0.011,
        valid_slice_mb: 7.4,
        valid_slice_pct: 0.014,
        fpga_energy_ratio: None,
    },
    PaperRow {
        dataset: "com-dblp",
        cpu_s: 20.803,
        gpu_s: None,
        fpga_s: None,
        wo_pim_s: 0.413,
        tcim_s: 0.027,
        valid_slice_mb: 7.6,
        valid_slice_pct: 0.036,
        fpga_energy_ratio: None,
    },
    PaperRow {
        dataset: "com-youtube",
        cpu_s: 61.309,
        gpu_s: None,
        fpga_s: None,
        wo_pim_s: 2.442,
        tcim_s: 0.098,
        valid_slice_mb: 16.8,
        valid_slice_pct: 0.013,
        fpga_energy_ratio: None,
    },
    PaperRow {
        dataset: "roadnet-pa",
        cpu_s: 77.320,
        gpu_s: Some(0.169),
        fpga_s: Some(1.291),
        wo_pim_s: 0.704,
        tcim_s: 0.043,
        valid_slice_mb: 9.96,
        valid_slice_pct: 0.013,
        fpga_energy_ratio: Some(26.5),
    },
    PaperRow {
        dataset: "roadnet-tx",
        cpu_s: 94.379,
        gpu_s: Some(0.173),
        fpga_s: Some(1.586),
        wo_pim_s: 0.789,
        tcim_s: 0.053,
        valid_slice_mb: 12.38,
        valid_slice_pct: 0.010,
        fpga_energy_ratio: Some(26.4),
    },
    PaperRow {
        dataset: "roadnet-ca",
        cpu_s: 146.858,
        gpu_s: Some(0.18),
        fpga_s: Some(2.342),
        wo_pim_s: 3.561,
        tcim_s: 0.081,
        valid_slice_mb: 16.78,
        valid_slice_pct: 0.007,
        fpga_energy_ratio: Some(25.4),
    },
    PaperRow {
        dataset: "com-lj",
        cpu_s: 820.616,
        gpu_s: None,
        fpga_s: None,
        wo_pim_s: 33.034,
        tcim_s: 2.006,
        valid_slice_mb: 16.8,
        valid_slice_pct: 0.006,
        fpga_energy_ratio: None,
    },
];

/// Board power assumed for the FPGA of \[3\] when converting its published
/// runtimes into energies for Fig. 6 (W). Huang et al. report a
/// Xilinx-VCU-class board; 20 W is the conventional figure for that
/// design point and is documented in DESIGN.md as a calibration constant.
pub const FPGA_POWER_W: f64 = 20.0;

/// Looks up the paper row for a dataset (case-insensitive).
pub fn paper_row(dataset: &str) -> Option<&'static PaperRow> {
    TABLE_V.iter().find(|r| r.dataset.eq_ignore_ascii_case(dataset))
}

/// Headline speedups claimed in §V-D, used as reference points by the
/// regenerated Table V summary.
pub mod headline {
    /// "we achieved an average 53.7× speedup against the baseline CPU
    /// implementation" (w/o PIM vs CPU).
    pub const WO_PIM_VS_CPU: f64 = 53.7;
    /// "With PIM, another 25.5× acceleration is obtained."
    pub const TCIM_VS_WO_PIM: f64 = 25.5;
    /// "Compared with the GPU … accelerators, the improvement is 9×."
    pub const TCIM_VS_GPU: f64 = 9.0;
    /// "… and FPGA accelerators … 23.4×."
    pub const TCIM_VS_FPGA: f64 = 23.4;
    /// "a 20.6× energy efficiency improvement over the FPGA".
    pub const ENERGY_VS_FPGA: f64 = 20.6;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_rows_matching_the_dataset_catalog() {
        assert_eq!(TABLE_V.len(), 9);
        for row in &TABLE_V {
            assert!(
                tcim_graph::datasets::Dataset::by_name(row.dataset).is_some(),
                "no catalog entry for {}",
                row.dataset
            );
        }
    }

    #[test]
    fn paper_speedups_are_consistent_with_the_table() {
        // Geometric-mean sanity: TCIM beats w/o PIM by ~25× across rows.
        let mean: f64 = TABLE_V.iter().map(|r| (r.wo_pim_s / r.tcim_s).ln()).sum::<f64>()
            / TABLE_V.len() as f64;
        let gmean = mean.exp();
        assert!(
            (gmean - headline::TCIM_VS_WO_PIM).abs() / headline::TCIM_VS_WO_PIM < 0.5,
            "geometric mean {gmean}"
        );
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(paper_row("ROADNET-CA").is_some());
        assert!(paper_row("missing").is_none());
    }

    #[test]
    fn fig6_ratios_only_where_fpga_exists() {
        for row in &TABLE_V {
            if row.fpga_energy_ratio.is_some() {
                assert!(row.fpga_s.is_some(), "{} has ratio but no runtime", row.dataset);
            }
        }
    }
}
