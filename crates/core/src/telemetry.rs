//! Pipeline-level metrics: one [`PipelineMetrics`] registry per
//! [`TcimPipeline`](crate::TcimPipeline), recorded at execution
//! boundaries.
//!
//! Instruments are registered once when the pipeline is built and
//! recorded from already-aggregated values ([`KernelStats`], report
//! wall/modelled times) at the end of each execute/query — never inside
//! the per-edge kernel loop — so the hot path carries no metric cost
//! at all. Snapshots additionally fold in the prepared- and
//! sharded-cache hit/miss counters, which the caches themselves own.
//!
//! Metric names follow the Prometheus convention and are listed in the
//! ARCHITECTURE.md observability glossary.

use std::time::Duration;

use tcim_bitmatrix::RowEncoding;
use tcim_telemetry::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};

use crate::query::KernelStats;

/// Per-pipeline metric instruments, recorded at execution boundaries.
///
/// Cheap to clone (handles share the underlying atomics); every
/// pipeline owns its own registry so co-resident pipelines and
/// parallel tests never mix counts.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    registry: MetricsRegistry,
    executions: Counter,
    kernel_invocations: Counter,
    slice_pairs: Counter,
    result_readouts: Counter,
    blocks_skipped: Counter,
    prepared_builds: Counter,
    encoding_dense: Counter,
    encoding_sparse: Counter,
    execute_latency: Histogram,
    modelled_latency: Histogram,
}

impl Default for PipelineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineMetrics {
    /// Registers the pipeline instrument set on a fresh registry.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        PipelineMetrics {
            executions: registry.counter(
                "tcim_executions_total",
                "backend executions (execute or query) completed",
            ),
            kernel_invocations: registry.counter(
                "tcim_kernel_invocations_total",
                "per-edge kernel dispatches across all executions",
            ),
            slice_pairs: registry.counter(
                "tcim_slice_pairs_total",
                "valid slice pairs AND + BitCounted across all executions",
            ),
            result_readouts: registry.counter(
                "tcim_result_readouts_total",
                "AND results read back out of the array across all executions",
            ),
            blocks_skipped: registry.counter(
                "tcim_blocks_skipped_total",
                "mutually valid slice pairs proven zero by the sparse row \
                 encoding and skipped before the AND",
            ),
            prepared_builds: registry.counter(
                "tcim_prepared_builds_total",
                "prepared-graph artifacts built (cache misses that did work)",
            ),
            encoding_dense: registry.counter(
                "tcim_encoding_selected_dense_total",
                "prepared-graph builds that resolved to the dense row encoding",
            ),
            encoding_sparse: registry.counter(
                "tcim_encoding_selected_sparse_total",
                "prepared-graph builds that resolved to the sparse row encoding",
            ),
            execute_latency: registry.histogram(
                "tcim_execute_latency_nanoseconds",
                "host wall-clock time of the execution stage",
            ),
            modelled_latency: registry.histogram(
                "tcim_modelled_latency_nanoseconds",
                "modelled accelerator latency, for simulated-hardware backends",
            ),
            registry,
        }
    }

    /// The underlying registry (for registering additional instruments
    /// that should appear in this pipeline's snapshots).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Records one completed execution's aggregate accounting.
    pub fn record_execution(
        &self,
        kernel: &KernelStats,
        execute_time: Duration,
        modelled_time_s: Option<f64>,
    ) {
        self.executions.incr();
        self.kernel_invocations.add(kernel.kernel_invocations);
        self.slice_pairs.add(kernel.slice_pairs);
        self.result_readouts.add(kernel.result_readouts);
        self.blocks_skipped.add(kernel.blocks_skipped);
        self.execute_latency.observe_duration(execute_time);
        if let Some(s) = modelled_time_s {
            self.modelled_latency.observe_duration(Duration::from_secs_f64(s.max(0.0)));
        }
    }

    /// Records one prepared-graph build (a prepare that did the work
    /// rather than hitting the cache), tagged with the row encoding the
    /// build resolved to.
    pub fn record_prepared_build(&self, encoding: RowEncoding) {
        self.prepared_builds.incr();
        match encoding {
            RowEncoding::Dense => self.encoding_dense.incr(),
            RowEncoding::Sparse => self.encoding_sparse.incr(),
        }
    }

    /// Point-in-time read of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_recording_accumulates_kernel_counters() {
        let m = PipelineMetrics::new();
        let a = KernelStats {
            kernel_invocations: 5,
            slice_pairs: 9,
            result_readouts: 1,
            blocks_skipped: 3,
        };
        let b = KernelStats {
            kernel_invocations: 2,
            slice_pairs: 4,
            result_readouts: 0,
            blocks_skipped: 1,
        };
        m.record_execution(&a, Duration::from_micros(10), Some(1e-6));
        m.record_execution(&b, Duration::from_micros(20), None);
        let snap = m.snapshot();
        assert_eq!(snap.counter("tcim_executions_total"), Some(2));
        assert_eq!(snap.counter("tcim_kernel_invocations_total"), Some(7));
        assert_eq!(snap.counter("tcim_slice_pairs_total"), Some(13));
        assert_eq!(snap.counter("tcim_result_readouts_total"), Some(1));
        assert_eq!(snap.counter("tcim_blocks_skipped_total"), Some(4));
        let lat = snap.histogram("tcim_execute_latency_nanoseconds").unwrap();
        assert_eq!(lat.count, 2);
        let modelled = snap.histogram("tcim_modelled_latency_nanoseconds").unwrap();
        assert_eq!(modelled.count, 1);
    }

    #[test]
    fn prepared_builds_count_per_encoding() {
        let m = PipelineMetrics::new();
        m.record_prepared_build(RowEncoding::Dense);
        m.record_prepared_build(RowEncoding::Sparse);
        m.record_prepared_build(RowEncoding::Dense);
        let snap = m.snapshot();
        assert_eq!(snap.counter("tcim_prepared_builds_total"), Some(3));
        assert_eq!(snap.counter("tcim_encoding_selected_dense_total"), Some(2));
        assert_eq!(snap.counter("tcim_encoding_selected_sparse_total"), Some(1));
    }

    #[test]
    fn clones_share_instruments() {
        let m = PipelineMetrics::new();
        m.clone().record_prepared_build(RowEncoding::Dense);
        assert_eq!(m.snapshot().counter("tcim_prepared_builds_total"), Some(1));
    }
}
