//! Pipeline-level metrics: one [`PipelineMetrics`] registry per
//! [`TcimPipeline`](crate::TcimPipeline), recorded at execution
//! boundaries.
//!
//! Instruments are registered once when the pipeline is built and
//! recorded from already-aggregated values ([`KernelStats`], report
//! wall/modelled times) at the end of each execute/query — never inside
//! the per-edge kernel loop — so the hot path carries no metric cost
//! at all. Snapshots additionally fold in the prepared- and
//! sharded-cache hit/miss counters, which the caches themselves own.
//!
//! Besides the unlabelled totals, every execution is attributed to its
//! `{backend, encoding}` series: the execution/kernel/slice-pair
//! counter families gain one labelled series per combination observed,
//! and the `tcim_model_error_permille` histogram family records how far
//! the cost model's *predicted* modelled time landed from the executed
//! run's — the calibration loop a query EXPLAIN plan closes.
//!
//! Metric names follow the Prometheus convention and are listed in the
//! ARCHITECTURE.md observability glossary.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tcim_bitmatrix::RowEncoding;
use tcim_telemetry::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};

use crate::query::KernelStats;

/// Per-`{backend, encoding}` series, keyed by the pre-rendered
/// Prometheus label pairs.
#[derive(Debug, Default)]
struct LabelledSeries {
    executions: u64,
    kernel_invocations: u64,
    slice_pairs: u64,
    model_error: Histogram,
}

/// One completed execution's accounting, handed to
/// [`PipelineMetrics::record_execution`] by the pipeline entry points.
#[derive(Debug, Clone, Copy)]
pub struct ExecutionSample<'a> {
    /// The executing backend's display label (e.g. `tcim-serial`).
    pub backend: &'a str,
    /// The row encoding the prepared artifact resolved to.
    pub encoding: RowEncoding,
    /// The run's normalized kernel accounting.
    pub kernel: &'a KernelStats,
    /// Host wall-clock time of the execution stage.
    pub execute_time: Duration,
    /// Modelled accelerator latency (s), for simulated backends.
    pub modelled_time_s: Option<f64>,
    /// The cost model's *pre-execution* prediction of the modelled
    /// latency (s), when the backend has one — feeds the
    /// `tcim_model_error_permille` calibration histograms.
    pub predicted_modelled_s: Option<f64>,
    /// The answered query's stable label ([`Query::label`]), when the
    /// execution served a typed query — feeds the per-variant
    /// `tcim_query_variant_total` series. `None` for plain count
    /// executions.
    ///
    /// [`Query::label`]: crate::Query::label
    pub query: Option<&'a str>,
}

/// Per-pipeline metric instruments, recorded at execution boundaries.
///
/// Cheap to clone (handles share the underlying atomics); every
/// pipeline owns its own registry so co-resident pipelines and
/// parallel tests never mix counts.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    registry: MetricsRegistry,
    executions: Counter,
    kernel_invocations: Counter,
    slice_pairs: Counter,
    result_readouts: Counter,
    blocks_skipped: Counter,
    prepared_builds: Counter,
    encoding_dense: Counter,
    encoding_sparse: Counter,
    execute_latency: Histogram,
    modelled_latency: Histogram,
    model_error: Histogram,
    labelled: Arc<Mutex<BTreeMap<String, LabelledSeries>>>,
    query_variants: Arc<Mutex<BTreeMap<String, u64>>>,
}

impl Default for PipelineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineMetrics {
    /// Registers the pipeline instrument set on a fresh registry.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        PipelineMetrics {
            executions: registry.counter(
                "tcim_executions_total",
                "backend executions (execute or query) completed",
            ),
            kernel_invocations: registry.counter(
                "tcim_kernel_invocations_total",
                "per-edge kernel dispatches across all executions",
            ),
            slice_pairs: registry.counter(
                "tcim_slice_pairs_total",
                "valid slice pairs AND + BitCounted across all executions",
            ),
            result_readouts: registry.counter(
                "tcim_result_readouts_total",
                "AND results read back out of the array across all executions",
            ),
            blocks_skipped: registry.counter(
                "tcim_blocks_skipped_total",
                "mutually valid slice pairs proven zero by the sparse row \
                 encoding and skipped before the AND",
            ),
            prepared_builds: registry.counter(
                "tcim_prepared_builds_total",
                "prepared-graph artifacts built (cache misses that did work)",
            ),
            encoding_dense: registry.counter(
                "tcim_encoding_selected_dense_total",
                "prepared-graph builds that resolved to the dense row encoding",
            ),
            encoding_sparse: registry.counter(
                "tcim_encoding_selected_sparse_total",
                "prepared-graph builds that resolved to the sparse row encoding",
            ),
            execute_latency: registry.histogram(
                "tcim_execute_latency_nanoseconds",
                "host wall-clock time of the execution stage",
            ),
            modelled_latency: registry.histogram(
                "tcim_modelled_latency_nanoseconds",
                "modelled accelerator latency, for simulated-hardware backends",
            ),
            model_error: registry.histogram(
                "tcim_model_error_permille",
                "absolute relative error of the cost model's predicted modelled \
                 time against the executed run's, in permille",
            ),
            labelled: Arc::new(Mutex::new(BTreeMap::new())),
            query_variants: Arc::new(Mutex::new(BTreeMap::new())),
            registry,
        }
    }

    /// The underlying registry (for registering additional instruments
    /// that should appear in this pipeline's snapshots).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The pre-rendered Prometheus label pairs a `{backend, encoding}`
    /// series is keyed by.
    pub fn series_labels(backend: &str, encoding: RowEncoding) -> String {
        format!("backend=\"{backend}\",encoding=\"{encoding}\"")
    }

    /// Records one completed execution's aggregate accounting: the
    /// unlabelled totals, the `{backend, encoding}` labelled series,
    /// and (when both a prediction and a measured modelled time are
    /// present) one cost-model calibration observation.
    pub fn record_execution(&self, sample: &ExecutionSample<'_>) {
        self.executions.incr();
        self.kernel_invocations.add(sample.kernel.kernel_invocations);
        self.slice_pairs.add(sample.kernel.slice_pairs);
        self.result_readouts.add(sample.kernel.result_readouts);
        self.blocks_skipped.add(sample.kernel.blocks_skipped);
        self.execute_latency.observe_duration(sample.execute_time);
        if let Some(s) = sample.modelled_time_s {
            self.modelled_latency.observe_duration(Duration::from_secs_f64(s.max(0.0)));
        }
        let error_permille = match (sample.predicted_modelled_s, sample.modelled_time_s) {
            (Some(predicted), Some(measured)) if measured > 0.0 => {
                let permille = ((predicted - measured).abs() / measured) * 1000.0;
                Some(permille.round().min(u64::MAX as f64) as u64)
            }
            _ => None,
        };
        if let Some(err) = error_permille {
            self.model_error.observe(err);
        }

        let labels = Self::series_labels(sample.backend, sample.encoding);
        let mut labelled = self.labelled.lock().expect("metrics mutex is never poisoned");
        let series = labelled.entry(labels).or_default();
        series.executions += 1;
        series.kernel_invocations += sample.kernel.kernel_invocations;
        series.slice_pairs += sample.kernel.slice_pairs;
        if let Some(err) = error_permille {
            series.model_error.observe(err);
        }
        drop(labelled);

        if let Some(query) = sample.query {
            let mut variants =
                self.query_variants.lock().expect("metrics mutex is never poisoned");
            *variants.entry(format!("query=\"{query}\"")).or_insert(0) += 1;
        }
    }

    /// Records one prepared-graph build (a prepare that did the work
    /// rather than hitting the cache), tagged with the row encoding the
    /// build resolved to.
    pub fn record_prepared_build(&self, encoding: RowEncoding) {
        self.prepared_builds.incr();
        match encoding {
            RowEncoding::Dense => self.encoding_dense.incr(),
            RowEncoding::Sparse => self.encoding_sparse.incr(),
        }
    }

    /// Point-in-time read of every instrument: the registry's
    /// unlabelled totals followed by one labelled series per
    /// `{backend, encoding}` combination observed so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = self.registry.snapshot();
        let labelled = self.labelled.lock().expect("metrics mutex is never poisoned");
        for (labels, series) in labelled.iter() {
            snapshot.push_labelled_counter(
                "tcim_executions_total",
                "backend executions (execute or query) completed",
                labels,
                series.executions,
            );
            snapshot.push_labelled_counter(
                "tcim_kernel_invocations_total",
                "per-edge kernel dispatches across all executions",
                labels,
                series.kernel_invocations,
            );
            snapshot.push_labelled_counter(
                "tcim_slice_pairs_total",
                "valid slice pairs AND + BitCounted across all executions",
                labels,
                series.slice_pairs,
            );
            let errors = series.model_error.summary();
            if errors.count > 0 {
                snapshot.push_labelled_histogram(
                    "tcim_model_error_permille",
                    "absolute relative error of the cost model's predicted \
                     modelled time against the executed run's, in permille",
                    labels,
                    errors,
                );
            }
        }
        let variants = self.query_variants.lock().expect("metrics mutex is never poisoned");
        for (labels, &count) in variants.iter() {
            snapshot.push_labelled_counter(
                "tcim_query_variant_total",
                "typed queries answered, by query shape",
                labels,
                count,
            );
        }
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample<'a>(
        backend: &'a str,
        kernel: &'a KernelStats,
        modelled: Option<f64>,
        predicted: Option<f64>,
    ) -> ExecutionSample<'a> {
        ExecutionSample {
            backend,
            encoding: RowEncoding::Dense,
            kernel,
            execute_time: Duration::from_micros(10),
            modelled_time_s: modelled,
            predicted_modelled_s: predicted,
            query: None,
        }
    }

    #[test]
    fn execution_recording_accumulates_kernel_counters() {
        let m = PipelineMetrics::new();
        let a = KernelStats {
            kernel_invocations: 5,
            slice_pairs: 9,
            result_readouts: 1,
            blocks_skipped: 3,
        };
        let b = KernelStats {
            kernel_invocations: 2,
            slice_pairs: 4,
            result_readouts: 0,
            blocks_skipped: 1,
        };
        m.record_execution(&sample("tcim-serial", &a, Some(1e-6), None));
        m.record_execution(&sample("cpu-merge", &b, None, None));
        let snap = m.snapshot();
        assert_eq!(snap.counter("tcim_executions_total"), Some(2));
        assert_eq!(snap.counter("tcim_kernel_invocations_total"), Some(7));
        assert_eq!(snap.counter("tcim_slice_pairs_total"), Some(13));
        assert_eq!(snap.counter("tcim_result_readouts_total"), Some(1));
        assert_eq!(snap.counter("tcim_blocks_skipped_total"), Some(4));
        let lat = snap.histogram("tcim_execute_latency_nanoseconds").unwrap();
        assert_eq!(lat.count, 2);
        let modelled = snap.histogram("tcim_modelled_latency_nanoseconds").unwrap();
        assert_eq!(modelled.count, 1);
    }

    #[test]
    fn executions_split_into_backend_encoding_series() {
        let m = PipelineMetrics::new();
        let k = KernelStats {
            kernel_invocations: 4,
            slice_pairs: 6,
            result_readouts: 0,
            blocks_skipped: 0,
        };
        m.record_execution(&sample("tcim-serial", &k, None, None));
        m.record_execution(&sample("tcim-serial", &k, None, None));
        m.record_execution(&sample("cpu-merge", &k, None, None));
        let snap = m.snapshot();
        let serial = PipelineMetrics::series_labels("tcim-serial", RowEncoding::Dense);
        assert_eq!(serial, "backend=\"tcim-serial\",encoding=\"dense\"");
        assert_eq!(snap.labelled_counter("tcim_executions_total", &serial), Some(2));
        assert_eq!(snap.labelled_counter("tcim_kernel_invocations_total", &serial), Some(8));
        assert_eq!(snap.labelled_counter("tcim_slice_pairs_total", &serial), Some(12));
        let cpu = PipelineMetrics::series_labels("cpu-merge", RowEncoding::Dense);
        assert_eq!(snap.labelled_counter("tcim_executions_total", &cpu), Some(1));
        // The unlabelled totals keep covering everything.
        assert_eq!(snap.counter("tcim_executions_total"), Some(3));
    }

    #[test]
    fn model_error_records_permille_gap_when_both_sides_present() {
        let m = PipelineMetrics::new();
        let k = KernelStats::default();
        // 10% over-prediction → 100 permille.
        m.record_execution(&sample("tcim-serial", &k, Some(1.0), Some(1.1)));
        // Missing either side records nothing.
        m.record_execution(&sample("tcim-serial", &k, Some(1.0), None));
        m.record_execution(&sample("cpu-merge", &k, None, Some(1.0)));
        let snap = m.snapshot();
        let errors = snap.histogram("tcim_model_error_permille").unwrap();
        assert_eq!(errors.count, 1);
        assert_eq!(errors.sum, 100);
        let serial = PipelineMetrics::series_labels("tcim-serial", RowEncoding::Dense);
        let labelled = snap.labelled_histogram("tcim_model_error_permille", &serial).unwrap();
        assert_eq!(labelled.count, 1);
        // Series that never produced a calibration sample render none.
        let cpu = PipelineMetrics::series_labels("cpu-merge", RowEncoding::Dense);
        assert!(snap.labelled_histogram("tcim_model_error_permille", &cpu).is_none());
    }

    #[test]
    fn prepared_builds_count_per_encoding() {
        let m = PipelineMetrics::new();
        m.record_prepared_build(RowEncoding::Dense);
        m.record_prepared_build(RowEncoding::Sparse);
        m.record_prepared_build(RowEncoding::Dense);
        let snap = m.snapshot();
        assert_eq!(snap.counter("tcim_prepared_builds_total"), Some(3));
        assert_eq!(snap.counter("tcim_encoding_selected_dense_total"), Some(2));
        assert_eq!(snap.counter("tcim_encoding_selected_sparse_total"), Some(1));
    }

    #[test]
    fn query_variants_split_into_per_shape_series() {
        let m = PipelineMetrics::new();
        let k = KernelStats::default();
        m.record_execution(&ExecutionSample {
            query: Some("k-truss"),
            ..sample("tcim-serial", &k, None, None)
        });
        m.record_execution(&ExecutionSample {
            query: Some("k-truss"),
            ..sample("cpu-merge", &k, None, None)
        });
        m.record_execution(&ExecutionSample {
            query: Some("four-cliques"),
            ..sample("tcim-serial", &k, None, None)
        });
        // A plain count execution carries no query label and records no variant.
        m.record_execution(&sample("tcim-serial", &k, None, None));
        let snap = m.snapshot();
        assert_eq!(
            snap.labelled_counter("tcim_query_variant_total", "query=\"k-truss\""),
            Some(2)
        );
        assert_eq!(
            snap.labelled_counter("tcim_query_variant_total", "query=\"four-cliques\""),
            Some(1)
        );
        assert_eq!(
            snap.labelled_counter("tcim_query_variant_total", "query=\"total-triangles\""),
            None
        );
        assert_eq!(snap.counter("tcim_executions_total"), Some(4));
    }

    #[test]
    fn clones_share_instruments() {
        let m = PipelineMetrics::new();
        m.clone().record_prepared_build(RowEncoding::Dense);
        assert_eq!(m.snapshot().counter("tcim_prepared_builds_total"), Some(1));
    }
}
