//! The typed query layer: one prepared graph, many question shapes.
//!
//! TCIM's row kernel computes `|N(u) ∩ N(v)|` per processed edge, so
//! per-vertex triangle counts, clustering coefficients and per-edge
//! triangle support are attributable for free at the kernel level —
//! the follow-up journal version of the paper treats triangle counting
//! as exactly this family of queries served from one in-memory layout.
//! This module gives that family a type: a [`Query`] selects the
//! question, every [`ExecutionBackend`](crate::ExecutionBackend)
//! answers it against a [`PreparedGraph`]
//! (without re-orienting or re-slicing), and the answer comes back as
//! a [`QueryReport`] carrying a [`QueryValue`] plus normalized kernel
//! accounting ([`KernelStats`]).
//!
//! # Example
//!
//! ```
//! use tcim_core::{Backend, Query, QueryValue, TcimConfig, TcimPipeline};
//! use tcim_graph::generators::classic;
//!
//! let pipeline = TcimPipeline::new(&TcimConfig::default())?;
//! let prepared = pipeline.prepare(&classic::fig2_example());
//!
//! // One artifact answers every query shape, on any backend.
//! let total = pipeline.query(&prepared, &Backend::SerialPim, &Query::TotalTriangles)?;
//! assert_eq!(total.triangles, 2);
//!
//! let local = pipeline.query(&prepared, &Backend::CpuMerge, &Query::PerVertexTriangles)?;
//! let QueryValue::PerVertex(counts) = local.value else { unreachable!() };
//! assert_eq!(counts, vec![1, 2, 2, 1]); // Fig. 2: triangles 0-1-2, 1-2-3
//! # Ok::<(), tcim_core::CoreError>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use crate::error::{CoreError, Result};
use crate::pipeline::PreparedGraph;

/// A typed triangle query, answered by any backend from one prepared
/// graph. Vertex ids always refer to the *input* graph's ids — the
/// orientation's relabelling is undone inside the execution layer.
///
/// # Examples
///
/// ```
/// use tcim_core::{Backend, Query, TcimConfig, TcimPipeline};
/// use tcim_graph::generators::classic;
///
/// let pipeline = TcimPipeline::new(&TcimConfig::default())?;
/// let prepared = pipeline.prepare(&classic::wheel(12));
///
/// // The cheap shape runs without AND-result readouts…
/// let total = pipeline.query(&prepared, &Backend::SerialPim, &Query::TotalTriangles)?;
/// assert_eq!((total.triangles, total.kernel.result_readouts), (11, 0));
///
/// // …attributed shapes read each surviving AND result back out.
/// let ranked =
///     pipeline.query(&prepared, &Backend::SerialPim, &Query::TopKVertices { k: 1 })?;
/// assert_eq!(ranked.value.top_k().unwrap()[0].vertex, 0); // the hub
/// assert!(ranked.kernel.result_readouts > 0);
/// # Ok::<(), tcim_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Query {
    /// The global triangle count `TC(G)`.
    TotalTriangles,
    /// Triangles each vertex participates in (sums to `3 × TC(G)`).
    PerVertexTriangles,
    /// Local clustering coefficients `tri(v) / C(deg(v), 2)` for the
    /// selected vertices (`None` = every vertex).
    LocalClustering {
        /// The vertices to report, or `None` for all of them.
        vertices: Option<Vec<u32>>,
    },
    /// Global transitivity `3·TC(G) / wedges` (plus its ingredients).
    GlobalClustering,
    /// Per-edge triangle support `|N(u) ∩ N(v)|` for every edge — the
    /// quantity k-truss decompositions are built on.
    EdgeSupport,
    /// The `k` vertices participating in the most triangles,
    /// descending (ties broken by ascending vertex id).
    TopKVertices {
        /// How many vertices to return.
        k: usize,
    },
    /// The maximal k-truss edge set plus per-edge trussness, computed
    /// by iterated support peeling over the same AND+BitCount kernels
    /// (one deletion-delta kernel per peeled edge, never a re-slice).
    KTruss {
        /// The truss level: members must close at least `k − 2`
        /// triangles inside the truss. Levels below 3 return every
        /// edge (the 2-truss is the whole graph).
        k: u32,
    },
    /// Total and per-vertex 4-clique counts, computed by chaining a
    /// second AND over each triangle's witness row.
    FourCliques,
}

impl Query {
    /// Stable label of the query shape (used in service provenance).
    pub fn label(&self) -> &'static str {
        match self {
            Query::TotalTriangles => "total-triangles",
            Query::PerVertexTriangles => "per-vertex-triangles",
            Query::LocalClustering { .. } => "local-clustering",
            Query::GlobalClustering => "global-clustering",
            Query::EdgeSupport => "edge-support",
            Query::TopKVertices { .. } => "top-k-vertices",
            Query::KTruss { .. } => "k-truss",
            Query::FourCliques => "four-cliques",
        }
    }

    /// Whether answering needs per-triangle attribution (AND-result
    /// readouts on the PIM backends) rather than the plain count.
    pub fn needs_attribution(&self) -> bool {
        !matches!(self, Query::TotalTriangles | Query::GlobalClustering)
    }

    /// One representative of every *triangle-quantity* query shape —
    /// the shapes a single attributed carrier execution can answer.
    /// Test grids and benchmark workloads iterate this;
    /// [`Query::extended_suite`] adds the motif shapes on top.
    pub fn example_suite() -> Vec<Query> {
        vec![
            Query::TotalTriangles,
            Query::PerVertexTriangles,
            Query::LocalClustering { vertices: None },
            Query::GlobalClustering,
            Query::EdgeSupport,
            Query::TopKVertices { k: 5 },
        ]
    }

    /// [`Query::example_suite`] plus one representative of every motif
    /// shape (k-truss, 4-clique) — the full query surface.
    pub fn extended_suite() -> Vec<Query> {
        let mut suite = Query::example_suite();
        suite.push(Query::KTruss { k: 3 });
        suite.push(Query::FourCliques);
        suite
    }

    /// Whether this query is answered by the motif engine (iterated
    /// peeling / chained AND) rather than shaped from the triangle
    /// quantities of a single attributed execution.
    pub fn is_motif(&self) -> bool {
        matches!(self, Query::KTruss { .. } | Query::FourCliques)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::LocalClustering { vertices: Some(v) } => {
                write!(f, "local-clustering[{} vertices]", v.len())
            }
            Query::TopKVertices { k } => write!(f, "top-{k}-vertices"),
            Query::KTruss { k } => write!(f, "{k}-truss"),
            _ => f.write_str(self.label()),
        }
    }
}

/// One vertex's clustering entry in a [`QueryValue::LocalClustering`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VertexClustering {
    /// The vertex (input-graph id).
    pub vertex: u32,
    /// Triangles the vertex participates in.
    pub triangles: u64,
    /// Degree in the undirected input graph.
    pub degree: u64,
    /// `triangles / C(degree, 2)`; 0 for degree ≤ 1.
    pub coefficient: f64,
}

/// One edge's entry in a [`QueryValue::EdgeSupport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeSupport {
    /// Smaller endpoint (input-graph id).
    pub u: u32,
    /// Larger endpoint (input-graph id).
    pub v: u32,
    /// Triangles containing the edge `{u, v}`.
    pub support: u64,
}

/// One edge's entry in a [`QueryValue::KTruss`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeTruss {
    /// Smaller endpoint (input-graph id).
    pub u: u32,
    /// Larger endpoint (input-graph id).
    pub v: u32,
    /// The largest `k` such that the edge belongs to the k-truss
    /// (2 for edges in no triangle).
    pub trussness: u32,
}

/// One vertex's entry in a [`QueryValue::TopK`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexTriangles {
    /// The vertex (input-graph id).
    pub vertex: u32,
    /// Triangles the vertex participates in.
    pub triangles: u64,
}

/// The typed answer of a [`Query`], one variant per query shape.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueryValue {
    /// Answer to [`Query::TotalTriangles`].
    Total(u64),
    /// Answer to [`Query::PerVertexTriangles`], indexed by input-graph
    /// vertex id.
    PerVertex(Vec<u64>),
    /// Answer to [`Query::LocalClustering`], in requested order (or
    /// ascending vertex id when all vertices were requested).
    LocalClustering(Vec<VertexClustering>),
    /// Answer to [`Query::GlobalClustering`].
    GlobalClustering {
        /// The global triangle count.
        triangles: u64,
        /// Wedges (paths of length two): `Σ_v C(deg(v), 2)`.
        wedges: u64,
        /// `3·triangles / wedges` (0 for wedge-free graphs).
        transitivity: f64,
    },
    /// Answer to [`Query::EdgeSupport`], every edge once, ascending
    /// `(u, v)`.
    EdgeSupport(Vec<EdgeSupport>),
    /// Answer to [`Query::TopKVertices`], descending triangle count,
    /// ties broken by ascending **input** vertex id — deterministic
    /// and backend-independent even when every vertex ties (regular
    /// graphs), because ranking always runs over the input-id
    /// `per_vertex` array, never the oriented ordering.
    TopK(Vec<VertexTriangles>),
    /// Answer to [`Query::KTruss`]: the full trussness decomposition
    /// (every edge once, ascending `(u, v)`), with the queried level
    /// carried so members can be filtered without re-peeling.
    KTruss {
        /// The queried truss level.
        k: u32,
        /// Every edge's trussness, ascending `(u, v)`.
        edges: Vec<EdgeTruss>,
    },
    /// Answer to [`Query::FourCliques`].
    FourCliques {
        /// Total 4-cliques in the graph.
        total: u64,
        /// 4-cliques through each vertex, indexed by input-graph id
        /// (sums to `4 × total`).
        per_vertex: Vec<u64>,
    },
}

impl QueryValue {
    /// The total count, when this is a [`QueryValue::Total`].
    pub fn total(&self) -> Option<u64> {
        match self {
            QueryValue::Total(t) => Some(*t),
            _ => None,
        }
    }

    /// The per-vertex counts, when this is a [`QueryValue::PerVertex`].
    pub fn per_vertex(&self) -> Option<&[u64]> {
        match self {
            QueryValue::PerVertex(v) => Some(v),
            _ => None,
        }
    }

    /// The clustering entries, when this is a
    /// [`QueryValue::LocalClustering`].
    pub fn local_clustering(&self) -> Option<&[VertexClustering]> {
        match self {
            QueryValue::LocalClustering(v) => Some(v),
            _ => None,
        }
    }

    /// The edge-support entries, when this is a
    /// [`QueryValue::EdgeSupport`].
    pub fn edge_support(&self) -> Option<&[EdgeSupport]> {
        match self {
            QueryValue::EdgeSupport(v) => Some(v),
            _ => None,
        }
    }

    /// The ranked vertices, when this is a [`QueryValue::TopK`].
    pub fn top_k(&self) -> Option<&[VertexTriangles]> {
        match self {
            QueryValue::TopK(v) => Some(v),
            _ => None,
        }
    }

    /// The full trussness decomposition, when this is a
    /// [`QueryValue::KTruss`].
    pub fn trussness(&self) -> Option<&[EdgeTruss]> {
        match self {
            QueryValue::KTruss { edges, .. } => Some(edges),
            _ => None,
        }
    }

    /// The maximal k-truss members at the queried level — edges with
    /// trussness at least `k` — when this is a [`QueryValue::KTruss`].
    pub fn truss_members(&self) -> Option<Vec<(u32, u32)>> {
        match self {
            QueryValue::KTruss { k, edges } => {
                Some(edges.iter().filter(|e| e.trussness >= *k).map(|e| (e.u, e.v)).collect())
            }
            _ => None,
        }
    }

    /// The `(total, per_vertex)` 4-clique counts, when this is a
    /// [`QueryValue::FourCliques`].
    pub fn four_cliques(&self) -> Option<(u64, &[u64])> {
        match self {
            QueryValue::FourCliques { total, per_vertex } => Some((*total, per_vertex)),
            _ => None,
        }
    }
}

/// Normalized kernel accounting shared by every backend and query:
/// the same three counters mean the same thing whether the run was
/// serial PIM, scheduled multi-array PIM, sliced software or a CPU
/// baseline, so reports are comparable across engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Per-edge kernel dispatches: processed arcs of the oriented DAG
    /// (identical across faithful backends on one prepared graph).
    pub kernel_invocations: u64,
    /// Valid slice pairs AND + BitCounted. Zero for CPU baselines,
    /// which intersect adjacency lists instead of slices; identical
    /// between the serial and scheduled PIM paths by construction.
    pub slice_pairs: u64,
    /// AND results read back out of the array — non-zero only for
    /// attributed (per-vertex / edge-support) queries on PIM backends.
    pub result_readouts: u64,
    /// Mutually valid slice pairs proven zero by the sparse encoding's
    /// byte-mask filter and skipped before the AND. Always zero on
    /// dense-encoded graphs; `slice_pairs + blocks_skipped` is the pair
    /// count a dense run would have computed.
    pub blocks_skipped: u64,
}

impl KernelStats {
    /// Accumulates `other` into `self`, counter by counter.
    ///
    /// This is the single accumulation primitive for every place that
    /// sums kernel accounting — per-shard partials inside a sharded
    /// run, the composition pass, and top-level report sums — so the
    /// three counters can never drift apart. Merging is associative
    /// and commutative with [`KernelStats::default`] as identity.
    pub fn merge(&mut self, other: &KernelStats) {
        self.kernel_invocations += other.kernel_invocations;
        self.slice_pairs += other.slice_pairs;
        self.result_readouts += other.result_readouts;
        self.blocks_skipped += other.blocks_skipped;
    }

    /// [`merge`](KernelStats::merge) as a by-value fold operator, for
    /// iterator `fold`/`reduce` chains.
    #[must_use]
    pub fn merged(mut self, other: &KernelStats) -> KernelStats {
        self.merge(other);
        self
    }
}

impl fmt::Display for KernelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} kernels / {} slice pairs / {} readouts",
            self.kernel_invocations, self.slice_pairs, self.result_readouts
        )
    }
}

/// The common answer envelope every backend returns for a query:
/// the typed value plus execution accounting.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Which backend produced this report.
    pub backend: String,
    /// The query that was answered.
    pub query: Query,
    /// The typed answer.
    pub value: QueryValue,
    /// The global triangle count the run established along the way.
    pub triangles: u64,
    /// Host wall-clock time of the execution stage.
    pub execute_time: Duration,
    /// Modelled accelerator latency (s), for simulated-hardware
    /// backends.
    pub modelled_time_s: Option<f64>,
    /// Modelled accelerator energy (J), for simulated-hardware
    /// backends.
    pub modelled_energy_j: Option<f64>,
    /// Normalized kernel accounting.
    pub kernel: KernelStats,
    /// Compressed size in bytes of the prepared matrix that answered
    /// the query, under its actual row encoding — the memory side of
    /// the capacity claim, carried as provenance with every answer.
    pub compressed_bytes: u64,
    /// Shard-level provenance (shard count, imbalance, boundary arcs);
    /// present only when a sharded backend answered.
    pub sharding: Option<crate::sharded::ShardProvenance>,
}

impl fmt::Display for QueryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:<22} ({:.3} ms host, {})",
            self.backend,
            self.query.to_string(),
            self.execute_time.as_secs_f64() * 1e3,
            self.kernel
        )
    }
}

/// Undirected degree of every vertex, indexed by *input-graph* id,
/// recovered from the prepared DAG (out-degree + in-degree per
/// oriented vertex, mapped back through the relabelling).
pub(crate) fn original_degrees(prepared: &PreparedGraph) -> Vec<u64> {
    let oriented = prepared.oriented();
    let mut by_new = vec![0u64; oriented.vertex_count()];
    for (i, j) in oriented.arcs() {
        by_new[i as usize] += 1;
        by_new[j as usize] += 1;
    }
    to_original_ids(prepared, &by_new)
}

/// Maps a matrix-id-indexed vector back to input-graph ids.
pub(crate) fn to_original_ids(prepared: &PreparedGraph, by_new: &[u64]) -> Vec<u64> {
    let oriented = prepared.oriented();
    let mut by_original = vec![0u64; by_new.len()];
    for (new_id, &value) in by_new.iter().enumerate() {
        by_original[oriented.original_id(new_id as u32) as usize] = value;
    }
    by_original
}

fn clustering_entry(vertex: u32, triangles: u64, degree: u64) -> VertexClustering {
    let wedges = degree * degree.saturating_sub(1) / 2;
    VertexClustering {
        vertex,
        triangles,
        degree,
        coefficient: if wedges == 0 { 0.0 } else { triangles as f64 / wedges as f64 },
    }
}

/// Shapes raw triangle quantities — all in *input-graph* ids — into the
/// typed value of any query.
///
/// The backend layer feeds this from an attributed execution; serving
/// layers that maintain the quantities incrementally (a live
/// `tcim-stream` graph) feed it directly, so live and prepared answers
/// share one shaping path. `edge_support` must be the complete
/// ascending per-edge list and is only consulted (and required) for
/// [`Query::EdgeSupport`].
///
/// # Errors
///
/// Returns [`CoreError::Query`] when the query names a vertex beyond
/// `per_vertex.len()`.
pub fn shape_value(
    query: &Query,
    triangles: u64,
    per_vertex: &[u64],
    degrees: &[u64],
    edge_support: Option<Vec<EdgeSupport>>,
) -> Result<QueryValue> {
    let n = per_vertex.len();
    match query {
        Query::TotalTriangles => Ok(QueryValue::Total(triangles)),
        Query::GlobalClustering => {
            let wedges: u64 = degrees.iter().map(|d| d * d.saturating_sub(1) / 2).sum();
            Ok(QueryValue::GlobalClustering {
                triangles,
                wedges,
                transitivity: if wedges == 0 {
                    0.0
                } else {
                    3.0 * triangles as f64 / wedges as f64
                },
            })
        }
        Query::PerVertexTriangles => Ok(QueryValue::PerVertex(per_vertex.to_vec())),
        Query::LocalClustering { vertices } => {
            let selected: Vec<u32> = match vertices {
                Some(list) => {
                    if let Some(&bad) = list.iter().find(|&&v| v as usize >= n) {
                        return Err(CoreError::Query {
                            reason: format!(
                                "local-clustering vertex {bad} out of bounds for {n} vertices"
                            ),
                        });
                    }
                    list.clone()
                }
                None => (0..n as u32).collect(),
            };
            Ok(QueryValue::LocalClustering(
                selected
                    .into_iter()
                    .map(|v| clustering_entry(v, per_vertex[v as usize], degrees[v as usize]))
                    .collect(),
            ))
        }
        Query::TopKVertices { k } => {
            let mut ranked: Vec<VertexTriangles> = per_vertex
                .iter()
                .enumerate()
                .map(|(v, &t)| VertexTriangles { vertex: v as u32, triangles: t })
                .collect();
            ranked.sort_by_key(|e| (std::cmp::Reverse(e.triangles), e.vertex));
            ranked.truncate(*k);
            Ok(QueryValue::TopK(ranked))
        }
        Query::EdgeSupport => Ok(QueryValue::EdgeSupport(
            edge_support.expect("edge-support queries always carry the per-edge list"),
        )),
        // Motif queries are not projections of the triangle quantities:
        // they need the iterated peeling / chained-AND engine
        // (`crate::motifs`), which every dispatch path routes them to
        // before shaping. Reaching here is a routing bug.
        Query::KTruss { .. } | Query::FourCliques => Err(CoreError::Query {
            reason: format!(
                "{query} is a motif query; it is answered by the motif engine, \
                 not shaped from triangle quantities"
            ),
        }),
    }
}

/// Shapes a per-vertex participation vector (input-graph ids) into the
/// value of an attributed query.
pub(crate) fn shape_attributed(
    query: &Query,
    prepared: &PreparedGraph,
    per_vertex: Vec<u64>,
    support: Option<Vec<(u32, u32, u64)>>,
) -> Result<QueryValue> {
    let degrees = match query {
        Query::LocalClustering { .. } | Query::GlobalClustering => original_degrees(prepared),
        _ => Vec::new(),
    };
    let edge_support = matches!(query, Query::EdgeSupport).then(|| {
        let by_arc: HashMap<(u32, u32), u64> = support
            .expect("edge-support queries always run with support accumulation")
            .into_iter()
            .map(|(i, j, c)| ((i, j), c))
            .collect();
        let oriented = prepared.oriented();
        let mut edges: Vec<EdgeSupport> = oriented
            .arcs()
            .map(|(i, j)| {
                let a = oriented.original_id(i);
                let b = oriented.original_id(j);
                EdgeSupport {
                    u: a.min(b),
                    v: a.max(b),
                    support: by_arc.get(&(i, j)).copied().unwrap_or(0),
                }
            })
            .collect();
        edges.sort_by_key(|e| (e.u, e.v));
        edges
    });
    let triangles = per_vertex.iter().sum::<u64>() / 3;
    shape_value(query, triangles, &per_vertex, &degrees, edge_support)
}

/// Shapes a plain count into the value of a count-only query.
pub(crate) fn shape_count(
    query: &Query,
    prepared: &PreparedGraph,
    triangles: u64,
) -> QueryValue {
    let degrees = match query {
        Query::GlobalClustering => original_degrees(prepared),
        _ => Vec::new(),
    };
    shape_value(query, triangles, &[], &degrees, None).expect("count-only shaping never fails")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::TcimConfig;
    use crate::backend::Backend;
    use crate::pipeline::TcimPipeline;
    use tcim_graph::generators::classic;

    fn prepared_fig2() -> (TcimPipeline, std::sync::Arc<PreparedGraph>) {
        let p = TcimPipeline::new(&TcimConfig::default()).unwrap();
        let prepared = p.prepare(&classic::fig2_example());
        (p, prepared)
    }

    #[test]
    fn labels_and_display_are_stable() {
        assert_eq!(Query::TotalTriangles.label(), "total-triangles");
        assert_eq!(Query::TopKVertices { k: 3 }.to_string(), "top-3-vertices");
        assert_eq!(
            Query::LocalClustering { vertices: Some(vec![1, 2]) }.to_string(),
            "local-clustering[2 vertices]"
        );
        assert_eq!(Query::EdgeSupport.to_string(), "edge-support");
        assert_eq!(Query::example_suite().len(), 6);
    }

    #[test]
    fn attribution_need_follows_the_query_shape() {
        assert!(!Query::TotalTriangles.needs_attribution());
        assert!(!Query::GlobalClustering.needs_attribution());
        assert!(Query::PerVertexTriangles.needs_attribution());
        assert!(Query::EdgeSupport.needs_attribution());
    }

    #[test]
    fn fig2_local_clustering_matches_hand_computation() {
        let (p, prepared) = prepared_fig2();
        let report = p
            .query(&prepared, &Backend::SerialPim, &Query::LocalClustering { vertices: None })
            .unwrap();
        let entries = report.value.local_clustering().unwrap().to_vec();
        // Fig. 2 degrees: 2, 3, 3, 2; triangles: 1, 2, 2, 1.
        let coeffs: Vec<f64> = entries.iter().map(|e| e.coefficient).collect();
        assert_eq!(coeffs, vec![1.0, 2.0 / 3.0, 2.0 / 3.0, 1.0]);
        assert_eq!(entries[1].degree, 3);
        assert_eq!(entries[1].triangles, 2);
    }

    #[test]
    fn fig2_edge_support_lists_every_edge_once() {
        let (p, prepared) = prepared_fig2();
        let report = p.query(&prepared, &Backend::CpuForward, &Query::EdgeSupport).unwrap();
        let edges = report.value.edge_support().unwrap().to_vec();
        let expected = vec![
            EdgeSupport { u: 0, v: 1, support: 1 },
            EdgeSupport { u: 0, v: 2, support: 1 },
            EdgeSupport { u: 1, v: 2, support: 2 },
            EdgeSupport { u: 1, v: 3, support: 1 },
            EdgeSupport { u: 2, v: 3, support: 1 },
        ];
        assert_eq!(edges, expected);
        // Each triangle supports three edges.
        assert_eq!(edges.iter().map(|e| e.support).sum::<u64>(), 3 * report.triangles);
    }

    #[test]
    fn top_k_ranks_descending_with_id_tiebreak() {
        let (p, prepared) = prepared_fig2();
        let report =
            p.query(&prepared, &Backend::CpuMerge, &Query::TopKVertices { k: 3 }).unwrap();
        let ranked = report.value.top_k().unwrap();
        assert_eq!(ranked.len(), 3);
        assert_eq!((ranked[0].vertex, ranked[0].triangles), (1, 2));
        assert_eq!((ranked[1].vertex, ranked[1].triangles), (2, 2));
        assert_eq!((ranked[2].vertex, ranked[2].triangles), (0, 1));
        // k beyond n clamps.
        let all =
            p.query(&prepared, &Backend::CpuMerge, &Query::TopKVertices { k: 100 }).unwrap();
        assert_eq!(all.value.top_k().unwrap().len(), 4);
    }

    #[test]
    fn global_clustering_carries_its_ingredients() {
        let (p, prepared) = prepared_fig2();
        let report =
            p.query(&prepared, &Backend::SerialPim, &Query::GlobalClustering).unwrap();
        let QueryValue::GlobalClustering { triangles, wedges, transitivity } = report.value
        else {
            panic!("wrong value shape");
        };
        // Degrees 2, 3, 3, 2 → wedges 1 + 3 + 3 + 1 = 8.
        assert_eq!((triangles, wedges), (2, 8));
        assert!((transitivity - 6.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_bounds_clustering_vertex_is_a_query_error() {
        let (p, prepared) = prepared_fig2();
        let err = p
            .query(
                &prepared,
                &Backend::CpuMerge,
                &Query::LocalClustering { vertices: Some(vec![0, 9]) },
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Query { .. }), "{err}");
        assert!(err.to_string().contains("9"));
    }

    #[test]
    fn query_value_accessors_are_shape_checked() {
        let v = QueryValue::Total(7);
        assert_eq!(v.total(), Some(7));
        assert!(v.per_vertex().is_none());
        assert!(v.local_clustering().is_none());
        assert!(v.edge_support().is_none());
        assert!(v.top_k().is_none());
    }

    /// `KernelStats::merge` is the single accumulation primitive for
    /// every stats sum (per-shard partials, composition, report
    /// totals); pin the algebra that makes any merge order correct:
    /// associativity, commutativity, and the default as identity.
    #[test]
    fn kernel_stats_merge_is_associative_and_commutative() {
        let a = KernelStats {
            kernel_invocations: 3,
            slice_pairs: 10,
            result_readouts: 1,
            blocks_skipped: 2,
        };
        let b = KernelStats {
            kernel_invocations: 7,
            slice_pairs: 0,
            result_readouts: 4,
            blocks_skipped: 0,
        };
        let c = KernelStats {
            kernel_invocations: 11,
            slice_pairs: 5,
            result_readouts: 0,
            blocks_skipped: 1,
        };

        let left = a.merged(&b).merged(&c);
        let right = a.merged(&b.merged(&c));
        assert_eq!(left, right, "associativity");
        assert_eq!(a.merged(&b), b.merged(&a), "commutativity");
        assert_eq!(a.merged(&KernelStats::default()), a, "right identity");
        assert_eq!(KernelStats::default().merged(&a), a, "left identity");
        assert_eq!(
            left,
            KernelStats {
                kernel_invocations: 21,
                slice_pairs: 15,
                result_readouts: 5,
                blocks_skipped: 3,
            }
        );

        // The in-place form agrees with the by-value fold form.
        let mut acc = KernelStats::default();
        for part in [&a, &b, &c] {
            acc.merge(part);
        }
        assert_eq!(acc, left);
    }
}
