//! The top-level TCIM accelerator facade — thin shims over the staged
//! pipeline.
//!
//! [`TcimAccelerator`] predates the [`TcimPipeline`] and is kept as the
//! convenience entry point: every method delegates to the pipeline's
//! prepare/execute stages (sharing its prepared-graph cache), so
//! repeated calls on the same graph re-orient and re-slice nothing —
//! counting methods are thin shims over
//! [`Query::TotalTriangles`](crate::Query::TotalTriangles) on the
//! respective backend. New code that selects backends, reuses prepared
//! artifacts explicitly, or asks richer questions (per-vertex counts,
//! clustering, edge support) should use [`TcimPipeline`] and the typed
//! [`Query`](crate::Query) API directly; these per-path methods remain
//! as shims for existing callers.

use std::time::{Duration, Instant};

use tcim_arch::{LocalRunResult, PimConfig, PimEngine, PimRunResult};
use tcim_bitmatrix::{EncodingPolicy, SliceStats, SlicedMatrix};
use tcim_graph::{CsrGraph, Orientation};
use tcim_sched::{SchedPolicy, ScheduledReport};

use crate::backend::{Backend, BackendDetail};
use crate::error::Result;
use crate::pipeline::TcimPipeline;

/// Configuration of the accelerator facade: how to orient the graph plus
/// the full PIM simulator configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TcimConfig {
    /// Edge orientation applied before slicing (paper: natural order).
    pub orientation: Orientation,
    /// Row-encoding selection policy: measure the sliced matrix's
    /// valid-slice density and pick dense or hierarchical sparse rows
    /// (default: automatic with a 25% density threshold).
    pub encoding: EncodingPolicy,
    /// Architecture-simulator configuration (paper defaults).
    pub pim: PimConfig,
}

/// Everything one accelerated counting run produces.
#[derive(Debug, Clone)]
pub struct TcimReport {
    /// Exact triangle count, produced by the simulated dataflow.
    pub triangles: u64,
    /// The architecture simulation result: statistics, latency, energy.
    pub sim: PimRunResult,
    /// Slicing statistics of the compressed graph (Table III/IV
    /// quantities).
    pub slice_stats: SliceStats,
    /// Host wall-clock time spent orienting + slicing the graph (zero
    /// when the prepared form came out of the pipeline cache).
    pub preprocess_time: Duration,
    /// Host wall-clock time spent driving the simulation itself (this is
    /// simulator overhead, not modelled accelerator time).
    pub host_sim_time: Duration,
}

/// Everything one local (per-vertex) counting run produces.
#[derive(Debug, Clone)]
pub struct LocalTcimReport {
    /// Global triangle count.
    pub triangles: u64,
    /// Triangles each input-graph vertex participates in; sums to
    /// `3 × triangles`.
    pub per_vertex: Vec<u64>,
    /// The raw architecture result (statistics, latency, energy).
    pub sim: LocalRunResult,
}

/// The TCIM accelerator: a characterized PIM engine bound to a graph
/// pipeline (orient → slice → map → run Algorithm 1).
///
/// # Example
///
/// ```
/// use tcim_core::{TcimAccelerator, TcimConfig};
/// use tcim_graph::generators::classic;
///
/// let acc = TcimAccelerator::new(&TcimConfig::default())?;
/// let report = acc.count_triangles(&classic::wheel(12));
/// assert_eq!(report.triangles, 11);
/// # Ok::<(), tcim_core::CoreError>(())
/// ```
///
/// Cloning clones the configuration and characterized engine; the clone
/// starts with an empty prepared-graph cache (see
/// [`TcimPipeline::clone`]).
#[derive(Debug, Clone)]
pub struct TcimAccelerator {
    pipeline: TcimPipeline,
}

impl TcimAccelerator {
    /// Characterizes the device, array and bit counter for `config`.
    ///
    /// # Errors
    ///
    /// Propagates configuration and characterization failures.
    pub fn new(config: &TcimConfig) -> Result<Self> {
        Ok(TcimAccelerator { pipeline: TcimPipeline::new(config)? })
    }

    /// The staged pipeline backing this facade — prepare/execute stages,
    /// backend dispatch and the prepared-graph cache.
    pub fn pipeline(&self) -> &TcimPipeline {
        &self.pipeline
    }

    /// The underlying architecture engine (for inspecting the array
    /// characterization).
    pub fn engine(&self) -> &PimEngine {
        self.pipeline.engine()
    }

    /// The configuration this accelerator was built from.
    pub fn config(&self) -> &TcimConfig {
        self.pipeline.config()
    }

    /// Compresses `g` into the sliced in-memory format (orient + slice).
    ///
    /// Legacy one-shot compression: builds the matrix directly, without
    /// pricing it or pinning anything in the pipeline cache — the
    /// caller owns the only copy. New code that reuses compressed forms
    /// should hold a [`PreparedGraph`](crate::PreparedGraph) from
    /// [`TcimPipeline::prepare`] instead.
    pub fn compress(&self, g: &CsrGraph) -> SlicedMatrix {
        let oriented = self.config().orientation.orient(g);
        SlicedMatrix::from_adjacency_with(
            oriented.rows(),
            self.config().pim.slice_size,
            self.config().encoding,
        )
        .expect("oriented adjacency is always in bounds")
    }

    /// Counts the triangles of `g` on the simulated accelerator.
    ///
    /// Shim over the pipeline's [`Backend::SerialPim`]; the preparation
    /// stage is cached across calls.
    pub fn count_triangles(&self, g: &CsrGraph) -> TcimReport {
        let pre_start = Instant::now();
        let prepared = self.pipeline.prepare(g);
        let preprocess_time = pre_start.elapsed();
        let report = self
            .pipeline
            .execute(&prepared, &Backend::SerialPim)
            .expect("pipeline-prepared artifacts always match the engine");
        let BackendDetail::SerialPim(sim) = report.detail else {
            unreachable!("the serial PIM backend always returns a serial detail")
        };
        TcimReport {
            triangles: report.triangles,
            sim: *sim,
            slice_stats: prepared.slice_stats(),
            preprocess_time,
            host_sim_time: report.execute_time,
        }
    }

    /// Counts per-vertex (local) triangle participation on the simulated
    /// accelerator: the quantity behind local clustering coefficients.
    ///
    /// Results are indexed by the *input graph's* vertex ids regardless of
    /// the configured orientation (relabellings are undone internally).
    /// The run costs one extra read-class array access per non-zero slice
    /// pair; see `tcim_arch::runtime::run_local`.
    pub fn count_local_triangles(&self, g: &CsrGraph) -> LocalTcimReport {
        let prepared = self.pipeline.prepare(g);
        let run = self.engine().run_local(prepared.matrix());
        let mut per_vertex = vec![0u64; g.vertex_count()];
        for (new_id, &count) in run.per_vertex.iter().enumerate() {
            per_vertex[prepared.oriented().original_id(new_id as u32) as usize] = count;
        }
        LocalTcimReport { triangles: run.triangles, per_vertex, sim: run }
    }

    /// Counts the triangles of `g` on a scheduled multi-array runtime
    /// instead of the serial engine: the oriented, sliced matrix is
    /// decomposed into row jobs, placed onto `policy.arrays` independent
    /// computational arrays by `policy.placement`, and executed with
    /// per-array data buffers over host worker threads.
    ///
    /// Shim over the pipeline's [`Backend::ScheduledPim`].
    ///
    /// The returned [`ScheduledReport`] carries the exact triangle count
    /// (always equal to [`TcimAccelerator::count_triangles`]'s — the
    /// dataflow per edge is identical), per-array statistics and
    /// utilization, the critical-path latency and the load-imbalance
    /// factor.
    ///
    /// # Errors
    ///
    /// Propagates scheduling-policy validation errors as
    /// [`CoreError::Sched`](crate::CoreError::Sched).
    ///
    /// # Example
    ///
    /// ```
    /// use tcim_core::{TcimAccelerator, TcimConfig};
    /// use tcim_graph::generators::classic;
    /// use tcim_sched::SchedPolicy;
    ///
    /// let acc = TcimAccelerator::new(&TcimConfig::default())?;
    /// let report = acc
    ///     .count_triangles_scheduled(&classic::wheel(12), &SchedPolicy::with_arrays(4))?;
    /// assert_eq!(report.triangles, 11);
    /// assert!(report.imbalance >= 1.0);
    /// # Ok::<(), tcim_core::CoreError>(())
    /// ```
    pub fn count_triangles_scheduled(
        &self,
        g: &CsrGraph,
        policy: &SchedPolicy,
    ) -> Result<ScheduledReport> {
        let prepared = self.pipeline.prepare(g);
        let report =
            self.pipeline.execute(&prepared, &Backend::ScheduledPim(policy.clone()))?;
        let BackendDetail::ScheduledPim(sched) = report.detail else {
            unreachable!("the scheduled PIM backend always returns a scheduled detail")
        };
        Ok(*sched)
    }

    /// Counts triangles over an already-compressed matrix.
    pub fn count_compressed(
        &self,
        matrix: &SlicedMatrix,
        preprocess_time: Duration,
    ) -> TcimReport {
        let slice_stats = matrix.stats();
        let host_start = Instant::now();
        let sim = self.engine().run(matrix);
        let host_sim_time = host_start.elapsed();
        TcimReport {
            triangles: sim.triangles,
            sim,
            slice_stats,
            preprocess_time,
            host_sim_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use tcim_graph::generators::{classic, gnm, road_grid};

    fn accelerator() -> TcimAccelerator {
        TcimAccelerator::new(&TcimConfig::default()).unwrap()
    }

    #[test]
    fn counts_match_baselines_across_graph_families() {
        let acc = accelerator();
        let graphs = vec![
            classic::fig2_example(),
            classic::complete(25),
            classic::wheel(30),
            gnm(400, 3000, 3).unwrap(),
            road_grid(20, 20, 0.9, 0.3, 5).unwrap(),
        ];
        for g in graphs {
            let expected = baseline::edge_iterator_merge(&g);
            let report = acc.count_triangles(&g);
            assert_eq!(report.triangles, expected, "graph {g:?}");
        }
    }

    #[test]
    fn orientation_does_not_change_the_count() {
        let g = gnm(300, 2200, 11).unwrap();
        let natural = accelerator().count_triangles(&g).triangles;
        let config = TcimConfig { orientation: Orientation::Degree, ..TcimConfig::default() };
        let degree = TcimAccelerator::new(&config).unwrap().count_triangles(&g).triangles;
        assert_eq!(natural, degree);
    }

    #[test]
    fn report_carries_consistent_statistics() {
        let g = gnm(200, 1500, 2).unwrap();
        let acc = accelerator();
        let report = acc.count_triangles(&g);
        assert_eq!(report.sim.stats.edges as usize, g.edge_count());
        assert_eq!(report.sim.stats.and_ops, report.sim.stats.bitcount_ops);
        assert!(report.slice_stats.nnz as usize == g.edge_count());
        assert!(report.sim.total_time_s() > 0.0);
    }

    #[test]
    fn repeated_counts_hit_the_pipeline_cache() {
        let g = gnm(150, 1000, 6).unwrap();
        let acc = accelerator();
        let first = acc.count_triangles(&g);
        let misses = acc.pipeline().cache().misses();
        let second = acc.count_triangles(&g);
        assert_eq!(first.triangles, second.triangles);
        assert_eq!(first.sim.stats, second.sim.stats);
        // The second run prepared nothing new.
        assert_eq!(acc.pipeline().cache().misses(), misses);
        assert!(acc.pipeline().cache().hits() >= 1);
    }

    #[test]
    fn local_counts_match_baseline_under_every_orientation() {
        let g = gnm(250, 1800, 4).unwrap();
        let expected = baseline::local_triangles(&g);
        for orientation in [Orientation::Natural, Orientation::Degree, Orientation::Degeneracy]
        {
            let config = TcimConfig { orientation, ..TcimConfig::default() };
            let report = TcimAccelerator::new(&config).unwrap().count_local_triangles(&g);
            assert_eq!(report.per_vertex, expected, "{orientation:?}");
            assert_eq!(
                report.per_vertex.iter().sum::<u64>(),
                3 * report.triangles,
                "{orientation:?}"
            );
        }
    }

    #[test]
    fn scheduled_counts_match_serial_and_software_baseline() {
        use tcim_graph::generators::barabasi_albert;
        use tcim_sched::PlacementPolicy;

        let acc = accelerator();
        let g = barabasi_albert(400, 6, 3).unwrap();
        let software = baseline::edge_iterator_merge(&g);
        let serial = acc.count_triangles(&g).triangles;
        assert_eq!(serial, software);
        for placement in PlacementPolicy::ALL {
            for arrays in [1usize, 2, 4, 8, 16] {
                let policy = SchedPolicy { arrays, placement, host_threads: Some(2) };
                let report = acc.count_triangles_scheduled(&g, &policy).unwrap();
                assert_eq!(report.triangles, software, "{placement} x{arrays}");
                assert_eq!(report.arrays(), arrays);
                assert!(report.imbalance >= 1.0 - 1e-12);
            }
        }
    }

    #[test]
    fn load_balanced_critical_path_beats_round_robin_on_skewed_graphs() {
        use tcim_graph::generators::barabasi_albert;
        use tcim_sched::PlacementPolicy;

        let acc = accelerator();
        // Preferential attachment: heavy-tailed degree distribution, the
        // adversarial case for reuse-blind dealing.
        for seed in [3u64, 11] {
            let g = barabasi_albert(600, 8, seed).unwrap();
            for arrays in [2usize, 4, 8, 16] {
                let rr = acc
                    .count_triangles_scheduled(
                        &g,
                        &SchedPolicy::with_arrays(arrays)
                            .placement(PlacementPolicy::RoundRobin),
                    )
                    .unwrap();
                let lpt = acc
                    .count_triangles_scheduled(
                        &g,
                        &SchedPolicy::with_arrays(arrays)
                            .placement(PlacementPolicy::LoadBalanced),
                    )
                    .unwrap();
                assert_eq!(rr.triangles, lpt.triangles);
                assert!(
                    lpt.critical_path_s <= rr.critical_path_s + 1e-18,
                    "seed {seed}, {arrays} arrays: LPT {} vs RR {}",
                    lpt.critical_path_s,
                    rr.critical_path_s
                );
            }
        }
    }

    #[test]
    fn compress_then_count_matches_direct_path() {
        let g = gnm(150, 900, 8).unwrap();
        let acc = accelerator();
        let direct = acc.count_triangles(&g);
        let matrix = acc.compress(&g);
        let reused = acc.count_compressed(&matrix, Duration::ZERO);
        assert_eq!(direct.triangles, reused.triangles);
        assert_eq!(direct.sim.stats, reused.sim.stats);
    }
}
