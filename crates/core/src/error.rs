//! Error type of the public API.

use std::error::Error;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors surfaced by the TCIM public API.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// Graph construction or generation failed.
    Graph(tcim_graph::GraphError),
    /// Architecture configuration or characterization failed.
    Arch(tcim_arch::ArchError),
    /// Bit-matrix construction failed.
    BitMatrix(tcim_bitmatrix::BitMatrixError),
    /// Multi-array scheduling failed.
    Sched(tcim_sched::SchedError),
    /// Shard planning, boundary extraction or composition failed.
    Shard(tcim_shard::ShardError),
    /// The staged pipeline was driven with mismatched artifacts (e.g. a
    /// graph prepared under a different slice size than the executing
    /// engine).
    Pipeline {
        /// What was mismatched.
        reason: String,
    },
    /// A typed query carried invalid parameters (e.g. a clustering
    /// query naming a vertex beyond the graph's universe).
    Query {
        /// What was invalid.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Arch(e) => write!(f, "architecture error: {e}"),
            CoreError::BitMatrix(e) => write!(f, "bit-matrix error: {e}"),
            CoreError::Sched(e) => write!(f, "scheduling error: {e}"),
            CoreError::Shard(e) => write!(f, "sharding error: {e}"),
            CoreError::Pipeline { reason } => write!(f, "pipeline error: {reason}"),
            CoreError::Query { reason } => write!(f, "query error: {reason}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Arch(e) => Some(e),
            CoreError::BitMatrix(e) => Some(e),
            CoreError::Sched(e) => Some(e),
            CoreError::Shard(e) => Some(e),
            CoreError::Pipeline { .. } | CoreError::Query { .. } => None,
        }
    }
}

impl From<tcim_graph::GraphError> for CoreError {
    fn from(e: tcim_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<tcim_arch::ArchError> for CoreError {
    fn from(e: tcim_arch::ArchError) -> Self {
        CoreError::Arch(e)
    }
}

impl From<tcim_bitmatrix::BitMatrixError> for CoreError {
    fn from(e: tcim_bitmatrix::BitMatrixError) -> Self {
        CoreError::BitMatrix(e)
    }
}

impl From<tcim_sched::SchedError> for CoreError {
    fn from(e: tcim_sched::SchedError) -> Self {
        CoreError::Sched(e)
    }
}

impl From<tcim_shard::ShardError> for CoreError {
    fn from(e: tcim_shard::ShardError) -> Self {
        CoreError::Shard(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_sources() {
        let e =
            CoreError::from(tcim_graph::GraphError::InvalidParameter { reason: "x".into() });
        assert!(e.to_string().contains("graph error"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
