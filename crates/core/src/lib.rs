//! TCIM: triangle counting with a processing-in-MRAM architecture.
//!
//! This crate is the public API of the TCIM reproduction (Wang et al.,
//! DAC 2020). It ties the substrates together — graphs (`tcim-graph`),
//! sliced bit matrices (`tcim-bitmatrix`), MTJ devices (`tcim-mtj`), the
//! NVSim-style array model (`tcim-nvsim`) and the architecture simulator
//! (`tcim-arch`) — behind one entry point, [`TcimAccelerator`], and
//! provides everything the paper's evaluation compares against:
//!
//! * [`baseline`] — CPU triangle-counting algorithms: a deliberately
//!   framework-flavoured hash-intersect baseline (the paper's Spark
//!   GraphX column), merge-based edge iteration, the forward algorithm,
//!   and a crossbeam-parallel variant.
//! * [`software`] — the paper's "This Work w/o PIM" column: the same
//!   slicing/reuse dataflow executed in software.
//! * [`reported`] — runtimes and energy ratios quoted from the paper for
//!   CPU/GPU/FPGA platforms that cannot be rerun here.
//! * [`experiments`] — drivers that regenerate every table and figure.
//! * [`metrics`] — graph metrics built on triangle counts (transitivity,
//!   clustering coefficient).
//! * [`verify`] — a one-call cross-check of all five counting paths.
//! * scheduling — [`TcimAccelerator::count_triangles_scheduled`] runs the
//!   dataflow on the `tcim-sched` multi-array runtime ([`SchedPolicy`],
//!   [`ScheduledReport`] are re-exported here).
//! * [`ablations`] — structured drivers for the DESIGN.md §5 ablations,
//!   with their findings pinned by tests.
//!
//! The counting path itself is a **staged pipeline**: graphs are
//! *prepared* once (orient → slice → price, [`PreparedGraph`], cached by
//! [`PreparedCache`]) and then *executed* any number of times on
//! interchangeable [`ExecutionBackend`]s selected by value
//! ([`Backend`]) — serial PIM, scheduled multi-array PIM, the sliced
//! software path, and CPU baselines all return one [`CountReport`].
//!
//! Execution is **query-shaped** ([`query`]): a typed [`Query`] (total
//! count, per-vertex counts, local/global clustering, edge support,
//! top-k) is answered by any backend from one prepared artifact,
//! returning a [`QueryReport`] with normalized [`KernelStats`]. The
//! count-only entry points ([`TcimPipeline::count`],
//! [`TcimAccelerator`]) are thin shims over
//! [`Query::TotalTriangles`].
//!
//! For *dynamic* graphs (streams of edge insertions/deletions), the
//! `tcim-stream` crate layers incremental delta counting on top of this
//! pipeline: it maintains the count with per-update AND + BitCount
//! kernels and folds drifted state back through [`TcimPipeline::prepare`]
//! into the [`PreparedCache`].
//!
//! For graphs **beyond one array's slice budget**, [`sharded`]
//! execution ([`Backend::Sharded`], built on the `tcim-shard` crate)
//! partitions the oriented DAG into slice-aligned vertex ranges,
//! prepares each induced subgraph as its own artifact
//! ([`ShardedPreparedGraph`], cached by [`ShardedCache`]) and counts
//! intra-shard runs plus a cross-shard composition pass — answering
//! every [`Query`] shape with shard provenance
//! ([`ShardProvenance`]).
//!
//! Every routing decision above is inspectable *before* executing:
//! [`TcimPipeline::explain`] assembles an [`ExplainReport`] — resolved
//! encoding, backend selection, scheduler placement, shard plan, cache
//! provenance, and the exact predicted kernel census next to the cost
//! model's latency estimate — from the same structs the executor
//! consumes ([`explain`]). The pipeline's [`PipelineMetrics`] score
//! that prediction against every executed run in the
//! `tcim_model_error_permille` calibration histograms.
//!
//! # Quickstart
//!
//! ```
//! use tcim_core::{Backend, SchedPolicy, TcimConfig, TcimPipeline};
//! use tcim_graph::generators::classic;
//!
//! // The paper's Fig. 2 example graph: 2 triangles.
//! let graph = classic::fig2_example();
//!
//! // Stage 1: prepare once (orient → slice → price; cached by graph).
//! let pipeline = TcimPipeline::new(&TcimConfig::default())?;
//! let prepared = pipeline.prepare(&graph);
//!
//! // Stage 2: execute the same artifact on any backend.
//! let pim = pipeline.execute(&prepared, &Backend::SerialPim)?;
//! let sched = pipeline.execute(&prepared, &Backend::ScheduledPim(SchedPolicy::with_arrays(4)))?;
//! let cpu = pipeline.execute(&prepared, &Backend::CpuMerge)?;
//! assert_eq!(pim.triangles, 2);
//! assert_eq!(sched.triangles, 2);
//! assert_eq!(cpu.triangles, 2);
//! println!("modelled runtime: {:.3e} s", pim.modelled_time_s.unwrap());
//! # Ok::<(), tcim_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ablations;
mod accelerator;
pub mod backend;
pub mod baseline;
pub mod coalesce;
mod error;
pub mod experiments;
pub mod explain;
pub mod metrics;
pub mod motifs;
pub mod pipeline;
pub mod query;
pub mod reported;
pub mod sharded;
pub mod software;
pub mod telemetry;
pub mod verify;

pub use accelerator::{LocalTcimReport, TcimAccelerator, TcimConfig, TcimReport};
pub use backend::{AttributedRun, Backend, BackendDetail, CountReport, ExecutionBackend};
pub use coalesce::CoalescedOutcome;
pub use error::{CoreError, Result};
pub use explain::{
    CacheProvenance, EncodingDecision, ExplainReport, KernelCensus, MeasuredCost,
    PredictedCost, SchedPlanSummary, ShardPieceSummary, ShardPlanSummary,
};
pub use motifs::{
    four_cliques_from_adjacency, ktruss_value_from_adjacency, MotifFlavor, MotifPricing,
};
pub use pipeline::{PreparedCache, PreparedGraph, PreparedKey, PreparedPricing, TcimPipeline};
pub use query::{
    EdgeSupport, EdgeTruss, KernelStats, Query, QueryReport, QueryValue, VertexClustering,
    VertexTriangles,
};
pub use sharded::{
    ShardPolicy, ShardProvenance, ShardSliceReport, ShardedBackend, ShardedCache,
    ShardedPreparedGraph,
};
pub use telemetry::{ExecutionSample, PipelineMetrics};
// Scheduling types surface in the accelerator's public API
// (`TcimAccelerator::count_triangles_scheduled`), so re-export them.
pub use tcim_sched::{PlacementPolicy, SchedPolicy, ScheduledReport};
// Shard-spec types surface in `Backend::Sharded`'s `ShardPolicy`.
pub use tcim_shard::{ShardMode, ShardSpec};
