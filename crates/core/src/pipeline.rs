//! The staged counting pipeline: one-time graph *preparation*
//! ([`PreparedGraph`], cached by [`PreparedCache`]) separated from
//! repeated *execution* against interchangeable backends
//! ([`crate::backend`]).
//!
//! The paper's dataflow is inherently two-phase — orient, slice and map
//! the graph once (§IV-A/B), then run Algorithm 1's AND + BitCount
//! kernel over the prepared form. Serving workloads repeat the second
//! phase many times per graph (different backends, policies, or repeated
//! queries), so the pipeline materialises phase one as a reusable
//! artifact and keys it by graph fingerprint + orientation + slice size.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tcim_arch::PimEngine;
use tcim_bitmatrix::{EncodingPolicy, RowEncoding, SliceSize, SliceStats, SlicedMatrix};
use tcim_graph::{CsrGraph, Orientation, OrientedGraph};

use crate::accelerator::TcimConfig;
use crate::backend::{Backend, CountReport, ExecutionBackend};
use crate::error::Result;
use crate::query::{Query, QueryReport};
use crate::sharded::{ShardedBackend, ShardedCache, ShardedPreparedGraph};
use crate::telemetry::{ExecutionSample, PipelineMetrics};
use tcim_shard::ShardSpec;

/// Cache key of one prepared artifact: the graph's structural
/// fingerprint (paired with its exact sizes to make collisions
/// vanishingly unlikely) plus the preparation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PreparedKey {
    /// [`CsrGraph::fingerprint`] of the input graph.
    pub fingerprint: u64,
    /// Vertex count of the input graph.
    pub vertices: usize,
    /// Undirected edge count of the input graph.
    pub edges: usize,
    /// Orientation applied during preparation.
    pub orientation: Orientation,
    /// Slice size the matrix was built with.
    pub slice_size: SliceSize,
    /// Row-encoding policy the matrix was built under. Part of the key
    /// because the policy changes the artifact (different thresholds can
    /// resolve the same graph to different encodings).
    pub encoding: EncodingPolicy,
}

impl PreparedKey {
    /// The key `g` prepares under with the given parameters.
    pub fn for_graph(
        g: &CsrGraph,
        orientation: Orientation,
        slice_size: SliceSize,
        encoding: EncodingPolicy,
    ) -> Self {
        PreparedKey {
            fingerprint: g.fingerprint(),
            vertices: g.vertex_count(),
            edges: g.edge_count(),
            orientation,
            slice_size,
            encoding,
        }
    }
}

/// Cost-model pricing of a prepared graph: the work Algorithm 1 will
/// perform, priced at preparation time against the engine's
/// characterization so schedulers and capacity planners can reason about
/// a query before running it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreparedPricing {
    /// Valid slice pairs across all edges — the exact number of AND +
    /// BitCount operations any faithful execution performs.
    pub slice_pairs: u64,
    /// Per-arc kernel dispatches a faithful sliced execution performs:
    /// every arc under the dense encoding; under the sparse encoding
    /// only the arcs with at least one mutually valid slice pair (the
    /// controller proves the rest empty and never launches). This is
    /// the exact `kernel_invocations` the serial, scheduled and
    /// software backends report.
    pub kernel_dispatches: u64,
    /// Mutually valid slice pairs the sparse row encoding proves zero
    /// and skips before the AND (always 0 under the dense encoding).
    pub blocks_skipped: u64,
    /// Optimistic single-array busy time (s): every valid slice written
    /// once plus the AND/BitCount work (an all-hits lower bound).
    pub est_busy_s: f64,
    /// Serial host dispatch time over all edges (s).
    pub controller_s: f64,
}

/// A graph prepared for execution: oriented, sliced, measured and
/// priced. Built once per [`PreparedKey`] and shared (via `Arc`) by
/// every backend execution — backends never re-orient or re-slice.
#[derive(Debug, Clone)]
pub struct PreparedGraph {
    key: PreparedKey,
    oriented: OrientedGraph,
    matrix: SlicedMatrix,
    stats: SliceStats,
    pricing: PreparedPricing,
    prepare_time: Duration,
}

impl PreparedGraph {
    /// Orients, slices and prices `g`; the uncached preparation
    /// primitive behind [`TcimPipeline::prepare`].
    pub fn build(
        g: &CsrGraph,
        orientation: Orientation,
        slice_size: SliceSize,
        encoding: EncodingPolicy,
        engine: &PimEngine,
    ) -> PreparedGraph {
        let prepare_span = tcim_telemetry::span("prepare");
        let start = Instant::now();
        let key = PreparedKey::for_graph(g, orientation, slice_size, encoding);
        let oriented = orientation.orient(g);
        let slice_span = tcim_telemetry::span("slice");
        let matrix = SlicedMatrix::from_adjacency_with(oriented.rows(), slice_size, encoding)
            .expect("oriented adjacency is always in bounds");
        let stats = matrix.stats();
        drop(slice_span);

        // Price the run: the visited-pair population is exact (the same
        // walk the controller performs, skipping what the sparse
        // encoding proves zero), the busy time optimistic.
        let mut slice_pairs = 0u64;
        let mut kernel_dispatches = 0u64;
        let mut blocks_skipped = 0u64;
        let sparse = matrix.encoding() == RowEncoding::Sparse;
        for (i, j) in matrix.edges() {
            let pairs = matrix
                .row(i)
                .matching_stats(matrix.col(j))
                .expect("rows and columns of one matrix always align");
            slice_pairs += pairs.visited;
            blocks_skipped += pairs.skipped;
            // Mirror of the runtime dispatch rule: dense rows always
            // launch; sparse rows launch only when the walk visited at
            // least one mutually valid pair.
            if !sparse || pairs.visited > 0 {
                kernel_dispatches += 1;
            }
        }
        let costs = engine.cost_model();
        let pricing = PreparedPricing {
            slice_pairs,
            kernel_dispatches,
            blocks_skipped,
            est_busy_s: costs.estimate_busy_s(stats.valid_slices, slice_pairs),
            controller_s: matrix.edge_count() as f64 * costs.controller_overhead_s,
        };

        drop(prepare_span);
        PreparedGraph { key, oriented, matrix, stats, pricing, prepare_time: start.elapsed() }
    }

    /// The cache key this artifact was built under.
    pub fn key(&self) -> &PreparedKey {
        &self.key
    }

    /// The oriented (DAG) adjacency — what CPU backends execute over.
    pub fn oriented(&self) -> &OrientedGraph {
        &self.oriented
    }

    /// The sliced matrix — what PIM and software backends execute over.
    pub fn matrix(&self) -> &SlicedMatrix {
        &self.matrix
    }

    /// Slicing statistics (Table III/IV quantities), measured once at
    /// preparation time.
    pub fn slice_stats(&self) -> SliceStats {
        self.stats
    }

    /// Cost-model pricing of the prepared work.
    pub fn pricing(&self) -> PreparedPricing {
        self.pricing
    }

    /// Host wall-clock time the preparation took.
    pub fn prepare_time(&self) -> Duration {
        self.prepare_time
    }

    /// The orientation the graph was prepared with.
    pub fn orientation(&self) -> Orientation {
        self.key.orientation
    }

    /// The slice size the matrix was built with.
    pub fn slice_size(&self) -> SliceSize {
        self.key.slice_size
    }

    /// The row encoding the matrix resolved to under the build policy.
    pub fn encoding(&self) -> RowEncoding {
        self.matrix.encoding()
    }
}

struct CacheInner {
    map: HashMap<PreparedKey, Arc<PreparedGraph>>,
    /// Keys in least-recently-used-first order.
    order: Vec<PreparedKey>,
    hits: u64,
    misses: u64,
}

/// A bounded, keyed cache of prepared graphs with LRU eviction.
///
/// Thread-safe behind a mutex; artifacts are shared out as
/// `Arc<PreparedGraph>` so eviction never invalidates an in-flight
/// execution.
pub struct PreparedCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl std::fmt::Debug for PreparedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PreparedCache(len={}, capacity={}, hits={}, misses={})",
            self.len(),
            self.capacity,
            self.hits(),
            self.misses()
        )
    }
}

impl PreparedCache {
    /// An empty cache holding at most `capacity` prepared graphs.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        PreparedCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: Vec::new(),
                hits: 0,
                misses: 0,
            }),
            capacity,
        }
    }

    /// The cached artifact for `key`, or `None` (recording a hit/miss
    /// either way).
    pub fn get(&self, key: &PreparedKey) -> Option<Arc<PreparedGraph>> {
        let mut inner = self.inner.lock().expect("cache mutex is never poisoned");
        match inner.map.get(key).cloned() {
            Some(found) => {
                inner.hits += 1;
                // Refresh recency.
                inner.order.retain(|k| k != key);
                inner.order.push(*key);
                Some(found)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts `prepared`, evicting the least recently used artifact when
    /// full. Returns the cached value (the existing one if another thread
    /// inserted the same key first).
    pub fn insert(&self, prepared: PreparedGraph) -> Arc<PreparedGraph> {
        let key = *prepared.key();
        let mut inner = self.inner.lock().expect("cache mutex is never poisoned");
        if let Some(existing) = inner.map.get(&key).cloned() {
            return existing;
        }
        let shared = Arc::new(prepared);
        inner.map.insert(key, Arc::clone(&shared));
        inner.order.push(key);
        if inner.order.len() > self.capacity {
            let evicted = inner.order.remove(0);
            inner.map.remove(&evicted);
        }
        shared
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache mutex is never poisoned").map.len()
    }

    /// Maximum number of artifacts the cache holds before evicting.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The cached keys in least-recently-used-first order (for eviction
    /// inspection; does not touch hit/miss counters or recency).
    pub fn keys_lru_first(&self) -> Vec<PreparedKey> {
        self.inner.lock().expect("cache mutex is never poisoned").order.clone()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found a cached artifact.
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("cache mutex is never poisoned").hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.inner.lock().expect("cache mutex is never poisoned").misses
    }

    /// Drops every cached artifact (hit/miss counters are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache mutex is never poisoned");
        inner.map.clear();
        inner.order.clear();
    }
}

/// The staged counting pipeline: a characterized engine, a prepared-graph
/// cache, and value-selected execution backends.
///
/// # Example
///
/// ```
/// use tcim_core::{Backend, TcimConfig, TcimPipeline};
/// use tcim_graph::generators::classic;
///
/// let pipeline = TcimPipeline::new(&TcimConfig::default())?;
/// let prepared = pipeline.prepare(&classic::wheel(12));
/// // Execute the same prepared artifact on two different backends.
/// let pim = pipeline.execute(&prepared, &Backend::SerialPim)?;
/// let cpu = pipeline.execute(&prepared, &Backend::CpuMerge)?;
/// assert_eq!(pim.triangles, 11);
/// assert_eq!(cpu.triangles, 11);
/// # Ok::<(), tcim_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct TcimPipeline {
    config: TcimConfig,
    engine: PimEngine,
    cache: PreparedCache,
    sharded: ShardedCache,
    metrics: PipelineMetrics,
}

impl Clone for TcimPipeline {
    /// Clones the configuration and characterized engine (no
    /// re-characterization); the clone starts with fresh, empty caches
    /// of the same capacity — prepared artifacts are shared by `Arc`,
    /// not by cloning pipelines — and a fresh metrics registry, so the
    /// clone's counts start from zero.
    fn clone(&self) -> Self {
        TcimPipeline {
            config: self.config.clone(),
            engine: self.engine.clone(),
            cache: PreparedCache::new(self.cache.capacity),
            sharded: ShardedCache::new(self.sharded.capacity()),
            metrics: PipelineMetrics::new(),
        }
    }
}

impl TcimPipeline {
    /// Default capacity of the prepared-graph cache.
    pub const DEFAULT_CACHE_CAPACITY: usize = 8;

    /// Characterizes the engine for `config` with the default cache
    /// capacity.
    ///
    /// # Errors
    ///
    /// Propagates configuration and characterization failures.
    pub fn new(config: &TcimConfig) -> Result<Self> {
        TcimPipeline::with_cache_capacity(config, TcimPipeline::DEFAULT_CACHE_CAPACITY)
    }

    /// As [`TcimPipeline::new`] with an explicit cache capacity.
    ///
    /// # Errors
    ///
    /// Propagates configuration and characterization failures.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_cache_capacity(config: &TcimConfig, capacity: usize) -> Result<Self> {
        let engine = PimEngine::new(&config.pim)?;
        Ok(TcimPipeline {
            config: config.clone(),
            engine,
            cache: PreparedCache::new(capacity),
            sharded: ShardedCache::new(capacity),
            metrics: PipelineMetrics::new(),
        })
    }

    /// The configuration this pipeline was built from.
    pub fn config(&self) -> &TcimConfig {
        &self.config
    }

    /// The characterized engine shared by the PIM backends.
    pub fn engine(&self) -> &PimEngine {
        &self.engine
    }

    /// The prepared-graph cache (for hit/miss inspection).
    pub fn cache(&self) -> &PreparedCache {
        &self.cache
    }

    /// The sharded-artifact cache (for hit/miss inspection).
    pub fn sharded_cache(&self) -> &ShardedCache {
        &self.sharded
    }

    /// This pipeline's metric instruments (recorded automatically by
    /// the prepare/execute/query entry points).
    pub fn metrics(&self) -> &PipelineMetrics {
        &self.metrics
    }

    /// A point-in-time read of this pipeline's metrics, extended with
    /// the prepared- and sharded-cache hit/miss counters.
    pub fn metrics_snapshot(&self) -> tcim_telemetry::MetricsSnapshot {
        let mut snapshot = self.metrics.snapshot();
        snapshot.push_counter(
            "tcim_prepared_cache_hits_total",
            "prepared-graph cache lookups that found an artifact",
            self.cache.hits(),
        );
        snapshot.push_counter(
            "tcim_prepared_cache_misses_total",
            "prepared-graph cache lookups that missed",
            self.cache.misses(),
        );
        snapshot.push_counter(
            "tcim_sharded_cache_hits_total",
            "sharded-artifact cache lookups that found an artifact",
            self.sharded.hits(),
        );
        snapshot.push_counter(
            "tcim_sharded_cache_misses_total",
            "sharded-artifact cache lookups that missed",
            self.sharded.misses(),
        );
        snapshot
    }

    /// Partitions an already-prepared graph under `spec`, returning
    /// the cached [`ShardedPreparedGraph`] when one exists — repeated
    /// sharded executions re-partition and re-slice nothing. The
    /// artifact is keyed by spec alone: [`Backend::Sharded`] policies
    /// differing only in inner scheduling share it.
    ///
    /// # Errors
    ///
    /// Propagates [`ShardedPreparedGraph::build`] failures (invalid
    /// spec, slice-size mismatch).
    pub fn prepare_sharded(
        &self,
        prepared: &PreparedGraph,
        spec: &ShardSpec,
    ) -> Result<Arc<ShardedPreparedGraph>> {
        self.sharded.get_or_build(prepared, spec, &self.engine)
    }

    /// Prepares `g` under this pipeline's orientation and slice size,
    /// returning the cached artifact when one exists — repeated calls on
    /// the same graph re-orient and re-slice nothing.
    pub fn prepare(&self, g: &CsrGraph) -> Arc<PreparedGraph> {
        self.prepare_reporting(g).0
    }

    /// As [`TcimPipeline::prepare`], additionally reporting whether the
    /// artifact was served from the cache (`true`) or built by this
    /// call (`false`) — the provenance serving layers record.
    pub fn prepare_reporting(&self, g: &CsrGraph) -> (Arc<PreparedGraph>, bool) {
        let key = PreparedKey::for_graph(
            g,
            self.config.orientation,
            self.config.pim.slice_size,
            self.config.encoding,
        );
        if let Some(found) = self.cache.get(&key) {
            return (found, true);
        }
        let built = self.prepare_uncached(g);
        self.metrics.record_prepared_build(built.encoding());
        (self.cache.insert(built), false)
    }

    /// Prepares `g` without touching the cache (benchmarking, or callers
    /// managing artifact lifetime themselves).
    pub fn prepare_uncached(&self, g: &CsrGraph) -> PreparedGraph {
        PreparedGraph::build(
            g,
            self.config.orientation,
            self.config.pim.slice_size,
            self.config.encoding,
            &self.engine,
        )
    }

    /// Resolves a backend selection into an executable backend bound to
    /// this pipeline's engine. Sharded selections additionally share
    /// the pipeline's [`ShardedCache`], so repeated executions reuse
    /// one partitioned artifact (the raw [`Backend::bind`] builds it
    /// per call).
    pub fn backend(&self, spec: &Backend) -> Box<dyn ExecutionBackend + '_> {
        match spec {
            Backend::Sharded(policy) => Box::new(ShardedBackend::with_cache(
                &self.engine,
                policy.clone(),
                &self.sharded,
            )),
            _ => spec.bind(&self.engine),
        }
    }

    /// Executes `spec` over a prepared graph.
    ///
    /// # Errors
    ///
    /// Propagates backend errors (mismatched slice size, invalid
    /// scheduling policy).
    pub fn execute(&self, prepared: &PreparedGraph, spec: &Backend) -> Result<CountReport> {
        let report = self.backend(spec).execute(prepared)?;
        self.metrics.record_execution(&ExecutionSample {
            backend: &report.backend,
            encoding: prepared.encoding(),
            kernel: &report.kernel,
            execute_time: report.execute_time,
            modelled_time_s: report.modelled_time_s,
            predicted_modelled_s: self.predicted_modelled_s(prepared, spec),
            query: None,
        });
        Ok(report)
    }

    /// Executes every backend in `specs` over one prepared graph,
    /// returning reports in input order.
    ///
    /// # Errors
    ///
    /// Propagates the first backend error.
    pub fn execute_all(
        &self,
        prepared: &PreparedGraph,
        specs: &[Backend],
    ) -> Result<Vec<CountReport>> {
        specs.iter().map(|spec| self.execute(prepared, spec)).collect()
    }

    /// Answers a typed [`Query`] over a prepared graph on the selected
    /// backend — the general entry point [`TcimPipeline::execute`] and
    /// [`TcimPipeline::count`] are the `TotalTriangles` shims of.
    ///
    /// # Errors
    ///
    /// Propagates backend errors, plus
    /// [`CoreError::Query`](crate::CoreError::Query) for invalid query
    /// parameters.
    pub fn query(
        &self,
        prepared: &PreparedGraph,
        spec: &Backend,
        query: &Query,
    ) -> Result<QueryReport> {
        let report = self.backend(spec).query(prepared, query)?;
        self.metrics.record_execution(&ExecutionSample {
            backend: &report.backend,
            encoding: prepared.encoding(),
            kernel: &report.kernel,
            execute_time: report.execute_time,
            modelled_time_s: report.modelled_time_s,
            predicted_modelled_s: self.predicted_modelled_s(prepared, spec),
            query: Some(query.label()),
        });
        Ok(report)
    }

    /// Answers every query in `queries` over one prepared graph on one
    /// backend, in input order.
    ///
    /// # Errors
    ///
    /// Propagates the first query error.
    pub fn query_all(
        &self,
        prepared: &PreparedGraph,
        spec: &Backend,
        queries: &[Query],
    ) -> Result<Vec<QueryReport>> {
        let backend = self.backend(spec);
        queries
            .iter()
            .map(|q| {
                let report = backend.query(prepared, q)?;
                self.metrics.record_execution(&ExecutionSample {
                    backend: &report.backend,
                    encoding: prepared.encoding(),
                    kernel: &report.kernel,
                    execute_time: report.execute_time,
                    modelled_time_s: report.modelled_time_s,
                    predicted_modelled_s: self.predicted_modelled_s(prepared, spec),
                    query: Some(q.label()),
                });
                Ok(report)
            })
            .collect()
    }

    /// One-shot convenience: prepare (cached) and execute — the
    /// [`Query::TotalTriangles`] shim kept for existing drivers.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn count(&self, g: &CsrGraph, spec: &Backend) -> Result<CountReport> {
        self.execute(&self.prepare(g), spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_graph::generators::{classic, gnm};

    fn pipeline() -> TcimPipeline {
        TcimPipeline::new(&TcimConfig::default()).unwrap()
    }

    #[test]
    fn prepare_is_cached_by_graph_identity() {
        let p = pipeline();
        let g = gnm(120, 700, 3).unwrap();
        let a = p.prepare(&g);
        let b = p.prepare(&g);
        assert!(Arc::ptr_eq(&a, &b), "second prepare must return the cached artifact");
        assert_eq!(p.cache().hits(), 1);
        assert_eq!(p.cache().misses(), 1);
        // An equal reconstruction of the graph also hits.
        let g2 =
            CsrGraph::from_edges(g.vertex_count(), g.edges().collect::<Vec<_>>()).unwrap();
        let c = p.prepare(&g2);
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn distinct_graphs_prepare_distinct_artifacts() {
        let p = pipeline();
        let a = p.prepare(&classic::wheel(10));
        let b = p.prepare(&classic::wheel(11));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.key(), b.key());
        assert_eq!(p.cache().len(), 2);
    }

    #[test]
    fn pricing_matches_measured_work() {
        let p = pipeline();
        let g = gnm(200, 1400, 9).unwrap();
        let prepared = p.prepare(&g);
        let run = p.engine().run(prepared.matrix());
        // The priced pair population is exact.
        assert_eq!(prepared.pricing().slice_pairs, run.stats.and_ops);
        assert!(prepared.pricing().est_busy_s > 0.0);
        assert!(prepared.pricing().controller_s > 0.0);
        assert_eq!(prepared.slice_stats().nnz as usize, g.edge_count());
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let p = TcimPipeline::with_cache_capacity(&TcimConfig::default(), 2).unwrap();
        let g1 = classic::wheel(10);
        let g2 = classic::wheel(11);
        let g3 = classic::wheel(12);
        let first = p.prepare(&g1);
        p.prepare(&g2);
        p.prepare(&g1); // refresh g1 → g2 becomes LRU
        p.prepare(&g3); // evicts g2
        assert_eq!(p.cache().len(), 2);
        assert!(Arc::ptr_eq(&first, &p.prepare(&g1)), "g1 must have survived");
        let misses_before = p.cache().misses();
        p.prepare(&g2); // g2 was evicted → rebuild
        assert_eq!(p.cache().misses(), misses_before + 1);
    }

    /// Direct cache-level LRU regression: eviction removes the least
    /// recently used key and `get` refreshes recency — pinned at the
    /// `PreparedCache` API level, independent of pipeline plumbing.
    #[test]
    fn cache_evictions_follow_lru_order_and_get_refreshes_recency() {
        let p = pipeline();
        let engine = p.engine();
        let prepared_for = |n: usize| {
            PreparedGraph::build(
                &classic::wheel(n),
                Orientation::Natural,
                SliceSize::S64,
                EncodingPolicy::default(),
                engine,
            )
        };
        let cache = PreparedCache::new(2);
        assert_eq!(cache.capacity(), 2);
        let ka = *cache.insert(prepared_for(10)).key();
        let kb = *cache.insert(prepared_for(11)).key();
        assert_eq!(cache.keys_lru_first(), vec![ka, kb]);

        // A hit moves the key to most-recently-used.
        assert!(cache.get(&ka).is_some());
        assert_eq!(cache.keys_lru_first(), vec![kb, ka]);

        // The next insert evicts the LRU key (kb), not the refreshed ka.
        let kc = *cache.insert(prepared_for(12)).key();
        assert_eq!(cache.keys_lru_first(), vec![ka, kc]);
        assert!(cache.get(&kb).is_none(), "kb was the LRU victim");
        assert!(cache.get(&ka).is_some(), "ka survived thanks to the refresh");

        // Eviction keeps following recency: ka was just refreshed, so
        // kc is now the victim.
        let kd = *cache.insert(prepared_for(13)).key();
        assert_eq!(cache.keys_lru_first(), vec![ka, kd]);
        assert!(cache.get(&kc).is_none());

        // Re-inserting a resident key returns the cached artifact and
        // evicts nothing.
        let again = cache.insert(prepared_for(13));
        assert_eq!(*again.key(), kd);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_preserves_counters() {
        let p = pipeline();
        p.prepare(&classic::wheel(10));
        p.prepare(&classic::wheel(10));
        p.cache().clear();
        assert!(p.cache().is_empty());
        assert_eq!(p.cache().hits(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_cache_panics() {
        PreparedCache::new(0);
    }
}
