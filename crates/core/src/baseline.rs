//! CPU triangle-counting baselines (§II-A of the paper).
//!
//! The paper compares against "the intersect-based algorithm … with the
//! Spark GraphX framework" on a single CPU core. Four software baselines
//! are provided, spanning the realism spectrum:
//!
//! * [`hash_intersect`] — per-edge hash-set intersection with per-edge
//!   set materialisation, deliberately framework-flavoured; this plays the
//!   role of the paper's slow CPU column.
//! * [`edge_iterator_merge`] — per-edge sorted-list merge intersection,
//!   the standard tuned sequential algorithm.
//! * [`forward`] — the forward algorithm (Schank & Wagner): intersects
//!   dynamically grown predecessor sets in degree order; the strongest
//!   sequential baseline here.
//! * [`parallel_edge_iterator`] — the merge intersection fanned out over
//!   crossbeam scoped threads (a multicore ablation, not a paper column).
//!
//! All baselines return exact counts and are cross-checked against each
//! other and the PIM dataflow in the integration tests.

use std::collections::HashSet;

use tcim_graph::{CsrGraph, Orientation};

/// Intersection size of two sorted slices.
fn merge_intersect_count(a: &[u32], b: &[u32]) -> u64 {
    let mut count = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Framework-flavoured intersect baseline: for every edge, materialise
/// both endpoint neighbour sets in hash maps and intersect them — the
/// per-record overhead profile of a dataflow framework like GraphX.
///
/// Counts each triangle exactly once via the `u < v < w` orientation.
///
/// # Example
///
/// ```
/// use tcim_core::baseline::hash_intersect;
/// use tcim_graph::generators::classic;
///
/// assert_eq!(hash_intersect(&classic::fig2_example()), 2);
/// ```
pub fn hash_intersect(g: &CsrGraph) -> u64 {
    let mut triangles = 0u64;
    for (u, v) in g.edges() {
        // Rebuild the sets per edge, as a record-at-a-time framework does.
        let set_u: HashSet<u32> = g.neighbors(u).iter().copied().filter(|&w| w > v).collect();
        let set_v: HashSet<u32> = g.neighbors(v).iter().copied().filter(|&w| w > v).collect();
        triangles += set_u.intersection(&set_v).count() as u64;
    }
    triangles
}

/// Tuned edge-iterator: merge-intersect the sorted adjacency lists of the
/// two endpoints, restricted to higher-numbered vertices so each triangle
/// is counted once.
pub fn edge_iterator_merge(g: &CsrGraph) -> u64 {
    let mut triangles = 0u64;
    for (u, v) in g.edges() {
        let above = |list: &[u32]| -> usize { list.partition_point(|&w| w <= v) };
        let nu = g.neighbors(u);
        let nv = g.neighbors(v);
        triangles += merge_intersect_count(&nu[above(nu)..], &nv[above(nv)..]);
    }
    triangles
}

/// The forward algorithm: process vertices in degree order; for each arc
/// `(u, v)` intersect the already-seen predecessor sets `A[u] ∩ A[v]`,
/// then append `u` to `A[v]`. `O(m^{3/2})` with small constants.
pub fn forward(g: &CsrGraph) -> u64 {
    let oriented = Orientation::Degree.orient(g);
    let n = oriented.vertex_count();
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut triangles = 0u64;
    for i in 0..n as u32 {
        for &j in oriented.row(i) {
            triangles += merge_intersect_count(&preds[i as usize], &preds[j as usize]);
            // Predecessors are appended in ascending i, so lists stay
            // sorted.
            preds[j as usize].push(i);
        }
    }
    triangles
}

/// Merge-based edge iterator parallelised over `threads` crossbeam scoped
/// threads. Edges are partitioned by origin vertex in contiguous stripes.
///
/// # Panics
///
/// Panics when `threads` is zero.
pub fn parallel_edge_iterator(g: &CsrGraph, threads: usize) -> u64 {
    assert!(threads > 0, "at least one worker thread is required");
    let n = g.vertex_count();
    if n == 0 {
        return 0;
    }
    let chunk = n.div_ceil(threads);
    let mut total = 0u64;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = (t * chunk).min(n) as u32;
                let hi = ((t + 1) * chunk).min(n) as u32;
                scope.spawn(move |_| {
                    let mut local = 0u64;
                    for u in lo..hi {
                        for &v in g.neighbors(u).iter().filter(|&&v| v > u) {
                            let above = |list: &[u32]| list.partition_point(|&w| w <= v);
                            let nu = g.neighbors(u);
                            let nv = g.neighbors(v);
                            local += merge_intersect_count(&nu[above(nu)..], &nv[above(nv)..]);
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            total += h.join().expect("worker threads do not panic");
        }
    })
    .expect("crossbeam scope never fails to join");
    total
}

/// Per-vertex triangle participation counts (each triangle contributes to
/// all three of its vertices). Used for local clustering coefficients.
pub fn local_triangles(g: &CsrGraph) -> Vec<u64> {
    let mut per_vertex = vec![0u64; g.vertex_count()];
    for (u, v) in g.edges() {
        let above = |list: &[u32]| -> usize { list.partition_point(|&w| w <= v) };
        let nu = g.neighbors(u);
        let nv = g.neighbors(v);
        let (mut i, mut j) = (above(nu), above(nv));
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let w = nu[i];
                    per_vertex[u as usize] += 1;
                    per_vertex[v as usize] += 1;
                    per_vertex[w as usize] += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    per_vertex
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_graph::generators::{classic, gnm};

    fn all_counts(g: &CsrGraph) -> Vec<u64> {
        vec![
            hash_intersect(g),
            edge_iterator_merge(g),
            forward(g),
            parallel_edge_iterator(g, 4),
        ]
    }

    #[test]
    fn fig2_all_baselines_agree_on_two() {
        let g = classic::fig2_example();
        assert_eq!(all_counts(&g), vec![2, 2, 2, 2]);
    }

    #[test]
    fn complete_graph_counts() {
        for n in [3usize, 5, 10, 20] {
            let g = classic::complete(n);
            let expected = classic::complete_triangles(n);
            for (idx, c) in all_counts(&g).into_iter().enumerate() {
                assert_eq!(c, expected, "baseline {idx} on K_{n}");
            }
        }
    }

    #[test]
    fn triangle_free_graphs_count_zero() {
        for g in [
            classic::star(50),
            classic::cycle(17),
            classic::complete_bipartite(6, 7),
            classic::path(30),
        ] {
            assert_eq!(all_counts(&g), vec![0, 0, 0, 0]);
        }
    }

    #[test]
    fn wheel_counts_rim_size() {
        let g = classic::wheel(10); // 9 rim triangles
        assert_eq!(all_counts(&g), vec![9, 9, 9, 9]);
    }

    #[test]
    fn baselines_agree_on_random_graphs() {
        for seed in 0..5 {
            let g = gnm(200, 1200, seed).unwrap();
            let reference = edge_iterator_merge(&g);
            assert_eq!(hash_intersect(&g), reference, "seed {seed}");
            assert_eq!(forward(&g), reference, "seed {seed}");
            assert_eq!(parallel_edge_iterator(&g, 3), reference, "seed {seed}");
        }
    }

    #[test]
    fn local_counts_sum_to_three_per_triangle() {
        let g = gnm(150, 900, 7).unwrap();
        let total = edge_iterator_merge(&g);
        let local: u64 = local_triangles(&g).iter().sum();
        assert_eq!(local, 3 * total);
    }

    #[test]
    fn parallel_with_one_thread_matches_sequential() {
        let g = gnm(100, 500, 1).unwrap();
        assert_eq!(parallel_edge_iterator(&g, 1), edge_iterator_merge(&g));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        parallel_edge_iterator(&classic::fig2_example(), 0);
    }

    #[test]
    fn empty_graph_counts_zero() {
        let g = CsrGraph::from_edges(0, []).unwrap();
        assert_eq!(all_counts(&g), vec![0, 0, 0, 0]);
    }
}
