//! The motif engine: k-truss decomposition and 4-clique counting on
//! the same AND+BitCount kernel family that counts triangles.
//!
//! The journal extension of the source paper frames triangle counting
//! as the base case of a family of subgraph analytics that all reduce
//! to bulk bitwise AND plus BitCount. This module implements the next
//! two members over the *full-neighbourhood* rows of the input graph
//! (in input-id space, so answers are orientation-invariant by
//! construction):
//!
//! * **k-truss** ([`Query::KTruss`]): the full trussness decomposition
//!   by iterated support peeling. Each peeled edge costs exactly one
//!   deletion-delta kernel — `N(u) AND N(v)` over the *live* rows to
//!   find the triangles the removal destroys — and edges are cleared
//!   with in-place bit patches, exactly like `tcim-stream` deletion
//!   deltas: **no re-slice between rounds**, ever. The initial per-edge
//!   supports are seeded from the anchoring attributed execution
//!   (`EdgeSupport` is already computed on every backend), so peeling
//!   starts from the kernels the backend already ran.
//! * **4-clique** ([`Query::FourCliques`]): for every edge, the first
//!   AND yields the triangle witness row; its above-the-edge witnesses
//!   flow through the existing [`TriangleSink`] attribution hook (a
//!   [`TriangleTally`] re-derives the anchor run's census as a built-in
//!   cross-check), then a **second AND** is chained over the
//!   re-materialized witness row against each witness's neighbourhood
//!   row, closing each `K_4` exactly once at its two smallest vertices.
//!
//! Kernel accounting is honest per flavor: PIM/software backends run
//! [`MotifFlavor::Sliced`] (real sliced rows, pair/readout/skip
//! accounting identical in meaning to the triangle kernels), CPU
//! baselines run [`MotifFlavor::Adjacency`] (sorted-list merges, one
//! kernel invocation per intersection and zero slice pairs — the same
//! invariant the triangle path keeps). Backends with a hardware cost
//! model attach a [`MotifPricing`]: every peel pass / chained-AND wave
//! becomes a round of [`DeltaJob`]s placed by [`plan_deltas`] under
//! the backend's own scheduling policy, and the modelled time/energy
//! land on top of the anchor run's.

use std::collections::BTreeMap;
use std::time::Instant;

use tcim_arch::{SliceCostModel, TriangleSink, TriangleTally};
use tcim_bitmatrix::popcount::visit_set_bits;
use tcim_bitmatrix::{RowEncoding, SliceSize, SlicedRow};
use tcim_sched::{plan_deltas, DeltaJob, SchedPolicy};

use crate::backend::AttributedRun;
use crate::error::{CoreError, Result};
use crate::pipeline::PreparedGraph;
use crate::query::{EdgeTruss, KernelStats, Query, QueryReport, QueryValue};

/// What a motif engine hands back: the answer payload plus the kernel
/// stats and the modelled time/energy accumulated over its rounds.
type MotifOutcome<T> = Result<(T, KernelStats, Option<f64>, Option<f64>)>;

/// How a backend's motif engine runs its intersections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MotifFlavor {
    /// Real sliced-row AND+BitCount kernels over full-neighbourhood
    /// rows (PIM and software-sliced backends). Pair, readout and
    /// skip accounting mean exactly what they mean for triangles.
    Sliced,
    /// Sorted adjacency-list merges (the CPU baselines): one kernel
    /// invocation per intersection, zero slice pairs — the same
    /// "CPU baselines intersect adjacency lists" invariant the
    /// triangle path keeps.
    Adjacency,
}

/// The cost model a simulated-hardware backend prices motif kernels
/// with: its engine's slice costs plus its own scheduling policy, so
/// peel passes and chained-AND waves are placed as delta-job rounds
/// exactly like streaming updates and shard composition.
#[derive(Debug, Clone)]
pub struct MotifPricing {
    /// Per-operation slice costs of the characterized engine.
    pub costs: SliceCostModel,
    /// The placement policy delta rounds are planned under.
    pub sched: SchedPolicy,
}

impl MotifPricing {
    /// Prices motif kernels with `costs` under `sched`.
    pub fn new(costs: SliceCostModel, sched: SchedPolicy) -> Self {
        MotifPricing { costs, sched }
    }
}

/// One intersection's pricing sample (operand sizes + observed work).
#[derive(Debug, Clone, Copy, Default)]
struct KernelSample {
    valid_a: u64,
    valid_b: u64,
    pairs: u64,
    readouts: u64,
}

/// Accumulates delta-job rounds into modelled time/energy under a
/// [`MotifPricing`]; a no-op when the backend has none.
struct PricedRounds<'p> {
    pricing: Option<&'p MotifPricing>,
    round: Vec<DeltaJob>,
    time_s: f64,
    energy_j: f64,
}

impl<'p> PricedRounds<'p> {
    fn new(pricing: Option<&'p MotifPricing>) -> Self {
        PricedRounds { pricing, round: Vec::new(), time_s: 0.0, energy_j: 0.0 }
    }

    /// Adds one kernel to the open round and bills its energy (energy
    /// is placement-independent; latency waits for the round plan).
    fn push(&mut self, sample: KernelSample) {
        let Some(p) = self.pricing else { return };
        let id = self.round.len();
        let job = DeltaJob::price(id, sample.valid_a, sample.valid_b, sample.pairs, &p.costs);
        self.energy_j += job.write_slices as f64 * p.costs.write_energy_j
            + sample.pairs as f64 * (p.costs.and_energy_j + p.costs.bitcount_energy_j)
            + sample.readouts as f64 * p.costs.readout_energy_j;
        self.round.push(job);
    }

    /// Closes the open round: places its jobs under the policy and
    /// adds the plan's critical path plus per-kernel dispatch overhead.
    fn close_round(&mut self) -> Result<()> {
        let Some(p) = self.pricing else { return Ok(()) };
        if self.round.is_empty() {
            return Ok(());
        }
        let plan = plan_deltas(&self.round, &p.sched)?;
        self.time_s +=
            plan.critical_path_s() + self.round.len() as f64 * p.costs.controller_overhead_s;
        self.round.clear();
        Ok(())
    }

    fn modelled(&self) -> (Option<f64>, Option<f64>) {
        match self.pricing {
            Some(_) => (Some(self.time_s), Some(self.energy_j)),
            None => (None, None),
        }
    }
}

/// The live motif state: full-neighbourhood adjacency (input ids,
/// sorted) plus, for the sliced flavor, one [`SlicedRow`] per vertex.
/// Rows are built with [`SlicedRow::from_sorted_indices`] and patched
/// in place with `clear_bit` — never via a matrix build, so
/// `matrices_built()` provably stays flat across peeling.
struct MotifState {
    adjacency: Vec<Vec<u32>>,
    rows: Option<Vec<SlicedRow>>,
    slice_size: SliceSize,
    sparse: bool,
    kernel: KernelStats,
}

impl MotifState {
    fn new(
        adjacency: Vec<Vec<u32>>,
        flavor: MotifFlavor,
        slice_size: SliceSize,
        encoding: RowEncoding,
    ) -> Self {
        let n = adjacency.len();
        let rows = match flavor {
            MotifFlavor::Adjacency => None,
            MotifFlavor::Sliced => Some(
                adjacency
                    .iter()
                    .map(|list| {
                        SlicedRow::from_sorted_indices(
                            n,
                            list.iter().map(|&v| v as usize),
                            slice_size,
                            encoding,
                        )
                    })
                    .collect(),
            ),
        };
        MotifState {
            adjacency,
            rows,
            slice_size,
            sparse: encoding == RowEncoding::Sparse,
            kernel: KernelStats::default(),
        }
    }

    /// `N(u) ∩ N(v)` over the live state: one AND+BitCount kernel
    /// (sliced flavor) or one sorted merge (adjacency flavor), with
    /// the flavor's honest accounting.
    fn intersect(&mut self, u: u32, v: u32) -> (Vec<u32>, KernelSample) {
        match &self.rows {
            Some(rows) => sliced_kernel(
                &rows[u as usize],
                &rows[v as usize],
                self.slice_size.bits(),
                self.sparse,
                &mut self.kernel,
            ),
            None => {
                let witnesses =
                    merge_sorted(&self.adjacency[u as usize], &self.adjacency[v as usize]);
                self.kernel.kernel_invocations += 1;
                (witnesses, KernelSample::default())
            }
        }
    }

    /// As [`MotifState::intersect`], against an ad-hoc operand row
    /// (the chained second AND over a re-materialized witness row).
    fn intersect_row(&mut self, c: u32, witness_row: &WitnessRow) -> (Vec<u32>, KernelSample) {
        match (&self.rows, witness_row) {
            (Some(rows), WitnessRow::Sliced(row)) => sliced_kernel(
                &rows[c as usize],
                row,
                self.slice_size.bits(),
                self.sparse,
                &mut self.kernel,
            ),
            (None, WitnessRow::List(list)) => {
                let xs = merge_sorted(&self.adjacency[c as usize], list);
                self.kernel.kernel_invocations += 1;
                (xs, KernelSample::default())
            }
            _ => unreachable!("witness rows are built by the same state"),
        }
    }

    /// Removes edge `{u, v}` from the live state: list removal plus an
    /// in-place `clear_bit` patch on both rows (a deletion delta).
    fn remove_edge(&mut self, u: u32, v: u32) {
        for (x, y) in [(u, v), (v, u)] {
            let list = &mut self.adjacency[x as usize];
            if let Ok(pos) = list.binary_search(&y) {
                list.remove(pos);
            }
            if let Some(rows) = &mut self.rows {
                rows[x as usize]
                    .clear_bit(y as usize)
                    .expect("edge endpoints are within the row universe");
            }
        }
    }

    /// Materializes a witness set as a kernel operand for the chained
    /// second AND.
    fn witness_row(&self, n: usize, witnesses: &[u32]) -> WitnessRow {
        match &self.rows {
            Some(rows) => {
                let encoding = rows.first().map_or(RowEncoding::Dense, SlicedRow::encoding);
                let row = SlicedRow::from_sorted_indices(
                    n,
                    witnesses.iter().map(|&w| w as usize),
                    self.slice_size,
                    encoding,
                );
                WitnessRow::Sliced(row)
            }
            None => WitnessRow::List(witnesses.to_vec()),
        }
    }
}

/// The sliced kernel: AND matching valid pairs, read each non-zero
/// result back out for its witnesses. Sparse operands whose byte masks
/// prove every pair disjoint are never dispatched — the same rule the
/// sparse triangle dispatch applies.
fn sliced_kernel(
    a: &SlicedRow,
    b: &SlicedRow,
    slice_bits: u32,
    sparse: bool,
    kernel: &mut KernelStats,
) -> (Vec<u32>, KernelSample) {
    let mut witnesses = Vec::new();
    let mut readouts = 0u64;
    let stats = a
        .for_each_matching(b, |k, anded| {
            let before = witnesses.len();
            visit_set_bits(anded.iter().copied(), |offset| {
                witnesses.push(k * slice_bits + offset);
            });
            if witnesses.len() > before {
                readouts += 1;
            }
        })
        .expect("motif rows share one universe and encoding");
    if !sparse || stats.visited > 0 {
        kernel.kernel_invocations += 1;
    }
    kernel.slice_pairs += stats.visited;
    kernel.blocks_skipped += stats.skipped;
    kernel.result_readouts += readouts;
    let sample = KernelSample {
        valid_a: a.valid_slice_count() as u64,
        valid_b: b.valid_slice_count() as u64,
        pairs: stats.visited,
        readouts,
    };
    (witnesses, sample)
}

/// A re-materialized witness set, in the state's operand form.
enum WitnessRow {
    Sliced(SlicedRow),
    List(Vec<u32>),
}

/// Intersection of two sorted ascending lists.
fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Full-neighbourhood adjacency of the prepared graph in *input-id*
/// space (the orientation's relabelling undone), sorted ascending.
fn full_adjacency(prepared: &PreparedGraph) -> Vec<Vec<u32>> {
    let oriented = prepared.oriented();
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); oriented.vertex_count()];
    for (i, j) in oriented.arcs() {
        let a = oriented.original_id(i);
        let b = oriented.original_id(j);
        adjacency[a as usize].push(b);
        adjacency[b as usize].push(a);
    }
    for list in &mut adjacency {
        list.sort_unstable();
    }
    adjacency
}

/// Seeds the per-edge support map (every edge, input ids, `u < v`)
/// from the anchor run's arc-support list — zero-filled for edges in
/// no triangle, which the attributed run omits.
fn seeded_support(
    prepared: &PreparedGraph,
    adjacency: &[Vec<u32>],
    support: Option<&[(u32, u32, u64)]>,
) -> BTreeMap<(u32, u32), u64> {
    let mut map = BTreeMap::new();
    for (u, list) in adjacency.iter().enumerate() {
        let u = u as u32;
        for &v in list.iter().filter(|&&v| v > u) {
            map.insert((u, v), 0u64);
        }
    }
    let oriented = prepared.oriented();
    for &(i, j, s) in support.into_iter().flatten() {
        let a = oriented.original_id(i);
        let b = oriented.original_id(j);
        map.insert((a.min(b), a.max(b)), s);
    }
    map
}

/// The peeling engine: full trussness decomposition by iterated
/// support peeling. At level `k = 3, 4, …`, edges with support below
/// `k − 2` are peeled to a fixpoint (each peel is one deletion-delta
/// kernel over the live rows; the destroyed triangles' other two edges
/// are decremented in place) and assigned trussness `k − 1`. Each peel
/// pass is priced as one delta-job round. The decomposition computes
/// *every* edge's trussness regardless of the queried level, so one
/// run answers any `k` (and cross-`k` batches coalesce for free).
fn truss_decompose(
    mut state: MotifState,
    mut support: BTreeMap<(u32, u32), u64>,
    pricing: Option<&MotifPricing>,
) -> MotifOutcome<Vec<EdgeTruss>> {
    let mut priced = PricedRounds::new(pricing);
    let mut truss: BTreeMap<(u32, u32), u32> = BTreeMap::new();
    let mut level = 3u32;
    while !support.is_empty() {
        loop {
            // The peel set is re-read from the live supports each pass
            // (deterministic ascending edge order); supports only ever
            // decrease, so every selected edge still qualifies when
            // its turn comes, whatever its batch-mates destroyed.
            let peel: Vec<(u32, u32)> = support
                .iter()
                .filter(|&(_, &s)| s < u64::from(level - 2))
                .map(|(&e, _)| e)
                .collect();
            if peel.is_empty() {
                break;
            }
            for (u, v) in peel {
                let (witnesses, sample) = state.intersect(u, v);
                priced.push(sample);
                for w in witnesses {
                    // Removing {u, v} destroys triangle {u, v, w}: its
                    // other two edges each lose one support.
                    for e in [(u.min(w), u.max(w)), (v.min(w), v.max(w))] {
                        let s = support
                            .get_mut(&e)
                            .expect("witnesses come from live rows, so both edges are live");
                        *s = s.saturating_sub(1);
                    }
                }
                state.remove_edge(u, v);
                support.remove(&(u, v));
                truss.insert((u, v), level - 1);
            }
            priced.close_round()?;
        }
        level += 1;
    }
    let edges =
        truss.into_iter().map(|((u, v), trussness)| EdgeTruss { u, v, trussness }).collect();
    let (time_s, energy_j) = priced.modelled();
    Ok((edges, state.kernel, time_s, energy_j))
}

/// The chained-AND 4-clique engine. For every edge `(u, v)`, `u < v`:
/// the first AND yields the witness set; witnesses above `v` flow
/// through the [`TriangleSink`] hook (each triangle exactly once, at
/// its smallest edge) and form the witness row `W`; then for each
/// witness `c` (except the largest, which has no candidate partner) a
/// second AND of `N(c)` against the re-materialized `W` closes every
/// `K_4 = {u < v < c < x}` exactly once. The witness-row writes and
/// both AND waves are billed (rounds: all first ANDs, then all
/// chained ANDs).
fn four_clique_engine(
    mut state: MotifState,
    pricing: Option<&MotifPricing>,
    expected_triangles: Option<u64>,
) -> MotifOutcome<(u64, Vec<u64>)> {
    let n = state.adjacency.len();
    let mut priced = PricedRounds::new(pricing);
    let mut tally = TriangleTally::new(n, false);
    let mut per_vertex = vec![0u64; n];
    let mut total = 0u64;
    let edges: Vec<(u32, u32)> = state
        .adjacency
        .iter()
        .enumerate()
        .flat_map(|(u, list)| {
            let u = u as u32;
            list.iter().copied().filter(move |&v| v > u).map(move |v| (u, v))
        })
        .collect();
    // Pass 1: per-edge triangle witness rows (the kernels the triangle
    // count already runs, re-driven here over full-neighbourhood rows).
    let mut chained: Vec<((u32, u32), Vec<u32>)> = Vec::new();
    for (u, v) in edges {
        let (witnesses, sample) = state.intersect(u, v);
        priced.push(sample);
        let above: Vec<u32> = witnesses.into_iter().filter(|&w| w > v).collect();
        for &w in &above {
            tally.triangle(u, v, w);
        }
        if above.len() >= 2 {
            chained.push(((u, v), above));
        }
    }
    priced.close_round()?;
    if let Some(expected) = expected_triangles {
        let (found, _, _) = tally.into_parts();
        if found != expected {
            return Err(CoreError::Pipeline {
                reason: format!(
                    "4-clique witness pass found {found} triangles but the anchor \
                     run counted {expected}"
                ),
            });
        }
    }
    // Pass 2: chain the second AND over each witness row. The row's
    // valid slices are billed as the second operand's write cost in
    // each chained job — the array must hold W to AND against it.
    for ((u, v), above) in chained {
        let witness_row = state.witness_row(n, &above);
        for &c in &above[..above.len() - 1] {
            let (xs, sample) = state.intersect_row(c, &witness_row);
            priced.push(sample);
            for x in xs.into_iter().filter(|&x| x > c) {
                total += 1;
                for p in [u, v, c, x] {
                    per_vertex[p as usize] += 1;
                }
            }
        }
    }
    priced.close_round()?;
    let (time_s, energy_j) = priced.modelled();
    Ok(((total, per_vertex), state.kernel, time_s, energy_j))
}

/// Merges the motif engine's accounting on top of the anchor run's
/// into the final report envelope.
#[allow(clippy::too_many_arguments)]
fn assemble(
    prepared: &PreparedGraph,
    query: &Query,
    base: AttributedRun,
    value: QueryValue,
    motif_kernel: KernelStats,
    motif_time_s: Option<f64>,
    motif_energy_j: Option<f64>,
    started: Instant,
) -> QueryReport {
    let combine = |a: Option<f64>, b: Option<f64>| match (a, b) {
        (Some(a), Some(b)) => Some(a + b),
        (a, b) => a.or(b),
    };
    QueryReport {
        backend: base.backend,
        query: query.clone(),
        value,
        triangles: base.triangles,
        execute_time: base.execute_time + started.elapsed(),
        modelled_time_s: combine(base.modelled_time_s, motif_time_s),
        modelled_energy_j: combine(base.modelled_energy_j, motif_energy_j),
        kernel: base.kernel.merged(&motif_kernel),
        compressed_bytes: prepared.slice_stats().compressed_bytes,
        sharding: base.sharding,
    }
}

/// Answers [`Query::KTruss`] over a prepared graph, anchored on the
/// backend's own attributed run (`base` must carry the support list).
pub(crate) fn ktruss_report(
    prepared: &PreparedGraph,
    query: &Query,
    base: AttributedRun,
    flavor: MotifFlavor,
    pricing: Option<MotifPricing>,
    k: u32,
) -> Result<QueryReport> {
    let started = Instant::now();
    let adjacency = full_adjacency(prepared);
    let support = seeded_support(prepared, &adjacency, base.support.as_deref());
    let state = MotifState::new(adjacency, flavor, prepared.slice_size(), prepared.encoding());
    let (edges, kernel, time_s, energy_j) = truss_decompose(state, support, pricing.as_ref())?;
    let value = QueryValue::KTruss { k, edges };
    Ok(assemble(prepared, query, base, value, kernel, time_s, energy_j, started))
}

/// Answers [`Query::FourCliques`] over a prepared graph, anchored on
/// the backend's own attributed run (whose triangle census the first
/// witness pass must reproduce).
pub(crate) fn four_clique_report(
    prepared: &PreparedGraph,
    query: &Query,
    base: AttributedRun,
    flavor: MotifFlavor,
    pricing: Option<MotifPricing>,
) -> Result<QueryReport> {
    let started = Instant::now();
    let adjacency = full_adjacency(prepared);
    let state = MotifState::new(adjacency, flavor, prepared.slice_size(), prepared.encoding());
    let ((total, per_vertex), kernel, time_s, energy_j) =
        four_clique_engine(state, pricing.as_ref(), Some(base.triangles))?;
    let value = QueryValue::FourCliques { total, per_vertex };
    Ok(assemble(prepared, query, base, value, kernel, time_s, energy_j, started))
}

/// The live-graph entry point for [`Query::KTruss`]: peels directly
/// over full-neighbourhood rows built from a maintained adjacency
/// (sorted neighbour lists, input ids). Initial supports are computed
/// with one kernel per edge — the same kernels a live
/// [`Query::EdgeSupport`] runs — then peeling proceeds as on the
/// prepared path. Returns the value plus the motif kernel accounting.
pub fn ktruss_value_from_adjacency(
    adjacency: &[Vec<u32>],
    slice_size: SliceSize,
    encoding: RowEncoding,
    k: u32,
) -> (QueryValue, KernelStats) {
    let mut state =
        MotifState::new(adjacency.to_vec(), MotifFlavor::Sliced, slice_size, encoding);
    let mut support = BTreeMap::new();
    for (u, list) in adjacency.iter().enumerate() {
        let u = u as u32;
        for &v in list.iter().filter(|&&v| v > u) {
            let (witnesses, _) = state.intersect(u, v);
            support.insert((u, v), witnesses.len() as u64);
        }
    }
    let (edges, kernel, _, _) =
        truss_decompose(state, support, None).expect("unpriced peeling cannot fail");
    (QueryValue::KTruss { k, edges }, kernel)
}

/// The live-graph entry point for [`Query::FourCliques`]: chained
/// ANDs over full-neighbourhood rows built from a maintained
/// adjacency. Returns the value plus the motif kernel accounting.
pub fn four_cliques_from_adjacency(
    adjacency: &[Vec<u32>],
    slice_size: SliceSize,
    encoding: RowEncoding,
) -> (QueryValue, KernelStats) {
    let state = MotifState::new(adjacency.to_vec(), MotifFlavor::Sliced, slice_size, encoding);
    let ((total, per_vertex), kernel, _, _) =
        four_clique_engine(state, None, None).expect("unpriced clique chaining cannot fail");
    (QueryValue::FourCliques { total, per_vertex }, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_graph::generators::classic;
    use tcim_graph::oracle;

    fn adjacency_of(g: &tcim_graph::CsrGraph) -> Vec<Vec<u32>> {
        g.vertices().map(|v| g.neighbors(v).to_vec()).collect()
    }

    fn slice16() -> SliceSize {
        SliceSize::S16
    }

    #[test]
    fn sliced_and_adjacency_flavors_agree_on_trussness() {
        for g in [classic::fig2_example(), classic::wheel(10), classic::complete(6)] {
            let adjacency = adjacency_of(&g);
            let mut values = Vec::new();
            for encoding in [RowEncoding::Dense, RowEncoding::Sparse] {
                let (value, _) =
                    ktruss_value_from_adjacency(&adjacency, slice16(), encoding, 3);
                values.push(value);
            }
            assert_eq!(values[0], values[1]);
            let expected: Vec<EdgeTruss> = oracle::trussness(&g)
                .into_iter()
                .map(|(u, v, trussness)| EdgeTruss { u, v, trussness })
                .collect();
            assert_eq!(values[0].trussness().unwrap(), &expected[..]);
        }
    }

    #[test]
    fn four_clique_chaining_matches_the_oracle() {
        for g in [classic::fig2_example(), classic::complete(5), classic::complete(7)] {
            let adjacency = adjacency_of(&g);
            let (value, kernel) =
                four_cliques_from_adjacency(&adjacency, slice16(), RowEncoding::Dense);
            let (expected_total, expected_per_vertex) = oracle::four_cliques(&g);
            let (total, per_vertex) = value.four_cliques().unwrap();
            assert_eq!(total, expected_total);
            assert_eq!(per_vertex, &expected_per_vertex[..]);
            assert!(kernel.kernel_invocations >= g.edge_count() as u64);
        }
    }

    #[test]
    fn peeling_kernel_budget_is_one_per_edge_plus_seeding() {
        // Every edge is peeled exactly once, and the live entry point
        // seeds supports with one kernel per edge: 2m kernels total on
        // a dense encoding (no skipped dispatches).
        let g = classic::wheel(12);
        let adjacency = adjacency_of(&g);
        let (_, kernel) =
            ktruss_value_from_adjacency(&adjacency, slice16(), RowEncoding::Dense, 3);
        assert_eq!(kernel.kernel_invocations, 2 * g.edge_count() as u64);
    }
}
