//! Graph metrics built on triangle counts — the applications the paper's
//! introduction motivates (clustering coefficient, transitivity).

use tcim_graph::CsrGraph;

use crate::baseline::local_triangles;

/// Number of wedges (paths of length two): `Σ_v C(deg(v), 2)`.
pub fn wedge_count(g: &CsrGraph) -> u64 {
    g.vertices()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Global transitivity ratio `3·triangles / wedges` — the first metric
/// the paper lists TC as a building block for.
///
/// Returns 0 for wedge-free graphs.
///
/// # Example
///
/// ```
/// use tcim_core::metrics::transitivity;
/// use tcim_graph::generators::classic;
///
/// // Every wedge of a complete graph closes.
/// let k5 = classic::complete(5);
/// assert!((transitivity(&k5, 10) - 1.0).abs() < 1e-12);
/// ```
pub fn transitivity(g: &CsrGraph, triangles: u64) -> f64 {
    let wedges = wedge_count(g);
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / wedges as f64
    }
}

/// Average local clustering coefficient (Watts–Strogatz definition):
/// mean over vertices of `triangles(v) / C(deg(v), 2)`, skipping
/// degree-≤1 vertices per convention.
pub fn average_clustering(g: &CsrGraph) -> f64 {
    let local = local_triangles(g);
    let mut sum = 0.0;
    let mut counted = 0usize;
    for v in g.vertices() {
        let d = g.degree(v) as u64;
        if d >= 2 {
            let wedges = d * (d - 1) / 2;
            sum += local[v as usize] as f64 / wedges as f64;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        sum / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_graph::generators::classic;

    #[test]
    fn complete_graph_is_fully_clustered() {
        let g = classic::complete(6);
        assert!((transitivity(&g, classic::complete_triangles(6)) - 1.0).abs() < 1e-12);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_has_zero_clustering() {
        let g = classic::star(20);
        assert_eq!(transitivity(&g, 0), 0.0);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn wedge_count_of_star() {
        // Hub of degree n−1 contributes C(n−1, 2) wedges.
        let g = classic::star(10);
        assert_eq!(wedge_count(&g), 9 * 8 / 2);
    }

    #[test]
    fn path_has_wedges_but_no_triangles() {
        let g = classic::path(10);
        assert_eq!(wedge_count(&g), 8); // 8 interior vertices of degree 2
        assert_eq!(transitivity(&g, 0), 0.0);
    }

    #[test]
    fn empty_graph_metrics_are_zero() {
        let g = CsrGraph::from_edges(0, []).unwrap();
        assert_eq!(wedge_count(&g), 0);
        assert_eq!(transitivity(&g, 0), 0.0);
        assert_eq!(average_clustering(&g), 0.0);
    }
}
