//! Sharded execution at the pipeline level: graphs larger than one
//! array's slice budget, prepared as per-shard artifacts and counted as
//! intra-shard runs plus a cross-shard composition pass.
//!
//! The `tcim-shard` crate provides the mechanics (degree-aware
//! slice-aligned partitioning, boundary-slice extraction, the
//! composition kernels); this module ties them to the pipeline's
//! artifact model:
//!
//! * [`ShardPolicy`] — the value-level selection carried by
//!   [`Backend::Sharded`]: a
//!   [`ShardSpec`] (shard count + composition mode) plus the inner
//!   [`SchedPolicy`] each shard's multi-array run and the composition
//!   fan-out execute with.
//! * [`ShardedPreparedGraph`] — per-shard [`PreparedGraph`]s over the
//!   induced subgraphs of slice-aligned vertex ranges, plus the
//!   cross-shard [`BoundarySlices`].
//! * [`ShardedCache`] — keyed LRU of sharded artifacts, so repeated
//!   sharded queries through one
//!   [`TcimPipeline`](crate::TcimPipeline) partition and re-slice
//!   nothing.
//! * [`ShardedBackend`] — the [`ExecutionBackend`] answering every
//!   [`Query`](crate::Query) shape: shards run concurrently through the `tcim-sched`
//!   executor, the composition pass rides its delta-job machinery, and
//!   partial results merge deterministically in shard/array order.
//! * [`ShardProvenance`] — shard-count / imbalance / boundary-edge
//!   provenance, surfaced on [`QueryReport`](crate::QueryReport) and `tcim-service`'s
//!   `QueryResponse`.
//!
//! **Exactness.** Shard ranges are contiguous in oriented-id order and
//! the kernel counts a triangle `a < b < c` at its extreme arc
//! `(a, c)`: same-shard extremes pin the middle to that shard (the
//! triangle is counted by that shard's induced run), different-shard
//! extremes make `(a, c)` a composition kernel. Every triangle is
//! counted exactly once; the sharded backend therefore agrees
//! bit-exactly with every other backend on every query shape
//! (`tests/sharding.rs`).

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tcim_arch::{AccessStats, PimEngine};
use tcim_bitmatrix::EncodingPolicy;
use tcim_graph::CsrGraph;
use tcim_sched::{parallel_map_indexed, SchedPolicy};
use tcim_shard::{
    compose, compose_census, plan_shards, BoundarySlices, ComposeCensus, ShardMode, ShardPlan,
    ShardSpec,
};

use crate::backend::{
    AttributedRun, Backend, BackendDetail, CountReport, ExecutionBackend, ScheduledPimBackend,
};
use crate::error::{CoreError, Result};
use crate::motifs::MotifPricing;
use crate::pipeline::{PreparedGraph, PreparedKey};
use crate::query::KernelStats;

/// Value-level selection of a sharded execution: how to partition and
/// what each piece runs on.
///
/// # Examples
///
/// ```
/// use tcim_core::{Backend, ShardPolicy, TcimConfig, TcimPipeline};
/// use tcim_graph::generators::gnm;
///
/// let pipeline = TcimPipeline::new(&TcimConfig::default())?;
/// let prepared = pipeline.prepare(&gnm(512, 4000, 7)?);
///
/// // Count the same artifact sharded 4 ways and unsharded.
/// let sharded = pipeline.execute(&prepared, &Backend::Sharded(ShardPolicy::with_shards(4)))?;
/// let serial = pipeline.execute(&prepared, &Backend::SerialPim)?;
/// assert_eq!(sharded.triangles, serial.triangles);
/// # Ok::<(), tcim_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShardPolicy {
    /// Partition specification: shard count and composition mode.
    pub spec: ShardSpec,
    /// Scheduling policy of each shard's intra run *and* of the
    /// composition pass's array fan-out.
    pub inner: SchedPolicy,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy { spec: ShardSpec::default(), inner: SchedPolicy::with_arrays(4) }
    }
}

impl ShardPolicy {
    /// A 1D policy with `shards` shards and the default inner policy.
    pub fn with_shards(shards: usize) -> Self {
        ShardPolicy { spec: ShardSpec::one_d(shards), ..ShardPolicy::default() }
    }

    /// Selects the composition grouping mode (builder style).
    #[must_use]
    pub fn mode(mut self, mode: ShardMode) -> Self {
        self.spec.mode = mode;
        self
    }

    /// Selects the inner scheduling policy (builder style).
    #[must_use]
    pub fn inner(mut self, inner: SchedPolicy) -> Self {
        self.inner = inner;
        self
    }
}

/// One shard of a [`ShardedPreparedGraph`]: its oriented-id range and
/// the prepared artifact of the subgraph induced on it.
#[derive(Debug, Clone)]
pub struct ShardPiece {
    range: (u32, u32),
    prepared: PreparedGraph,
}

impl ShardPiece {
    /// The oriented-id range `(lo, hi)` this piece owns.
    pub fn range(&self) -> (u32, u32) {
        self.range
    }

    /// The prepared induced subgraph (local ids `0..hi-lo`).
    pub fn prepared(&self) -> &PreparedGraph {
        &self.prepared
    }
}

/// A graph prepared for sharded execution: the global oriented DAG
/// partitioned into slice-aligned vertex ranges, one [`PreparedGraph`]
/// per induced subgraph, plus the cross-shard boundary slices the
/// composition pass ANDs.
///
/// # Examples
///
/// ```
/// use tcim_core::{ShardSpec, TcimConfig, TcimPipeline};
/// use tcim_graph::generators::gnm;
///
/// let pipeline = TcimPipeline::new(&TcimConfig::default())?;
/// let prepared = pipeline.prepare(&gnm(512, 4000, 7)?);
/// let sharded = pipeline.prepare_sharded(&prepared, &ShardSpec::one_d(4))?;
/// assert_eq!(sharded.pieces().len(), 4);
/// // Intra and cross arcs partition the DAG's arcs.
/// let intra: usize = sharded.pieces().iter().map(|p| p.prepared().oriented().arc_count()).sum();
/// assert_eq!(intra as u64 + sharded.plan().cross_arcs(), 4000);
/// # Ok::<(), tcim_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedPreparedGraph {
    base: PreparedKey,
    spec: ShardSpec,
    plan: ShardPlan,
    boundary: BoundarySlices,
    compose_census: ComposeCensus,
    pieces: Vec<ShardPiece>,
    prepare_time: Duration,
}

impl ShardedPreparedGraph {
    /// Partitions `prepared`'s oriented DAG, extracts boundary slices
    /// and prepares every induced subgraph — the sharded analogue of
    /// [`PreparedGraph::build`]. Cached callers go through
    /// [`TcimPipeline::prepare_sharded`](crate::TcimPipeline::prepare_sharded).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shard`] for an invalid spec and
    /// [`CoreError::Pipeline`] when `prepared`'s slice size does not
    /// match the engine's.
    pub fn build(
        prepared: &PreparedGraph,
        spec: &ShardSpec,
        engine: &PimEngine,
    ) -> Result<ShardedPreparedGraph> {
        if prepared.slice_size() != engine.config().slice_size {
            return Err(CoreError::Pipeline {
                reason: format!(
                    "sharded prepare: artifact has |S| = {} but the engine is characterized \
                     for |S| = {}",
                    prepared.slice_size(),
                    engine.config().slice_size
                ),
            });
        }
        let start = Instant::now();
        let oriented = prepared.oriented();
        let slice_size = prepared.slice_size();
        let plan = plan_shards(oriented, spec, slice_size).map_err(CoreError::Shard)?;
        let boundary =
            BoundarySlices::extract(oriented, &plan, slice_size, prepared.encoding());
        // The composition pass's kernel census is structural (it depends
        // only on the boundary operands, not on placement), so one dry
        // walk at preparation time makes every later EXPLAIN plan and
        // calibration prediction O(shards) instead of O(cross arcs).
        let compose_census = compose_census(&boundary)
            .map_err(CoreError::Shard)
            .expect("a freshly extracted boundary holds both operands of every cross arc");

        let pieces = plan
            .ranges()
            .iter()
            .map(|&(lo, hi)| {
                let mut edges = Vec::new();
                for a in lo..hi {
                    for &c in oriented.row(a) {
                        if c >= hi {
                            break;
                        }
                        edges.push((a - lo, c - lo));
                    }
                }
                let local = CsrGraph::from_edges((hi - lo) as usize, edges)
                    .expect("intra-shard arcs are in bounds by construction");
                // Pieces inherit the base artifact's *resolved* encoding
                // rather than re-measuring their own density: a sharded
                // run must process exactly the encoding the unsharded
                // artifact committed to.
                let prepared_local = PreparedGraph::build(
                    &local,
                    prepared.orientation(),
                    slice_size,
                    EncodingPolicy::force(prepared.encoding()),
                    engine,
                );
                ShardPiece { range: (lo, hi), prepared: prepared_local }
            })
            .collect();

        Ok(ShardedPreparedGraph {
            base: *prepared.key(),
            spec: *spec,
            plan,
            boundary,
            compose_census,
            pieces,
            prepare_time: start.elapsed(),
        })
    }

    /// The base (unsharded) artifact's cache key.
    pub fn base_key(&self) -> &PreparedKey {
        &self.base
    }

    /// The specification this artifact was partitioned under. The
    /// inner scheduling policy is deliberately *not* part of the
    /// artifact: partitioning, boundary extraction and per-shard
    /// slicing depend only on the spec, so policies differing only in
    /// inner scheduling share one cached artifact.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The partition plan (ranges, weights, imbalance, arc census).
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The extracted cross-shard boundary slices.
    pub fn boundary(&self) -> &BoundarySlices {
        &self.boundary
    }

    /// The composition pass's exact kernel census (dispatches, slice
    /// pairs, skipped blocks), measured structurally at preparation
    /// time — what the pass *will* execute, before it runs.
    pub fn compose_census(&self) -> ComposeCensus {
        self.compose_census
    }

    /// The per-shard prepared pieces, in shard order.
    pub fn pieces(&self) -> &[ShardPiece] {
        &self.pieces
    }

    /// Host wall-clock time of partitioning + boundary extraction +
    /// per-shard preparation.
    pub fn prepare_time(&self) -> Duration {
        self.prepare_time
    }
}

/// Shard-level provenance of a sharded execution, surfaced on
/// [`QueryReport`](crate::QueryReport) and the service's `QueryResponse`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardProvenance {
    /// Configured shard count.
    pub shards: usize,
    /// Shards that own a non-empty vertex range.
    pub occupied_shards: usize,
    /// Composition grouping mode.
    pub mode: ShardMode,
    /// Partition-weight imbalance (`max / mean` shard weight).
    pub imbalance: f64,
    /// Cross-shard arcs — the boundary edges the composition pass
    /// processed.
    pub boundary_arcs: u64,
    /// Valid slices in the boundary parts of the extracted operands.
    pub boundary_valid_slices: u64,
    /// Triangles counted inside shards.
    pub intra_triangles: u64,
    /// Triangles counted by the composition pass.
    pub cross_triangles: u64,
    /// Placement units the composition pass scheduled (arcs in 1D,
    /// edge blocks in 2D).
    pub composition_units: usize,
    /// Per-shard execution reports, in shard order.
    pub per_shard: Vec<ShardSliceReport>,
}

/// One shard's slice of a sharded execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSliceReport {
    /// The oriented-id range the shard owns.
    pub range: (u32, u32),
    /// Arcs of the induced subgraph.
    pub arcs: u64,
    /// Triangles the shard's intra run found.
    pub triangles: u64,
    /// The shard run's normalized kernel accounting.
    pub kernel: KernelStats,
}

struct CacheInner {
    map: HashMap<(PreparedKey, ShardSpec), Arc<ShardedPreparedGraph>>,
    order: Vec<(PreparedKey, ShardSpec)>,
    hits: u64,
    misses: u64,
}

/// A bounded LRU cache of [`ShardedPreparedGraph`]s keyed by base
/// artifact × shard spec — the sharded twin of
/// [`PreparedCache`](crate::PreparedCache), so repeated sharded queries
/// partition and re-slice nothing.
pub struct ShardedCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShardedCache(len={}, capacity={}, hits={}, misses={})",
            self.len(),
            self.capacity,
            self.hits(),
            self.misses()
        )
    }
}

impl ShardedCache {
    /// An empty cache holding at most `capacity` sharded artifacts.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        ShardedCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: Vec::new(),
                hits: 0,
                misses: 0,
            }),
            capacity,
        }
    }

    /// The cached artifact for `prepared` under `spec`, building and
    /// inserting it (with LRU eviction) on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`ShardedPreparedGraph::build`] failures.
    pub fn get_or_build(
        &self,
        prepared: &PreparedGraph,
        spec: &ShardSpec,
        engine: &PimEngine,
    ) -> Result<Arc<ShardedPreparedGraph>> {
        self.get_or_build_reporting(prepared, spec, engine).map(|(artifact, _)| artifact)
    }

    /// As [`ShardedCache::get_or_build`], additionally reporting whether
    /// the artifact was served from the cache (`true`) or built by this
    /// call (`false`) — the provenance an EXPLAIN plan records.
    ///
    /// # Errors
    ///
    /// Propagates [`ShardedPreparedGraph::build`] failures.
    pub fn get_or_build_reporting(
        &self,
        prepared: &PreparedGraph,
        spec: &ShardSpec,
        engine: &PimEngine,
    ) -> Result<(Arc<ShardedPreparedGraph>, bool)> {
        let key = (*prepared.key(), *spec);
        {
            let mut inner = self.inner.lock().expect("cache mutex is never poisoned");
            if let Some(found) = inner.map.get(&key).cloned() {
                inner.hits += 1;
                inner.order.retain(|k| k != &key);
                inner.order.push(key);
                return Ok((found, true));
            }
            inner.misses += 1;
        }
        // Build outside the lock (slow); racing builders agree on the
        // first inserted value.
        let built = Arc::new(ShardedPreparedGraph::build(prepared, spec, engine)?);
        let mut inner = self.inner.lock().expect("cache mutex is never poisoned");
        if let Some(existing) = inner.map.get(&key).cloned() {
            return Ok((existing, true));
        }
        inner.map.insert(key, Arc::clone(&built));
        inner.order.push(key);
        if inner.order.len() > self.capacity {
            let evicted = inner.order.remove(0);
            inner.map.remove(&evicted);
        }
        Ok((built, false))
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache mutex is never poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found a cached artifact.
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("cache mutex is never poisoned").hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.inner.lock().expect("cache mutex is never poisoned").misses
    }

    /// Maximum number of artifacts held before evicting.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// One shard's merged partial result, in shard order.
struct IntraPartial {
    triangles: u64,
    kernel: KernelStats,
    modelled_time_s: f64,
    modelled_energy_j: f64,
    stats: AccessStats,
    /// Per-vertex counts indexed by *local input* id (dense over the
    /// shard's range).
    per_vertex: Option<Vec<u64>>,
    /// Support over *global oriented* arcs.
    support: Option<Vec<(u32, u32, u64)>>,
}

/// Everything one sharded execution produces, in global oriented ids
/// (the query layer maps back to input-graph ids exactly as for every
/// other backend).
struct ShardedOutcome {
    triangles: u64,
    per_vertex: Option<Vec<u64>>,
    support: Option<Vec<(u32, u32, u64)>>,
    kernel: KernelStats,
    stats: AccessStats,
    modelled_time_s: f64,
    modelled_energy_j: f64,
    provenance: ShardProvenance,
}

/// Sharded execution over a prepared graph: intra-shard scheduled runs
/// plus the cross-shard composition pass, answering every [`Query`](crate::Query)
/// shape.
///
/// Bound through a [`TcimPipeline`](crate::TcimPipeline) the backend
/// reuses the pipeline's [`ShardedCache`]; bound directly via
/// [`Backend::bind`](crate::Backend::bind) it builds the sharded
/// artifact per call (the uncached convenience path).
#[derive(Debug, Clone)]
pub struct ShardedBackend<'e> {
    engine: &'e PimEngine,
    policy: ShardPolicy,
    cache: Option<&'e ShardedCache>,
}

impl<'e> ShardedBackend<'e> {
    /// An uncached sharded backend running `policy` on `engine`.
    pub fn new(engine: &'e PimEngine, policy: ShardPolicy) -> Self {
        ShardedBackend { engine, policy, cache: None }
    }

    /// A sharded backend sharing `cache` (the pipeline's).
    pub fn with_cache(
        engine: &'e PimEngine,
        policy: ShardPolicy,
        cache: &'e ShardedCache,
    ) -> Self {
        ShardedBackend { engine, policy, cache: Some(cache) }
    }

    /// The shard policy this backend executes with.
    pub fn policy(&self) -> &ShardPolicy {
        &self.policy
    }

    fn artifact(&self, prepared: &PreparedGraph) -> Result<Arc<ShardedPreparedGraph>> {
        match self.cache {
            Some(cache) => cache.get_or_build(prepared, &self.policy.spec, self.engine),
            None => Ok(Arc::new(ShardedPreparedGraph::build(
                prepared,
                &self.policy.spec,
                self.engine,
            )?)),
        }
    }

    fn run(
        &self,
        prepared: &PreparedGraph,
        attributed: bool,
        need_support: bool,
    ) -> Result<(ShardedOutcome, Duration)> {
        let start = Instant::now();
        let sharded = self.artifact(prepared)?;
        let pieces = sharded.pieces();

        // Intra-shard runs: every piece through the tcim-sched executor,
        // pieces fanned over host threads, arrays simulated serially
        // inside each piece so the host is never oversubscribed.
        let inner = SchedPolicy { host_threads: Some(1), ..self.policy.inner.clone() };
        let backend = ScheduledPimBackend::new(self.engine, inner);
        let threads = self.policy.inner.resolved_host_threads();
        let shard_span = tcim_telemetry::span("shard");
        let partials: Vec<Result<IntraPartial>> =
            parallel_map_indexed(pieces.len(), threads, |s| {
                intra_partial(&backend, &pieces[s], attributed, need_support)
            });
        drop(shard_span);

        let n = prepared.oriented().vertex_count();
        let mut triangles = 0u64;
        let mut kernel = KernelStats::default();
        let mut stats = AccessStats::default();
        let mut intra_critical = 0.0f64;
        let mut energy = 0.0f64;
        let mut per_vertex = attributed.then(|| vec![0u64; n]);
        let mut support: Option<BTreeMap<(u32, u32), u64>> =
            (attributed && need_support).then(BTreeMap::new);
        let mut per_shard = Vec::with_capacity(pieces.len());
        for (s, partial) in partials.into_iter().enumerate() {
            let partial = partial?;
            triangles += partial.triangles;
            kernel.merge(&partial.kernel);
            stats.merge(&partial.stats);
            // Shards execute concurrently on disjoint array groups: the
            // intra phase runs on the slowest shard's clock.
            intra_critical = intra_critical.max(partial.modelled_time_s);
            energy += partial.modelled_energy_j;
            per_shard.push(ShardSliceReport {
                range: pieces[s].range(),
                arcs: pieces[s].prepared().oriented().arc_count() as u64,
                triangles: partial.triangles,
                kernel: partial.kernel,
            });
            let (lo, _) = pieces[s].range();
            if let (Some(total), Some(local)) = (per_vertex.as_mut(), partial.per_vertex) {
                for (offset, count) in local.into_iter().enumerate() {
                    total[lo as usize + offset] += count;
                }
            }
            if let (Some(map), Some(partial_support)) = (support.as_mut(), partial.support) {
                for (i, j, c) in partial_support {
                    *map.entry((i, j)).or_insert(0) += c;
                }
            }
        }
        let intra_triangles = triangles;

        // Cross-shard composition pass.
        let compose_span = tcim_telemetry::span("compose");
        let comp = compose(
            n,
            sharded.plan(),
            sharded.boundary(),
            &self.policy.inner,
            &self.engine.cost_model(),
            attributed,
            need_support,
        )
        .map_err(CoreError::Shard)?;
        drop(compose_span);
        triangles += comp.triangles;
        kernel.merge(&KernelStats {
            kernel_invocations: comp.kernel_invocations,
            slice_pairs: comp.slice_pairs,
            result_readouts: comp.result_readouts,
            blocks_skipped: comp.blocks_skipped,
        });
        stats.merge(&AccessStats {
            edges: comp.kernel_invocations,
            and_ops: comp.slice_pairs,
            bitcount_ops: comp.slice_pairs,
            row_slice_writes: comp.write_slices,
            result_readouts: comp.result_readouts,
            ..AccessStats::default()
        });
        energy += comp.modelled_energy_j;
        if let (Some(total), Some(cross)) = (per_vertex.as_mut(), comp.per_vertex) {
            for (v, count) in cross.into_iter().enumerate() {
                total[v] += count;
            }
        }
        if let (Some(map), Some(cross_support)) = (support.as_mut(), comp.support) {
            for (i, j, c) in cross_support {
                *map.entry((i, j)).or_insert(0) += c;
            }
        }

        let provenance = ShardProvenance {
            shards: sharded.plan().shard_count(),
            occupied_shards: sharded.plan().occupied_shards(),
            mode: sharded.plan().mode(),
            imbalance: sharded.plan().imbalance(),
            boundary_arcs: sharded.plan().cross_arcs(),
            boundary_valid_slices: sharded.boundary().boundary_valid_slices(),
            intra_triangles,
            cross_triangles: comp.triangles,
            composition_units: comp.placement_units,
            per_shard,
        };
        Ok((
            ShardedOutcome {
                triangles,
                per_vertex,
                support: support
                    .map(|map| map.into_iter().map(|((i, j), c)| (i, j, c)).collect()),
                kernel,
                stats,
                modelled_time_s: intra_critical + comp.critical_path_s,
                modelled_energy_j: energy,
                provenance,
            },
            start.elapsed(),
        ))
    }
}

/// Runs one shard piece through the scheduled backend and normalizes
/// the partial: per-vertex counts mapped to local *input* ids (dense
/// over the range), support mapped to global oriented arcs.
fn intra_partial(
    backend: &ScheduledPimBackend<'_>,
    piece: &ShardPiece,
    attributed: bool,
    need_support: bool,
) -> Result<IntraPartial> {
    let oriented = piece.prepared().oriented();
    if oriented.arc_count() == 0 {
        return Ok(IntraPartial {
            triangles: 0,
            kernel: KernelStats::default(),
            modelled_time_s: 0.0,
            modelled_energy_j: 0.0,
            stats: AccessStats::default(),
            per_vertex: attributed.then(|| vec![0u64; oriented.vertex_count()]),
            support: (attributed && need_support).then(Vec::new),
        });
    }
    let (lo, _) = piece.range();
    if attributed {
        let run = backend.execute_attributed(piece.prepared(), need_support)?;
        // Local matrix ids → local input ids (undo the piece's own
        // orientation relabelling).
        let mut per_vertex = vec![0u64; oriented.vertex_count()];
        for (m, &count) in run.per_vertex.iter().enumerate() {
            per_vertex[oriented.original_id(m as u32) as usize] += count;
        }
        let support = run.support.map(|triples| {
            triples
                .into_iter()
                .map(|(i, j, c)| {
                    let x = lo + oriented.original_id(i);
                    let y = lo + oriented.original_id(j);
                    (x.min(y), x.max(y), c)
                })
                .collect()
        });
        Ok(IntraPartial {
            triangles: run.triangles,
            kernel: run.kernel,
            modelled_time_s: run.modelled_time_s.unwrap_or(0.0),
            modelled_energy_j: run.modelled_energy_j.unwrap_or(0.0),
            stats: AccessStats::default(),
            per_vertex: Some(per_vertex),
            support,
        })
    } else {
        let report = backend.execute(piece.prepared())?;
        Ok(IntraPartial {
            triangles: report.triangles,
            kernel: report.kernel,
            modelled_time_s: report.modelled_time_s.unwrap_or(0.0),
            modelled_energy_j: report.modelled_energy_j.unwrap_or(0.0),
            stats: report.stats.unwrap_or_default(),
            per_vertex: None,
            support: None,
        })
    }
}

impl ExecutionBackend for ShardedBackend<'_> {
    fn name(&self) -> String {
        Backend::Sharded(self.policy.clone()).label()
    }

    fn execute(&self, prepared: &PreparedGraph) -> Result<CountReport> {
        let (out, wall) = self.run(prepared, false, false)?;
        Ok(CountReport {
            backend: self.name(),
            triangles: out.triangles,
            execute_time: wall,
            modelled_time_s: Some(out.modelled_time_s),
            modelled_energy_j: Some(out.modelled_energy_j),
            stats: Some(out.stats),
            kernel: out.kernel,
            detail: BackendDetail::Sharded(Box::new(out.provenance)),
        })
    }

    fn execute_attributed(
        &self,
        prepared: &PreparedGraph,
        need_support: bool,
    ) -> Result<AttributedRun> {
        let (out, wall) = self.run(prepared, true, need_support)?;
        Ok(AttributedRun {
            backend: self.name(),
            triangles: out.triangles,
            per_vertex: out.per_vertex.expect("attributed runs always tally"),
            support: out.support,
            execute_time: wall,
            modelled_time_s: Some(out.modelled_time_s),
            modelled_energy_j: Some(out.modelled_energy_j),
            kernel: out.kernel,
            sharding: Some(out.provenance),
        })
    }

    // Query dispatch (including the motif engines) is the provided
    // trait method: shard provenance flows through the run itself
    // (`AttributedRun::sharding` / `BackendDetail::Sharded`), and the
    // peeling / chained-AND rounds are priced under the *inner*
    // scheduling policy — post-composition delta work is planned across
    // the same arrays a shard runs on.

    fn motif_pricing(&self) -> Option<MotifPricing> {
        Some(MotifPricing::new(self.engine.cost_model(), self.policy.inner.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::TcimConfig;
    use crate::pipeline::TcimPipeline;
    use crate::query::Query;
    use tcim_graph::generators::gnm;

    fn pipeline() -> TcimPipeline {
        TcimPipeline::new(&TcimConfig::default()).unwrap()
    }

    #[test]
    fn sharded_count_agrees_with_serial_and_carries_provenance() {
        let p = pipeline();
        let prepared = p.prepare(&gnm(512, 3600, 21).unwrap());
        let serial = p.execute(&prepared, &Backend::SerialPim).unwrap();
        let sharded =
            p.execute(&prepared, &Backend::Sharded(ShardPolicy::with_shards(4))).unwrap();
        assert_eq!(sharded.triangles, serial.triangles);
        // The arc census is preserved: intra + cross dispatches equal
        // the monolithic per-edge dispatch count.
        assert_eq!(sharded.kernel.kernel_invocations, serial.kernel.kernel_invocations);
        let BackendDetail::Sharded(detail) = &sharded.detail else {
            panic!("sharded runs carry sharded detail");
        };
        assert_eq!(detail.shards, 4);
        assert!(detail.boundary_arcs > 0);
        assert_eq!(detail.intra_triangles + detail.cross_triangles, sharded.triangles);
        assert_eq!(detail.per_shard.len(), 4);
        assert!(detail.imbalance >= 1.0);
        assert!(sharded.modelled_time_s.unwrap() > 0.0);
        assert!(sharded.modelled_energy_j.unwrap() > 0.0);
    }

    #[test]
    fn pipeline_sharded_cache_prevents_repartitioning() {
        let p = pipeline();
        let prepared = p.prepare(&gnm(256, 1800, 5).unwrap());
        let spec = Backend::Sharded(ShardPolicy::with_shards(2));
        p.execute(&prepared, &spec).unwrap();
        let built = tcim_bitmatrix::matrices_built();
        for _ in 0..3 {
            p.query(&prepared, &spec, &Query::PerVertexTriangles).unwrap();
        }
        assert_eq!(tcim_bitmatrix::matrices_built(), built, "no re-slicing after first build");
        assert_eq!(p.sharded_cache().len(), 1);
        assert!(p.sharded_cache().hits() >= 3);
    }

    #[test]
    fn sharded_artifact_is_keyed_by_spec_not_inner_policy() {
        let p = pipeline();
        let prepared = p.prepare(&gnm(256, 1800, 5).unwrap());
        let a = p.prepare_sharded(&prepared, &ShardSpec::one_d(2)).unwrap();
        let b = p.prepare_sharded(&prepared, &ShardSpec::one_d(4)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(p.sharded_cache().len(), 2);
        let again = p.prepare_sharded(&prepared, &ShardSpec::one_d(2)).unwrap();
        assert!(Arc::ptr_eq(&a, &again));
        // Policies differing only in inner scheduling share the
        // artifact: executing with a different array count hits.
        let hits = p.sharded_cache().hits();
        let spec =
            Backend::Sharded(ShardPolicy::with_shards(2).inner(SchedPolicy::with_arrays(8)));
        p.execute(&prepared, &spec).unwrap();
        assert_eq!(p.sharded_cache().len(), 2, "no duplicate artifact");
        assert!(p.sharded_cache().hits() > hits);
    }

    #[test]
    fn slice_size_mismatch_is_a_pipeline_error() {
        let p = pipeline();
        let g = gnm(128, 700, 2).unwrap();
        let prepared = PreparedGraph::build(
            &g,
            tcim_graph::Orientation::Natural,
            tcim_bitmatrix::SliceSize::S32,
            EncodingPolicy::default(),
            p.engine(),
        );
        let err = p.execute(&prepared, &Backend::Sharded(ShardPolicy::default())).unwrap_err();
        assert!(matches!(err, CoreError::Pipeline { .. }), "{err}");
    }

    #[test]
    fn invalid_shard_spec_propagates() {
        let p = pipeline();
        let prepared = p.prepare(&gnm(128, 700, 2).unwrap());
        let err =
            p.execute(&prepared, &Backend::Sharded(ShardPolicy::with_shards(0))).unwrap_err();
        assert!(matches!(err, CoreError::Shard(_)), "{err}");
    }
}
