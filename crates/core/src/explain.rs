//! Query EXPLAIN: the routing and cost plan of a query, assembled from
//! the very structs the executor consumes — without executing anything.
//!
//! [`TcimPipeline::explain`] answers "what *would* running this query
//! do?": which backend label will execute, how the
//! [`EncodingPolicy`] resolved, whether
//! the prepared (and sharded) artifacts came from cache, the scheduler's
//! per-array job placement, the shard plan, and — centrally — the exact
//! kernel-dispatch census the run will produce. The census is *exact*,
//! not estimated: preparation already walks every arc's mutually valid
//! slice pairs ([`PreparedPricing`]), mirroring the runtime dispatch
//! rule (dense rows always launch; sparse rows launch only when a valid
//! pair was visited), and the sharded composition pass is pre-measured
//! structurally at artifact-build time
//! ([`ShardedPreparedGraph::compose_census`]). Only
//! [`KernelStats::result_readouts`] is excluded — readouts are
//! data-dependent (one per non-zero AND result), which no plan can know
//! without running the kernels.
//!
//! `tests/explain.rs` pins the bit-exactness property across every
//! backend × generator × encoding combination; the worked walkthrough
//! lives in ARCHITECTURE.md §6.

use std::fmt;
use std::time::Duration;

use tcim_bitmatrix::{EncodingPolicy, RowEncoding};
use tcim_graph::CsrGraph;
use tcim_sched::{ArrayAssignment, PlacementPolicy, ScheduledRun};
use tcim_shard::ShardSpec;

use crate::backend::Backend;
use crate::error::Result;
use crate::pipeline::{PreparedGraph, PreparedPricing, TcimPipeline};
use crate::query::{KernelStats, Query, QueryReport};
use crate::sharded::ShardedPreparedGraph;

/// The deterministic part of a run's [`KernelStats`], predicted before
/// executing: kernel dispatches, AND + BitCount slice pairs, and the
/// pairs the sparse encoding skips. Result readouts are excluded — they
/// depend on which ANDs come back non-zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCensus {
    /// Per-arc kernel dispatches the run will launch.
    pub kernel_invocations: u64,
    /// Valid slice pairs the run will AND + BitCount.
    pub slice_pairs: u64,
    /// Mutually valid pairs the sparse encoding will prove zero and
    /// skip.
    pub blocks_skipped: u64,
}

impl KernelCensus {
    /// Whether a measured [`KernelStats`] agrees with this prediction
    /// on every predicted component (readouts are not compared).
    pub fn matches(&self, measured: &KernelStats) -> bool {
        self.kernel_invocations == measured.kernel_invocations
            && self.slice_pairs == measured.slice_pairs
            && self.blocks_skipped == measured.blocks_skipped
    }

    /// Component-wise sum of two censuses.
    #[must_use]
    pub fn merged(&self, other: &KernelCensus) -> KernelCensus {
        KernelCensus {
            kernel_invocations: self.kernel_invocations + other.kernel_invocations,
            slice_pairs: self.slice_pairs + other.slice_pairs,
            blocks_skipped: self.blocks_skipped + other.blocks_skipped,
        }
    }
}

impl From<PreparedPricing> for KernelCensus {
    /// The census of an unsharded sliced execution, straight from the
    /// preparation-time pricing walk.
    fn from(pricing: PreparedPricing) -> Self {
        KernelCensus {
            kernel_invocations: pricing.kernel_dispatches,
            slice_pairs: pricing.slice_pairs,
            blocks_skipped: pricing.blocks_skipped,
        }
    }
}

impl fmt::Display for KernelCensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} kernel dispatches, {} slice pairs, {} blocks skipped",
            self.kernel_invocations, self.slice_pairs, self.blocks_skipped
        )
    }
}

/// How the row-encoding policy resolved for the prepared artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodingDecision {
    /// The policy the artifact was prepared under.
    pub policy: EncodingPolicy,
    /// The encoding the policy resolved to at build time.
    pub resolved: RowEncoding,
    /// Fraction of slice positions that are valid (the density signal
    /// the auto policy decides on).
    pub valid_fraction: f64,
    /// Compressed artifact size in bytes under the resolved encoding.
    pub compressed_bytes: u64,
}

/// Where the plan's artifacts came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheProvenance {
    /// Whether the prepared artifact was served from the pipeline's
    /// prepared-graph cache (`false`: this plan built it).
    pub prepared_cache_hit: bool,
    /// For sharded plans, whether the sharded artifact was cached.
    /// `None` for unsharded backends.
    pub sharded_cache_hit: Option<bool>,
}

/// The scheduler's placement decision for a [`Backend::ScheduledPim`]
/// plan: the same [`Placement`](tcim_sched::Placement) the executor
/// runs, summarized per array.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedPlanSummary {
    /// Number of arrays the policy places onto.
    pub arrays: usize,
    /// The placement policy in force.
    pub placement: PlacementPolicy,
    /// Per-array job/arc/pair assignment with estimated busy time.
    pub per_array: Vec<ArrayAssignment>,
    /// Placement-aware critical-path estimate (s): serial host dispatch
    /// plus the busiest array's estimated busy time.
    pub est_critical_path_s: f64,
}

/// One shard's slice of a sharded plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPieceSummary {
    /// Shard index, in plan order.
    pub shard: usize,
    /// The oriented-id range the shard owns.
    pub range: (u32, u32),
    /// Arcs of the induced subgraph the shard executes.
    pub arcs: u64,
    /// The shard's exact intra-run kernel census.
    pub census: KernelCensus,
}

/// The shard plan of a [`Backend::Sharded`] selection: the partition
/// the executor will run, summarized per shard plus the pre-measured
/// composition census.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlanSummary {
    /// Partition specification (shard count × composition mode).
    pub spec: ShardSpec,
    /// Shards owning a non-empty vertex range.
    pub occupied_shards: usize,
    /// Partition-weight imbalance (`max / mean` shard weight).
    pub imbalance: f64,
    /// Arcs inside shards (handled by intra runs).
    pub intra_arcs: u64,
    /// Arcs crossing shard boundaries (handled by the composition pass).
    pub cross_arcs: u64,
    /// Valid slices in the boundary parts of the extracted operands.
    pub boundary_valid_slices: u64,
    /// The composition pass's exact kernel census.
    pub compose: KernelCensus,
    /// Per-shard piece summaries, in shard order.
    pub per_shard: Vec<ShardPieceSummary>,
}

/// What the cost model predicts the run will do and cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedCost {
    /// The kernel census of the *anchor* execution. When
    /// [`exact`](PredictedCost::exact) is set this is the run's full,
    /// bit-exact census (property-tested in `tests/explain.rs`); for
    /// motif queries it covers only the anchoring attributed pass —
    /// the data-dependent peeling / chained-AND rounds on top cannot
    /// be counted without running them.
    pub census: KernelCensus,
    /// Whether [`census`](PredictedCost::census) is the run's complete
    /// kernel census. `false` for motif queries
    /// ([`Query::is_motif`](crate::Query::is_motif)), whose extra
    /// rounds are data-dependent.
    pub exact: bool,
    /// The cost model's modelled-latency estimate (s). `None` for host
    /// backends, which have no modelled time to predict.
    pub modelled_s: Option<f64>,
}

/// What an execution actually did — attached to a plan after the fact
/// (e.g. by the service when `explain_queries` is enabled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredCost {
    /// The run's full measured kernel accounting (readouts included).
    pub kernel: KernelStats,
    /// Host wall-clock time of the execution stage.
    pub wall: Duration,
    /// Modelled accelerator latency (s), for simulated backends.
    pub modelled_s: Option<f64>,
}

/// Every routing decision and cost prediction of one query, assembled
/// from the same structs the executor consumes.
///
/// Produced by [`TcimPipeline::explain`] (plan without executing) and
/// surfaced by `tcim-service` as `QueryResponse::explain` (plan plus
/// [`MeasuredCost`]) when explain capture is enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    /// Display label of the backend that will execute (matches
    /// [`Backend::label`]).
    pub backend: String,
    /// The query being planned.
    pub query: Query,
    /// Whether the query needs the attributed (readout-heavy) primitive.
    pub needs_attribution: bool,
    /// How the encoding policy resolved.
    pub encoding: EncodingDecision,
    /// Artifact cache provenance.
    pub cache: CacheProvenance,
    /// The cost model's prediction.
    pub predicted: PredictedCost,
    /// Scheduler placement summary, for [`Backend::ScheduledPim`] plans.
    pub sched: Option<SchedPlanSummary>,
    /// Shard plan summary, for [`Backend::Sharded`] plans.
    pub sharding: Option<ShardPlanSummary>,
    /// The executed run's accounting, once attached.
    pub measured: Option<MeasuredCost>,
}

impl ExplainReport {
    /// Attaches the accounting of the execution this plan preceded.
    pub fn attach_measured(&mut self, report: &QueryReport) {
        self.measured = Some(MeasuredCost {
            kernel: report.kernel,
            wall: report.execute_time,
            modelled_s: report.modelled_time_s,
        });
    }

    /// Whether the predicted census matched the measured run exactly
    /// (`None` until a measurement is attached, and `None` for plans
    /// whose census is not exact — motif queries run data-dependent
    /// rounds the anchor census deliberately excludes).
    pub fn census_matches(&self) -> Option<bool> {
        if !self.predicted.exact {
            return None;
        }
        self.measured.as_ref().map(|m| self.predicted.census.matches(&m.kernel))
    }
}

impl fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EXPLAIN {}", self.query.label())?;
        writeln!(f, "  backend    {}", self.backend)?;
        writeln!(
            f,
            "  encoding   {} -> {}  ({:.1}% valid slices, {} compressed bytes)",
            self.encoding.policy,
            self.encoding.resolved,
            self.encoding.valid_fraction * 100.0,
            self.encoding.compressed_bytes
        )?;
        let sharded_cache = match self.cache.sharded_cache_hit {
            Some(true) => ", sharded=hit",
            Some(false) => ", sharded=miss",
            None => "",
        };
        writeln!(
            f,
            "  cache      prepared={}{}",
            if self.cache.prepared_cache_hit { "hit" } else { "miss" },
            sharded_cache
        )?;
        writeln!(
            f,
            "  predicted  {}{}",
            self.predicted.census,
            if self.predicted.exact {
                ""
            } else {
                "  (anchor pass only; motif rounds on top)"
            }
        )?;
        if let Some(s) = self.predicted.modelled_s {
            writeln!(f, "  modelled   {s:.3e} s (cost model)")?;
        }
        if let Some(sched) = &self.sched {
            writeln!(
                f,
                "  schedule   {} arrays, {} placement, est critical path {:.3e} s",
                sched.arrays, sched.placement, sched.est_critical_path_s
            )?;
            for a in &sched.per_array {
                writeln!(
                    f,
                    "    array {:>2}  {:>4} jobs  {:>6} arcs  {:>8} slice pairs  {:.3e} s busy",
                    a.array, a.jobs, a.arcs, a.slice_pairs, a.est_busy_s
                )?;
            }
        }
        if let Some(shard) = &self.sharding {
            writeln!(
                f,
                "  sharding   {} ({} occupied), imbalance {:.3}, {} intra / {} cross arcs",
                shard.spec,
                shard.occupied_shards,
                shard.imbalance,
                shard.intra_arcs,
                shard.cross_arcs
            )?;
            for piece in &shard.per_shard {
                writeln!(
                    f,
                    "    shard {:>2}  [{:>6}, {:>6})  {:>6} arcs  {}",
                    piece.shard, piece.range.0, piece.range.1, piece.arcs, piece.census
                )?;
            }
            writeln!(f, "    compose   {}", shard.compose)?;
        }
        if let Some(measured) = &self.measured {
            writeln!(
                f,
                "  measured   {} kernel dispatches, {} slice pairs, {} blocks skipped, \
                 {} readouts",
                measured.kernel.kernel_invocations,
                measured.kernel.slice_pairs,
                measured.kernel.blocks_skipped,
                measured.kernel.result_readouts
            )?;
            write!(
                f,
                "  wall       {:.3} ms{}",
                measured.wall.as_secs_f64() * 1e3,
                match measured.modelled_s {
                    Some(s) => format!(", {s:.3e} s modelled"),
                    None => String::new(),
                }
            )?;
            if let Some(matches) = self.census_matches() {
                write!(
                    f,
                    "\n  census     {}",
                    if matches { "exact match" } else { "MISMATCH" }
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The exact census of a sharded execution: the sum of every piece's
/// pricing walk plus the pre-measured composition census.
fn sharded_census(artifact: &ShardedPreparedGraph) -> KernelCensus {
    let mut census = artifact
        .pieces()
        .iter()
        .map(|piece| KernelCensus::from(piece.prepared().pricing()))
        .fold(KernelCensus::default(), |acc, c| acc.merged(&c));
    let compose = artifact.compose_census();
    census.kernel_invocations += compose.kernel_invocations;
    census.slice_pairs += compose.slice_pairs;
    census.blocks_skipped += compose.blocks_skipped;
    census
}

impl TcimPipeline {
    /// Plans `query` on `spec` over `g` without executing anything:
    /// prepares (cached) and assembles the [`ExplainReport`] from the
    /// same artifacts a subsequent execution will consume.
    ///
    /// # Errors
    ///
    /// Propagates the same planning failures execution would hit
    /// (invalid scheduling policy, invalid shard spec, slice-size
    /// mismatch).
    pub fn explain(
        &self,
        g: &CsrGraph,
        spec: &Backend,
        query: &Query,
    ) -> Result<ExplainReport> {
        let (prepared, cache_hit) = self.prepare_reporting(g);
        self.explain_prepared(&prepared, cache_hit, spec, query)
    }

    /// As [`TcimPipeline::explain`] over an already-prepared artifact,
    /// with the prepared-cache provenance supplied by the caller (the
    /// seam `tcim-service` plans through after its own backend
    /// auto-selection).
    ///
    /// # Errors
    ///
    /// As [`TcimPipeline::explain`].
    pub fn explain_prepared(
        &self,
        prepared: &PreparedGraph,
        prepared_cache_hit: bool,
        spec: &Backend,
        query: &Query,
    ) -> Result<ExplainReport> {
        let stats = prepared.slice_stats();
        let pricing = prepared.pricing();
        let costs = self.engine().cost_model();
        let mut cache = CacheProvenance { prepared_cache_hit, sharded_cache_hit: None };
        let mut sched = None;
        let mut sharding = None;

        let census = match spec {
            // CPU baselines dispatch one intersection per arc and touch
            // no slices.
            Backend::CpuMerge | Backend::CpuForward => KernelCensus {
                kernel_invocations: prepared.oriented().arc_count() as u64,
                slice_pairs: 0,
                blocks_skipped: 0,
            },
            Backend::SerialPim | Backend::Software(_) => KernelCensus::from(pricing),
            Backend::ScheduledPim(policy) => {
                // The same plan the executor runs; summarizing it here
                // re-derives nothing.
                let run = ScheduledRun::plan_with_costs(
                    self.engine(),
                    prepared.matrix(),
                    policy,
                    costs,
                )?;
                let per_array = run.placement().per_array_summary();
                let busiest = per_array.iter().map(|a| a.est_busy_s).fold(0.0f64, f64::max);
                sched = Some(SchedPlanSummary {
                    arrays: policy.arrays,
                    placement: policy.placement,
                    per_array,
                    est_critical_path_s: pricing.kernel_dispatches as f64
                        * costs.controller_overhead_s
                        + busiest,
                });
                KernelCensus::from(pricing)
            }
            Backend::Sharded(policy) => {
                let (artifact, sharded_hit) = self.sharded_cache().get_or_build_reporting(
                    prepared,
                    &policy.spec,
                    self.engine(),
                )?;
                cache.sharded_cache_hit = Some(sharded_hit);
                let compose = artifact.compose_census();
                sharding = Some(ShardPlanSummary {
                    spec: artifact.spec(),
                    occupied_shards: artifact.plan().occupied_shards(),
                    imbalance: artifact.plan().imbalance(),
                    intra_arcs: artifact.plan().intra_arcs(),
                    cross_arcs: artifact.plan().cross_arcs(),
                    boundary_valid_slices: artifact.boundary().boundary_valid_slices(),
                    compose: KernelCensus {
                        kernel_invocations: compose.kernel_invocations,
                        slice_pairs: compose.slice_pairs,
                        blocks_skipped: compose.blocks_skipped,
                    },
                    per_shard: artifact
                        .pieces()
                        .iter()
                        .enumerate()
                        .map(|(shard, piece)| ShardPieceSummary {
                            shard,
                            range: piece.range(),
                            arcs: piece.prepared().oriented().arc_count() as u64,
                            census: KernelCensus::from(piece.prepared().pricing()),
                        })
                        .collect(),
                });
                sharded_census(&artifact)
            }
        };

        Ok(ExplainReport {
            backend: spec.label(),
            query: query.clone(),
            needs_attribution: query.needs_attribution(),
            encoding: EncodingDecision {
                policy: prepared.key().encoding,
                resolved: prepared.encoding(),
                valid_fraction: stats.valid_fraction(),
                compressed_bytes: stats.compressed_bytes,
            },
            cache,
            predicted: PredictedCost {
                census,
                exact: !query.is_motif(),
                modelled_s: self.predicted_modelled_s(prepared, spec),
            },
            sched,
            sharding,
            measured: None,
        })
    }

    /// The cost model's cheap pre-execution estimate of the modelled
    /// latency `spec` will report for `prepared` — `None` for host
    /// backends (no modelled time) and for sharded plans whose artifact
    /// cannot be built. This is the prediction the
    /// `tcim_model_error_permille` calibration histograms score against
    /// the executed run.
    pub fn predicted_modelled_s(
        &self,
        prepared: &PreparedGraph,
        spec: &Backend,
    ) -> Option<f64> {
        let costs = self.engine().cost_model();
        let stats = prepared.slice_stats();
        let pricing = prepared.pricing();
        match spec {
            Backend::CpuMerge | Backend::CpuForward | Backend::Software(_) => None,
            Backend::SerialPim => Some(costs.estimate_modelled_s(
                stats.valid_slices,
                pricing.slice_pairs,
                pricing.kernel_dispatches,
            )),
            // Ideal-split estimate: array work spread perfectly over the
            // arrays, host dispatch serial. The calibration histograms
            // absorb the (placement-dependent) imbalance this ignores.
            Backend::ScheduledPim(policy) => Some(
                costs.estimate_busy_s(stats.valid_slices, pricing.slice_pairs)
                    / policy.arrays as f64
                    + pricing.kernel_dispatches as f64 * costs.controller_overhead_s,
            ),
            Backend::Sharded(policy) => {
                let artifact = self
                    .sharded_cache()
                    .get_or_build(prepared, &policy.spec, self.engine())
                    .ok()?;
                let arrays = policy.inner.arrays as f64;
                // Shards run concurrently: the intra phase finishes on
                // the slowest shard's clock.
                let intra = artifact
                    .pieces()
                    .iter()
                    .map(|piece| {
                        let p = piece.prepared().pricing();
                        let s = piece.prepared().slice_stats();
                        p.kernel_dispatches as f64 * costs.controller_overhead_s
                            + costs.estimate_busy_s(s.valid_slices, p.slice_pairs) / arrays
                    })
                    .fold(0.0f64, f64::max);
                let compose = artifact.compose_census();
                let compose_s = compose.kernel_invocations as f64
                    * costs.controller_overhead_s
                    + costs.estimate_busy_s(
                        artifact.boundary().boundary_valid_slices(),
                        compose.slice_pairs,
                    ) / arrays;
                Some(intra + compose_s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::TcimConfig;
    use crate::sharded::ShardPolicy;
    use tcim_graph::generators::gnm;
    use tcim_sched::SchedPolicy;

    fn pipeline() -> TcimPipeline {
        TcimPipeline::new(&TcimConfig::default()).unwrap()
    }

    #[test]
    fn explain_census_matches_execution_for_serial_pim() {
        let p = pipeline();
        let g = gnm(300, 2200, 11).unwrap();
        let plan = p.explain(&g, &Backend::SerialPim, &Query::TotalTriangles).unwrap();
        assert_eq!(plan.backend, "tcim-serial");
        assert!(!plan.cache.prepared_cache_hit, "first touch builds");
        assert!(plan.predicted.modelled_s.unwrap() > 0.0);
        let prepared = p.prepare(&g);
        let report = p.query(&prepared, &Backend::SerialPim, &Query::TotalTriangles).unwrap();
        assert!(plan.predicted.census.matches(&report.kernel));
        // A second explain hits the prepared cache.
        let again = p.explain(&g, &Backend::SerialPim, &Query::TotalTriangles).unwrap();
        assert!(again.cache.prepared_cache_hit);
    }

    #[test]
    fn scheduled_plans_carry_per_array_placement() {
        let p = pipeline();
        let g = gnm(256, 1800, 3).unwrap();
        let spec = Backend::ScheduledPim(SchedPolicy::with_arrays(4));
        let plan = p.explain(&g, &spec, &Query::TotalTriangles).unwrap();
        let sched = plan.sched.as_ref().unwrap();
        assert_eq!(sched.arrays, 4);
        assert_eq!(sched.per_array.len(), 4);
        let placed_pairs: u64 = sched.per_array.iter().map(|a| a.slice_pairs).sum();
        assert_eq!(placed_pairs, plan.predicted.census.slice_pairs);
        assert!(sched.est_critical_path_s > 0.0);
    }

    #[test]
    fn sharded_plans_sum_piece_and_compose_censuses() {
        let p = pipeline();
        let g = gnm(512, 3600, 21).unwrap();
        let spec = Backend::Sharded(ShardPolicy::with_shards(4));
        let plan = p.explain(&g, &spec, &Query::TotalTriangles).unwrap();
        let shard = plan.sharding.as_ref().unwrap();
        assert_eq!(shard.per_shard.len(), 4);
        assert_eq!(plan.cache.sharded_cache_hit, Some(false));
        let pieces: u64 = shard.per_shard.iter().map(|s| s.census.kernel_invocations).sum();
        assert_eq!(
            pieces + shard.compose.kernel_invocations,
            plan.predicted.census.kernel_invocations
        );
        let prepared = p.prepare(&g);
        let report = p.query(&prepared, &spec, &Query::TotalTriangles).unwrap();
        assert!(plan.predicted.census.matches(&report.kernel), "{plan}");
        assert_eq!(
            p.explain(&g, &spec, &Query::TotalTriangles).unwrap().cache.sharded_cache_hit,
            Some(true)
        );
    }

    #[test]
    fn attach_measured_closes_the_loop() {
        let p = pipeline();
        let g = gnm(200, 1400, 7).unwrap();
        let mut plan = p.explain(&g, &Backend::CpuMerge, &Query::TotalTriangles).unwrap();
        assert!(plan.census_matches().is_none());
        let report =
            p.query(&p.prepare(&g), &Backend::CpuMerge, &Query::TotalTriangles).unwrap();
        plan.attach_measured(&report);
        assert_eq!(plan.census_matches(), Some(true));
        let text = plan.to_string();
        assert!(text.contains("EXPLAIN"));
        assert!(text.contains("cpu-merge"));
        assert!(text.contains("exact match"));
    }

    /// Motif plans carry the anchor pass's census but are marked
    /// inexact: the peeling / chained-AND rounds on top are
    /// data-dependent, so `census_matches` must stay `None` even after
    /// a measurement is attached (the measured kernel counts are a
    /// strict superset of the anchor census).
    #[test]
    fn motif_plans_are_census_inexact() {
        let p = pipeline();
        let g = gnm(150, 900, 5).unwrap();
        for query in [Query::KTruss { k: 3 }, Query::FourCliques] {
            let mut plan = p.explain(&g, &Backend::SerialPim, &query).unwrap();
            assert!(!plan.predicted.exact, "{query}");
            assert!(plan.to_string().contains("anchor pass only"));
            let report = p.query(&p.prepare(&g), &Backend::SerialPim, &query).unwrap();
            assert!(
                report.kernel.kernel_invocations > plan.predicted.census.kernel_invocations,
                "{query}: motif rounds add kernels on top of the anchor pass"
            );
            plan.attach_measured(&report);
            assert_eq!(plan.census_matches(), None, "{query}");
        }
        // Classic plans are unaffected.
        let plan = p.explain(&g, &Backend::SerialPim, &Query::TotalTriangles).unwrap();
        assert!(plan.predicted.exact);
    }

    #[test]
    fn planning_failures_match_execution_failures() {
        let p = pipeline();
        let g = gnm(128, 700, 2).unwrap();
        let invalid = Backend::ScheduledPim(SchedPolicy::with_arrays(0));
        assert!(p.explain(&g, &invalid, &Query::TotalTriangles).is_err());
        let invalid_shard = Backend::Sharded(ShardPolicy::with_shards(0));
        assert!(p.explain(&g, &invalid_shard, &Query::TotalTriangles).is_err());
    }
}
