//! The paper's "This Work w/o PIM" column: the TCIM dataflow — slicing,
//! data reuse, AND + BitCount — executed entirely in software.
//!
//! §V-D: "without PIM, we achieved an average 53.7× speedup against the
//! baseline CPU implementation because of data slicing, reuse, and
//! exchange." This module reproduces that software path so Table V's
//! `w/o PIM` column can be measured rather than quoted.

use std::time::{Duration, Instant};

use tcim_bitmatrix::popcount::PopcountMethod;
use tcim_bitmatrix::{RowEncoding, SliceSize, SlicedMatrix};
use tcim_graph::{CsrGraph, Orientation};

use crate::error::Result;

/// Outcome of a software sliced run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftwareRun {
    /// Exact triangle count.
    pub triangles: u64,
    /// Wall-clock time of the counting phase (excludes graph slicing).
    pub count_time: Duration,
    /// Wall-clock time spent building the sliced representation.
    pub build_time: Duration,
    /// Valid slice pairs processed (the same quantity the PIM engine
    /// counts as AND operations).
    pub slice_pairs: u64,
}

/// Outcome of the pure counting kernel over an already-sliced matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftwareCount {
    /// Exact triangle count.
    pub triangles: u64,
    /// Valid slice pairs processed (pairs the sparse encoding proves
    /// zero are skipped, not processed).
    pub slice_pairs: u64,
    /// Per-edge kernel dispatches: every edge on dense matrices, edges
    /// with at least one visited pair on sparse ones.
    pub kernel_invocations: u64,
    /// Mutually valid pairs skipped by the sparse byte-mask filter.
    pub blocks_skipped: u64,
}

/// Runs the AND + BitCount kernel over a *prepared* sliced matrix — the
/// execution half of the software path, consuming the pipeline's
/// [`PreparedGraph`](crate::PreparedGraph) artifact without re-slicing.
///
/// # Example
///
/// ```
/// use tcim_bitmatrix::{popcount::PopcountMethod, SliceSize, SlicedMatrixBuilder};
/// use tcim_core::software::sliced_count;
///
/// let mut b = SlicedMatrixBuilder::new(4, SliceSize::S64);
/// for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
///     b.add_edge(u, v)?;
/// }
/// let run = sliced_count(&b.build(), PopcountMethod::Native);
/// assert_eq!(run.triangles, 2);
/// # Ok::<(), tcim_bitmatrix::BitMatrixError>(())
/// ```
pub fn sliced_count(matrix: &SlicedMatrix, popcount: PopcountMethod) -> SoftwareCount {
    let sparse = matrix.encoding() == RowEncoding::Sparse;
    let mut triangles = 0u64;
    let mut slice_pairs = 0u64;
    let mut kernel_invocations = 0u64;
    let mut blocks_skipped = 0u64;
    for (i, j) in matrix.edges() {
        let pair_stats = matrix
            .row(i)
            .for_each_matching(matrix.col(j), |_, anded| {
                slice_pairs += 1;
                for &w in anded {
                    triangles +=
                        u64::from(tcim_bitmatrix::popcount::popcount_word(w, popcount));
                }
            })
            .expect("rows and columns of one matrix always align");
        blocks_skipped += pair_stats.skipped;
        if !sparse || pair_stats.visited > 0 {
            kernel_invocations += 1;
        }
    }
    SoftwareCount { triangles, slice_pairs, kernel_invocations, blocks_skipped }
}

/// Runs the AND + BitCount kernel with triangle attribution: every
/// surviving bit `w` of an AND result at arc `(i, j)` satisfies
/// `i < w < j` and is reported to `sink` as the triangle
/// `sink(i, w, j)` (matrix ids, ascending — the
/// `tcim_arch::TriangleSink` contract), the software twin of
/// `tcim_arch::runtime::run_attributed` minus the readout cost model.
/// The count falls out of the readout drain itself, so no popcount
/// method is selected.
pub fn sliced_count_attributed(
    matrix: &SlicedMatrix,
    mut sink: impl FnMut(u32, u32, u32),
) -> SoftwareCount {
    let sparse = matrix.encoding() == RowEncoding::Sparse;
    let slice_bits = matrix.slice_size().bits();
    let mut triangles = 0u64;
    let mut slice_pairs = 0u64;
    let mut kernel_invocations = 0u64;
    let mut blocks_skipped = 0u64;
    for (i, j) in matrix.edges() {
        let pair_stats = matrix
            .row(i)
            .for_each_matching(matrix.col(j), |k, anded| {
                slice_pairs += 1;
                tcim_bitmatrix::popcount::visit_set_bits(anded.iter().copied(), |offset| {
                    triangles += 1;
                    sink(i, k * slice_bits + offset, j);
                });
            })
            .expect("rows and columns of one matrix always align");
        blocks_skipped += pair_stats.skipped;
        if !sparse || pair_stats.visited > 0 {
            kernel_invocations += 1;
        }
    }
    SoftwareCount { triangles, slice_pairs, kernel_invocations, blocks_skipped }
}

/// Runs the sliced bitwise dataflow in software: orient, slice, then for
/// every edge AND the matching valid slice pairs and accumulate the
/// bit count.
///
/// `popcount` selects the hardware-faithful LUT path or the native
/// `popcnt` instruction (results are identical; speed differs).
///
/// # Errors
///
/// Propagates slicing errors (cannot occur for a well-formed graph).
///
/// # Example
///
/// ```
/// use tcim_core::software::sliced_software_tc;
/// use tcim_bitmatrix::{popcount::PopcountMethod, SliceSize};
/// use tcim_graph::{generators::classic, Orientation};
///
/// let g = classic::fig2_example();
/// let run = sliced_software_tc(&g, SliceSize::S64, Orientation::Natural,
///                              PopcountMethod::Native)?;
/// assert_eq!(run.triangles, 2);
/// # Ok::<(), tcim_core::CoreError>(())
/// ```
pub fn sliced_software_tc(
    g: &CsrGraph,
    slice_size: SliceSize,
    orientation: Orientation,
    popcount: PopcountMethod,
) -> Result<SoftwareRun> {
    let build_start = Instant::now();
    let oriented = orientation.orient(g);
    let matrix = SlicedMatrix::from_adjacency(oriented.rows(), slice_size)?;
    let build_time = build_start.elapsed();

    let count_start = Instant::now();
    let SoftwareCount { triangles, slice_pairs, .. } = sliced_count(&matrix, popcount);
    let count_time = count_start.elapsed();

    Ok(SoftwareRun { triangles, count_time, build_time, slice_pairs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use tcim_graph::generators::{classic, gnm};

    #[test]
    fn fig2_counts_two() {
        let run = sliced_software_tc(
            &classic::fig2_example(),
            SliceSize::S64,
            Orientation::Natural,
            PopcountMethod::Native,
        )
        .unwrap();
        assert_eq!(run.triangles, 2);
        assert_eq!(run.slice_pairs, 5);
    }

    #[test]
    fn attributed_count_agrees_with_plain_count_and_sums_to_three() {
        let g = gnm(200, 1400, 5).unwrap();
        let oriented = Orientation::Natural.orient(&g);
        let matrix = SlicedMatrix::from_adjacency(oriented.rows(), SliceSize::S64).unwrap();
        let plain = sliced_count(&matrix, PopcountMethod::Native);
        let mut per_vertex = vec![0u64; g.vertex_count()];
        let attributed = sliced_count_attributed(&matrix, |i, j, w| {
            per_vertex[i as usize] += 1;
            per_vertex[j as usize] += 1;
            per_vertex[w as usize] += 1;
        });
        assert_eq!(attributed, plain);
        assert_eq!(per_vertex.iter().sum::<u64>(), 3 * plain.triangles);
        assert_eq!(per_vertex, baseline::local_triangles(&g));
    }

    #[test]
    fn matches_baselines_on_random_graphs() {
        for seed in 0..3 {
            let g = gnm(300, 2000, seed).unwrap();
            let expected = baseline::edge_iterator_merge(&g);
            for orientation in [Orientation::Natural, Orientation::Degree] {
                for popcount in [PopcountMethod::Native, PopcountMethod::Lut8] {
                    let run =
                        sliced_software_tc(&g, SliceSize::S64, orientation, popcount).unwrap();
                    assert_eq!(run.triangles, expected, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn slice_size_does_not_change_the_count() {
        let g = gnm(250, 1500, 9).unwrap();
        let expected = baseline::forward(&g);
        for s in SliceSize::ALL {
            let run = sliced_software_tc(&g, s, Orientation::Natural, PopcountMethod::Native)
                .unwrap();
            assert_eq!(run.triangles, expected, "slice size {s}");
        }
    }

    #[test]
    fn slice_pair_splitting_bound() {
        // Every 16-bit match lies inside a matching 512-bit pair, so
        // shrinking |S| by 32x multiplies the pair count by at most 32.
        let g = gnm(300, 2500, 4).unwrap();
        let p16 = sliced_software_tc(
            &g,
            SliceSize::S16,
            Orientation::Natural,
            PopcountMethod::Native,
        )
        .unwrap()
        .slice_pairs;
        let p512 = sliced_software_tc(
            &g,
            SliceSize::S512,
            Orientation::Natural,
            PopcountMethod::Native,
        )
        .unwrap()
        .slice_pairs;
        assert!(p16 <= 32 * p512, "16-bit pairs {p16} vs 512-bit pairs {p512}");
    }
}
