//! Multi-graph serving for the TCIM reproduction: a facade that keeps
//! many graphs resident — as prepared artifacts or live dynamic
//! graphs — and answers typed triangle queries against any of them,
//! concurrently, with per-response provenance.
//!
//! The ROADMAP's north star ("serve heavy traffic … as many scenarios
//! as you can imagine") meets the paper's architecture here: the
//! expensive work (orient → slice → characterize) happens once per
//! graph at registration; every query after that is pure execution
//! over a shared `Arc<PreparedGraph>` on whichever
//! [`Backend`](tcim_core::Backend) the request selects, or a direct
//! read of a live graph's incrementally maintained counts.
//!
//! * [`TcimService`] — the facade: register/evict/list graphs, answer
//!   [`Query`](tcim_core::Query)s one at a time or in concurrent
//!   batches ([`TcimService::serve`]).
//! * [`GraphStore`] — the named registry of prepared artifacts, keyed
//!   by name + structural fingerprint and backed by the pipeline's
//!   `PreparedCache`.
//! * [`QueryRequest`] / [`QueryResponse`] — the request/response pair;
//!   responses carry provenance (backend, prepared-cache hit, modelled
//!   cost, wall time) so callers can audit how every answer was made.
//! * [`ServiceError`] — unknown names, name conflicts, and wrapped
//!   core/stream failures.
//! * Observability — [`TcimService::explain`] plans a request (backend
//!   auto-selection included) without executing it; with
//!   `explain_queries` on, every response carries its
//!   [`ExplainReport`](tcim_core::ExplainReport) with measured
//!   accounting attached; [`SlowQueryLog`] retains full forensic
//!   records of requests over the `slow_query_threshold`; and
//!   [`TcimService::render_prometheus`] exposes the lot, flight-recorder
//!   health included.
//!
//! # Example
//!
//! ```
//! use tcim_service::{ServiceConfig, TcimService};
//! use tcim_core::Query;
//! use tcim_graph::generators::classic;
//! use tcim_stream::UpdateBatch;
//!
//! let service = TcimService::new(&ServiceConfig::default())?;
//!
//! // A static graph answers from its prepared artifact…
//! service.register("fig2", &classic::fig2_example())?;
//! assert_eq!(service.query("fig2", &Query::TotalTriangles)?.triangles, 2);
//!
//! // …a live graph answers from incrementally maintained counts.
//! service.register_live("feed", &classic::fig2_example())?;
//! let mut batch = UpdateBatch::new();
//! batch.insert(0, 3);
//! service.update("feed", &batch)?;
//! let response = service.query("feed", &Query::PerVertexTriangles)?;
//! assert_eq!(response.value.per_vertex().unwrap(), &[3, 3, 3, 3]);
//! assert!(response.live);
//! # Ok::<(), tcim_service::ServiceError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod batch;
mod error;
mod service;
mod slow_query;
mod store;

pub use batch::{BatchOptions, BatchProvenance, LiveReadMode};
pub use error::{Result, ServiceError};
pub use service::{QueryRequest, QueryResponse, ServiceConfig, TcimService};
pub use slow_query::{SlowQueryLog, SlowQueryRecord};
pub use store::{GraphInfo, GraphStore};
pub use tcim_stream::EpochSnapshot;
