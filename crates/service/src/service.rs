//! The serving facade: concurrent typed queries over many registered
//! graphs, from one engine and one prepared-artifact pool.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use tcim_core::query::shape_value;
use tcim_core::{
    Backend, EdgeSupport, ExplainReport, KernelStats, PreparedGraph, Query, QueryValue,
    ShardPolicy, ShardProvenance, ShardSpec, TcimConfig, TcimPipeline,
};
use tcim_graph::CsrGraph;
use tcim_stream::{BatchReport, DynamicGraph, EpochSnapshot, StreamConfig, UpdateBatch};
use tcim_telemetry::{
    Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, PhaseBreakdown,
};

use crate::batch::{BatchOptions, BatchProvenance, LiveReadMode};
use crate::error::{Result, ServiceError};
use crate::slow_query::{SlowQueryLog, SlowQueryRecord};
use crate::store::{GraphInfo, GraphStore};

/// Configuration of a [`TcimService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Pipeline configuration (orientation, PIM parameters and the
    /// row-encoding policy with its density threshold) shared by every
    /// registered graph, static and live.
    pub tcim: TcimConfig,
    /// Capacity of the underlying `PreparedCache`.
    pub cache_capacity: usize,
    /// Backend used when a request does not select one.
    pub default_backend: Backend,
    /// Template for live graphs (drift policy, delta fan-out). Its
    /// `tcim` field is overridden by [`ServiceConfig::tcim`] so live
    /// and static graphs always share one engine configuration.
    pub stream: StreamConfig,
    /// Worker threads [`TcimService::serve`] fans requests over
    /// (`None` = available parallelism).
    pub serve_threads: Option<usize>,
    /// Per-array slice budget: when a registered graph's prepared
    /// artifact holds more valid slices than this, requests without an
    /// explicit backend are answered by sharded execution
    /// ([`Backend::Sharded`]) instead of [`ServiceConfig::default_backend`].
    /// `None` disables auto-sharding.
    pub shard_slice_budget: Option<u64>,
    /// Template for auto-selected sharded execution: its composition
    /// mode and inner scheduling policy are used as-is, while the shard
    /// count is computed per graph as `⌈valid slices / budget⌉`
    /// (clamped to at least the template's count).
    pub shard: ShardPolicy,
    /// When set, every query is profiled and its [`QueryResponse`]
    /// carries a per-phase wall-time breakdown
    /// ([`QueryResponse::phases`]). Profiling is scoped to the serving
    /// thread for the duration of one request, so concurrent requests
    /// never observe each other's spans.
    pub profile_queries: bool,
    /// When set, every static-graph response carries the full
    /// [`ExplainReport`] of its execution — the plan assembled before
    /// running, with the measured kernel accounting attached after —
    /// on [`QueryResponse::explain`].
    pub explain_queries: bool,
    /// Wall-time threshold for slow-query capture: requests slower
    /// than this are recorded (with their explain plan and, when
    /// profiling is on, per-phase breakdown) in the service's
    /// [`SlowQueryLog`] and counted by `tcim_slow_queries_total`.
    /// `None` disables capture.
    pub slow_query_threshold: Option<Duration>,
    /// Capacity of the slow-query flight recorder (drop-oldest; 0
    /// counts offenders without retaining records).
    pub slow_query_capacity: usize,
    /// When set, [`TcimService::serve`] coalesces compatible requests
    /// (same graph, same resolved backend) into one attributed
    /// execution each, exactly as the gateway's batch path does.
    /// Off by default: direct `serve` callers keep per-request
    /// execution provenance unless they opt in.
    pub coalesce: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            tcim: TcimConfig::default(),
            cache_capacity: TcimPipeline::DEFAULT_CACHE_CAPACITY,
            default_backend: Backend::SerialPim,
            stream: StreamConfig::default(),
            serve_threads: None,
            shard_slice_budget: None,
            shard: ShardPolicy::with_shards(2),
            profile_queries: false,
            explain_queries: false,
            slow_query_threshold: None,
            slow_query_capacity: 32,
            coalesce: false,
        }
    }
}

/// One query addressed to a named graph, with an optional backend
/// override.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The registered graph to answer from.
    pub graph: String,
    /// The question.
    pub query: Query,
    /// Backend override (`None` = the service's default backend).
    /// Ignored by live graphs, which answer from maintained state.
    pub backend: Option<Backend>,
}

impl QueryRequest {
    /// A request for `query` on the graph registered as `graph`, using
    /// the service's default backend.
    pub fn new(graph: impl Into<String>, query: Query) -> Self {
        QueryRequest { graph: graph.into(), query, backend: None }
    }

    /// Selects an explicit backend for this request.
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }
}

/// A served answer with full provenance: which graph (by name and
/// fingerprint) and which backend answered, whether the prepared
/// artifact was served from cache, the modelled hardware cost, and the
/// host wall time.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The graph that answered.
    pub graph: String,
    /// Structural fingerprint of the artifact that answered (for live
    /// graphs: the latest folded epoch snapshot).
    pub fingerprint: u64,
    /// The backend label that answered (`stream-incremental` for live
    /// graphs).
    pub backend: String,
    /// The question, echoed.
    pub query: Query,
    /// The typed answer.
    pub value: QueryValue,
    /// The graph's global triangle count.
    pub triangles: u64,
    /// Whether the answer came from an already-prepared artifact
    /// (true for every query on a registered graph — preparation
    /// happened at registration; false never escapes registration
    /// itself, which reports its hit/miss on
    /// [`GraphInfo::prepared_cache_hit`]).
    pub prepared_cache_hit: bool,
    /// Whether a live (incrementally maintained) graph answered.
    pub live: bool,
    /// Modelled accelerator latency (s), for simulated-hardware
    /// backends.
    pub modelled_time_s: Option<f64>,
    /// Modelled accelerator energy (J), for simulated-hardware
    /// backends.
    pub modelled_energy_j: Option<f64>,
    /// Normalized kernel accounting of the answering run.
    pub kernel: KernelStats,
    /// Compressed bytes of the sliced artifact that answered, under its
    /// resolved row encoding (for live graphs: the live rows).
    pub compressed_bytes: u64,
    /// Shard provenance (shard count, imbalance, boundary arcs) when a
    /// sharded backend answered — whether selected explicitly or by
    /// the service's slice-budget auto-selection.
    pub sharding: Option<ShardProvenance>,
    /// Host wall-clock time spent serving this request.
    pub wall: Duration,
    /// Per-phase wall-time breakdown of this request (`route`,
    /// `execute`, …), present when [`ServiceConfig::profile_queries`]
    /// is set.
    pub phases: Option<PhaseBreakdown>,
    /// The full explain plan of this execution — routing, predicted
    /// kernel census, scheduler/shard summaries — with the measured
    /// accounting attached, present for static-graph answers when
    /// [`ServiceConfig::explain_queries`] is set.
    pub explain: Option<ExplainReport>,
    /// Coalescing provenance: which batch answered this request and
    /// how many requests shared its one execution. Present only when
    /// the request went through a coalescing batch path (the gateway,
    /// or [`TcimService::serve`] with [`ServiceConfig::coalesce`]).
    pub batch: Option<BatchProvenance>,
    /// The fold epoch that answered, for snapshot-isolated reads over
    /// a live graph ([`LiveReadMode::Pinned`]). `None` for static
    /// graphs and for maintained-state live answers.
    pub epoch: Option<u64>,
}

impl fmt::Display for QueryResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:<22} via {:<28} {:>10} triangles  ({:.3} ms, {})",
            self.graph,
            self.query.to_string(),
            self.backend,
            self.triangles,
            self.wall.as_secs_f64() * 1e3,
            if self.live { "live" } else { "prepared" }
        )
    }
}

pub(crate) struct LiveGraph {
    pub(crate) dynamic: Mutex<DynamicGraph>,
    /// The latest published epoch snapshot, refreshed whenever the
    /// dynamic graph folds. Readers clone it out from under the
    /// `RwLock` without ever touching the `dynamic` mutex, so update
    /// batches never block snapshot-isolated reads. Lock order on
    /// writer paths is `dynamic` → `published`; readers take only
    /// `published`.
    pub(crate) published: RwLock<EpochSnapshot>,
    pub(crate) served: AtomicU64,
}

/// Service-level instruments, registered once per service.
#[derive(Debug, Clone)]
pub(crate) struct ServiceMetrics {
    pub(crate) registry: MetricsRegistry,
    pub(crate) queries: Counter,
    pub(crate) failures: Counter,
    pub(crate) updates: Counter,
    pub(crate) slow: Counter,
    pub(crate) inflight: Gauge,
    pub(crate) wall: Histogram,
    /// Batches the coalescing path answered (singleton groups
    /// included — every group is one batch).
    pub(crate) batches: Counter,
    /// Requests answered through the coalescing path.
    pub(crate) coalesced: Counter,
    /// Attributed executions the coalescing path avoided
    /// (`Σ (batch size − executions run)`).
    pub(crate) executions_saved: Counter,
    /// Distribution of coalesced-batch sizes.
    pub(crate) batch_size: Histogram,
}

impl ServiceMetrics {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        ServiceMetrics {
            queries: registry
                .counter("tcim_service_queries_total", "queries served (including failures)"),
            failures: registry.counter(
                "tcim_service_query_failures_total",
                "queries that returned an error",
            ),
            updates: registry.counter(
                "tcim_service_update_batches_total",
                "update batches applied to live graphs",
            ),
            slow: registry.counter(
                "tcim_slow_queries_total",
                "queries that exceeded the slow-query wall-time threshold",
            ),
            inflight: registry
                .gauge("tcim_service_inflight_queries", "queries currently executing"),
            wall: registry.histogram(
                "tcim_service_query_wall_nanoseconds",
                "host wall-clock time per served query",
            ),
            batches: registry.counter(
                "tcim_service_batches_total",
                "coalesced batches answered (singleton groups included)",
            ),
            coalesced: registry.counter(
                "tcim_service_coalesced_queries_total",
                "queries answered through the coalescing batch path",
            ),
            executions_saved: registry.counter(
                "tcim_service_executions_saved_total",
                "attributed executions avoided by query coalescing",
            ),
            batch_size: registry.histogram(
                "tcim_service_batch_size",
                "requests sharing one coalesced execution, per batch",
            ),
            registry,
        }
    }
}

/// The TCIM serving facade: one characterized engine and one prepared
/// artifact pool behind a named-graph registry, answering typed
/// [`Query`]s — concurrently, across graphs — with per-response
/// provenance.
///
/// Two kinds of graphs are served from one namespace:
///
/// * **static** graphs ([`TcimService::register`]) are prepared once
///   and answered by any [`Backend`] from the shared
///   `Arc<PreparedGraph>`;
/// * **live** graphs ([`TcimService::register_live`]) are
///   `tcim-stream` dynamic graphs whose total *and* per-vertex counts
///   are maintained incrementally under [`TcimService::update`]
///   batches, so queries answer from state without recounting.
///
/// # Example
///
/// ```
/// use tcim_service::{QueryRequest, ServiceConfig, TcimService};
/// use tcim_core::{Backend, Query};
/// use tcim_graph::generators::classic;
///
/// let service = TcimService::new(&ServiceConfig::default())?;
/// service.register("wheel", &classic::wheel(12))?;
/// service.register("k5", &classic::complete(5))?;
///
/// // Concurrent mixed queries across graphs, one artifact each.
/// let responses = service.serve(&[
///     QueryRequest::new("wheel", Query::TotalTriangles),
///     QueryRequest::new("k5", Query::PerVertexTriangles),
///     QueryRequest::new("wheel", Query::TopKVertices { k: 1 }).with_backend(Backend::CpuMerge),
///     QueryRequest::new("k5", Query::GlobalClustering),
/// ]);
/// let responses: Vec<_> = responses.into_iter().collect::<Result<_, _>>()?;
/// assert_eq!(responses[0].triangles, 11);
/// assert_eq!(responses[1].value.per_vertex().unwrap(), &[6, 6, 6, 6, 6]);
/// assert_eq!(responses[2].value.top_k().unwrap()[0].vertex, 0); // the hub
/// assert!(responses.iter().all(|r| r.prepared_cache_hit));
/// # Ok::<(), tcim_service::ServiceError>(())
/// ```
pub struct TcimService {
    pub(crate) config: ServiceConfig,
    pub(crate) pipeline: TcimPipeline,
    pub(crate) store: GraphStore,
    pub(crate) live: RwLock<HashMap<String, Arc<LiveGraph>>>,
    pub(crate) metrics: ServiceMetrics,
    pub(crate) slow_queries: SlowQueryLog,
    /// Monotonic batch-id source for coalescing provenance.
    pub(crate) batch_ids: AtomicU64,
}

impl fmt::Debug for TcimService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TcimService(static={}, live={}, cache={:?})",
            self.store.len(),
            self.live.read().expect("live lock is never poisoned").len(),
            self.pipeline.cache()
        )
    }
}

impl TcimService {
    /// Characterizes the engine and opens an empty registry.
    ///
    /// # Errors
    ///
    /// Propagates engine characterization failures.
    pub fn new(config: &ServiceConfig) -> Result<Self> {
        let pipeline = TcimPipeline::with_cache_capacity(&config.tcim, config.cache_capacity)
            .map_err(ServiceError::Core)?;
        Ok(TcimService {
            config: config.clone(),
            pipeline,
            store: GraphStore::new(),
            live: RwLock::new(HashMap::new()),
            metrics: ServiceMetrics::new(),
            slow_queries: SlowQueryLog::new(config.slow_query_capacity),
            batch_ids: AtomicU64::new(0),
        })
    }

    /// The pipeline serving every static graph (exposes the
    /// `PreparedCache` for hit/miss inspection).
    pub fn pipeline(&self) -> &TcimPipeline {
        &self.pipeline
    }

    /// The static-graph registry.
    pub fn store(&self) -> &GraphStore {
        &self.store
    }

    /// The backend answering requests that do not select one.
    pub fn default_backend(&self) -> &Backend {
        &self.config.default_backend
    }

    /// Registers `g` under `name`: prepares it (once — re-registration
    /// and fingerprint-equal graphs hit the `PreparedCache`) and makes
    /// it queryable. Returns the graph's card, whose
    /// `prepared_cache_hit` records whether preparation was served
    /// from cache.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::NameInUse`] when `name` is bound to a
    /// live graph.
    pub fn register(&self, name: &str, g: &CsrGraph) -> Result<GraphInfo> {
        // Hold the live-registry lock across the whole registration.
        // Both registration paths acquire `live` before touching the
        // store, so a concurrent `register_live` can never slip the
        // same name in between this check and the store insert.
        let live = self.live.read().expect("live lock is never poisoned");
        if live.contains_key(name) {
            return Err(ServiceError::NameInUse { name: name.to_string() });
        }
        let (prepared, hit) = self.pipeline.prepare_reporting(g);
        Ok(self.store.insert(name, prepared, hit))
    }

    /// Registers `g` under `name` as a *live* graph: a dynamic graph
    /// whose total and per-vertex triangle counts are maintained
    /// incrementally under [`TcimService::update`] batches.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::NameInUse`] when `name` is already
    /// bound, and propagates dynamic-graph construction failures.
    pub fn register_live(&self, name: &str, g: &CsrGraph) -> Result<GraphInfo> {
        // Build the dynamic state before locking anything (slow), then
        // check *both* namespaces under the live write lock: `register`
        // holds the live lock while it inserts into the store, so this
        // store check cannot race it (lock order is live → store on
        // every path).
        let stream_config =
            StreamConfig { tcim: self.config.tcim.clone(), ..self.config.stream.clone() };
        let dynamic = DynamicGraph::new(g, stream_config)?;
        let mut live = self.live.write().expect("live lock is never poisoned");
        if live.contains_key(name) || self.store.contains(name) {
            return Err(ServiceError::NameInUse { name: name.to_string() });
        }
        let info = live_info(name, &dynamic, 0);
        let published = RwLock::new(dynamic.epoch_snapshot());
        live.insert(
            name.to_string(),
            Arc::new(LiveGraph {
                dynamic: Mutex::new(dynamic),
                published,
                served: AtomicU64::new(0),
            }),
        );
        Ok(info)
    }

    /// Applies an update batch to the live graph bound to `name`.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownGraph`] for unbound (or static)
    /// names and propagates batch failures.
    pub fn update(&self, name: &str, batch: &UpdateBatch) -> Result<BatchReport> {
        let graph = self
            .live_graph(name)
            .ok_or_else(|| ServiceError::UnknownGraph { name: name.to_string() })?;
        let mut dynamic = graph.dynamic.lock().expect("live graph lock is never poisoned");
        let report = dynamic.apply_batch(batch)?;
        if report.folded {
            // The drift policy folded a fresh epoch: publish it for
            // snapshot-isolated readers. Lock order dynamic → published
            // (readers only ever take `published`, so no cycle).
            *graph.published.write().expect("published lock is never poisoned") =
                dynamic.epoch_snapshot();
        }
        self.metrics.updates.incr();
        Ok(report)
    }

    /// Forces the live graph bound to `name` to fold and publish its
    /// current state as the next epoch, returning the fresh snapshot.
    /// A no-op (returning the current snapshot) when no update has been
    /// applied since the last fold. Concurrent snapshot-isolated
    /// readers are never blocked: they keep answering from the
    /// previously published epoch until the atomic swap.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownGraph`] for unbound (or static)
    /// names and propagates fold failures.
    pub fn publish(&self, name: &str) -> Result<EpochSnapshot> {
        let graph = self
            .live_graph(name)
            .ok_or_else(|| ServiceError::UnknownGraph { name: name.to_string() })?;
        let mut dynamic = graph.dynamic.lock().expect("live graph lock is never poisoned");
        let snapshot = dynamic.publish()?;
        *graph.published.write().expect("published lock is never poisoned") = snapshot.clone();
        Ok(snapshot)
    }

    /// The latest *published* epoch snapshot of the live graph bound to
    /// `name` — what snapshot-isolated reads answer from. Never touches
    /// the dynamic state's mutex, so it cannot be blocked by an
    /// in-flight update batch.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownGraph`] for unbound (or static)
    /// names.
    pub fn pinned_snapshot(&self, name: &str) -> Result<EpochSnapshot> {
        let graph = self
            .live_graph(name)
            .ok_or_else(|| ServiceError::UnknownGraph { name: name.to_string() })?;
        let snapshot =
            graph.published.read().expect("published lock is never poisoned").clone();
        Ok(snapshot)
    }

    /// Evicts the graph bound to `name` (static or live), returning
    /// its final card. A static artifact survives in the
    /// `PreparedCache` until LRU eviction drops it.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownGraph`] when nothing is bound.
    pub fn evict(&self, name: &str) -> Result<GraphInfo> {
        if let Some(info) = self.store.remove(name) {
            return Ok(info);
        }
        let mut live = self.live.write().expect("live lock is never poisoned");
        match live.remove(name) {
            Some(graph) => {
                let dynamic = graph.dynamic.lock().expect("live graph lock is never poisoned");
                Ok(live_info(name, &dynamic, graph.served.load(Ordering::Relaxed)))
            }
            None => Err(ServiceError::UnknownGraph { name: name.to_string() }),
        }
    }

    /// Every registered graph's card — static and live — sorted by
    /// name.
    pub fn list(&self) -> Vec<GraphInfo> {
        let mut infos = self.store.list();
        let snapshot: Vec<(String, Arc<LiveGraph>)> = {
            let live = self.live.read().expect("live lock is never poisoned");
            live.iter().map(|(name, graph)| (name.clone(), Arc::clone(graph))).collect()
        };
        for (name, graph) in snapshot {
            let dynamic = graph.dynamic.lock().expect("live graph lock is never poisoned");
            infos.push(live_info(&name, &dynamic, graph.served.load(Ordering::Relaxed)));
        }
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Answers one query on the graph bound to `graph`, with the
    /// default backend.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownGraph`] for unbound names and
    /// propagates backend/query failures.
    pub fn query(&self, graph: &str, query: &Query) -> Result<QueryResponse> {
        self.query_with(&QueryRequest::new(graph, query.clone()))
    }

    /// Answers one request (graph + query + optional backend
    /// override).
    ///
    /// # Errors
    ///
    /// As [`TcimService::query`].
    pub fn query_with(&self, request: &QueryRequest) -> Result<QueryResponse> {
        self.query_with_mode(request, LiveReadMode::Maintained)
    }

    /// The metrics-instrumented single-request path shared by direct
    /// queries and singleton batch groups: the in-flight gauge is held
    /// by an RAII guard, so `?` propagation (or a panicking backend)
    /// can never leak it.
    pub(crate) fn query_with_mode(
        &self,
        request: &QueryRequest,
        mode: LiveReadMode,
    ) -> Result<QueryResponse> {
        let _inflight = self.metrics.inflight.track();
        let start = Instant::now();
        let (result, profiled) = if self.config.profile_queries {
            tcim_telemetry::profile("query", || self.answer(request, mode))
        } else {
            (self.answer(request, mode), None)
        };
        self.metrics.queries.incr();
        self.metrics.wall.observe_duration(start.elapsed());
        if result.is_err() {
            self.metrics.failures.incr();
        }
        let mut response = result?;
        response.phases = profiled.map(|report| report.breakdown());
        self.capture_slow(&response);
        // The plan was assembled for the slow-query record even when
        // responses are not asked to carry it; strip it here so the
        // response surface follows `explain_queries` exactly.
        if !self.config.explain_queries {
            response.explain = None;
        }
        Ok(response)
    }

    /// Records `response` in the slow-query flight recorder when it
    /// breached the configured threshold.
    pub(crate) fn capture_slow(&self, response: &QueryResponse) {
        if let Some(threshold) = self.config.slow_query_threshold {
            if response.wall >= threshold {
                self.metrics.slow.incr();
                self.slow_queries.record(SlowQueryRecord {
                    graph: response.graph.clone(),
                    backend: response.backend.clone(),
                    query: response.query.clone(),
                    wall: response.wall,
                    threshold,
                    triangles: response.triangles,
                    explain: response.explain.clone(),
                    phases: response.phases.clone(),
                });
            }
        }
    }

    /// Plans one query on the graph bound to `graph` — backend
    /// auto-selection included — without executing anything.
    ///
    /// # Errors
    ///
    /// As [`TcimService::explain_with`].
    pub fn explain(&self, graph: &str, query: &Query) -> Result<ExplainReport> {
        self.explain_with(&QueryRequest::new(graph, query.clone()))
    }

    /// Plans one request without executing it: resolves the graph,
    /// runs the *same* backend selection a real request would get
    /// (explicit override, else the default backend or slice-budget
    /// auto-sharding), and assembles the [`ExplainReport`] from the
    /// artifacts a subsequent execution will consume.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownGraph`] for unbound names,
    /// [`ServiceError::NotPlannable`] for live graphs (they answer
    /// from maintained state, not a planned execution), and propagates
    /// planning failures.
    pub fn explain_with(&self, request: &QueryRequest) -> Result<ExplainReport> {
        let Some(prepared) = self.store.get(&request.graph) else {
            return Err(if self.live_graph(&request.graph).is_some() {
                ServiceError::NotPlannable { name: request.graph.clone() }
            } else {
                ServiceError::UnknownGraph { name: request.graph.clone() }
            });
        };
        let backend = match &request.backend {
            Some(explicit) => explicit.clone(),
            None => self.select_backend(&prepared),
        };
        Ok(self.pipeline.explain_prepared(&prepared, true, &backend, &request.query)?)
    }

    /// The slow-query flight recorder: drain or snapshot the captured
    /// records (always empty unless
    /// [`ServiceConfig::slow_query_threshold`] is set).
    pub fn slow_queries(&self) -> &SlowQueryLog {
        &self.slow_queries
    }

    /// Routes the request to the answering graph and executes it
    /// (the profiled body of [`TcimService::query_with`]).
    fn answer(&self, request: &QueryRequest, mode: LiveReadMode) -> Result<QueryResponse> {
        let start = Instant::now();
        let route_span = tcim_telemetry::span("route");
        if let Some(prepared) = self.store.get(&request.graph) {
            let backend = match &request.backend {
                Some(explicit) => explicit.clone(),
                None => self.select_backend(&prepared),
            };
            drop(route_span);
            return self.answer_static(request, &prepared, backend, start);
        }
        match self.live_graph(&request.graph) {
            Some(graph) => {
                graph.served.fetch_add(1, Ordering::Relaxed);
                match mode {
                    LiveReadMode::Maintained => {
                        let dynamic =
                            graph.dynamic.lock().expect("live graph lock is never poisoned");
                        drop(route_span);
                        let _execute = tcim_telemetry::span("execute");
                        answer_live(&request.graph, &dynamic, &request.query, start)
                    }
                    LiveReadMode::Pinned => {
                        let snapshot = graph
                            .published
                            .read()
                            .expect("published lock is never poisoned")
                            .clone();
                        drop(route_span);
                        let _execute = tcim_telemetry::span("execute");
                        self.answer_pinned(request, &snapshot, start)
                    }
                }
            }
            None => Err(ServiceError::UnknownGraph { name: request.graph.clone() }),
        }
    }

    /// Answers one request from an epoch-pinned snapshot: the published
    /// prepared artifact is queried exactly like a static graph (same
    /// backend selection), so the response reflects the pinned epoch's
    /// state no matter how far the live state has moved on.
    fn answer_pinned(
        &self,
        request: &QueryRequest,
        snapshot: &EpochSnapshot,
        start: Instant,
    ) -> Result<QueryResponse> {
        let backend = match &request.backend {
            Some(explicit) => explicit.clone(),
            None => self.select_backend(&snapshot.prepared),
        };
        let report = self.pipeline.query(&snapshot.prepared, &backend, &request.query)?;
        Ok(QueryResponse {
            graph: request.graph.clone(),
            fingerprint: snapshot.prepared.key().fingerprint,
            backend: report.backend,
            query: report.query,
            value: report.value,
            triangles: report.triangles,
            prepared_cache_hit: true,
            live: true,
            modelled_time_s: report.modelled_time_s,
            modelled_energy_j: report.modelled_energy_j,
            kernel: report.kernel,
            compressed_bytes: report.compressed_bytes,
            sharding: report.sharding,
            wall: start.elapsed(),
            phases: None,
            explain: None,
            batch: None,
            epoch: Some(snapshot.epoch),
        })
    }

    /// Clones the live graph bound to `name` out of the registry, so
    /// callers never hold the registry lock while executing against the
    /// graph (the registry lock guards only the name table; each live
    /// graph serializes behind its own mutex).
    pub(crate) fn live_graph(&self, name: &str) -> Option<Arc<LiveGraph>> {
        self.live.read().expect("live lock is never poisoned").get(name).cloned()
    }

    /// The worker-thread count batch paths fan over.
    pub(crate) fn serve_threads(&self) -> usize {
        self.config.serve_threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1)
        })
    }

    /// Serves a batch of requests concurrently over scoped worker
    /// threads, returning per-request outcomes in submission order.
    /// Requests may mix graphs, query shapes and backends freely; all
    /// of them answer from already-prepared artifacts (nothing is
    /// re-oriented or re-sliced at serve time).
    ///
    /// This is a thin compatibility shim over the shared batch path
    /// ([`TcimService::serve_with`]) — the same code the gateway's
    /// dispatcher drains its admission queue into. By default requests
    /// keep per-request execution provenance; set
    /// [`ServiceConfig::coalesce`] to let compatible requests share one
    /// attributed execution each.
    pub fn serve(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse>> {
        self.serve_with(
            requests,
            &BatchOptions { coalesce: self.config.coalesce, live: LiveReadMode::Maintained },
        )
    }

    fn answer_static(
        &self,
        request: &QueryRequest,
        prepared: &Arc<PreparedGraph>,
        backend: Backend,
        start: Instant,
    ) -> Result<QueryResponse> {
        // Plan before executing when anything downstream wants the
        // explain — the response itself or a potential slow-query
        // record. The plan reads the same cached artifacts the
        // execution consumes, so nothing is re-prepared.
        let mut plan = if self.config.explain_queries
            || self.config.slow_query_threshold.is_some()
        {
            let _explain = tcim_telemetry::span("explain");
            Some(self.pipeline.explain_prepared(prepared, true, &backend, &request.query)?)
        } else {
            None
        };
        let execute_span = tcim_telemetry::span("execute");
        let report = self.pipeline.query(prepared, &backend, &request.query)?;
        drop(execute_span);
        if let Some(plan) = plan.as_mut() {
            plan.attach_measured(&report);
        }
        Ok(QueryResponse {
            graph: request.graph.clone(),
            fingerprint: prepared.key().fingerprint,
            backend: report.backend,
            query: report.query,
            value: report.value,
            triangles: report.triangles,
            prepared_cache_hit: true,
            live: false,
            modelled_time_s: report.modelled_time_s,
            modelled_energy_j: report.modelled_energy_j,
            kernel: report.kernel,
            compressed_bytes: report.compressed_bytes,
            sharding: report.sharding,
            wall: start.elapsed(),
            phases: None,
            explain: plan,
            batch: None,
            epoch: None,
        })
    }

    /// Picks the backend for a request with no explicit selection:
    /// the default backend, unless the artifact exceeds the configured
    /// per-array slice budget — then sharded execution with
    /// `⌈valid slices / budget⌉` shards (the sharded artifact is built
    /// once and cached in the pipeline's `ShardedCache`).
    pub(crate) fn select_backend(&self, prepared: &PreparedGraph) -> Backend {
        let Some(budget) = self.config.shard_slice_budget else {
            return self.config.default_backend.clone();
        };
        let valid = prepared.slice_stats().valid_slices;
        if budget == 0 || valid <= budget {
            return self.config.default_backend.clone();
        }
        let shards = (valid.div_ceil(budget) as usize).max(self.config.shard.spec.shards);
        Backend::Sharded(ShardPolicy {
            spec: ShardSpec { shards, ..self.config.shard.spec },
            inner: self.config.shard.inner.clone(),
        })
    }

    /// A point-in-time read of every metric this service can see:
    /// service-level request instruments, the pipeline's execution
    /// instruments and cache counters, and registry-size gauges.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = self.metrics.registry.snapshot();
        snapshot.samples.extend(self.pipeline.metrics_snapshot().samples);
        snapshot.push_gauge(
            "tcim_service_static_graphs",
            "static graphs currently registered",
            self.store.len() as i64,
        );
        snapshot.push_gauge(
            "tcim_service_live_graphs",
            "live graphs currently registered",
            self.live.read().expect("live lock is never poisoned").len() as i64,
        );
        snapshot.push_gauge(
            "tcim_slow_query_log_retained",
            "slow-query records currently retained in the flight recorder",
            self.slow_queries.len() as i64,
        );
        let flight = tcim_telemetry::flight_recorder_stats();
        snapshot.push_counter(
            "tcim_spans_dropped_total",
            "spans evicted from the span flight recorder by capacity pressure",
            flight.dropped,
        );
        snapshot.push_gauge(
            "tcim_flight_recorder_capacity",
            "configured span flight-recorder capacity (0 = disabled)",
            flight.capacity as i64,
        );
        snapshot.push_gauge(
            "tcim_flight_recorder_retained_spans",
            "spans currently retained by the span flight recorder",
            flight.retained as i64,
        );
        snapshot
    }

    /// [`TcimService::metrics_snapshot`] rendered in the Prometheus
    /// text exposition format, ready to serve from a `/metrics`
    /// endpoint.
    pub fn render_prometheus(&self) -> String {
        tcim_telemetry::render_prometheus(&self.metrics_snapshot())
    }
}

/// The card of a live graph (the fingerprint is the latest epoch
/// snapshot's).
fn live_info(name: &str, dynamic: &DynamicGraph, queries_served: u64) -> GraphInfo {
    GraphInfo {
        name: name.to_string(),
        fingerprint: dynamic.prepared().key().fingerprint,
        vertices: dynamic.vertex_count(),
        edges: dynamic.edge_count(),
        prepared_cache_hit: false,
        queries_served,
        live: true,
    }
}

/// Answers a query from a live graph's incrementally maintained state:
/// total and per-vertex counts are read directly, clustering derives
/// from them plus live degrees, and edge support runs one delta kernel
/// per live edge — never a re-slice.
fn answer_live(
    name: &str,
    dynamic: &DynamicGraph,
    query: &Query,
    start: Instant,
) -> Result<QueryResponse> {
    // Motif queries run their own kernel rounds over the live rows
    // (peeling for trusses, chained ANDs for cliques) instead of
    // reshaping the maintained counters — still never a re-slice.
    if query.is_motif() {
        let (value, kernel) = match *query {
            Query::KTruss { k } => dynamic.trussness(k),
            _ => dynamic.four_cliques(),
        };
        return Ok(QueryResponse {
            graph: name.to_string(),
            fingerprint: dynamic.prepared().key().fingerprint,
            backend: "stream-incremental".to_string(),
            query: query.clone(),
            value,
            triangles: dynamic.triangles(),
            prepared_cache_hit: true,
            live: true,
            modelled_time_s: None,
            modelled_energy_j: None,
            kernel,
            compressed_bytes: dynamic.compressed_bytes(),
            sharding: None,
            wall: start.elapsed(),
            phases: None,
            explain: None,
            batch: None,
            epoch: None,
        });
    }
    let n = dynamic.vertex_count();
    let degrees: Vec<u64> = match query {
        Query::LocalClustering { .. } | Query::GlobalClustering => {
            (0..n as u32).map(|v| dynamic.neighbors(v).len() as u64).collect()
        }
        _ => Vec::new(),
    };
    let (edge_support, kernel) = if matches!(query, Query::EdgeSupport) {
        let (entries, slice_pairs, blocks_skipped) = dynamic.edge_support();
        let support: Vec<EdgeSupport> =
            entries.into_iter().map(|(u, v, support)| EdgeSupport { u, v, support }).collect();
        let kernel = KernelStats {
            kernel_invocations: support.len() as u64,
            slice_pairs,
            result_readouts: 0,
            blocks_skipped,
        };
        (Some(support), kernel)
    } else {
        (None, KernelStats::default())
    };
    let value =
        shape_value(query, dynamic.triangles(), dynamic.per_vertex(), &degrees, edge_support)?;
    Ok(QueryResponse {
        graph: name.to_string(),
        fingerprint: dynamic.prepared().key().fingerprint,
        backend: "stream-incremental".to_string(),
        query: query.clone(),
        value,
        triangles: dynamic.triangles(),
        prepared_cache_hit: true,
        live: true,
        modelled_time_s: None,
        modelled_energy_j: None,
        kernel,
        compressed_bytes: dynamic.compressed_bytes(),
        sharding: None,
        wall: start.elapsed(),
        phases: None,
        explain: None,
        batch: None,
        epoch: None,
    })
}
