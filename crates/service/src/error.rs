//! Error type of the serving facade.

use std::error::Error;
use std::fmt;

use tcim_core::CoreError;
use tcim_stream::StreamError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ServiceError>;

/// Errors raised while registering graphs or serving queries.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// A query or eviction named a graph the registry does not hold.
    UnknownGraph {
        /// The name that failed to resolve.
        name: String,
    },
    /// A registration reused a name already bound to a *live* graph
    /// (or vice versa) — the two registries share one namespace so a
    /// request's name always resolves unambiguously.
    NameInUse {
        /// The conflicting name.
        name: String,
    },
    /// An EXPLAIN was requested for a live graph. Live graphs answer
    /// from incrementally maintained state — there is no planned
    /// execution to explain.
    NotPlannable {
        /// The live graph's name.
        name: String,
    },
    /// A pipeline/backend/query failure from `tcim-core`.
    Core(CoreError),
    /// An update or maintenance failure from a live `tcim-stream`
    /// graph.
    Stream(StreamError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownGraph { name } => {
                write!(f, "no graph registered under {name:?}")
            }
            ServiceError::NameInUse { name } => {
                write!(f, "graph name {name:?} is already in use")
            }
            ServiceError::NotPlannable { name } => {
                write!(
                    f,
                    "graph {name:?} is live — it answers from maintained state, \
                     so there is no execution plan to explain"
                )
            }
            ServiceError::Core(e) => write!(f, "query error: {e}"),
            ServiceError::Stream(e) => write!(f, "stream error: {e}"),
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServiceError::Core(e) => Some(e),
            ServiceError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}

impl From<StreamError> for ServiceError {
    fn from(e: StreamError) -> Self {
        ServiceError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = ServiceError::UnknownGraph { name: "orkut".into() };
        assert_eq!(e.to_string(), "no graph registered under \"orkut\"");
        assert!(e.source().is_none());
        let e = ServiceError::from(CoreError::Query { reason: "bad vertex".into() });
        assert!(e.to_string().contains("bad vertex"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServiceError>();
    }
}
