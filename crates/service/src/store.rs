//! The named-graph registry: prepared artifacts addressable by name.
//!
//! A [`GraphStore`] binds human-meaningful names ("orkut",
//! "friendster-sample") to prepared artifacts keyed by name **and**
//! structural fingerprint: re-registering the same graph under its name
//! is idempotent, while registering a *different* graph under an
//! existing name replaces the binding (a new dataset version rolling
//! over). The artifacts themselves live in (and are shared with) the
//! pipeline's `PreparedCache`; the store pins its own `Arc`, so LRU
//! eviction from the cache never invalidates a registered graph.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use tcim_core::PreparedGraph;

/// A registered graph's public card: identity, size and serving stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphInfo {
    /// The registry name.
    pub name: String,
    /// Structural fingerprint of the registered graph.
    pub fingerprint: u64,
    /// Vertex count.
    pub vertices: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Whether registration found the artifact already prepared (in
    /// the pipeline's `PreparedCache`) instead of building it.
    pub prepared_cache_hit: bool,
    /// Queries served from this registration so far.
    pub queries_served: u64,
    /// Whether this is a live (incrementally maintained) graph rather
    /// than a static prepared artifact.
    pub live: bool,
}

struct StoredGraph {
    prepared: Arc<PreparedGraph>,
    prepared_cache_hit: bool,
    served: AtomicU64,
}

impl StoredGraph {
    fn info(&self, name: &str) -> GraphInfo {
        let key = self.prepared.key();
        GraphInfo {
            name: name.to_string(),
            fingerprint: key.fingerprint,
            vertices: key.vertices,
            edges: key.edges,
            prepared_cache_hit: self.prepared_cache_hit,
            queries_served: self.served.load(Ordering::Relaxed),
            live: false,
        }
    }
}

/// A thread-safe name → prepared-artifact registry.
///
/// Reads (query dispatch, listing) take a shared lock; registration
/// and eviction take the exclusive lock briefly — artifacts are handed
/// out as `Arc`s, so queries never hold the lock while executing.
#[derive(Default)]
pub struct GraphStore {
    inner: RwLock<HashMap<String, StoredGraph>>,
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GraphStore(len={})", self.len())
    }
}

impl GraphStore {
    /// An empty registry.
    pub fn new() -> Self {
        GraphStore::default()
    }

    /// Binds `name` to `prepared`, recording whether the preparation
    /// was a cache hit. Re-binding the *same* fingerprint is
    /// idempotent (the original registration and its serving counter
    /// survive); a different fingerprint replaces the binding.
    pub fn insert(
        &self,
        name: &str,
        prepared: Arc<PreparedGraph>,
        prepared_cache_hit: bool,
    ) -> GraphInfo {
        let mut inner = self.inner.write().expect("store lock is never poisoned");
        if let Some(existing) = inner.get(name) {
            if existing.prepared.key().fingerprint == prepared.key().fingerprint {
                return existing.info(name);
            }
        }
        let stored = StoredGraph { prepared, prepared_cache_hit, served: AtomicU64::new(0) };
        let info = stored.info(name);
        inner.insert(name.to_string(), stored);
        info
    }

    /// The artifact bound to `name`, bumping its serving counter.
    pub fn get(&self, name: &str) -> Option<Arc<PreparedGraph>> {
        self.get_counted(name, 1)
    }

    /// As [`GraphStore::get`], bumping the serving counter by `served`
    /// — one lookup can answer a whole coalesced batch.
    pub fn get_counted(&self, name: &str, served: u64) -> Option<Arc<PreparedGraph>> {
        let inner = self.inner.read().expect("store lock is never poisoned");
        inner.get(name).map(|stored| {
            stored.served.fetch_add(served, Ordering::Relaxed);
            Arc::clone(&stored.prepared)
        })
    }

    /// The card of the graph bound to `name` (no counter bump).
    pub fn info(&self, name: &str) -> Option<GraphInfo> {
        let inner = self.inner.read().expect("store lock is never poisoned");
        inner.get(name).map(|stored| stored.info(name))
    }

    /// Unbinds `name`, returning the final card. The artifact itself
    /// survives in the `PreparedCache` until LRU eviction drops it.
    pub fn remove(&self, name: &str) -> Option<GraphInfo> {
        let mut inner = self.inner.write().expect("store lock is never poisoned");
        inner.remove(name).map(|stored| stored.info(name))
    }

    /// Every registered graph's card, sorted by name.
    pub fn list(&self) -> Vec<GraphInfo> {
        let inner = self.inner.read().expect("store lock is never poisoned");
        let mut infos: Vec<GraphInfo> =
            inner.iter().map(|(name, stored)| stored.info(name)).collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Whether `name` is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().expect("store lock is never poisoned").contains_key(name)
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.inner.read().expect("store lock is never poisoned").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_core::{TcimConfig, TcimPipeline};
    use tcim_graph::generators::classic;

    fn prepared(n: usize) -> Arc<PreparedGraph> {
        TcimPipeline::new(&TcimConfig::default()).unwrap().prepare(&classic::wheel(n))
    }

    #[test]
    fn register_get_evict_roundtrip() {
        let store = GraphStore::new();
        assert!(store.is_empty());
        let info = store.insert("wheel", prepared(10), false);
        assert_eq!((info.vertices, info.edges), (10, 18));
        assert!(!info.prepared_cache_hit);
        assert!(store.contains("wheel"));
        assert!(store.get("wheel").is_some());
        assert!(store.get("unknown").is_none());
        let info = store.info("wheel").unwrap();
        assert_eq!(info.queries_served, 1, "get bumps the serving counter");
        let removed = store.remove("wheel").unwrap();
        assert_eq!(removed.queries_served, 1);
        assert!(store.is_empty());
    }

    #[test]
    fn same_fingerprint_reregistration_is_idempotent() {
        let store = GraphStore::new();
        store.insert("g", prepared(12), false);
        store.get("g");
        let again = store.insert("g", prepared(12), true);
        assert_eq!(again.queries_served, 1, "original registration survives");
        assert!(!again.prepared_cache_hit, "original provenance survives");
        // A different graph under the same name replaces the binding.
        let replaced = store.insert("g", prepared(13), true);
        assert_eq!(replaced.queries_served, 0);
        assert_eq!(replaced.vertices, 13);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn list_is_sorted_by_name() {
        let store = GraphStore::new();
        store.insert("zebra", prepared(10), false);
        store.insert("alpha", prepared(11), false);
        let names: Vec<String> = store.list().into_iter().map(|i| i.name).collect();
        assert_eq!(names, vec!["alpha", "zebra"]);
    }
}
