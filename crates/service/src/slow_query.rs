//! Slow-query capture: a bounded flight recorder of forensic records
//! for requests that exceeded the configured wall-time threshold.
//!
//! When [`ServiceConfig::slow_query_threshold`](crate::ServiceConfig)
//! is set, every served request is timed against it; offenders are
//! pushed into a [`SlowQueryLog`] — a drop-oldest
//! [`BoundedRing`] — carrying the full
//! [`ExplainReport`] (routing, predicted census, measured kernel
//! accounting) and, when profiling is on, the per-phase wall-time
//! breakdown. The log is drainable ([`SlowQueryLog::drain`]) so an
//! operator can pull the evidence *after* noticing the
//! `tcim_slow_queries_total` counter move, without having had tracing
//! enabled in advance.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use tcim_core::{ExplainReport, Query};
use tcim_telemetry::{BoundedRing, PhaseBreakdown};

/// One captured slow query: everything needed to reconstruct *why* the
/// request was slow after the fact.
#[derive(Debug, Clone)]
pub struct SlowQueryRecord {
    /// The graph that answered.
    pub graph: String,
    /// The backend label that answered.
    pub backend: String,
    /// The question.
    pub query: Query,
    /// Host wall-clock time of the whole request.
    pub wall: Duration,
    /// The threshold in force when the record was captured.
    pub threshold: Duration,
    /// The answer's global triangle count (a cheap sanity anchor).
    pub triangles: u64,
    /// The full explain plan with measured accounting attached.
    /// `None` only for live-graph answers, which have no plan.
    pub explain: Option<ExplainReport>,
    /// Per-phase wall-time breakdown, when
    /// [`ServiceConfig::profile_queries`](crate::ServiceConfig) was on.
    pub phases: Option<PhaseBreakdown>,
}

impl fmt::Display for SlowQueryRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SLOW {} {} via {}: {:.3} ms (threshold {:.3} ms)",
            self.graph,
            self.query,
            self.backend,
            self.wall.as_secs_f64() * 1e3,
            self.threshold.as_secs_f64() * 1e3
        )?;
        if let Some(phases) = &self.phases {
            for p in &phases.phases {
                writeln!(
                    f,
                    "  phase {:<10} {:.3} ms ({} spans)",
                    p.name,
                    p.total.as_secs_f64() * 1e3,
                    p.count
                )?;
            }
        }
        if let Some(explain) = &self.explain {
            write!(f, "{explain}")?;
        }
        Ok(())
    }
}

/// A bounded, drop-oldest log of [`SlowQueryRecord`]s with a monotonic
/// capture counter (the counter survives drains and evictions, so the
/// exported `tcim_slow_queries_total` metric never moves backwards).
#[derive(Debug)]
pub struct SlowQueryLog {
    ring: Mutex<BoundedRing<SlowQueryRecord>>,
    captured: AtomicU64,
}

impl SlowQueryLog {
    /// Creates a log retaining up to `capacity` records (0 disables
    /// retention; the capture counter still counts).
    pub fn new(capacity: usize) -> Self {
        SlowQueryLog {
            ring: Mutex::new(BoundedRing::new(capacity)),
            captured: AtomicU64::new(0),
        }
    }

    /// The maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.ring.lock().expect("slow-query log lock is never poisoned").capacity()
    }

    /// Captures one record, evicting the oldest if at capacity.
    pub fn record(&self, record: SlowQueryRecord) {
        self.captured.fetch_add(1, Ordering::Relaxed);
        self.ring.lock().expect("slow-query log lock is never poisoned").push(record);
    }

    /// Slow queries captured since the service started (monotonic —
    /// unaffected by drains or ring eviction).
    pub fn total(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("slow-query log lock is never poisoned").len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted by capacity pressure since the service started.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("slow-query log lock is never poisoned").dropped()
    }

    /// Removes and returns every retained record, oldest first.
    pub fn drain(&self) -> Vec<SlowQueryRecord> {
        self.ring.lock().expect("slow-query log lock is never poisoned").drain()
    }

    /// Clones the retained records, oldest first, without clearing.
    pub fn snapshot(&self) -> Vec<SlowQueryRecord> {
        self.ring
            .lock()
            .expect("slow-query log lock is never poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(graph: &str, ms: u64) -> SlowQueryRecord {
        SlowQueryRecord {
            graph: graph.to_string(),
            backend: "tcim-serial".to_string(),
            query: Query::TotalTriangles,
            wall: Duration::from_millis(ms),
            threshold: Duration::from_millis(1),
            triangles: 7,
            explain: None,
            phases: None,
        }
    }

    #[test]
    fn log_retains_drops_and_counts_monotonically() {
        let log = SlowQueryLog::new(2);
        log.record(record("a", 5));
        log.record(record("b", 6));
        log.record(record("c", 7));
        assert_eq!(log.total(), 3);
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].graph, "b");
        assert!(log.is_empty());
        assert_eq!(log.total(), 3, "drain must not reset the capture counter");
    }

    #[test]
    fn snapshot_leaves_records_in_place() {
        let log = SlowQueryLog::new(4);
        log.record(record("a", 5));
        assert_eq!(log.snapshot().len(), 1);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn zero_capacity_still_counts() {
        let log = SlowQueryLog::new(0);
        log.record(record("a", 5));
        assert_eq!(log.total(), 1);
        assert!(log.is_empty());
    }

    #[test]
    fn display_names_the_offender_and_threshold() {
        let text = record("web-graph", 12).to_string();
        assert!(text.contains("SLOW web-graph"));
        assert!(text.contains("threshold 1.000 ms"));
    }
}
