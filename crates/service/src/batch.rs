//! The shared batch path: grouping, coalesced execution and fan-out.
//!
//! Both serving entry points route through [`TcimService::serve_with`]:
//! the compatibility shim [`TcimService::serve`](crate::TcimService)
//! and the gateway's worker-pool dispatcher draining its admission
//! queue. Requests are grouped by *answering artifact* — the graph
//! name plus the explicit backend override, which together determine
//! the resolved `PreparedKey` and backend — and every multi-member
//! group with coalescing enabled is answered by **one** attributed
//! execution ([`TcimPipeline::query_coalesced`]) whose attribution
//! fans out into each member's [`QueryResponse`], stamped with
//! [`BatchProvenance`] so the saving is provable per response.
//!
//! Live graphs are read in one of two [`LiveReadMode`]s: `Maintained`
//! preserves the classic behaviour (lock the dynamic state, answer
//! from the incrementally maintained counts), while `Pinned` answers
//! from the last *published* [`EpochSnapshot`] without ever touching
//! the dynamic mutex — the gateway's snapshot-isolated read path, on
//! which update batches never block readers.
//!
//! [`TcimPipeline::query_coalesced`]: tcim_core::TcimPipeline::query_coalesced

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use tcim_core::{Backend, PreparedGraph, Query};
use tcim_sched::parallel_map_indexed;
use tcim_stream::EpochSnapshot;

use crate::error::{Result, ServiceError};
use crate::service::{QueryRequest, QueryResponse, TcimService};

/// Coalescing provenance carried by every response a batch path
/// produced: which batch answered, how many requests shared it, and
/// how many attributed executions actually ran for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchProvenance {
    /// Service-wide monotonic id of the batch that answered.
    pub batch_id: u64,
    /// Requests that shared this batch (1 = a singleton group).
    pub coalesced: usize,
    /// Attributed executions the batch actually ran. A burst is
    /// provably coalesced when `executions < coalesced` across its
    /// batches.
    pub executions: u64,
}

/// How batch paths read live (dynamic) graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LiveReadMode {
    /// Lock the dynamic state briefly and answer from the maintained
    /// counts — the freshest possible answer, serialized behind
    /// writers. The classic [`TcimService::serve`] behaviour.
    #[default]
    Maintained,
    /// Answer from the last *published* [`EpochSnapshot`] without
    /// touching the dynamic mutex: readers are never blocked by update
    /// batches and see exactly their pinned epoch's state. The
    /// gateway's snapshot-isolation mode.
    Pinned,
}

/// Options of one [`TcimService::serve_with`] wave.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Coalesce compatible requests (same graph × same backend
    /// override) into one attributed execution per group.
    pub coalesce: bool,
    /// How live graphs are read.
    pub live: LiveReadMode,
}

/// One group of compatible requests: indices into the wave, in
/// submission order.
struct Group {
    graph: String,
    backend: Option<Backend>,
    members: Vec<usize>,
}

impl TcimService {
    /// The shared batch path: serves `requests` in one wave, grouped
    /// by answering artifact, returning per-request outcomes in
    /// submission order. Groups execute concurrently over scoped
    /// worker threads; with `opts.coalesce`, each multi-member group
    /// is answered by a single attributed execution whose per-triangle
    /// attribution fans out into every member's response.
    pub fn serve_with(
        &self,
        requests: &[QueryRequest],
        opts: &BatchOptions,
    ) -> Vec<Result<QueryResponse>> {
        let threads = self.serve_threads();
        if !opts.coalesce {
            // Ungrouped: per-request fan-out, identical provenance to
            // the classic path.
            return parallel_map_indexed(requests.len(), threads, |i| {
                self.query_with_mode(&requests[i], opts.live)
            });
        }
        let groups = group_requests(requests);
        let grouped: Vec<Vec<(usize, Result<QueryResponse>)>> =
            parallel_map_indexed(groups.len(), threads, |gi| {
                self.answer_group(requests, &groups[gi], opts)
            });
        let mut out: Vec<Option<Result<QueryResponse>>> =
            (0..requests.len()).map(|_| None).collect();
        for (idx, result) in grouped.into_iter().flatten() {
            out[idx] = Some(result);
        }
        out.into_iter()
            .map(|slot| slot.expect("every request lands in exactly one group"))
            .collect()
    }

    /// Answers one compatible group. Singleton groups take the classic
    /// single-request path (identical provenance, still stamped as a
    /// batch of one); larger groups share one attributed execution.
    fn answer_group(
        &self,
        requests: &[QueryRequest],
        group: &Group,
        opts: &BatchOptions,
    ) -> Vec<(usize, Result<QueryResponse>)> {
        let batch_id = self.batch_ids.fetch_add(1, Ordering::Relaxed) + 1;
        let size = group.members.len();
        self.metrics.batches.incr();
        self.metrics.coalesced.add(size as u64);
        self.metrics.batch_size.observe(size as u64);
        let stamp = |mut result: Result<QueryResponse>, executions: u64| {
            if let Ok(response) = result.as_mut() {
                response.batch =
                    Some(BatchProvenance { batch_id, coalesced: size, executions });
            }
            result
        };
        if size == 1 {
            let idx = group.members[0];
            return vec![(idx, stamp(self.query_with_mode(&requests[idx], opts.live), 1))];
        }

        // Resolve the answering artifact once for the whole group.
        if let Some(prepared) = self.store.get_counted(&group.graph, size as u64) {
            let backend = match &group.backend {
                Some(explicit) => explicit.clone(),
                None => self.select_backend(&prepared),
            };
            return self.answer_group_prepared(requests, group, &prepared, &backend, None);
        }
        if let Some(live) = self.live_graph(&group.graph) {
            live.served.fetch_add(size as u64, Ordering::Relaxed);
            match opts.live {
                LiveReadMode::Pinned => {
                    let snapshot: EpochSnapshot = live
                        .published
                        .read()
                        .expect("published lock is never poisoned")
                        .clone();
                    let backend = match &group.backend {
                        Some(explicit) => explicit.clone(),
                        None => self.select_backend(&snapshot.prepared),
                    };
                    let prepared = Arc::clone(&snapshot.prepared);
                    return self.answer_group_prepared(
                        requests,
                        group,
                        &prepared,
                        &backend,
                        Some(snapshot.epoch),
                    );
                }
                LiveReadMode::Maintained => {
                    // Maintained live reads answer from mutable state;
                    // there is no shared immutable artifact to coalesce
                    // over, so members take the single-request path.
                    // (`served` was already bumped for the group.)
                    return group
                        .members
                        .iter()
                        .map(|&idx| {
                            live.served.fetch_sub(1, Ordering::Relaxed);
                            (idx, stamp(self.query_with_mode(&requests[idx], opts.live), 1))
                        })
                        .collect();
                }
            }
        }
        group
            .members
            .iter()
            .map(|&idx| {
                (
                    idx,
                    Err(ServiceError::UnknownGraph { name: group.graph.clone() })
                        as Result<QueryResponse>,
                )
            })
            .collect()
    }

    /// Answers a multi-member group from one immutable prepared
    /// artifact with a single coalesced execution. When the carrier
    /// execution itself fails (a backend configuration error would
    /// fail every member identically), members fall back to the
    /// single-request path so each reports its own error.
    fn answer_group_prepared(
        &self,
        requests: &[QueryRequest],
        group: &Group,
        prepared: &Arc<PreparedGraph>,
        backend: &Backend,
        epoch: Option<u64>,
    ) -> Vec<(usize, Result<QueryResponse>)> {
        let batch_id = self.batch_ids.load(Ordering::Relaxed);
        let size = group.members.len();
        let _inflight: Vec<_> =
            group.members.iter().map(|_| self.metrics.inflight.track()).collect();
        let start = Instant::now();
        let queries: Vec<Query> =
            group.members.iter().map(|&idx| requests[idx].query.clone()).collect();
        let run = || self.pipeline.query_coalesced(prepared, backend, &queries);
        let (outcome, profiled) = if self.config.profile_queries {
            let (outcome, profile) = tcim_telemetry::profile("batch", run);
            (outcome, profile.map(|report| report.breakdown()))
        } else {
            (run(), None)
        };
        let outcome = match outcome {
            Ok(outcome) => outcome,
            Err(_) => {
                // Carrier failed: degrade to per-member execution so
                // every member owns its error (or its answer, for
                // failures scoped narrower than the whole group).
                return group
                    .members
                    .iter()
                    .map(|&idx| {
                        (idx, self.query_with_mode(&requests[idx], LiveReadMode::Pinned))
                    })
                    .collect();
            }
        };
        self.metrics.executions_saved.add(size as u64 - outcome.executions.min(size as u64));
        let wall = start.elapsed();
        group
            .members
            .iter()
            .zip(outcome.reports)
            .map(|(&idx, report)| {
                self.metrics.queries.incr();
                self.metrics.wall.observe_duration(wall);
                let result = match report {
                    Ok(report) => {
                        let response = QueryResponse {
                            graph: group.graph.clone(),
                            fingerprint: prepared.key().fingerprint,
                            backend: report.backend,
                            query: report.query,
                            value: report.value,
                            triangles: report.triangles,
                            prepared_cache_hit: true,
                            live: epoch.is_some(),
                            modelled_time_s: report.modelled_time_s,
                            modelled_energy_j: report.modelled_energy_j,
                            kernel: report.kernel,
                            compressed_bytes: report.compressed_bytes,
                            sharding: report.sharding,
                            wall,
                            phases: profiled.clone(),
                            explain: None,
                            batch: Some(BatchProvenance {
                                batch_id,
                                coalesced: size,
                                executions: outcome.executions,
                            }),
                            epoch,
                        };
                        self.capture_slow(&response);
                        Ok(response)
                    }
                    Err(e) => {
                        self.metrics.failures.incr();
                        Err(ServiceError::Core(e))
                    }
                };
                (idx, result)
            })
            .collect()
    }
}

/// Groups wave indices by answering artifact: graph name × explicit
/// backend override (the override participates in the key because it
/// changes the resolved execution; requests without one coalesce under
/// the service's selection). First-seen order, members in submission
/// order.
fn group_requests(requests: &[QueryRequest]) -> Vec<Group> {
    let mut order: Vec<Group> = Vec::new();
    let mut index: HashMap<(String, String), usize> = HashMap::new();
    for (i, request) in requests.iter().enumerate() {
        let backend_key = request.backend.as_ref().map(Backend::label).unwrap_or_default();
        let key = (request.graph.clone(), backend_key);
        match index.get(&key) {
            Some(&slot) => order[slot].members.push(i),
            None => {
                index.insert(key, order.len());
                order.push(Group {
                    graph: request.graph.clone(),
                    backend: request.backend.clone(),
                    members: vec![i],
                });
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_keys_on_graph_and_backend_override() {
        let requests = vec![
            QueryRequest::new("a", Query::TotalTriangles),
            QueryRequest::new("b", Query::TotalTriangles),
            QueryRequest::new("a", Query::PerVertexTriangles),
            QueryRequest::new("a", Query::TotalTriangles).with_backend(Backend::CpuMerge),
            QueryRequest::new("b", Query::EdgeSupport),
        ];
        let groups = group_requests(&requests);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].members, vec![0, 2]);
        assert_eq!(groups[1].members, vec![1, 4]);
        assert_eq!(groups[2].members, vec![3], "an explicit backend splits the group");
    }
}
