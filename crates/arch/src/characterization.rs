//! Characterize-time state of the PIM engine: the device, array and
//! bit-counter models resolved once per configuration.
//!
//! The TCIM dataflow is two-phase. *Characterization* runs the MTJ
//! device co-simulation and the NVSim-style array model — expensive,
//! configuration-dependent, graph-independent. *Execution* (the
//! [`runtime`](crate::runtime) module) replays Algorithm 1 over a
//! prepared [`SlicedMatrix`] — cheap per run and repeatable. Splitting
//! the two lets callers characterize once and execute many matrices (or
//! the same matrix many times) without re-characterizing, and gives
//! external runtimes (`tcim-sched`) a stable object to price work
//! against.

use tcim_bitmatrix::SlicedMatrix;
use tcim_mtj::MtjCell;
use tcim_nvsim::{ArrayCharacterization, ArrayModel};

use crate::bitcounter::BitCounterModel;
use crate::config::PimConfig;
use crate::costs::SliceCostModel;
use crate::error::Result;
use crate::runtime::{EnergyBreakdown, LatencyBreakdown};
use crate::stats::AccessStats;

/// A fully characterized PIM configuration: everything Algorithm 1 needs
/// that does not depend on the graph.
#[derive(Debug, Clone)]
pub struct PimCharacterization {
    config: PimConfig,
    array: ArrayCharacterization,
    bitcounter: BitCounterModel,
    capacity_slices: usize,
}

impl PimCharacterization {
    /// Characterizes the device, array and bit counter for `config`.
    ///
    /// # Errors
    ///
    /// Returns configuration/characterization errors; see
    /// [`PimConfig::validate`].
    pub fn characterize(config: &PimConfig) -> Result<Self> {
        config.validate()?;
        let cell = MtjCell::characterize(&config.mtj)?;
        let array = ArrayModel::characterize(&cell, &config.organization)?;
        let bitcounter = BitCounterModel::freepdk45(config.slice_size.bits());
        let capacity_slices = config.capacity_slices()?;
        Ok(PimCharacterization { config: config.clone(), array, bitcounter, capacity_slices })
    }

    /// The configuration this characterization was resolved from.
    pub fn config(&self) -> &PimConfig {
        &self.config
    }

    /// The NVSim-style array characterization.
    pub fn array(&self) -> &ArrayCharacterization {
        &self.array
    }

    /// The bit-counter model.
    pub fn bitcounter(&self) -> &BitCounterModel {
        &self.bitcounter
    }

    /// Total data-buffer capacity in valid slices (rows + columns), per
    /// [`PimConfig::capacity_slices`].
    pub fn capacity_slices(&self) -> usize {
        self.capacity_slices
    }

    /// The resolved per-operation cost model — the hooks an external
    /// scheduler (`tcim-sched`) uses to account work it places onto
    /// arrays itself.
    pub fn cost_model(&self) -> SliceCostModel {
        SliceCostModel::resolve(&self.config, &self.array, &self.bitcounter)
    }

    /// Column-slice cache capacity after reserving the row region: the
    /// current row's slices must be resident while its edges process, so
    /// the widest row of `matrix` is set aside.
    pub(crate) fn column_capacity(&self, matrix: &SlicedMatrix) -> usize {
        let row_reserve = (0..matrix.dim() as u32)
            .map(|i| matrix.row(i).valid_slice_count())
            .max()
            .unwrap_or(0);
        self.capacity_slices.saturating_sub(row_reserve).max(1)
    }

    /// Converts operation counts into time and energy using the array
    /// characterization. Writes and compute ops are spread across the
    /// concurrently operating sub-arrays; controller dispatch is serial on
    /// the host. Host controller energy is the single-core host burning
    /// its active package power for as long as it dispatches edges — the
    /// term that dominates end-to-end TCIM energy, exactly as in the
    /// paper's Fig. 6 arithmetic (see EXPERIMENTS.md).
    pub(crate) fn roll_up(&self, stats: &AccessStats) -> (LatencyBreakdown, EnergyBreakdown) {
        let parallel = self.array.organization.parallel_subarrays() as f64;
        self.cost_model().roll_up(stats, parallel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterize_once_matches_engine_construction() {
        let config = PimConfig::default();
        let chr = PimCharacterization::characterize(&config).unwrap();
        let engine = crate::PimEngine::new(&config).unwrap();
        assert_eq!(chr.capacity_slices(), engine.capacity_slices());
        assert_eq!(chr.cost_model(), engine.cost_model());
        assert_eq!(chr.config(), engine.config());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let config = PimConfig { capacity_slices_override: Some(0), ..PimConfig::default() };
        assert!(PimCharacterization::characterize(&config).is_err());
    }
}
