//! Error type for the architecture simulator.

use std::error::Error;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ArchError>;

/// Errors raised while configuring or running the PIM simulation.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArchError {
    /// The configuration was internally inconsistent.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// The device/array characterization failed (propagated).
    Characterization(Box<dyn Error + Send + Sync>),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidConfig { reason } => write!(f, "invalid pim config: {reason}"),
            ArchError::Characterization(e) => write!(f, "characterization failed: {e}"),
        }
    }
}

impl Error for ArchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArchError::Characterization(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<tcim_mtj::MtjError> for ArchError {
    fn from(e: tcim_mtj::MtjError) -> Self {
        ArchError::Characterization(Box::new(e))
    }
}

impl From<tcim_nvsim::NvsimError> for ArchError {
    fn from(e: tcim_nvsim::NvsimError) -> Self {
        ArchError::Characterization(Box::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ArchError::InvalidConfig { reason: "zero capacity".into() };
        assert!(e.to_string().contains("zero capacity"));
        assert!(e.source().is_none());
        let e = ArchError::from(tcim_mtj::MtjError::SolverDidNotConverge { simulated_s: 1.0 });
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }
}
