//! Simulator configuration.

use tcim_bitmatrix::SliceSize;
use tcim_mtj::MtjParams;
use tcim_nvsim::ArrayOrganization;

use crate::buffer::ReplacementPolicy;
use crate::error::{ArchError, Result};

/// Configuration of one PIM simulation run.
///
/// The default reproduces the paper's evaluation setup: `|S| = 64`,
/// a 16 MB computational STT-MRAM array, Table I devices, LRU
/// replacement, and a single-core host issuing edges to the controller.
///
/// # Example
///
/// ```
/// use tcim_arch::PimConfig;
///
/// let config = PimConfig::default();
/// assert_eq!(config.slice_size.bits(), 64);
/// // 16 MiB over (8 + 4) bytes per valid slice.
/// assert_eq!(config.capacity_slices()?, 16 * 1024 * 1024 / 12);
/// # Ok::<(), tcim_arch::ArchError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PimConfig {
    /// Slice size `|S|` (paper: 64 bits).
    pub slice_size: SliceSize,
    /// Computational array organization (paper: 16 MB).
    pub organization: ArrayOrganization,
    /// MTJ device parameters (paper: Table I).
    pub mtj: MtjParams,
    /// Column-slice replacement policy (paper: LRU).
    pub replacement: ReplacementPolicy,
    /// Seed for the Random replacement policy (ignored by LRU/FIFO).
    pub replacement_seed: u64,
    /// Host-side controller overhead per edge (s): decoding the edge,
    /// consulting the valid-slice index, issuing commands. The paper's
    /// TCIM column implies ~30-60 ns/edge on its 2008-era host; we default
    /// to 15 ns/edge, self-consistent with our own measured software inner
    /// loop (~19 ns/edge on road graphs — the dispatch does strictly less
    /// work than the software path's AND+popcount per edge, so it must
    /// cost less).
    pub controller_overhead_s: f64,
    /// Active package power of the single-core host driving the
    /// controller (W). 25 W matches the Intel E5430-class machine of
    /// §V-A; used to convert controller time into energy, which is what
    /// makes the paper's Fig. 6 arithmetic work out (see EXPERIMENTS.md).
    pub host_power_w: f64,
    /// Event-trace capacity (0 disables tracing).
    pub trace_capacity: usize,
    /// Overrides the slice capacity derived from the organization.
    /// Used by scaled-down experiments to shrink the data buffer in
    /// proportion to the graph (e.g. Fig. 5 at 1 % scale); `None` uses
    /// the organization's real capacity.
    pub capacity_slices_override: Option<usize>,
}

impl Default for PimConfig {
    fn default() -> Self {
        PimConfig {
            slice_size: SliceSize::S64,
            organization: ArrayOrganization::tcim_16mb(),
            mtj: MtjParams::table_i(),
            replacement: ReplacementPolicy::Lru,
            replacement_seed: 0,
            controller_overhead_s: 15e-9,
            host_power_w: 25.0,
            trace_capacity: 0,
            capacity_slices_override: None,
        }
    }
}

impl PimConfig {
    /// How many valid slices the array can hold, using the paper's byte
    /// accounting of §IV-B: `capacity_bytes / (|S|/8 + 4)` — each resident
    /// slice costs its payload plus a 4-byte index entry in the data
    /// buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] when the array cannot hold a
    /// single slice or the organization is invalid.
    pub fn capacity_slices(&self) -> Result<usize> {
        self.organization
            .validate()
            .map_err(|e| ArchError::InvalidConfig { reason: e.to_string() })?;
        let capacity = self.capacity_slices_override.unwrap_or(
            self.organization.total_bytes() as usize / self.slice_size.bytes_per_valid_slice(),
        );
        if capacity == 0 {
            return Err(ArchError::InvalidConfig {
                reason: "array too small to hold one slice".to_string(),
            });
        }
        Ok(capacity)
    }

    /// Validates the full configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] for inconsistent geometry or
    /// a negative controller overhead, and propagates device-parameter
    /// validation.
    pub fn validate(&self) -> Result<()> {
        self.capacity_slices()?;
        if !(self.controller_overhead_s >= 0.0 && self.controller_overhead_s.is_finite()) {
            return Err(ArchError::InvalidConfig {
                reason: format!(
                    "controller overhead {} must be non-negative and finite",
                    self.controller_overhead_s
                ),
            });
        }
        if !(self.host_power_w >= 0.0 && self.host_power_w.is_finite()) {
            return Err(ArchError::InvalidConfig {
                reason: format!(
                    "host power {} must be non-negative and finite",
                    self.host_power_w
                ),
            });
        }
        self.mtj.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = PimConfig::default();
        assert_eq!(c.organization.total_bytes(), 16 * 1024 * 1024);
        assert_eq!(c.replacement, ReplacementPolicy::Lru);
        c.validate().unwrap();
    }

    #[test]
    fn capacity_uses_paper_byte_accounting() {
        let c = PimConfig::default();
        // 16 MiB / 12 B = 1 398 101 slices.
        assert_eq!(c.capacity_slices().unwrap(), 1_398_101);
    }

    #[test]
    fn invalid_organization_is_rejected() {
        let mut c = PimConfig::default();
        c.organization.banks = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn negative_overhead_is_rejected() {
        let c = PimConfig { controller_overhead_s: -1.0, ..PimConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn capacity_override_takes_effect() {
        let mut c = PimConfig { capacity_slices_override: Some(1000), ..PimConfig::default() };
        assert_eq!(c.capacity_slices().unwrap(), 1000);
        c.capacity_slices_override = Some(0);
        assert!(c.capacity_slices().is_err());
    }

    #[test]
    fn invalid_mtj_is_rejected() {
        let mut c = PimConfig::default();
        c.mtj.tmr = -0.5;
        assert!(c.validate().is_err());
    }
}
