//! The synthesized bit-counter module of §V-A.
//!
//! "We design a bit counter module based on Verilog HDL … we split the
//! vector and feed each 8-bit sub-vector into an 8-256 look-up-table to
//! get its non-zero element number, then sum up the non-zero numbers in
//! all sub-vectors. We synthesis the module with Synopsis Tool and conduct
//! post-synthesis simulation based on 45nm FreePDK."
//!
//! The functional path reuses the LUT popcount from `tcim-bitmatrix`
//! (identical dataflow); this module adds the post-synthesis-style cost
//! constants: per-count latency, energy, and area at 45 nm.

use tcim_bitmatrix::popcount::{popcount_words, PopcountMethod};

/// Cost-annotated model of the LUT-based bit counter.
///
/// # Example
///
/// ```
/// use tcim_arch::BitCounterModel;
///
/// let bc = BitCounterModel::freepdk45(64);
/// assert_eq!(bc.count(&[0b0110]), 2); // the paper's BitCount(0110) = 2
/// assert!(bc.latency_s > 0.0 && bc.energy_j > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BitCounterModel {
    /// Input width in bits (the slice size |S|).
    pub width_bits: u32,
    /// Latency of one count: LUT lookups in parallel plus the adder tree
    /// (s).
    pub latency_s: f64,
    /// Energy of one count (J).
    pub energy_j: f64,
    /// Synthesized area (m²).
    pub area_m2: f64,
}

impl BitCounterModel {
    /// Post-synthesis-style constants at 45 nm for a counter of
    /// `width_bits` inputs.
    ///
    /// The LUT stage is one ROM access (~0.3 ns); the adder tree adds
    /// `log2(width/8)` carry-save stages of ~0.1 ns each. Energy is ~2 fJ
    /// per byte-lane plus ~1 fJ per adder; area follows the 8-256 LUT
    /// (≈ 300 F² per lane).
    ///
    /// # Panics
    ///
    /// Panics unless `width_bits` is a positive multiple of 8.
    pub fn freepdk45(width_bits: u32) -> Self {
        assert!(
            width_bits > 0 && width_bits.is_multiple_of(8),
            "bit counter width must be a positive multiple of 8"
        );
        let lanes = f64::from(width_bits / 8);
        let adder_stages = lanes.log2().ceil().max(1.0);
        let f = 45e-9_f64;
        BitCounterModel {
            width_bits,
            latency_s: 0.3e-9 + adder_stages * 0.1e-9,
            energy_j: lanes * 2e-15 + (lanes - 1.0).max(1.0) * 1e-15,
            area_m2: lanes * 300.0 * f * f,
        }
    }

    /// Counts set bits in `words` through the hardware-faithful LUT path.
    /// Only the low `width_bits` matter for a single slice, but whole
    /// multi-word slices are accepted for wide-|S| configurations.
    pub fn count(&self, words: &[u64]) -> u64 {
        popcount_words(words, PopcountMethod::Lut8)
    }

    /// Reads the surviving bits of one AND result back out of the
    /// counter's input latch, visiting the offset of every set bit
    /// within the slice (ascending order).
    ///
    /// This is the readout path attributed (per-vertex) counting uses:
    /// the counter already latched the AND result to count it, so the
    /// host can drain the same latch to learn *which* common
    /// neighbours survived — one read-class array access per non-zero
    /// result, accounted by the caller as
    /// [`AccessStats::result_readouts`](crate::AccessStats::result_readouts).
    pub fn read_out(&self, words: &[u64], visit: impl FnMut(u32)) {
        tcim_bitmatrix::popcount::visit_set_bits(words.iter().copied(), visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_count_matches_native() {
        let bc = BitCounterModel::freepdk45(64);
        for w in [0u64, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            assert_eq!(bc.count(&[w]), w.count_ones() as u64);
        }
    }

    #[test]
    fn read_out_visits_every_set_bit_in_order() {
        let bc = BitCounterModel::freepdk45(64);
        let words = [0b0110u64, 1u64 << 63];
        let mut seen = Vec::new();
        bc.read_out(&words, |bit| seen.push(bit));
        assert_eq!(seen, vec![1, 2, 127]);
        assert_eq!(seen.len() as u64, bc.count(&words));
        bc.read_out(&[0u64], |_| panic!("zero results are never read out"));
    }

    #[test]
    fn wider_counters_are_slower_and_bigger() {
        let c64 = BitCounterModel::freepdk45(64);
        let c512 = BitCounterModel::freepdk45(512);
        assert!(c512.latency_s > c64.latency_s);
        assert!(c512.energy_j > c64.energy_j);
        assert!(c512.area_m2 > c64.area_m2);
    }

    #[test]
    fn latency_magnitude_sub_nanosecond_for_64() {
        let bc = BitCounterModel::freepdk45(64);
        assert!(bc.latency_s < 1e-9, "{:e}", bc.latency_s);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_non_byte_width() {
        BitCounterModel::freepdk45(65);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_zero_width() {
        BitCounterModel::freepdk45(0);
    }
}
