//! Bounded event trace for inspecting simulator behaviour.

use std::collections::VecDeque;

/// One simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// A row slice was written into the reserved row region.
    RowSliceWrite {
        /// Row (vertex) id.
        row: u32,
        /// Slice index within the row.
        slice: u32,
    },
    /// A column-slice access hit in the array.
    ColHit {
        /// Column (vertex) id.
        col: u32,
        /// Slice index within the column.
        slice: u32,
    },
    /// A column slice was loaded into free space.
    ColMiss {
        /// Column (vertex) id.
        col: u32,
        /// Slice index within the column.
        slice: u32,
    },
    /// A column slice replaced a victim (data exchange).
    ColExchange {
        /// Column (vertex) id.
        col: u32,
        /// Slice index within the column.
        slice: u32,
    },
    /// An AND + BitCount pair completed with the given partial count.
    AndBitcount {
        /// Edge tail (row) vertex.
        row: u32,
        /// Edge head (column) vertex.
        col: u32,
        /// Matching slice index.
        slice: u32,
        /// BitCount contribution of this pair.
        count: u32,
    },
}

/// A fixed-capacity ring buffer of [`Event`]s; old events are dropped
/// once full, with the number of drops reported.
#[derive(Debug, Clone, Default)]
pub struct EventTrace {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl EventTrace {
    /// Creates a trace holding up to `capacity` events (0 disables
    /// recording entirely).
    pub fn new(capacity: usize) -> Self {
        EventTrace {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records `event`, evicting the oldest if at capacity.
    pub fn push(&mut self, event: Event) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Recorded events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = EventTrace::new(0);
        t.push(Event::ColHit { col: 1, slice: 2 });
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut t = EventTrace::new(2);
        t.push(Event::ColHit { col: 0, slice: 0 });
        t.push(Event::ColHit { col: 1, slice: 0 });
        t.push(Event::ColHit { col: 2, slice: 0 });
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let first = *t.iter().next().unwrap();
        assert_eq!(first, Event::ColHit { col: 1, slice: 0 });
    }
}
