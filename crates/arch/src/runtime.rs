//! Run-time execution of Algorithm 1 over a prepared [`SlicedMatrix`]:
//! iterate edges, load valid slice pairs, AND + BitCount, manage the
//! column cache, account latency and energy.
//!
//! These functions take a [`PimCharacterization`] (built once per
//! configuration) and a matrix that is already oriented and sliced — the
//! run-time half of the characterize/run split. They never re-slice or
//! re-characterize; callers that want the one-shot convenience use
//! [`PimEngine`](crate::PimEngine), which wraps both halves.

use std::collections::HashSet;

use tcim_bitmatrix::{RowEncoding, SlicedMatrix};

use crate::buffer::{AccessOutcome, SliceCache};
use crate::characterization::PimCharacterization;
use crate::stats::AccessStats;
use tcim_telemetry::{EventTrace, KernelEvent};

/// Where the simulated time went.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyBreakdown {
    /// Array WRITE time (row loads + column loads), after parallelism (s).
    pub write_s: f64,
    /// AND operation time, after parallelism (s).
    pub and_s: f64,
    /// Bit-counter time, after parallelism (s).
    pub bitcount_s: f64,
    /// AND-result readout time (local counting only), after
    /// parallelism (s).
    pub readout_s: f64,
    /// Host controller dispatch time (serial) (s).
    pub controller_s: f64,
}

impl LatencyBreakdown {
    /// Total simulated runtime (s).
    pub fn total_s(&self) -> f64 {
        self.write_s + self.and_s + self.bitcount_s + self.readout_s + self.controller_s
    }
}

/// Where the simulated energy went.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Array WRITE energy (J).
    pub write_j: f64,
    /// AND energy (J).
    pub and_j: f64,
    /// Bit-counter energy (J).
    pub bitcount_j: f64,
    /// AND-result readout energy (local counting only) (J).
    pub readout_j: f64,
    /// Peripheral leakage over the runtime (J).
    pub leakage_j: f64,
    /// Host controller energy (J).
    pub controller_j: f64,
}

impl EnergyBreakdown {
    /// Total energy (J).
    pub fn total_j(&self) -> f64 {
        self.write_j
            + self.and_j
            + self.bitcount_j
            + self.readout_j
            + self.leakage_j
            + self.controller_j
    }
}

/// Result of one simulated TCIM run.
#[derive(Debug, Clone)]
pub struct PimRunResult {
    /// The triangle count — functionally exact, produced by the simulated
    /// AND/BitCount dataflow itself.
    pub triangles: u64,
    /// Access statistics (Fig. 5 quantities).
    pub stats: AccessStats,
    /// Latency breakdown.
    pub latency: LatencyBreakdown,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Event trace (empty unless enabled in the config).
    pub trace: EventTrace,
}

impl PimRunResult {
    /// Total simulated runtime (s).
    pub fn total_time_s(&self) -> f64 {
        self.latency.total_s()
    }

    /// Total simulated energy (J).
    pub fn total_energy_j(&self) -> f64 {
        self.energy.total_j()
    }
}

/// Result of one per-vertex (local) counting run — see [`run_local`].
#[derive(Debug, Clone)]
pub struct LocalRunResult {
    /// Global triangle count (identical to [`PimRunResult::triangles`]).
    pub triangles: u64,
    /// Triangles each vertex participates in; sums to `3 × triangles`.
    pub per_vertex: Vec<u64>,
    /// Access statistics, including [`AccessStats::result_readouts`].
    pub stats: AccessStats,
    /// Latency breakdown (includes the readout component).
    pub latency: LatencyBreakdown,
    /// Energy breakdown (includes the readout component).
    pub energy: EnergyBreakdown,
}

/// Executes Algorithm 1 over an oriented sliced matrix.
///
/// The returned triangle count is computed by the simulated dataflow
/// itself (LUT bit counter over sliced ANDs), so functional correctness
/// of the architecture is checked on every run.
///
/// # Panics
///
/// Panics if `matrix` was built with a different slice size than the
/// characterization's configuration — a mapping bug at the call site.
pub fn run(chr: &PimCharacterization, matrix: &SlicedMatrix) -> PimRunResult {
    assert_eq!(
        matrix.slice_size(),
        chr.config().slice_size,
        "matrix slice size must match the engine configuration"
    );
    let mut cache = SliceCache::new(
        chr.column_capacity(matrix),
        chr.config().replacement,
        chr.config().replacement_seed,
    );
    let mut trace = EventTrace::new(chr.config().trace_capacity);
    let mut stats = AccessStats::default();
    let mut triangles = 0u64;

    let mut current_row: Option<u32> = None;
    let mut row_loaded: HashSet<u32> = HashSet::new();

    let sparse = matrix.encoding() == RowEncoding::Sparse;
    for (i, j) in matrix.edges() {
        if current_row != Some(i) {
            // The new row overwrites the reserved row region (§IV-A).
            current_row = Some(i);
            row_loaded.clear();
        }
        let row = matrix.row(i);
        let col = matrix.col(j);
        let pair_stats = row
            .for_each_matching(col, |k, anded| {
                if row_loaded.insert(k) {
                    stats.row_slice_writes += 1;
                    trace.push(KernelEvent::RowSliceWrite { row: i, slice: k });
                }
                let key = (u64::from(j) << 32) | u64::from(k);
                match cache.access(key) {
                    AccessOutcome::Hit => {
                        stats.col_hits += 1;
                        trace.push(KernelEvent::ColHit { col: j, slice: k });
                    }
                    AccessOutcome::Miss => {
                        stats.col_misses += 1;
                        trace.push(KernelEvent::ColMiss { col: j, slice: k });
                    }
                    AccessOutcome::Exchange { .. } => {
                        stats.col_exchanges += 1;
                        trace.push(KernelEvent::ColExchange { col: j, slice: k });
                    }
                }

                // The in-array AND feeds the bit counter (Fig. 4 dataflow).
                let count = chr.bitcounter().count(anded);
                triangles += count;
                stats.and_ops += 1;
                stats.bitcount_ops += 1;
                trace.push(KernelEvent::AndBitcount {
                    row: i,
                    col: j,
                    slice: k,
                    count: count as u32,
                });
            })
            .expect("rows and columns of one matrix always align");
        stats.blocks_skipped += pair_stats.skipped;
        // On sparse matrices the controller consults the summary masks
        // before dispatching, so edges with no visited pair never invoke
        // the kernel at all. Dense matrices keep the paper's per-edge
        // dispatch accounting.
        if !sparse || pair_stats.visited > 0 {
            stats.edges += 1;
        }
    }

    let (latency, energy) = chr.roll_up(&stats);
    PimRunResult { triangles, stats, latency, energy, trace }
}

/// Receives every triangle an attributed run surfaces — the per-row
/// accumulation hook behind every query that needs more than the
/// global count (per-vertex participation, clustering coefficients,
/// edge support).
///
/// While processing arc `(i, j)` the kernel's AND result is read back
/// out of the array (see [`BitCounterModel::read_out`]); a surviving
/// bit `w` is set in both row `i` and column `j`, so `i < w < j` and
/// the triangle is reported as `triangle(i, w, j)`. The contract holds
/// for every sink source in the repository: `triangle(a, b, c)` is
/// called with `a < b < c` in matrix id order, so the triangle's three
/// edges are exactly the DAG arcs `(a, b)`, `(a, c)` and `(b, c)` and
/// a sink can attribute per-vertex or per-edge quantities without any
/// further graph lookups.
///
/// Closures `FnMut(u32, u32, u32)` implement the trait, so ad-hoc
/// sinks need no named type.
///
/// [`BitCounterModel::read_out`]: crate::BitCounterModel::read_out
pub trait TriangleSink {
    /// Called once per triangle `{a, b, c}`, `a < b < c` in matrix id
    /// order (arcs `(a, b)`, `(a, c)`, `(b, c)`).
    fn triangle(&mut self, a: u32, b: u32, c: u32);
}

impl<F: FnMut(u32, u32, u32)> TriangleSink for F {
    fn triangle(&mut self, a: u32, b: u32, c: u32) {
        self(a, b, c);
    }
}

/// The canonical [`TriangleSink`]: accumulates per-vertex triangle
/// participation and (optionally) per-arc triangle support, shared by
/// every attributed execution path in the repository (serial engine,
/// per-array scheduled executor, software slicing) so the attribution
/// bookkeeping has exactly one implementation.
#[derive(Debug, Clone)]
pub struct TriangleTally {
    per_vertex: Vec<u64>,
    support: Option<std::collections::BTreeMap<(u32, u32), u64>>,
    triangles: u64,
}

impl TriangleTally {
    /// An empty tally over `dim` vertices; accumulates per-arc support
    /// only when `need_support` is set.
    pub fn new(dim: usize, need_support: bool) -> Self {
        TriangleTally {
            per_vertex: vec![0u64; dim],
            support: need_support.then(std::collections::BTreeMap::new),
            triangles: 0,
        }
    }

    /// Triangles recorded so far.
    pub fn triangles(&self) -> u64 {
        self.triangles
    }

    /// Consumes the tally: `(triangles, per-vertex counts, per-arc
    /// support)`. The support triples `(i, j, count)` are ascending and
    /// cover every arc in at least one triangle; `None` unless
    /// requested at construction.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(self) -> (u64, Vec<u64>, Option<Vec<(u32, u32, u64)>>) {
        (
            self.triangles,
            self.per_vertex,
            self.support.map(|map| map.into_iter().map(|((i, j), c)| (i, j, c)).collect()),
        )
    }
}

impl TriangleSink for TriangleTally {
    fn triangle(&mut self, a: u32, b: u32, c: u32) {
        self.triangles += 1;
        self.per_vertex[a as usize] += 1;
        self.per_vertex[b as usize] += 1;
        self.per_vertex[c as usize] += 1;
        if let Some(map) = self.support.as_mut() {
            for arc in [(a, b), (a, c), (b, c)] {
                *map.entry(arc).or_insert(0) += 1;
            }
        }
    }
}

/// Executes Algorithm 1 with triangle attribution: besides counting,
/// every non-zero AND result is read back out of the array and its
/// surviving bits are reported to `sink` as triangles (see
/// [`TriangleSink`]).
///
/// Hardware-wise this costs one extra operation class relative to
/// [`run`]: one read-class array access per *non-zero* slice pair
/// ([`AccessStats::result_readouts`]), rolled into the latency/energy
/// model. Zero results are filtered by the bit counter and never read
/// out.
///
/// # Panics
///
/// Panics if `matrix` was built with a different slice size than the
/// characterization's configuration.
pub fn run_attributed<S: TriangleSink + ?Sized>(
    chr: &PimCharacterization,
    matrix: &SlicedMatrix,
    sink: &mut S,
) -> PimRunResult {
    assert_eq!(
        matrix.slice_size(),
        chr.config().slice_size,
        "matrix slice size must match the engine configuration"
    );
    let slice_bits = chr.config().slice_size.bits();
    let mut cache = SliceCache::new(
        chr.column_capacity(matrix),
        chr.config().replacement,
        chr.config().replacement_seed,
    );
    let mut trace = EventTrace::new(chr.config().trace_capacity);
    let mut stats = AccessStats::default();
    let mut triangles = 0u64;
    let mut current_row: Option<u32> = None;
    let mut row_loaded: HashSet<u32> = HashSet::new();

    let sparse = matrix.encoding() == RowEncoding::Sparse;
    for (i, j) in matrix.edges() {
        if current_row != Some(i) {
            current_row = Some(i);
            row_loaded.clear();
        }
        let pair_stats = matrix
            .row(i)
            .for_each_matching(matrix.col(j), |k, anded| {
                if row_loaded.insert(k) {
                    stats.row_slice_writes += 1;
                    trace.push(KernelEvent::RowSliceWrite { row: i, slice: k });
                }
                let key = (u64::from(j) << 32) | u64::from(k);
                match cache.access(key) {
                    AccessOutcome::Hit => {
                        stats.col_hits += 1;
                        trace.push(KernelEvent::ColHit { col: j, slice: k });
                    }
                    AccessOutcome::Miss => {
                        stats.col_misses += 1;
                        trace.push(KernelEvent::ColMiss { col: j, slice: k });
                    }
                    AccessOutcome::Exchange { .. } => {
                        stats.col_exchanges += 1;
                        trace.push(KernelEvent::ColExchange { col: j, slice: k });
                    }
                }
                let count = chr.bitcounter().count(anded);
                stats.and_ops += 1;
                stats.bitcount_ops += 1;
                trace.push(KernelEvent::AndBitcount {
                    row: i,
                    col: j,
                    slice: k,
                    count: count as u32,
                });
                if count > 0 {
                    // Drain the counter's latch and attribute each
                    // surviving bit to its triangle.
                    stats.result_readouts += 1;
                    triangles += count;
                    chr.bitcounter().read_out(anded, |offset| {
                        // The witness lies between the arc's endpoints:
                        // i < w < j.
                        sink.triangle(i, k * slice_bits + offset, j);
                    });
                }
            })
            .expect("rows and columns of one matrix always align");
        stats.blocks_skipped += pair_stats.skipped;
        if !sparse || pair_stats.visited > 0 {
            stats.edges += 1;
        }
    }

    let (latency, energy) = chr.roll_up(&stats);
    PimRunResult { triangles, stats, latency, energy, trace }
}

/// Executes Algorithm 1 with per-vertex accounting: every vertex
/// receives the number of triangles it belongs to (the quantity behind
/// local clustering coefficients, one of the paper's motivating
/// applications). A thin wrapper over [`run_attributed`] with a
/// per-vertex [`TriangleSink`].
///
/// Vertex ids in the returned vector are the matrix's ids; callers
/// that relabelled (degree/degeneracy orientation) map them back via
/// `OrientedGraph::original_id`.
///
/// # Panics
///
/// Panics if `matrix` was built with a different slice size than the
/// characterization's configuration.
pub fn run_local(chr: &PimCharacterization, matrix: &SlicedMatrix) -> LocalRunResult {
    let mut tally = TriangleTally::new(matrix.dim(), false);
    let run = run_attributed(chr, matrix, &mut tally);
    let (_, per_vertex, _) = tally.into_parts();
    LocalRunResult {
        triangles: run.triangles,
        per_vertex,
        stats: run.stats,
        latency: run.latency,
        energy: run.energy,
    }
}
