//! Run-time execution of Algorithm 1 over a prepared [`SlicedMatrix`]:
//! iterate edges, load valid slice pairs, AND + BitCount, manage the
//! column cache, account latency and energy.
//!
//! These functions take a [`PimCharacterization`] (built once per
//! configuration) and a matrix that is already oriented and sliced — the
//! run-time half of the characterize/run split. They never re-slice or
//! re-characterize; callers that want the one-shot convenience use
//! [`PimEngine`](crate::PimEngine), which wraps both halves.

use std::collections::HashSet;

use tcim_bitmatrix::SlicedMatrix;

use crate::buffer::{AccessOutcome, SliceCache};
use crate::characterization::PimCharacterization;
use crate::stats::AccessStats;
use crate::trace::{Event, EventTrace};

/// Where the simulated time went.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyBreakdown {
    /// Array WRITE time (row loads + column loads), after parallelism (s).
    pub write_s: f64,
    /// AND operation time, after parallelism (s).
    pub and_s: f64,
    /// Bit-counter time, after parallelism (s).
    pub bitcount_s: f64,
    /// AND-result readout time (local counting only), after
    /// parallelism (s).
    pub readout_s: f64,
    /// Host controller dispatch time (serial) (s).
    pub controller_s: f64,
}

impl LatencyBreakdown {
    /// Total simulated runtime (s).
    pub fn total_s(&self) -> f64 {
        self.write_s + self.and_s + self.bitcount_s + self.readout_s + self.controller_s
    }
}

/// Where the simulated energy went.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Array WRITE energy (J).
    pub write_j: f64,
    /// AND energy (J).
    pub and_j: f64,
    /// Bit-counter energy (J).
    pub bitcount_j: f64,
    /// AND-result readout energy (local counting only) (J).
    pub readout_j: f64,
    /// Peripheral leakage over the runtime (J).
    pub leakage_j: f64,
    /// Host controller energy (J).
    pub controller_j: f64,
}

impl EnergyBreakdown {
    /// Total energy (J).
    pub fn total_j(&self) -> f64 {
        self.write_j
            + self.and_j
            + self.bitcount_j
            + self.readout_j
            + self.leakage_j
            + self.controller_j
    }
}

/// Result of one simulated TCIM run.
#[derive(Debug, Clone)]
pub struct PimRunResult {
    /// The triangle count — functionally exact, produced by the simulated
    /// AND/BitCount dataflow itself.
    pub triangles: u64,
    /// Access statistics (Fig. 5 quantities).
    pub stats: AccessStats,
    /// Latency breakdown.
    pub latency: LatencyBreakdown,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Event trace (empty unless enabled in the config).
    pub trace: EventTrace,
}

impl PimRunResult {
    /// Total simulated runtime (s).
    pub fn total_time_s(&self) -> f64 {
        self.latency.total_s()
    }

    /// Total simulated energy (J).
    pub fn total_energy_j(&self) -> f64 {
        self.energy.total_j()
    }
}

/// Result of one per-vertex (local) counting run — see [`run_local`].
#[derive(Debug, Clone)]
pub struct LocalRunResult {
    /// Global triangle count (identical to [`PimRunResult::triangles`]).
    pub triangles: u64,
    /// Triangles each vertex participates in; sums to `3 × triangles`.
    pub per_vertex: Vec<u64>,
    /// Access statistics, including [`AccessStats::result_readouts`].
    pub stats: AccessStats,
    /// Latency breakdown (includes the readout component).
    pub latency: LatencyBreakdown,
    /// Energy breakdown (includes the readout component).
    pub energy: EnergyBreakdown,
}

/// Executes Algorithm 1 over an oriented sliced matrix.
///
/// The returned triangle count is computed by the simulated dataflow
/// itself (LUT bit counter over sliced ANDs), so functional correctness
/// of the architecture is checked on every run.
///
/// # Panics
///
/// Panics if `matrix` was built with a different slice size than the
/// characterization's configuration — a mapping bug at the call site.
pub fn run(chr: &PimCharacterization, matrix: &SlicedMatrix) -> PimRunResult {
    assert_eq!(
        matrix.slice_size(),
        chr.config().slice_size,
        "matrix slice size must match the engine configuration"
    );
    let mut cache = SliceCache::new(
        chr.column_capacity(matrix),
        chr.config().replacement,
        chr.config().replacement_seed,
    );
    let mut trace = EventTrace::new(chr.config().trace_capacity);
    let mut stats = AccessStats::default();
    let mut triangles = 0u64;

    let mut current_row: Option<u32> = None;
    let mut row_loaded: HashSet<u32> = HashSet::new();

    for (i, j) in matrix.edges() {
        stats.edges += 1;
        if current_row != Some(i) {
            // The new row overwrites the reserved row region (§IV-A).
            current_row = Some(i);
            row_loaded.clear();
        }
        let row = matrix.row(i);
        let col = matrix.col(j);
        let pairs =
            row.matching_slices(col).expect("rows and columns of one matrix always align");
        for (k, rs, cs) in pairs {
            if row_loaded.insert(k) {
                stats.row_slice_writes += 1;
                trace.push(Event::RowSliceWrite { row: i, slice: k });
            }
            let key = (u64::from(j) << 32) | u64::from(k);
            match cache.access(key) {
                AccessOutcome::Hit => {
                    stats.col_hits += 1;
                    trace.push(Event::ColHit { col: j, slice: k });
                }
                AccessOutcome::Miss => {
                    stats.col_misses += 1;
                    trace.push(Event::ColMiss { col: j, slice: k });
                }
                AccessOutcome::Exchange { .. } => {
                    stats.col_exchanges += 1;
                    trace.push(Event::ColExchange { col: j, slice: k });
                }
            }

            // The in-array AND feeds the bit counter (Fig. 4 dataflow).
            let anded: Vec<u64> = rs.iter().zip(cs).map(|(a, b)| a & b).collect();
            let count = chr.bitcounter().count(&anded);
            triangles += count;
            stats.and_ops += 1;
            stats.bitcount_ops += 1;
            trace.push(Event::AndBitcount { row: i, col: j, slice: k, count: count as u32 });
        }
    }

    let (latency, energy) = chr.roll_up(&stats);
    PimRunResult { triangles, stats, latency, energy, trace }
}

/// Executes Algorithm 1 with per-vertex accounting: besides the global
/// count, every vertex receives the number of triangles it belongs to
/// (the quantity behind local clustering coefficients, one of the
/// paper's motivating applications).
///
/// Hardware-wise this costs one extra operation class: the AND result
/// of each *non-zero* slice pair must be read out of the array (a
/// read-class access) so the host can attribute the surviving bits to
/// their vertices. Zero results are filtered by the bit counter and
/// never read out.
///
/// Vertex ids in the returned vector are the matrix's ids; callers
/// that relabelled (degree/degeneracy orientation) map them back via
/// `OrientedGraph::original_id`.
///
/// # Panics
///
/// Panics if `matrix` was built with a different slice size than the
/// characterization's configuration.
pub fn run_local(chr: &PimCharacterization, matrix: &SlicedMatrix) -> LocalRunResult {
    assert_eq!(
        matrix.slice_size(),
        chr.config().slice_size,
        "matrix slice size must match the engine configuration"
    );
    let slice_bits = chr.config().slice_size.bits() as u64;
    let mut cache = SliceCache::new(
        chr.column_capacity(matrix),
        chr.config().replacement,
        chr.config().replacement_seed,
    );
    let mut stats = AccessStats::default();
    let mut per_vertex = vec![0u64; matrix.dim()];
    let mut triangles = 0u64;
    let mut current_row: Option<u32> = None;
    let mut row_loaded: HashSet<u32> = HashSet::new();

    for (i, j) in matrix.edges() {
        stats.edges += 1;
        if current_row != Some(i) {
            current_row = Some(i);
            row_loaded.clear();
        }
        let pairs = matrix
            .row(i)
            .matching_slices(matrix.col(j))
            .expect("rows and columns of one matrix always align");
        for (k, rs, cs) in pairs {
            if row_loaded.insert(k) {
                stats.row_slice_writes += 1;
            }
            let key = (u64::from(j) << 32) | u64::from(k);
            match cache.access(key) {
                AccessOutcome::Hit => stats.col_hits += 1,
                AccessOutcome::Miss => stats.col_misses += 1,
                AccessOutcome::Exchange { .. } => stats.col_exchanges += 1,
            }
            let anded: Vec<u64> = rs.iter().zip(cs).map(|(a, b)| a & b).collect();
            let count = chr.bitcounter().count(&anded);
            stats.and_ops += 1;
            stats.bitcount_ops += 1;
            if count > 0 {
                // Read the surviving bits back out and attribute them.
                stats.result_readouts += 1;
                triangles += count;
                per_vertex[i as usize] += count;
                per_vertex[j as usize] += count;
                for (w, &word) in anded.iter().enumerate() {
                    let mut rem = word;
                    while rem != 0 {
                        let tz = rem.trailing_zeros() as u64;
                        rem &= rem - 1;
                        let vertex = u64::from(k) * slice_bits + w as u64 * 64 + tz;
                        per_vertex[vertex as usize] += 1;
                    }
                }
            }
        }
    }

    let (latency, energy) = chr.roll_up(&stats);
    LocalRunResult { triangles, per_vertex, stats, latency, energy }
}
