//! Processing-in-MRAM architecture simulator (the paper's §IV).
//!
//! This crate is the Rust counterpart of the authors' in-house Java
//! architecture simulator: it executes Algorithm 1 — iterate the non-zero
//! elements of the oriented adjacency matrix, load valid slice pairs into
//! the computational array, perform `AND` + `BitCount`, manage the column
//! slice cache with LRU replacement — and accounts every operation's
//! latency and energy using the NVSim-style array characterization.
//!
//! Modules:
//!
//! * [`buffer`] — the data buffer of Fig. 4 tracking which slices are
//!   resident in the array, with LRU (paper), FIFO and Random policies.
//! * [`bitcounter`] — the synthesized 8→256-LUT bit counter (§V-A):
//!   functional model plus synthesis-style latency/energy constants.
//! * [`PimConfig`] — simulator configuration (slice size, array size,
//!   replacement policy, controller overhead).
//! * [`PimCharacterization`] — the characterize-time half: device, array
//!   and bit-counter models resolved once per configuration.
//! * [`runtime`] — the run-time half: Algorithm 1 executed over a
//!   prepared sliced matrix against a characterization.
//! * [`PimEngine`] — the one-object facade over both halves.
//! * [`SliceCostModel`] — per-operation cost hooks for external
//!   schedulers (`tcim-sched`) that place work onto arrays themselves.
//! * [`stats`] — access statistics behind Fig. 5 and the WRITE-saving
//!   claim.
//! * [`sweep`] — structured capacity/policy sweeps over the buffer
//!   configuration.
//!
//! Kernel-event tracing lives in [`tcim_telemetry`]: runs record
//! [`KernelEvent`]s into a bounded [`EventTrace`] when
//! [`PimConfig::trace_capacity`] is non-zero (both types are
//! re-exported here for convenience).
//!
//! # Example
//!
//! ```
//! use tcim_arch::{PimConfig, PimEngine};
//! use tcim_bitmatrix::{SliceSize, SlicedMatrixBuilder};
//!
//! // The paper's Fig. 2 graph: 4 vertices, 5 edges, 2 triangles.
//! let mut b = SlicedMatrixBuilder::new(4, SliceSize::S64);
//! for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
//!     b.add_edge(u, v)?;
//! }
//! let matrix = b.build();
//!
//! let engine = PimEngine::new(&PimConfig::default())?;
//! let run = engine.run(&matrix);
//! assert_eq!(run.triangles, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitcounter;
pub mod buffer;
mod characterization;
mod config;
mod costs;
mod engine;
mod error;
pub mod runtime;
pub mod stats;
pub mod sweep;

pub use bitcounter::BitCounterModel;
pub use buffer::{AccessOutcome, ReplacementPolicy, SliceCache};
pub use characterization::PimCharacterization;
pub use config::PimConfig;
pub use costs::SliceCostModel;
pub use engine::PimEngine;
pub use error::{ArchError, Result};
pub use runtime::{
    EnergyBreakdown, LatencyBreakdown, LocalRunResult, PimRunResult, TriangleSink,
    TriangleTally,
};
pub use stats::AccessStats;
pub use tcim_telemetry::{EventTrace, KernelEvent};
