//! The one-stop PIM engine facade: characterize-time state
//! ([`PimCharacterization`]) bundled with the run-time executor
//! ([`runtime`](crate::runtime)) behind the original single-object API.

use tcim_bitmatrix::SlicedMatrix;

use crate::characterization::PimCharacterization;
use crate::config::PimConfig;
use crate::costs::SliceCostModel;
use crate::error::Result;
use crate::runtime::{self, LocalRunResult, PimRunResult};

/// The processing-in-MRAM engine: a characterized array plus the
/// controller logic of Algorithm 1.
///
/// Since the characterize/run split this is a thin facade:
/// [`PimCharacterization`] holds everything configuration-dependent and
/// the [`runtime`](crate::runtime) functions execute prepared matrices
/// against it. The facade remains the convenient entry point for
/// callers that want both halves in one object.
#[derive(Debug, Clone)]
pub struct PimEngine {
    characterization: PimCharacterization,
}

impl PimEngine {
    /// Characterizes the device and array for `config`.
    ///
    /// # Errors
    ///
    /// Returns configuration/characterization errors; see
    /// [`PimConfig::validate`].
    pub fn new(config: &PimConfig) -> Result<Self> {
        Ok(PimEngine { characterization: PimCharacterization::characterize(config)? })
    }

    /// Wraps an existing characterization (no re-characterization).
    pub fn from_characterization(characterization: PimCharacterization) -> Self {
        PimEngine { characterization }
    }

    /// The characterize-time half of this engine.
    pub fn characterization(&self) -> &PimCharacterization {
        &self.characterization
    }

    /// The NVSim-style characterization backing this engine.
    pub fn array(&self) -> &tcim_nvsim::ArrayCharacterization {
        self.characterization.array()
    }

    /// The bit-counter model backing this engine.
    pub fn bitcounter(&self) -> &crate::bitcounter::BitCounterModel {
        self.characterization.bitcounter()
    }

    /// The configuration this engine was built from.
    pub fn config(&self) -> &PimConfig {
        self.characterization.config()
    }

    /// The resolved per-operation cost model — the hooks an external
    /// scheduler (`tcim-sched`) uses to account work it places onto
    /// arrays itself.
    pub fn cost_model(&self) -> SliceCostModel {
        self.characterization.cost_model()
    }

    /// Total data-buffer capacity in valid slices (rows + columns), per
    /// [`PimConfig::capacity_slices`].
    pub fn capacity_slices(&self) -> usize {
        self.characterization.capacity_slices()
    }

    /// Executes Algorithm 1 over an oriented sliced matrix; see
    /// [`runtime::run`].
    ///
    /// # Panics
    ///
    /// Panics if `matrix` was built with a different slice size than the
    /// engine configuration — a mapping bug at the call site.
    pub fn run(&self, matrix: &SlicedMatrix) -> PimRunResult {
        runtime::run(&self.characterization, matrix)
    }

    /// Executes Algorithm 1 with per-vertex accounting; see
    /// [`runtime::run_local`].
    ///
    /// # Panics
    ///
    /// Panics if `matrix` was built with a different slice size than the
    /// engine configuration.
    pub fn run_local(&self, matrix: &SlicedMatrix) -> LocalRunResult {
        runtime::run_local(&self.characterization, matrix)
    }

    /// Executes Algorithm 1 with triangle attribution, reporting every
    /// surviving triangle to `sink` (ascending matrix ids — the
    /// [`TriangleSink`](runtime::TriangleSink) contract); see
    /// [`runtime::run_attributed`].
    ///
    /// # Panics
    ///
    /// Panics if `matrix` was built with a different slice size than the
    /// engine configuration.
    pub fn run_attributed<S: runtime::TriangleSink + ?Sized>(
        &self,
        matrix: &SlicedMatrix,
        sink: &mut S,
    ) -> PimRunResult {
        runtime::run_attributed(&self.characterization, matrix, sink)
    }
}

impl From<PimCharacterization> for PimEngine {
    fn from(characterization: PimCharacterization) -> Self {
        PimEngine::from_characterization(characterization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_bitmatrix::{SliceSize, SlicedMatrixBuilder};

    fn fig2_matrix() -> SlicedMatrix {
        let mut b = SlicedMatrixBuilder::new(4, SliceSize::S64);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v).unwrap();
        }
        b.build()
    }

    fn engine() -> PimEngine {
        PimEngine::new(&PimConfig::default()).unwrap()
    }

    #[test]
    fn fig2_counts_two_triangles() {
        let run = engine().run(&fig2_matrix());
        assert_eq!(run.triangles, 2);
        assert_eq!(run.stats.edges, 5);
        // Every edge produces exactly one valid pair here (n = 4 < 64).
        assert_eq!(run.stats.and_ops, 5);
        assert_eq!(run.stats.bitcount_ops, 5);
    }

    #[test]
    fn fig2_reuse_matches_paper_walkthrough() {
        // Fig. 2: C2 is loaded at step 2 and reused at step 3; C3 loaded at
        // step 4 and reused at step 5; C1 used once. Three rows load once
        // each.
        let run = engine().run(&fig2_matrix());
        assert_eq!(run.stats.col_misses, 3); // C1, C2, C3 first touches
        assert_eq!(run.stats.col_hits, 2); // C2 and C3 reuses
        assert_eq!(run.stats.col_exchanges, 0); // 16 MB ≫ this graph
        assert_eq!(run.stats.row_slice_writes, 3); // R0, R1, R2
    }

    #[test]
    fn energy_and_latency_accounting_identities() {
        let e = engine();
        let run = e.run(&fig2_matrix());
        let slice_bits = e.config().slice_size.bits();
        let parallel = e.array().organization.parallel_subarrays() as f64;
        let expected_write_s =
            run.stats.total_writes() as f64 * e.array().write_latency_s / parallel;
        assert!((run.latency.write_s - expected_write_s).abs() < 1e-18);
        let expected_and_j =
            run.stats.and_ops as f64 * e.array().and_slice_energy_j(slice_bits);
        assert!((run.energy.and_j - expected_and_j).abs() < 1e-18);
        assert!(run.total_time_s() > 0.0);
        assert!(run.total_energy_j() > 0.0);
    }

    #[test]
    fn tiny_cache_forces_exchanges() {
        // A 4-vertex graph with a cache big enough for the row reserve but
        // only one column slice forces every second access to exchange.
        let config = PimConfig {
            organization: tcim_nvsim::ArrayOrganization {
                rows_per_subarray: 32,
                cols_per_subarray: 16,
                subarrays_per_mat: 1,
                mats_per_bank: 1,
                banks: 1,
            },
            // 32×16 = 512 bits = 64 B → 5 slices capacity.
            ..PimConfig::default()
        };
        let engine = PimEngine::new(&config).unwrap();

        // A graph whose columns span many distinct slices: star + chain on
        // 300 vertices (5 column slices at |S| = 64).
        let mut b = SlicedMatrixBuilder::new(300, SliceSize::S64);
        for v in 1..300 {
            b.add_edge(0, v).unwrap();
        }
        for v in 1..299 {
            b.add_edge(v, v + 1).unwrap();
        }
        let run = engine.run(&b.build());
        assert!(run.stats.col_exchanges > 0, "{}", run.stats);
        // Functional correctness survives cache pressure: triangles in the
        // fan are (0, v, v+1) for v in 1..299 → 298.
        assert_eq!(run.triangles, 298);
    }

    #[test]
    fn triangle_count_matches_dense_reference_on_random_graph() {
        use tcim_bitmatrix::BitMatrix;
        // Deterministic pseudo-random graph.
        let n = 150usize;
        let mut edges = Vec::new();
        let mut x = 9u64;
        for u in 0..n {
            for v in (u + 1)..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if (x >> 33).is_multiple_of(10) {
                    edges.push((u, v));
                }
            }
        }
        let reference = BitMatrix::from_edges(n, &edges).unwrap();
        let expected = reference.triangle_count_trace();

        let mut b = SlicedMatrixBuilder::new(n, SliceSize::S64);
        for &(u, v) in &edges {
            b.add_edge(u, v).unwrap();
        }
        let run = engine().run(&b.build());
        assert_eq!(run.triangles, expected);
    }

    #[test]
    fn local_counts_sum_to_three_per_triangle() {
        let run = engine().run_local(&fig2_matrix());
        assert_eq!(run.triangles, 2);
        // Fig. 2: triangles 0-1-2 and 1-2-3 → participation 1,2,2,1.
        assert_eq!(run.per_vertex, vec![1, 2, 2, 1]);
        assert_eq!(run.per_vertex.iter().sum::<u64>(), 3 * run.triangles);
        // Two of the five pairs produce non-zero counts → two readouts.
        assert_eq!(run.stats.result_readouts, 2);
        assert!(run.latency.readout_s > 0.0);
        assert!(run.energy.readout_j > 0.0);
    }

    #[test]
    fn local_and_global_runs_agree() {
        let mut b = SlicedMatrixBuilder::new(120, SliceSize::S64);
        let mut x = 5u64;
        for u in 0..120u32 {
            for v in (u + 1)..120 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if (x >> 33).is_multiple_of(7) {
                    b.add_edge(u as usize, v as usize).unwrap();
                }
            }
        }
        let m = b.build();
        let e = engine();
        let global = e.run(&m);
        let local = e.run_local(&m);
        assert_eq!(local.triangles, global.triangles);
        assert_eq!(local.per_vertex.iter().sum::<u64>(), 3 * global.triangles);
        // Same traffic statistics, plus the readouts.
        assert_eq!(local.stats.col_accesses(), global.stats.col_accesses());
        assert!(local.stats.result_readouts <= local.stats.and_ops);
        // Readouts make the local run cost strictly more.
        assert!(local.energy.total_j() >= global.energy.total_j());
    }

    #[test]
    fn empty_graph_runs_cleanly() {
        let m = SlicedMatrix::from_adjacency(&[], SliceSize::S64).unwrap();
        let run = engine().run(&m);
        assert_eq!(run.triangles, 0);
        assert_eq!(run.stats.edges, 0);
        assert_eq!(run.total_time_s(), 0.0);
    }

    #[test]
    #[should_panic(expected = "slice size")]
    fn mismatched_slice_size_panics() {
        let mut b = SlicedMatrixBuilder::new(4, SliceSize::S32);
        b.add_edge(0, 1).unwrap();
        engine().run(&b.build());
    }

    #[test]
    fn trace_records_when_enabled() {
        let config = PimConfig { trace_capacity: 64, ..PimConfig::default() };
        let engine = PimEngine::new(&config).unwrap();
        let run = engine.run(&fig2_matrix());
        assert!(!run.trace.is_empty());
        // 3 row writes + 5 col accesses + 5 and/bitcount events = 13.
        assert_eq!(run.trace.len(), 13);
    }

    #[test]
    fn attributed_trace_records_when_enabled() {
        let config = PimConfig { trace_capacity: 64, ..PimConfig::default() };
        let engine = PimEngine::new(&config).unwrap();
        let mut sink = |_: u32, _: u32, _: u32| {};
        let run = engine.run_attributed(&fig2_matrix(), &mut sink);
        // Same event stream as the plain run: 3 row writes + 5 col
        // accesses + 5 and/bitcount events.
        assert_eq!(run.trace.len(), 13);
    }

    #[test]
    fn runtime_functions_match_the_facade() {
        use crate::runtime;
        let chr = PimCharacterization::characterize(&PimConfig::default()).unwrap();
        let m = fig2_matrix();
        let direct = runtime::run(&chr, &m);
        let facade = PimEngine::from_characterization(chr.clone()).run(&m);
        assert_eq!(direct.triangles, facade.triangles);
        assert_eq!(direct.stats, facade.stats);
        let local = runtime::run_local(&chr, &m);
        assert_eq!(local.triangles, direct.triangles);
    }
}
