//! The Algorithm 1 executor: iterate edges, load valid slice pairs,
//! AND + BitCount, manage the column cache, account latency and energy.

use std::collections::HashSet;

use tcim_bitmatrix::SlicedMatrix;
use tcim_mtj::MtjCell;
use tcim_nvsim::{ArrayCharacterization, ArrayModel};

use crate::bitcounter::BitCounterModel;
use crate::buffer::{AccessOutcome, SliceCache};
use crate::config::PimConfig;
use crate::costs::SliceCostModel;
use crate::error::Result;
use crate::stats::AccessStats;
use crate::trace::{Event, EventTrace};

/// Where the simulated time went.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyBreakdown {
    /// Array WRITE time (row loads + column loads), after parallelism (s).
    pub write_s: f64,
    /// AND operation time, after parallelism (s).
    pub and_s: f64,
    /// Bit-counter time, after parallelism (s).
    pub bitcount_s: f64,
    /// AND-result readout time (local counting only), after
    /// parallelism (s).
    pub readout_s: f64,
    /// Host controller dispatch time (serial) (s).
    pub controller_s: f64,
}

impl LatencyBreakdown {
    /// Total simulated runtime (s).
    pub fn total_s(&self) -> f64 {
        self.write_s + self.and_s + self.bitcount_s + self.readout_s + self.controller_s
    }
}

/// Where the simulated energy went.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Array WRITE energy (J).
    pub write_j: f64,
    /// AND energy (J).
    pub and_j: f64,
    /// Bit-counter energy (J).
    pub bitcount_j: f64,
    /// AND-result readout energy (local counting only) (J).
    pub readout_j: f64,
    /// Peripheral leakage over the runtime (J).
    pub leakage_j: f64,
    /// Host controller energy (J).
    pub controller_j: f64,
}

impl EnergyBreakdown {
    /// Total energy (J).
    pub fn total_j(&self) -> f64 {
        self.write_j
            + self.and_j
            + self.bitcount_j
            + self.readout_j
            + self.leakage_j
            + self.controller_j
    }
}

/// Result of one simulated TCIM run.
#[derive(Debug, Clone)]
pub struct PimRunResult {
    /// The triangle count — functionally exact, produced by the simulated
    /// AND/BitCount dataflow itself.
    pub triangles: u64,
    /// Access statistics (Fig. 5 quantities).
    pub stats: AccessStats,
    /// Latency breakdown.
    pub latency: LatencyBreakdown,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Event trace (empty unless enabled in the config).
    pub trace: EventTrace,
}

impl PimRunResult {
    /// Total simulated runtime (s).
    pub fn total_time_s(&self) -> f64 {
        self.latency.total_s()
    }

    /// Total simulated energy (J).
    pub fn total_energy_j(&self) -> f64 {
        self.energy.total_j()
    }
}

/// Result of one per-vertex (local) counting run — see
/// [`PimEngine::run_local`].
#[derive(Debug, Clone)]
pub struct LocalRunResult {
    /// Global triangle count (identical to [`PimRunResult::triangles`]).
    pub triangles: u64,
    /// Triangles each vertex participates in; sums to `3 × triangles`.
    pub per_vertex: Vec<u64>,
    /// Access statistics, including [`AccessStats::result_readouts`].
    pub stats: AccessStats,
    /// Latency breakdown (includes the readout component).
    pub latency: LatencyBreakdown,
    /// Energy breakdown (includes the readout component).
    pub energy: EnergyBreakdown,
}

/// The processing-in-MRAM engine: a characterized array plus the
/// controller logic of Algorithm 1.
#[derive(Debug, Clone)]
pub struct PimEngine {
    config: PimConfig,
    array: ArrayCharacterization,
    bitcounter: BitCounterModel,
    capacity_slices: usize,
}

impl PimEngine {
    /// Characterizes the device and array for `config`.
    ///
    /// # Errors
    ///
    /// Returns configuration/characterization errors; see
    /// [`PimConfig::validate`].
    pub fn new(config: &PimConfig) -> Result<Self> {
        config.validate()?;
        let cell = MtjCell::characterize(&config.mtj)?;
        let array = ArrayModel::characterize(&cell, &config.organization)?;
        let bitcounter = BitCounterModel::freepdk45(config.slice_size.bits());
        let capacity_slices = config.capacity_slices()?;
        Ok(PimEngine { config: config.clone(), array, bitcounter, capacity_slices })
    }

    /// The NVSim-style characterization backing this engine.
    pub fn array(&self) -> &ArrayCharacterization {
        &self.array
    }

    /// The bit-counter model backing this engine.
    pub fn bitcounter(&self) -> &BitCounterModel {
        &self.bitcounter
    }

    /// The configuration this engine was built from.
    pub fn config(&self) -> &PimConfig {
        &self.config
    }

    /// The resolved per-operation cost model — the hooks an external
    /// scheduler (`tcim-sched`) uses to account work it places onto
    /// arrays itself.
    pub fn cost_model(&self) -> SliceCostModel {
        SliceCostModel::resolve(&self.config, &self.array, &self.bitcounter)
    }

    /// Total data-buffer capacity in valid slices (rows + columns), per
    /// [`PimConfig::capacity_slices`].
    pub fn capacity_slices(&self) -> usize {
        self.capacity_slices
    }

    /// Column-slice cache capacity after reserving the row region: the
    /// current row's slices must be resident while its edges process, so
    /// the widest row of `matrix` is set aside.
    fn column_capacity(&self, matrix: &SlicedMatrix) -> usize {
        let row_reserve = (0..matrix.dim() as u32)
            .map(|i| matrix.row(i).valid_slice_count())
            .max()
            .unwrap_or(0);
        self.capacity_slices.saturating_sub(row_reserve).max(1)
    }

    /// Executes Algorithm 1 over an oriented sliced matrix.
    ///
    /// The returned triangle count is computed by the simulated dataflow
    /// itself (LUT bit counter over sliced ANDs), so functional
    /// correctness of the architecture is checked on every run.
    ///
    /// # Panics
    ///
    /// Panics if `matrix` was built with a different slice size than the
    /// engine configuration — a mapping bug at the call site.
    pub fn run(&self, matrix: &SlicedMatrix) -> PimRunResult {
        assert_eq!(
            matrix.slice_size(),
            self.config.slice_size,
            "matrix slice size must match the engine configuration"
        );
        let mut cache = SliceCache::new(
            self.column_capacity(matrix),
            self.config.replacement,
            self.config.replacement_seed,
        );
        let mut trace = EventTrace::new(self.config.trace_capacity);
        let mut stats = AccessStats::default();
        let mut triangles = 0u64;

        let mut current_row: Option<u32> = None;
        let mut row_loaded: HashSet<u32> = HashSet::new();

        for (i, j) in matrix.edges() {
            stats.edges += 1;
            if current_row != Some(i) {
                // The new row overwrites the reserved row region (§IV-A).
                current_row = Some(i);
                row_loaded.clear();
            }
            let row = matrix.row(i);
            let col = matrix.col(j);
            let pairs =
                row.matching_slices(col).expect("rows and columns of one matrix always align");
            for (k, rs, cs) in pairs {
                if row_loaded.insert(k) {
                    stats.row_slice_writes += 1;
                    trace.push(Event::RowSliceWrite { row: i, slice: k });
                }
                let key = (u64::from(j) << 32) | u64::from(k);
                match cache.access(key) {
                    AccessOutcome::Hit => {
                        stats.col_hits += 1;
                        trace.push(Event::ColHit { col: j, slice: k });
                    }
                    AccessOutcome::Miss => {
                        stats.col_misses += 1;
                        trace.push(Event::ColMiss { col: j, slice: k });
                    }
                    AccessOutcome::Exchange { .. } => {
                        stats.col_exchanges += 1;
                        trace.push(Event::ColExchange { col: j, slice: k });
                    }
                }

                // The in-array AND feeds the bit counter (Fig. 4 dataflow).
                let anded: Vec<u64> = rs.iter().zip(cs).map(|(a, b)| a & b).collect();
                let count = self.bitcounter.count(&anded);
                triangles += count;
                stats.and_ops += 1;
                stats.bitcount_ops += 1;
                trace.push(Event::AndBitcount {
                    row: i,
                    col: j,
                    slice: k,
                    count: count as u32,
                });
            }
        }

        let (latency, energy) = self.roll_up(&stats);
        PimRunResult { triangles, stats, latency, energy, trace }
    }

    /// Executes Algorithm 1 with per-vertex accounting: besides the global
    /// count, every vertex receives the number of triangles it belongs to
    /// (the quantity behind local clustering coefficients, one of the
    /// paper's motivating applications).
    ///
    /// Hardware-wise this costs one extra operation class: the AND result
    /// of each *non-zero* slice pair must be read out of the array (a
    /// read-class access) so the host can attribute the surviving bits to
    /// their vertices. Zero results are filtered by the bit counter and
    /// never read out.
    ///
    /// Vertex ids in the returned vector are the matrix's ids; callers
    /// that relabelled (degree/degeneracy orientation) map them back via
    /// `OrientedGraph::original_id`.
    ///
    /// # Panics
    ///
    /// Panics if `matrix` was built with a different slice size than the
    /// engine configuration.
    pub fn run_local(&self, matrix: &SlicedMatrix) -> LocalRunResult {
        assert_eq!(
            matrix.slice_size(),
            self.config.slice_size,
            "matrix slice size must match the engine configuration"
        );
        let slice_bits = self.config.slice_size.bits() as u64;
        let mut cache = SliceCache::new(
            self.column_capacity(matrix),
            self.config.replacement,
            self.config.replacement_seed,
        );
        let mut stats = AccessStats::default();
        let mut per_vertex = vec![0u64; matrix.dim()];
        let mut triangles = 0u64;
        let mut current_row: Option<u32> = None;
        let mut row_loaded: HashSet<u32> = HashSet::new();

        for (i, j) in matrix.edges() {
            stats.edges += 1;
            if current_row != Some(i) {
                current_row = Some(i);
                row_loaded.clear();
            }
            let pairs = matrix
                .row(i)
                .matching_slices(matrix.col(j))
                .expect("rows and columns of one matrix always align");
            for (k, rs, cs) in pairs {
                if row_loaded.insert(k) {
                    stats.row_slice_writes += 1;
                }
                let key = (u64::from(j) << 32) | u64::from(k);
                match cache.access(key) {
                    AccessOutcome::Hit => stats.col_hits += 1,
                    AccessOutcome::Miss => stats.col_misses += 1,
                    AccessOutcome::Exchange { .. } => stats.col_exchanges += 1,
                }
                let anded: Vec<u64> = rs.iter().zip(cs).map(|(a, b)| a & b).collect();
                let count = self.bitcounter.count(&anded);
                stats.and_ops += 1;
                stats.bitcount_ops += 1;
                if count > 0 {
                    // Read the surviving bits back out and attribute them.
                    stats.result_readouts += 1;
                    triangles += count;
                    per_vertex[i as usize] += count;
                    per_vertex[j as usize] += count;
                    for (w, &word) in anded.iter().enumerate() {
                        let mut rem = word;
                        while rem != 0 {
                            let tz = rem.trailing_zeros() as u64;
                            rem &= rem - 1;
                            let vertex = u64::from(k) * slice_bits + w as u64 * 64 + tz;
                            per_vertex[vertex as usize] += 1;
                        }
                    }
                }
            }
        }

        let (latency, energy) = self.roll_up(&stats);
        LocalRunResult { triangles, per_vertex, stats, latency, energy }
    }

    /// Converts operation counts into time and energy using the array
    /// characterization. Writes and compute ops are spread across the
    /// concurrently operating sub-arrays; controller dispatch is serial on
    /// the host. Host controller energy is the single-core host burning
    /// its active package power for as long as it dispatches edges — the
    /// term that dominates end-to-end TCIM energy, exactly as in the
    /// paper's Fig. 6 arithmetic (see EXPERIMENTS.md).
    fn roll_up(&self, stats: &AccessStats) -> (LatencyBreakdown, EnergyBreakdown) {
        let parallel = self.array.organization.parallel_subarrays() as f64;
        self.cost_model().roll_up(stats, parallel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_bitmatrix::{SliceSize, SlicedMatrixBuilder};

    fn fig2_matrix() -> SlicedMatrix {
        let mut b = SlicedMatrixBuilder::new(4, SliceSize::S64);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v).unwrap();
        }
        b.build()
    }

    fn engine() -> PimEngine {
        PimEngine::new(&PimConfig::default()).unwrap()
    }

    #[test]
    fn fig2_counts_two_triangles() {
        let run = engine().run(&fig2_matrix());
        assert_eq!(run.triangles, 2);
        assert_eq!(run.stats.edges, 5);
        // Every edge produces exactly one valid pair here (n = 4 < 64).
        assert_eq!(run.stats.and_ops, 5);
        assert_eq!(run.stats.bitcount_ops, 5);
    }

    #[test]
    fn fig2_reuse_matches_paper_walkthrough() {
        // Fig. 2: C2 is loaded at step 2 and reused at step 3; C3 loaded at
        // step 4 and reused at step 5; C1 used once. Three rows load once
        // each.
        let run = engine().run(&fig2_matrix());
        assert_eq!(run.stats.col_misses, 3); // C1, C2, C3 first touches
        assert_eq!(run.stats.col_hits, 2); // C2 and C3 reuses
        assert_eq!(run.stats.col_exchanges, 0); // 16 MB ≫ this graph
        assert_eq!(run.stats.row_slice_writes, 3); // R0, R1, R2
    }

    #[test]
    fn energy_and_latency_accounting_identities() {
        let e = engine();
        let run = e.run(&fig2_matrix());
        let slice_bits = e.config().slice_size.bits();
        let parallel = e.array().organization.parallel_subarrays() as f64;
        let expected_write_s =
            run.stats.total_writes() as f64 * e.array().write_latency_s / parallel;
        assert!((run.latency.write_s - expected_write_s).abs() < 1e-18);
        let expected_and_j =
            run.stats.and_ops as f64 * e.array().and_slice_energy_j(slice_bits);
        assert!((run.energy.and_j - expected_and_j).abs() < 1e-18);
        assert!(run.total_time_s() > 0.0);
        assert!(run.total_energy_j() > 0.0);
    }

    #[test]
    fn tiny_cache_forces_exchanges() {
        // A 4-vertex graph with a cache big enough for the row reserve but
        // only one column slice forces every second access to exchange.
        let config = PimConfig {
            organization: tcim_nvsim::ArrayOrganization {
                rows_per_subarray: 32,
                cols_per_subarray: 16,
                subarrays_per_mat: 1,
                mats_per_bank: 1,
                banks: 1,
            },
            // 32×16 = 512 bits = 64 B → 5 slices capacity.
            ..PimConfig::default()
        };
        let engine = PimEngine::new(&config).unwrap();

        // A graph whose columns span many distinct slices: star + chain on
        // 300 vertices (5 column slices at |S| = 64).
        let mut b = SlicedMatrixBuilder::new(300, SliceSize::S64);
        for v in 1..300 {
            b.add_edge(0, v).unwrap();
        }
        for v in 1..299 {
            b.add_edge(v, v + 1).unwrap();
        }
        let run = engine.run(&b.build());
        assert!(run.stats.col_exchanges > 0, "{}", run.stats);
        // Functional correctness survives cache pressure: triangles in the
        // fan are (0, v, v+1) for v in 1..299 → 298.
        assert_eq!(run.triangles, 298);
    }

    #[test]
    fn triangle_count_matches_dense_reference_on_random_graph() {
        use tcim_bitmatrix::BitMatrix;
        // Deterministic pseudo-random graph.
        let n = 150usize;
        let mut edges = Vec::new();
        let mut x = 9u64;
        for u in 0..n {
            for v in (u + 1)..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if (x >> 33).is_multiple_of(10) {
                    edges.push((u, v));
                }
            }
        }
        let reference = BitMatrix::from_edges(n, &edges).unwrap();
        let expected = reference.triangle_count_trace();

        let mut b = SlicedMatrixBuilder::new(n, SliceSize::S64);
        for &(u, v) in &edges {
            b.add_edge(u, v).unwrap();
        }
        let run = engine().run(&b.build());
        assert_eq!(run.triangles, expected);
    }

    #[test]
    fn local_counts_sum_to_three_per_triangle() {
        let run = engine().run_local(&fig2_matrix());
        assert_eq!(run.triangles, 2);
        // Fig. 2: triangles 0-1-2 and 1-2-3 → participation 1,2,2,1.
        assert_eq!(run.per_vertex, vec![1, 2, 2, 1]);
        assert_eq!(run.per_vertex.iter().sum::<u64>(), 3 * run.triangles);
        // Two of the five pairs produce non-zero counts → two readouts.
        assert_eq!(run.stats.result_readouts, 2);
        assert!(run.latency.readout_s > 0.0);
        assert!(run.energy.readout_j > 0.0);
    }

    #[test]
    fn local_and_global_runs_agree() {
        let mut b = SlicedMatrixBuilder::new(120, SliceSize::S64);
        let mut x = 5u64;
        for u in 0..120u32 {
            for v in (u + 1)..120 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if (x >> 33).is_multiple_of(7) {
                    b.add_edge(u as usize, v as usize).unwrap();
                }
            }
        }
        let m = b.build();
        let e = engine();
        let global = e.run(&m);
        let local = e.run_local(&m);
        assert_eq!(local.triangles, global.triangles);
        assert_eq!(local.per_vertex.iter().sum::<u64>(), 3 * global.triangles);
        // Same traffic statistics, plus the readouts.
        assert_eq!(local.stats.col_accesses(), global.stats.col_accesses());
        assert!(local.stats.result_readouts <= local.stats.and_ops);
        // Readouts make the local run cost strictly more.
        assert!(local.energy.total_j() >= global.energy.total_j());
    }

    #[test]
    fn empty_graph_runs_cleanly() {
        let m = SlicedMatrix::from_adjacency(&[], SliceSize::S64).unwrap();
        let run = engine().run(&m);
        assert_eq!(run.triangles, 0);
        assert_eq!(run.stats.edges, 0);
        assert_eq!(run.total_time_s(), 0.0);
    }

    #[test]
    #[should_panic(expected = "slice size")]
    fn mismatched_slice_size_panics() {
        let mut b = SlicedMatrixBuilder::new(4, SliceSize::S32);
        b.add_edge(0, 1).unwrap();
        engine().run(&b.build());
    }

    #[test]
    fn trace_records_when_enabled() {
        let config = PimConfig { trace_capacity: 64, ..PimConfig::default() };
        let engine = PimEngine::new(&config).unwrap();
        let run = engine.run(&fig2_matrix());
        assert!(!run.trace.is_empty());
        // 3 row writes + 5 col accesses + 5 and/bitcount events = 13.
        assert_eq!(run.trace.len(), 13);
    }
}
