//! Structured parameter sweeps over the architecture configuration.
//!
//! The paper's Fig. 5 is a single point of a broader trade-off: how the
//! data buffer's capacity converts hits into exchanges and therefore
//! WRITE traffic and energy. This module runs that sweep programmatically
//! so harness binaries and tests consume one API instead of hand-rolled
//! loops.

use tcim_bitmatrix::SlicedMatrix;

use crate::buffer::ReplacementPolicy;
use crate::config::PimConfig;
use crate::engine::PimEngine;
use crate::error::Result;
use crate::stats::AccessStats;

/// One point of a capacity or policy sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Buffer capacity in slices used for this run.
    pub capacity_slices: usize,
    /// Replacement policy used for this run.
    pub policy: ReplacementPolicy,
    /// The run's access statistics.
    pub stats: AccessStats,
    /// Simulated runtime (s).
    pub time_s: f64,
    /// Simulated energy (J).
    pub energy_j: f64,
}

/// Runs the engine over `matrix` at every capacity in `capacities`
/// (slices), keeping the rest of `base` fixed.
///
/// The triangle count is asserted invariant across all points — a sweep
/// that changes the answer indicates a broken configuration, and this
/// function fails fast on it.
///
/// # Errors
///
/// Propagates engine construction failures (e.g. a zero capacity).
///
/// # Panics
///
/// Panics if two sweep points disagree on the triangle count.
pub fn capacity_sweep(
    base: &PimConfig,
    matrix: &SlicedMatrix,
    capacities: &[usize],
) -> Result<Vec<SweepPoint>> {
    let mut points = Vec::with_capacity(capacities.len());
    let mut reference: Option<u64> = None;
    for &capacity in capacities {
        let config = PimConfig { capacity_slices_override: Some(capacity), ..base.clone() };
        let run = PimEngine::new(&config)?.run(matrix);
        match reference {
            None => reference = Some(run.triangles),
            Some(r) => assert_eq!(r, run.triangles, "capacity must not change the count"),
        }
        points.push(SweepPoint {
            capacity_slices: capacity,
            policy: config.replacement,
            stats: run.stats,
            time_s: run.latency.total_s(),
            energy_j: run.energy.total_j(),
        });
    }
    Ok(points)
}

/// Runs the engine over `matrix` under every replacement policy at a
/// fixed `capacity`, keeping the rest of `base` fixed.
///
/// # Errors
///
/// Propagates engine construction failures.
///
/// # Panics
///
/// Panics if two sweep points disagree on the triangle count.
pub fn policy_sweep(
    base: &PimConfig,
    matrix: &SlicedMatrix,
    capacity: usize,
) -> Result<Vec<SweepPoint>> {
    let mut points = Vec::with_capacity(3);
    let mut reference: Option<u64> = None;
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Random]
    {
        let config = PimConfig {
            replacement: policy,
            capacity_slices_override: Some(capacity),
            ..base.clone()
        };
        let run = PimEngine::new(&config)?.run(matrix);
        match reference {
            None => reference = Some(run.triangles),
            Some(r) => assert_eq!(r, run.triangles, "policy must not change the count"),
        }
        points.push(SweepPoint {
            capacity_slices: capacity,
            policy,
            stats: run.stats,
            time_s: run.latency.total_s(),
            energy_j: run.energy.total_j(),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_bitmatrix::{SliceSize, SlicedMatrixBuilder};

    fn test_matrix() -> SlicedMatrix {
        // Star + chain on 600 vertices: ~10 column slices of traffic.
        let mut b = SlicedMatrixBuilder::new(600, SliceSize::S64);
        for v in 1..600 {
            b.add_edge(0, v).unwrap();
        }
        for v in 1..599 {
            b.add_edge(v, v + 1).unwrap();
        }
        b.build()
    }

    #[test]
    fn capacity_sweep_hits_decrease_monotonically() {
        let m = test_matrix();
        let points = capacity_sweep(&PimConfig::default(), &m, &[10_000, 100, 12, 4]).unwrap();
        assert_eq!(points.len(), 4);
        for w in points.windows(2) {
            assert!(
                w[0].stats.col_hits >= w[1].stats.col_hits,
                "hits must not grow as capacity shrinks"
            );
        }
        // The tightest capacity must exchange.
        assert!(points.last().unwrap().stats.col_exchanges > 0);
    }

    #[test]
    fn energy_grows_as_capacity_shrinks() {
        let m = test_matrix();
        let points = capacity_sweep(&PimConfig::default(), &m, &[10_000, 4]).unwrap();
        assert!(points[1].energy_j >= points[0].energy_j);
    }

    #[test]
    fn policy_sweep_covers_all_policies() {
        let m = test_matrix();
        let points = policy_sweep(&PimConfig::default(), &m, 8).unwrap();
        let policies: Vec<ReplacementPolicy> = points.iter().map(|p| p.policy).collect();
        assert_eq!(
            policies,
            vec![ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Random]
        );
    }

    #[test]
    fn sweep_rejects_zero_capacity() {
        let m = test_matrix();
        assert!(capacity_sweep(&PimConfig::default(), &m, &[0]).is_err());
    }
}
