//! Access statistics: the quantities behind Fig. 5 and the paper's
//! 72 %-fewer-WRITEs claim.

use std::fmt;

/// Counters accumulated over one Algorithm 1 run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessStats {
    /// Edges (non-zero adjacency elements) processed.
    pub edges: u64,
    /// Valid slice pairs computed (`AND` operations issued).
    pub and_ops: u64,
    /// `BitCount` operations issued (one per AND).
    pub bitcount_ops: u64,
    /// Row slices written into the reserved row region.
    pub row_slice_writes: u64,
    /// Column-slice accesses that hit in the array.
    pub col_hits: u64,
    /// Column-slice accesses that missed and loaded into free space.
    pub col_misses: u64,
    /// Column-slice misses that additionally evicted a victim
    /// (the paper's "data exchange").
    pub col_exchanges: u64,
    /// AND-result slices read back out of the array. Zero for plain
    /// counting (the bit counter consumes the result in place); non-zero
    /// for local (per-vertex) counting, which must see *which* bits
    /// survived the AND.
    pub result_readouts: u64,
    /// Mutually valid slice pairs the sparse row encoding's byte-mask
    /// filter proved zero and skipped before the AND. Always zero on
    /// dense matrices; `and_ops + blocks_skipped` is the pair count the
    /// dense encoding would have computed.
    pub blocks_skipped: u64,
}

impl AccessStats {
    /// Total column-slice accesses (hits + misses + exchanges).
    pub fn col_accesses(&self) -> u64 {
        self.col_hits + self.col_misses + self.col_exchanges
    }

    /// Fraction of column accesses served without a WRITE — Fig. 5's
    /// "Data Hit" share (the paper averages 72 %).
    pub fn hit_rate(&self) -> f64 {
        ratio(self.col_hits, self.col_accesses())
    }

    /// Fig. 5's "Data Miss" share (first-time loads into free space).
    pub fn miss_rate(&self) -> f64 {
        ratio(self.col_misses, self.col_accesses())
    }

    /// Fig. 5's "Data Exchange" share (loads that evicted a victim).
    pub fn exchange_rate(&self) -> f64 {
        ratio(self.col_exchanges, self.col_accesses())
    }

    /// Total WRITE operations into the computational array.
    pub fn total_writes(&self) -> u64 {
        self.row_slice_writes + self.col_misses + self.col_exchanges
    }

    /// WRITEs that data reuse eliminated, relative to reloading every
    /// column slice on every access: `hits / (hits + misses + exchanges)`
    /// over column traffic — the paper's "saves on average 72 % memory
    /// WRITE operations".
    pub fn writes_saved_fraction(&self) -> f64 {
        self.hit_rate()
    }

    /// Accumulates another run's counters into `self` — the aggregation
    /// multi-array schedulers apply over per-array statistics. Lives
    /// here so a new counter field cannot be silently dropped from
    /// aggregates elsewhere.
    pub fn merge(&mut self, other: &AccessStats) {
        let AccessStats {
            edges,
            and_ops,
            bitcount_ops,
            row_slice_writes,
            col_hits,
            col_misses,
            col_exchanges,
            result_readouts,
            blocks_skipped,
        } = *other;
        self.edges += edges;
        self.and_ops += and_ops;
        self.bitcount_ops += bitcount_ops;
        self.row_slice_writes += row_slice_writes;
        self.col_hits += col_hits;
        self.col_misses += col_misses;
        self.col_exchanges += col_exchanges;
        self.result_readouts += result_readouts;
        self.blocks_skipped += blocks_skipped;
    }
}

impl fmt::Display for AccessStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "edges {} / AND {} / row-writes {} / col hit {:.1}% miss {:.1}% exch {:.1}%",
            self.edges,
            self.and_ops,
            self.row_slice_writes,
            100.0 * self.hit_rate(),
            100.0 * self.miss_rate(),
            100.0 * self.exchange_rate(),
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AccessStats {
        AccessStats {
            edges: 10,
            and_ops: 40,
            bitcount_ops: 40,
            row_slice_writes: 12,
            col_hits: 30,
            col_misses: 8,
            col_exchanges: 2,
            result_readouts: 0,
            blocks_skipped: 0,
        }
    }

    #[test]
    fn rates_sum_to_one() {
        let s = sample();
        let total = s.hit_rate() + s.miss_rate() + s.exchange_rate();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn write_accounting() {
        let s = sample();
        assert_eq!(s.total_writes(), 12 + 8 + 2);
        assert!((s.writes_saved_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = AccessStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.col_accesses(), 0);
        assert_eq!(s.total_writes(), 0);
    }

    #[test]
    fn display_is_informative() {
        let text = sample().to_string();
        assert!(text.contains("edges 10"));
        assert!(text.contains("75.0%"));
    }
}
