//! Per-operation cost hooks: the characterized price of each slice-level
//! operation class, exposed so external runtimes (the `tcim-sched`
//! multi-array scheduler) can account latency and energy for work they
//! distribute themselves instead of relying on this engine's uniform
//! spreading approximation.

use tcim_nvsim::ArrayCharacterization;

use crate::bitcounter::BitCounterModel;
use crate::config::PimConfig;
use crate::runtime::{EnergyBreakdown, LatencyBreakdown};
use crate::stats::AccessStats;

/// The cost of every slice-level operation class of the TCIM dataflow,
/// fully resolved against one device/array characterization.
///
/// [`PimEngine::cost_model`](crate::PimEngine::cost_model) produces one
/// of these; [`SliceCostModel::roll_up`] converts an operation-count
/// vector ([`AccessStats`]) into latency and energy under an explicit
/// parallelism degree. The engine's own serial accounting is the special
/// case `parallel = organization.parallel_subarrays()` — a scheduler
/// that places work onto arrays explicitly instead calls `roll_up` per
/// array with `parallel = 1` and aggregates critical paths itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceCostModel {
    /// Latency of writing one slice into the array (s).
    pub write_latency_s: f64,
    /// Latency of one in-array AND over a slice pair (s).
    pub and_latency_s: f64,
    /// Latency of one bit-counter pass over a slice (s).
    pub bitcount_latency_s: f64,
    /// Latency of reading one AND-result slice back out (s).
    pub readout_latency_s: f64,
    /// Energy of writing one slice (J).
    pub write_energy_j: f64,
    /// Energy of one AND over a slice pair (J).
    pub and_energy_j: f64,
    /// Energy of one bit-counter pass (J).
    pub bitcount_energy_j: f64,
    /// Energy of one AND-result readout (J).
    pub readout_energy_j: f64,
    /// Peripheral leakage power, burned over the whole runtime (W).
    pub leakage_w: f64,
    /// Host controller dispatch overhead per edge (s).
    pub controller_overhead_s: f64,
    /// Active package power of the dispatching host (W).
    pub host_power_w: f64,
}

impl SliceCostModel {
    /// Resolves the per-operation costs for `config` against an array
    /// characterization and bit-counter model.
    pub(crate) fn resolve(
        config: &PimConfig,
        array: &ArrayCharacterization,
        bitcounter: &BitCounterModel,
    ) -> Self {
        let slice_bits = config.slice_size.bits();
        SliceCostModel {
            write_latency_s: array.write_latency_s,
            and_latency_s: array.and_latency_s,
            bitcount_latency_s: bitcounter.latency_s,
            readout_latency_s: array.read_latency_s,
            write_energy_j: array.write_slice_energy_j(slice_bits),
            and_energy_j: array.and_slice_energy_j(slice_bits),
            bitcount_energy_j: bitcounter.energy_j,
            readout_energy_j: array.read_slice_energy_j(slice_bits),
            leakage_w: array.leakage_w,
            controller_overhead_s: config.controller_overhead_s,
            host_power_w: config.host_power_w,
        }
    }

    /// Converts operation counts into latency and energy, spreading
    /// array-side work over `parallel` concurrently operating units;
    /// controller dispatch stays serial on the host.
    ///
    /// # Panics
    ///
    /// Panics when `parallel` is not strictly positive.
    pub fn roll_up(
        &self,
        stats: &AccessStats,
        parallel: f64,
    ) -> (LatencyBreakdown, EnergyBreakdown) {
        assert!(parallel > 0.0, "parallelism degree must be positive");
        let writes = stats.total_writes() as f64;
        let ands = stats.and_ops as f64;
        let counts = stats.bitcount_ops as f64;
        let readouts = stats.result_readouts as f64;

        let latency = LatencyBreakdown {
            write_s: writes * self.write_latency_s / parallel,
            and_s: ands * self.and_latency_s / parallel,
            // One bit counter per mat (Fig. 4): same parallelism.
            bitcount_s: counts * self.bitcount_latency_s / parallel,
            readout_s: readouts * self.readout_latency_s / parallel,
            controller_s: stats.edges as f64 * self.controller_overhead_s,
        };
        let energy = EnergyBreakdown {
            write_j: writes * self.write_energy_j,
            and_j: ands * self.and_energy_j,
            bitcount_j: counts * self.bitcount_energy_j,
            readout_j: readouts * self.readout_energy_j,
            leakage_j: self.leakage_w * latency.total_s(),
            controller_j: self.host_power_w * latency.controller_s,
        };
        (latency, energy)
    }

    /// The array-side busy time of `stats` on a single unit (`parallel =
    /// 1`), excluding host controller dispatch — the quantity a
    /// multi-array scheduler balances across placement domains.
    pub fn array_busy_s(&self, stats: &AccessStats) -> f64 {
        stats.total_writes() as f64 * self.write_latency_s
            + stats.and_ops as f64 * self.and_latency_s
            + stats.bitcount_ops as f64 * self.bitcount_latency_s
            + stats.result_readouts as f64 * self.readout_latency_s
    }

    /// Estimated array-side busy time of a unit of work described only by
    /// its operation counts (no cache simulation): `writes` slice WRITEs
    /// plus `pairs` AND + BitCount passes. Placement policies use this as
    /// their load metric before any array has executed anything.
    pub fn estimate_busy_s(&self, writes: u64, pairs: u64) -> f64 {
        writes as f64 * self.write_latency_s
            + pairs as f64 * (self.and_latency_s + self.bitcount_latency_s)
    }

    /// Estimated end-to-end modelled time of a run described only by its
    /// operation counts: [`estimate_busy_s`](Self::estimate_busy_s) plus
    /// serial host dispatch for `edges` kernel launches. This is the
    /// quantity a query EXPLAIN plan predicts before executing; the
    /// `tcim_model_error` calibration histograms measure how far it
    /// lands from the executed run's modelled time.
    pub fn estimate_modelled_s(&self, writes: u64, pairs: u64, edges: u64) -> f64 {
        self.estimate_busy_s(writes, pairs) + edges as f64 * self.controller_overhead_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PimEngine;

    fn model() -> SliceCostModel {
        PimEngine::new(&PimConfig::default()).unwrap().cost_model()
    }

    fn sample_stats() -> AccessStats {
        AccessStats {
            edges: 10,
            and_ops: 40,
            bitcount_ops: 40,
            row_slice_writes: 12,
            col_hits: 30,
            col_misses: 8,
            col_exchanges: 2,
            result_readouts: 3,
            blocks_skipped: 0,
        }
    }

    #[test]
    fn costs_are_positive() {
        let m = model();
        for c in [
            m.write_latency_s,
            m.and_latency_s,
            m.bitcount_latency_s,
            m.readout_latency_s,
            m.write_energy_j,
            m.and_energy_j,
            m.bitcount_energy_j,
            m.readout_energy_j,
            m.leakage_w,
            m.host_power_w,
        ] {
            assert!(c > 0.0, "{m:?}");
        }
    }

    #[test]
    fn parallelism_divides_array_time_but_not_energy() {
        let m = model();
        let stats = sample_stats();
        let (l1, e1) = m.roll_up(&stats, 1.0);
        let (l4, e4) = m.roll_up(&stats, 4.0);
        assert!((l1.write_s / l4.write_s - 4.0).abs() < 1e-9);
        assert!((l1.and_s / l4.and_s - 4.0).abs() < 1e-9);
        // Controller dispatch is serial regardless of array parallelism.
        assert_eq!(l1.controller_s, l4.controller_s);
        // Switching energy is work, not time: identical either way.
        assert_eq!(e1.write_j, e4.write_j);
        assert_eq!(e1.and_j, e4.and_j);
        // Leakage integrates over runtime, so more parallelism leaks less.
        assert!(e4.leakage_j < e1.leakage_j);
    }

    #[test]
    fn busy_time_matches_single_unit_roll_up() {
        let m = model();
        let stats = sample_stats();
        let (l, _) = m.roll_up(&stats, 1.0);
        let array_side = l.write_s + l.and_s + l.bitcount_s + l.readout_s;
        assert!((m.array_busy_s(&stats) - array_side).abs() < 1e-15);
    }

    #[test]
    fn estimate_tracks_writes_and_pairs() {
        let m = model();
        assert_eq!(m.estimate_busy_s(0, 0), 0.0);
        assert!(m.estimate_busy_s(10, 5) > m.estimate_busy_s(5, 5));
        assert!(m.estimate_busy_s(5, 10) > m.estimate_busy_s(5, 5));
    }

    #[test]
    #[should_panic(expected = "parallelism degree")]
    fn zero_parallelism_panics() {
        model().roll_up(&sample_stats(), 0.0);
    }
}
