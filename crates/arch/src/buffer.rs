//! The data buffer of Fig. 4: tracks which column slices are resident in
//! the computational array and applies a replacement policy when full.
//!
//! The paper uses LRU ("we choose the least recently used (LRU) column for
//! replacement, and more optimized replacement strategy could be
//! possible"); FIFO and Random are provided for the replacement-policy
//! ablation of DESIGN.md §5.

use std::collections::{HashMap, VecDeque};

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Replacement policy of the slice cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum ReplacementPolicy {
    /// Least-recently-used — the paper's choice.
    #[default]
    Lru,
    /// First-in-first-out.
    Fifo,
    /// Uniform random victim (deterministic per seed).
    Random,
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The slice was already resident — no array WRITE needed.
    Hit,
    /// The slice was loaded into free space — one array WRITE.
    Miss,
    /// The slice replaced a victim — one array WRITE plus an exchange.
    Exchange {
        /// The evicted slice key.
        evicted: u64,
    },
}

impl AccessOutcome {
    /// Whether this access required writing the slice into the array.
    pub fn wrote(&self) -> bool {
        !matches!(self, AccessOutcome::Hit)
    }
}

/// A fixed-capacity cache over slice keys (column id × slice index packed
/// into a `u64`), with pluggable replacement.
///
/// # Example
///
/// ```
/// use tcim_arch::{ReplacementPolicy, SliceCache, AccessOutcome};
///
/// let mut cache = SliceCache::new(2, ReplacementPolicy::Lru, 0);
/// assert_eq!(cache.access(1), AccessOutcome::Miss);
/// assert_eq!(cache.access(2), AccessOutcome::Miss);
/// assert_eq!(cache.access(1), AccessOutcome::Hit);
/// // 2 is now the least recently used and gets evicted.
/// assert_eq!(cache.access(3), AccessOutcome::Exchange { evicted: 2 });
/// ```
#[derive(Debug, Clone)]
pub struct SliceCache {
    capacity: usize,
    policy: ReplacementPolicy,
    /// Key → recency stamp (LRU) or insertion stamp (FIFO).
    resident: HashMap<u64, u64>,
    /// LRU/FIFO order queue (lazily pruned of stale entries).
    order: VecDeque<(u64, u64)>,
    /// Random-policy key list for O(1) victim sampling.
    keys: Vec<u64>,
    /// Key → index into `keys` (Random policy).
    key_pos: HashMap<u64, usize>,
    clock: u64,
    rng: ChaCha12Rng,
}

impl SliceCache {
    /// Creates a cache holding up to `capacity` slices.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — the controller always needs room
    /// for at least one column slice.
    pub fn new(capacity: usize, policy: ReplacementPolicy, seed: u64) -> Self {
        assert!(capacity > 0, "slice cache capacity must be non-zero");
        SliceCache {
            capacity,
            policy,
            resident: HashMap::new(),
            order: VecDeque::new(),
            keys: Vec::new(),
            key_pos: HashMap::new(),
            clock: 0,
            rng: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// Number of resident slices.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether the cache holds no slices.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// The configured capacity in slices.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The active replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Whether `key` is resident without touching recency state.
    pub fn contains(&self, key: u64) -> bool {
        self.resident.contains_key(&key)
    }

    /// Accesses `key`: returns [`AccessOutcome::Hit`] if resident
    /// (updating recency under LRU), otherwise loads it, evicting a victim
    /// when at capacity.
    pub fn access(&mut self, key: u64) -> AccessOutcome {
        self.clock += 1;
        if self.resident.contains_key(&key) {
            if self.policy == ReplacementPolicy::Lru {
                self.resident.insert(key, self.clock);
                self.order.push_back((key, self.clock));
            }
            return AccessOutcome::Hit;
        }

        let evicted =
            if self.resident.len() >= self.capacity { Some(self.evict()) } else { None };

        self.resident.insert(key, self.clock);
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                self.order.push_back((key, self.clock));
            }
            ReplacementPolicy::Random => {
                self.key_pos.insert(key, self.keys.len());
                self.keys.push(key);
            }
        }

        match evicted {
            Some(v) => AccessOutcome::Exchange { evicted: v },
            None => AccessOutcome::Miss,
        }
    }

    fn evict(&mut self) -> u64 {
        match self.policy {
            ReplacementPolicy::Lru => loop {
                let (key, stamp) =
                    self.order.pop_front().expect("order queue covers all resident keys");
                // Skip stale entries superseded by a later touch.
                if self.resident.get(&key) == Some(&stamp) {
                    self.resident.remove(&key);
                    return key;
                }
            },
            ReplacementPolicy::Fifo => loop {
                let (key, _) =
                    self.order.pop_front().expect("order queue covers all resident keys");
                if self.resident.remove(&key).is_some() {
                    return key;
                }
            },
            ReplacementPolicy::Random => {
                let idx = self.rng.gen_range(0..self.keys.len());
                let key = self.keys.swap_remove(idx);
                self.key_pos.remove(&key);
                if idx < self.keys.len() {
                    let moved = self.keys[idx];
                    self.key_pos.insert(moved, idx);
                }
                self.resident.remove(&key);
                key
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_is_always_a_miss() {
        let mut c = SliceCache::new(8, ReplacementPolicy::Lru, 0);
        for k in 0..8 {
            assert_eq!(c.access(k), AccessOutcome::Miss);
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = SliceCache::new(3, ReplacementPolicy::Lru, 0);
        c.access(1);
        c.access(2);
        c.access(3);
        c.access(1); // refresh 1 → LRU order is now 2, 3, 1
        assert_eq!(c.access(4), AccessOutcome::Exchange { evicted: 2 });
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = SliceCache::new(3, ReplacementPolicy::Fifo, 0);
        c.access(1);
        c.access(2);
        c.access(3);
        c.access(1); // hit, but FIFO order unchanged
        assert_eq!(c.access(4), AccessOutcome::Exchange { evicted: 1 });
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<AccessOutcome> {
            let mut c = SliceCache::new(4, ReplacementPolicy::Random, seed);
            (0..32).map(|k| c.access(k % 12)).collect()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn random_eviction_stays_at_capacity() {
        let mut c = SliceCache::new(4, ReplacementPolicy::Random, 1);
        for k in 0..100 {
            c.access(k);
            assert!(c.len() <= 4);
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn hit_does_not_evict() {
        let mut c = SliceCache::new(2, ReplacementPolicy::Lru, 0);
        c.access(1);
        c.access(2);
        for _ in 0..10 {
            assert_eq!(c.access(1), AccessOutcome::Hit);
            assert_eq!(c.access(2), AccessOutcome::Hit);
        }
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn wrote_flag() {
        assert!(!AccessOutcome::Hit.wrote());
        assert!(AccessOutcome::Miss.wrote());
        assert!(AccessOutcome::Exchange { evicted: 0 }.wrote());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        SliceCache::new(0, ReplacementPolicy::Lru, 0);
    }

    #[test]
    fn lru_stale_entries_are_skipped_correctly() {
        // Touch a key many times to build up stale queue entries, then
        // force evictions and verify consistency.
        let mut c = SliceCache::new(2, ReplacementPolicy::Lru, 0);
        c.access(1);
        for _ in 0..50 {
            c.access(1);
        }
        c.access(2);
        assert_eq!(c.access(3), AccessOutcome::Exchange { evicted: 1 });
        assert_eq!(c.access(2), AccessOutcome::Hit);
        assert!(c.contains(3));
    }
}
