//! Property-based tests of the architecture layer, centred on a
//! reference-model equivalence proof for the slice cache.

use proptest::prelude::*;
use tcim_arch::{AccessOutcome, ReplacementPolicy, SliceCache};

/// A deliberately naive LRU reference model: a Vec ordered from least to
/// most recently used.
struct ReferenceLru {
    capacity: usize,
    order: Vec<u64>,
}

impl ReferenceLru {
    fn new(capacity: usize) -> Self {
        ReferenceLru { capacity, order: Vec::new() }
    }

    fn access(&mut self, key: u64) -> AccessOutcome {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            self.order.push(key);
            return AccessOutcome::Hit;
        }
        let evicted =
            if self.order.len() >= self.capacity { Some(self.order.remove(0)) } else { None };
        self.order.push(key);
        match evicted {
            Some(v) => AccessOutcome::Exchange { evicted: v },
            None => AccessOutcome::Miss,
        }
    }
}

/// A FIFO reference model.
struct ReferenceFifo {
    capacity: usize,
    queue: Vec<u64>,
}

impl ReferenceFifo {
    fn new(capacity: usize) -> Self {
        ReferenceFifo { capacity, queue: Vec::new() }
    }

    fn access(&mut self, key: u64) -> AccessOutcome {
        if self.queue.contains(&key) {
            return AccessOutcome::Hit;
        }
        let evicted =
            if self.queue.len() >= self.capacity { Some(self.queue.remove(0)) } else { None };
        self.queue.push(key);
        match evicted {
            Some(v) => AccessOutcome::Exchange { evicted: v },
            None => AccessOutcome::Miss,
        }
    }
}

proptest! {
    /// The production LRU agrees with the naive reference on every access
    /// of every workload, including the evicted victim.
    #[test]
    fn lru_matches_reference_model(
        capacity in 1usize..12,
        accesses in proptest::collection::vec(0u64..24, 0..400),
    ) {
        let mut cache = SliceCache::new(capacity, ReplacementPolicy::Lru, 0);
        let mut reference = ReferenceLru::new(capacity);
        for (step, &key) in accesses.iter().enumerate() {
            let got = cache.access(key);
            let want = reference.access(key);
            prop_assert_eq!(got, want, "step {} key {}", step, key);
        }
    }

    /// Same for FIFO.
    #[test]
    fn fifo_matches_reference_model(
        capacity in 1usize..12,
        accesses in proptest::collection::vec(0u64..24, 0..400),
    ) {
        let mut cache = SliceCache::new(capacity, ReplacementPolicy::Fifo, 0);
        let mut reference = ReferenceFifo::new(capacity);
        for (step, &key) in accesses.iter().enumerate() {
            let got = cache.access(key);
            let want = reference.access(key);
            prop_assert_eq!(got, want, "step {} key {}", step, key);
        }
    }

    /// Universal cache laws, checked for every policy: size never exceeds
    /// capacity, a hit never evicts, the first touch of a key is never a
    /// hit, and an access to a resident key is always a hit.
    #[test]
    fn cache_laws_hold_for_every_policy(
        capacity in 1usize..16,
        accesses in proptest::collection::vec(0u64..40, 0..300),
        policy_idx in 0usize..3,
    ) {
        let policy = [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ][policy_idx];
        let mut cache = SliceCache::new(capacity, policy, 7);
        let mut touched = std::collections::HashSet::new();
        for &key in &accesses {
            let resident_before = cache.contains(key);
            let outcome = cache.access(key);
            prop_assert!(cache.len() <= capacity);
            match outcome {
                AccessOutcome::Hit => prop_assert!(resident_before),
                AccessOutcome::Miss | AccessOutcome::Exchange { .. } => {
                    prop_assert!(!resident_before);
                }
            }
            if touched.insert(key) {
                prop_assert_ne!(outcome, AccessOutcome::Hit, "first touch of {} hit", key);
            }
            prop_assert!(cache.contains(key), "accessed key must be resident");
            if let AccessOutcome::Exchange { evicted } = outcome {
                prop_assert!(!cache.contains(evicted), "victim {} still resident", evicted);
            }
        }
    }
}
