//! Kernel-level simulator events and their bounded trace.
//!
//! These events describe the innermost TCIM loop — row-slice writes
//! into the reserved region, column-slice cache hits/misses/exchanges,
//! and AND + BitCount completions — and are recorded into an
//! [`EventTrace`] (a [`BoundedRing`] of [`KernelEvent`]s) when a
//! positive trace capacity is configured.

use crate::ring::BoundedRing;

/// One simulator event at the kernel boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelEvent {
    /// A row slice was written into the reserved row region.
    RowSliceWrite {
        /// Row (vertex) id.
        row: u32,
        /// Slice index within the row.
        slice: u32,
    },
    /// A column-slice access hit in the array.
    ColHit {
        /// Column (vertex) id.
        col: u32,
        /// Slice index within the column.
        slice: u32,
    },
    /// A column slice was loaded into free space.
    ColMiss {
        /// Column (vertex) id.
        col: u32,
        /// Slice index within the column.
        slice: u32,
    },
    /// A column slice replaced a victim (data exchange).
    ColExchange {
        /// Column (vertex) id.
        col: u32,
        /// Slice index within the column.
        slice: u32,
    },
    /// An AND + BitCount pair completed with the given partial count.
    AndBitcount {
        /// Edge tail (row) vertex.
        row: u32,
        /// Edge head (column) vertex.
        col: u32,
        /// Matching slice index.
        slice: u32,
        /// BitCount contribution of this pair.
        count: u32,
    },
}

/// A bounded ring of [`KernelEvent`]s (capacity 0 disables recording).
pub type EventTrace = BoundedRing<KernelEvent>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = EventTrace::new(0);
        t.push(KernelEvent::ColHit { col: 1, slice: 2 });
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut t = EventTrace::new(2);
        t.push(KernelEvent::ColHit { col: 0, slice: 0 });
        t.push(KernelEvent::ColHit { col: 1, slice: 0 });
        t.push(KernelEvent::ColHit { col: 2, slice: 0 });
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let first = *t.iter().next().unwrap();
        assert_eq!(first, KernelEvent::ColHit { col: 1, slice: 0 });
    }
}
