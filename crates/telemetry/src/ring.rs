//! A fixed-capacity drop-oldest ring buffer.
//!
//! This generalizes the bounded event trace that used to live inside
//! `tcim-arch`: the same semantics (capacity 0 disables recording, the
//! oldest entry is evicted once full, drops are counted) now back both
//! the kernel-event trace ([`crate::EventTrace`]) and the span flight
//! recorder ([`mod@crate::span`]).

use std::collections::VecDeque;

/// A fixed-capacity ring buffer; old entries are dropped once full,
/// with the number of drops reported.
///
/// # Examples
///
/// ```
/// use tcim_telemetry::BoundedRing;
///
/// let mut ring = BoundedRing::new(2);
/// ring.push('a');
/// ring.push('b');
/// ring.push('c'); // evicts 'a'
/// assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec!['b', 'c']);
/// assert_eq!(ring.dropped(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BoundedRing<T> {
    capacity: usize,
    entries: VecDeque<T>,
    dropped: u64,
}

impl<T> BoundedRing<T> {
    /// Creates a ring holding up to `capacity` entries (0 disables
    /// recording entirely).
    pub fn new(capacity: usize) -> Self {
        BoundedRing {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Whether recording is enabled (capacity above zero).
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records `entry`, evicting the oldest if at capacity.
    pub fn push(&mut self, entry: T) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
    }

    /// Retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries dropped due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns every retained entry, oldest first (the
    /// drop counter is preserved).
    pub fn drain(&mut self) -> Vec<T> {
        self.entries.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ring_records_nothing() {
        let mut r = BoundedRing::new(0);
        r.push(7u32);
        assert!(r.is_empty());
        assert!(!r.is_enabled());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut r = BoundedRing::new(2);
        r.push(0u32);
        r.push(1);
        r.push(2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        assert_eq!(*r.iter().next().unwrap(), 1);
    }

    #[test]
    fn drain_empties_but_keeps_drop_count() {
        let mut r = BoundedRing::new(1);
        r.push('x');
        r.push('y');
        assert_eq!(r.drain(), vec!['y']);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.capacity(), 1);
    }
}
