//! Metric primitives, a named registry, and a Prometheus-style text
//! exporter.
//!
//! Instruments are registered once by name on a [`MetricsRegistry`]
//! and recorded through cheap `Arc`-backed handles ([`Counter`],
//! [`Gauge`], [`Histogram`]); every update is a single atomic
//! operation, so handles can be shared freely across worker threads.
//! A [`MetricsSnapshot`] is a point-in-time read of every registered
//! instrument, and [`render_prometheus`] serializes a snapshot in the
//! Prometheus text exposition format.
//!
//! Registries are plain values rather than process globals: each
//! pipeline or service owns its own, so parallel tests and co-resident
//! services never contaminate each other's counts.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed gauge that can move in both directions (queue depths,
/// in-flight request counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (possibly negative) to the gauge.
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the gauge.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Increments the gauge and returns a guard that decrements it on
    /// drop, so early returns, `?` propagation and panics can never
    /// leak the increment. This is the required idiom for occupancy
    /// gauges (in-flight requests, queue depths): pair every entry
    /// with a held guard instead of bracketing the exit manually.
    pub fn track(&self) -> GaugeGuard {
        self.add(1);
        GaugeGuard { gauge: self.clone() }
    }
}

/// An RAII decrement for a [`Gauge`]: created by [`Gauge::track`],
/// subtracts one from the gauge when dropped.
#[derive(Debug)]
pub struct GaugeGuard {
    gauge: Gauge,
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.gauge.sub(1);
    }
}

#[derive(Debug)]
struct HistogramInner {
    // Bucket `i` counts observations whose value has bit length `i`
    // (i.e. values in `[2^(i-1), 2^i)`; 0 and 1 land in buckets 0/1).
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A lock-free histogram over `u64` values with power-of-two buckets.
///
/// Quantiles are therefore approximate (resolved to the enclosing
/// power-of-two bucket, clamped to the observed min/max); exact
/// percentiles for offline artifacts like `BENCH_*.json` should sort
/// raw samples instead.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let inner = &*self.inner;
        let bucket = (u64::BITS - value.leading_zeros()).min(BUCKETS as u32 - 1) as usize;
        inner.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Point-in-time summary of everything observed so far.
    pub fn summary(&self) -> HistogramSummary {
        let inner = &*self.inner;
        let count = inner.count.load(Ordering::Relaxed);
        let sum = inner.sum.load(Ordering::Relaxed);
        let min = if count == 0 { 0 } else { inner.min.load(Ordering::Relaxed) };
        let max = inner.max.load(Ordering::Relaxed);
        let buckets: Vec<u64> =
            inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = (q * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // Upper bound of bucket i is 2^i - 1 (bit length i).
                    let upper = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                    return upper.clamp(min, max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum,
            min,
            max,
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Approximate 50th-percentile value.
    pub p50: u64,
    /// Approximate 90th-percentile value.
    pub p90: u64,
    /// Approximate 99th-percentile value.
    pub p99: u64,
}

/// The value of one instrument in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A monotonic counter value.
    Counter(u64),
    /// A signed gauge value.
    Gauge(i64),
    /// A histogram summary.
    Histogram(HistogramSummary),
    /// One labelled series of a counter family: the same metric name
    /// may appear in many samples, each with a distinct label set
    /// (rendered as `name{labels} value`).
    LabelledCounter {
        /// Pre-rendered Prometheus label pairs, e.g.
        /// `backend="tcim-serial",encoding="dense"`.
        labels: String,
        /// The series' counter value.
        value: u64,
    },
    /// One labelled series of a histogram family, rendered as summary
    /// quantiles with the label pairs merged into every line.
    LabelledHistogram {
        /// Pre-rendered Prometheus label pairs (as for
        /// [`SampleValue::LabelledCounter`]).
        labels: String,
        /// The series' point-in-time summary.
        summary: HistogramSummary,
    },
}

/// One named instrument read out of a registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Instrument name (Prometheus-style, e.g.
    /// `tcim_kernel_invocations_total`).
    pub name: String,
    /// One-line description.
    pub help: String,
    /// The instrument's value at snapshot time.
    pub value: SampleValue,
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Registered {
    name: String,
    help: String,
    instrument: Instrument,
}

/// A named registry of metric instruments.
///
/// Registration is idempotent: asking for an already-registered name
/// (with the same instrument kind) returns a handle to the existing
/// instrument. Cloning the registry shares the underlying instruments.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Vec<Registered>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("metrics registry lock");
        f.debug_struct("MetricsRegistry").field("instruments", &inner.len()).finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) a counter named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        if let Some(existing) = inner.iter().find(|r| r.name == name) {
            match &existing.instrument {
                Instrument::Counter(c) => return c.clone(),
                _ => panic!("metric {name:?} is already registered as a non-counter"),
            }
        }
        let counter = Counter::default();
        inner.push(Registered {
            name: name.to_string(),
            help: help.to_string(),
            instrument: Instrument::Counter(counter.clone()),
        });
        counter
    }

    /// Registers (or retrieves) a gauge named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        if let Some(existing) = inner.iter().find(|r| r.name == name) {
            match &existing.instrument {
                Instrument::Gauge(g) => return g.clone(),
                _ => panic!("metric {name:?} is already registered as a non-gauge"),
            }
        }
        let gauge = Gauge::default();
        inner.push(Registered {
            name: name.to_string(),
            help: help.to_string(),
            instrument: Instrument::Gauge(gauge.clone()),
        });
        gauge
    }

    /// Registers (or retrieves) a histogram named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        if let Some(existing) = inner.iter().find(|r| r.name == name) {
            match &existing.instrument {
                Instrument::Histogram(h) => return h.clone(),
                _ => panic!("metric {name:?} is already registered as a non-histogram"),
            }
        }
        let histogram = Histogram::default();
        inner.push(Registered {
            name: name.to_string(),
            help: help.to_string(),
            instrument: Instrument::Histogram(histogram.clone()),
        });
        histogram
    }

    /// Reads every registered instrument, in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry lock");
        let samples = inner
            .iter()
            .map(|r| MetricSample {
                name: r.name.clone(),
                help: r.help.clone(),
                value: match &r.instrument {
                    Instrument::Counter(c) => SampleValue::Counter(c.get()),
                    Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                    Instrument::Histogram(h) => SampleValue::Histogram(h.summary()),
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }
}

/// A point-in-time read of a [`MetricsRegistry`], optionally extended
/// with externally computed samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Samples in registration (then push) order.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.samples.iter().find_map(|s| match &s.value {
            SampleValue::Counter(v) if s.name == name => Some(*v),
            _ => None,
        })
    }

    /// Value of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.samples.iter().find_map(|s| match &s.value {
            SampleValue::Gauge(v) if s.name == name => Some(*v),
            _ => None,
        })
    }

    /// Summary of the histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.samples.iter().find_map(|s| match &s.value {
            SampleValue::Histogram(v) if s.name == name => Some(v),
            _ => None,
        })
    }

    /// Appends an externally computed counter sample (for values owned
    /// by other subsystems, e.g. a cache's own hit counters).
    pub fn push_counter(&mut self, name: &str, help: &str, value: u64) {
        self.samples.push(MetricSample {
            name: name.to_string(),
            help: help.to_string(),
            value: SampleValue::Counter(value),
        });
    }

    /// Appends an externally computed gauge sample.
    pub fn push_gauge(&mut self, name: &str, help: &str, value: i64) {
        self.samples.push(MetricSample {
            name: name.to_string(),
            help: help.to_string(),
            value: SampleValue::Gauge(value),
        });
    }

    /// Appends one labelled series of a counter family. `labels` is
    /// the pre-rendered Prometheus pair list (without braces), e.g.
    /// `backend="tcim-serial",encoding="dense"`; the same `name` may
    /// be pushed repeatedly with different label sets.
    pub fn push_labelled_counter(&mut self, name: &str, help: &str, labels: &str, value: u64) {
        self.samples.push(MetricSample {
            name: name.to_string(),
            help: help.to_string(),
            value: SampleValue::LabelledCounter { labels: labels.to_string(), value },
        });
    }

    /// Value of the labelled counter series `name{labels}`, if present.
    pub fn labelled_counter(&self, name: &str, labels: &str) -> Option<u64> {
        self.samples.iter().find_map(|s| match &s.value {
            SampleValue::LabelledCounter { labels: l, value }
                if s.name == name && l == labels =>
            {
                Some(*value)
            }
            _ => None,
        })
    }

    /// Appends one labelled series of a histogram family, from an
    /// externally held [`Histogram`]'s summary.
    pub fn push_labelled_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &str,
        summary: HistogramSummary,
    ) {
        self.samples.push(MetricSample {
            name: name.to_string(),
            help: help.to_string(),
            value: SampleValue::LabelledHistogram { labels: labels.to_string(), summary },
        });
    }

    /// Summary of the labelled histogram series `name{labels}`, if
    /// present.
    pub fn labelled_histogram(&self, name: &str, labels: &str) -> Option<&HistogramSummary> {
        self.samples.iter().find_map(|s| match &s.value {
            SampleValue::LabelledHistogram { labels: l, summary }
                if s.name == name && l == labels =>
            {
                Some(summary)
            }
            _ => None,
        })
    }
}

/// Serializes a snapshot in the Prometheus text exposition format
/// (histograms are rendered as `summary` quantiles plus `_sum` and
/// `_count` series).
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    // A labelled counter family appears as one sample per label set;
    // its HELP/TYPE header must be emitted once per family, not per
    // series.
    let mut headed: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for sample in &snapshot.samples {
        if headed.insert(&sample.name) {
            out.push_str(&format!("# HELP {} {}\n", sample.name, sample.help));
            let kind = match &sample.value {
                SampleValue::Counter(_) | SampleValue::LabelledCounter { .. } => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) | SampleValue::LabelledHistogram { .. } => "summary",
            };
            out.push_str(&format!("# TYPE {} {kind}\n", sample.name));
        }
        match &sample.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!("{} {v}\n", sample.name));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!("{} {v}\n", sample.name));
            }
            SampleValue::LabelledCounter { labels, value } => {
                out.push_str(&format!("{}{{{labels}}} {value}\n", sample.name));
            }
            SampleValue::Histogram(h) => {
                out.push_str(&format!("{}{{quantile=\"0.5\"}} {}\n", sample.name, h.p50));
                out.push_str(&format!("{}{{quantile=\"0.9\"}} {}\n", sample.name, h.p90));
                out.push_str(&format!("{}{{quantile=\"0.99\"}} {}\n", sample.name, h.p99));
                out.push_str(&format!("{}_sum {}\n", sample.name, h.sum));
                out.push_str(&format!("{}_count {}\n", sample.name, h.count));
            }
            SampleValue::LabelledHistogram { labels, summary: h } => {
                for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                    out.push_str(&format!(
                        "{}{{{labels},quantile=\"{q}\"}} {v}\n",
                        sample.name
                    ));
                }
                out.push_str(&format!("{}_sum{{{labels}}} {}\n", sample.name, h.sum));
                out.push_str(&format!("{}_count{{{labels}}} {}\n", sample.name, h.count));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registration_is_idempotent() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("tcim_executions_total", "executions");
        let b = registry.counter("tcim_executions_total", "executions");
        a.add(2);
        b.incr();
        assert_eq!(registry.snapshot().counter("tcim_executions_total"), Some(3));
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.gauge("tcim_depth", "queue depth");
        registry.counter("tcim_depth", "queue depth");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("tcim_inflight", "in-flight queries");
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-1);
        assert_eq!(registry.snapshot().gauge("tcim_inflight"), Some(-1));
    }

    #[test]
    fn gauge_guard_releases_on_drop_and_panic() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("tcim_inflight_guarded", "in-flight queries");
        {
            let _a = g.track();
            let _b = g.track();
            assert_eq!(g.get(), 2);
        }
        assert_eq!(g.get(), 0);
        let panicking = g.clone();
        let result = std::panic::catch_unwind(move || {
            let _guard = panicking.track();
            panic!("query path exploded");
        });
        assert!(result.is_err());
        assert_eq!(g.get(), 0, "a panic must not leak the gauge increment");
    }

    #[test]
    fn histogram_summary_tracks_quantile_bounds() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // p50 falls in the bucket containing 3 (bit length 2 → upper 3).
        assert!(s.p50 >= 3 && s.p50 <= 100, "p50 = {}", s.p50);
        // p99 resolves to the top bucket, clamped to the observed max.
        assert_eq!(s.p99, 1000);
        assert!((s.mean - 221.2).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let s = Histogram::default().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.p99, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn prometheus_render_covers_all_kinds() {
        let registry = MetricsRegistry::new();
        registry.counter("tcim_a_total", "a").add(7);
        registry.gauge("tcim_b", "b").set(-2);
        registry.histogram("tcim_c_nanoseconds", "c").observe(5);
        let mut snapshot = registry.snapshot();
        snapshot.push_counter("tcim_external_total", "external", 9);
        let text = render_prometheus(&snapshot);
        assert!(text.contains("# TYPE tcim_a_total counter"));
        assert!(text.contains("tcim_a_total 7"));
        assert!(text.contains("tcim_b -2"));
        assert!(text.contains("# TYPE tcim_c_nanoseconds summary"));
        assert!(text.contains("tcim_c_nanoseconds_count 1"));
        assert!(text.contains("tcim_c_nanoseconds{quantile=\"0.99\"}"));
        assert!(text.contains("tcim_external_total 9"));
    }

    #[test]
    fn labelled_counter_family_renders_one_header_per_name() {
        let mut snapshot = MetricsSnapshot::default();
        snapshot.push_labelled_counter(
            "tcim_kernels_total",
            "kernels by backend",
            "backend=\"tcim-serial\",encoding=\"dense\"",
            4,
        );
        snapshot.push_labelled_counter(
            "tcim_kernels_total",
            "kernels by backend",
            "backend=\"cpu-merge\",encoding=\"sparse\"",
            2,
        );
        assert_eq!(
            snapshot.labelled_counter(
                "tcim_kernels_total",
                "backend=\"tcim-serial\",encoding=\"dense\""
            ),
            Some(4)
        );
        assert_eq!(snapshot.labelled_counter("tcim_kernels_total", "nope"), None);
        let text = render_prometheus(&snapshot);
        assert_eq!(text.matches("# HELP tcim_kernels_total").count(), 1);
        assert_eq!(text.matches("# TYPE tcim_kernels_total counter").count(), 1);
        assert!(
            text.contains("tcim_kernels_total{backend=\"tcim-serial\",encoding=\"dense\"} 4")
        );
        assert!(
            text.contains("tcim_kernels_total{backend=\"cpu-merge\",encoding=\"sparse\"} 2")
        );
    }

    #[test]
    fn labelled_histogram_series_render_with_merged_labels() {
        let h = Histogram::default();
        for v in [10u64, 20, 30] {
            h.observe(v);
        }
        let mut snapshot = MetricsSnapshot::default();
        snapshot.push_labelled_histogram(
            "tcim_model_error_permille",
            "cost-model error",
            "backend=\"tcim-serial\",encoding=\"dense\"",
            h.summary(),
        );
        let found = snapshot
            .labelled_histogram(
                "tcim_model_error_permille",
                "backend=\"tcim-serial\",encoding=\"dense\"",
            )
            .unwrap();
        assert_eq!(found.count, 3);
        assert!(snapshot.labelled_histogram("tcim_model_error_permille", "nope").is_none());
        let text = render_prometheus(&snapshot);
        assert_eq!(text.matches("# TYPE tcim_model_error_permille summary").count(), 1);
        assert!(text.contains(
            "tcim_model_error_permille{backend=\"tcim-serial\",encoding=\"dense\",\
             quantile=\"0.5\"}"
        ));
        assert!(text.contains(
            "tcim_model_error_permille_count{backend=\"tcim-serial\",encoding=\"dense\"} 3"
        ));
    }
}
