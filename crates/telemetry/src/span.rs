//! Zero-cost-when-disabled hierarchical tracing spans.
//!
//! The facade has two halves:
//!
//! * [`span`] — an RAII guard that times a named phase. When no
//!   profiler is installed on the current thread it does a single
//!   thread-local check and nothing else, so instrumented code pays
//!   essentially nothing in the common (disabled) case.
//! * [`profile`] — installs a per-thread collector for the duration of
//!   one closure (one request, one batch, one bench iteration) and
//!   returns every span recorded inside it as a [`ProfileReport`].
//!   Profiling is scoped per call rather than toggled globally, so
//!   concurrent requests — and Rust's parallel test threads — never
//!   observe each other's spans.
//!
//! A finished profile can also be mirrored into a global bounded
//! flight-recorder ring ([`set_flight_recorder`] / [`recent_spans`])
//! for post-hoc inspection of the last N spans process-wide.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::ring::BoundedRing;

/// One timed span recorded under a [`profile`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static phase name (e.g. `"slice"`, `"compose"`).
    pub name: &'static str,
    /// Nesting depth below the profile root (root itself is depth 0).
    pub depth: u16,
    /// Start offset from the beginning of the enclosing profile.
    pub start: Duration,
    /// Wall-clock duration of the span.
    pub elapsed: Duration,
    /// Process-unique id of the enclosing [`profile`] call, so spans
    /// from interleaved requests stay attributable after they are
    /// mixed in the flight recorder or a merged trace export.
    pub trace_id: u64,
}

struct Collector {
    root: &'static str,
    origin: Instant,
    depth: u16,
    trace_id: u64,
    records: Vec<SpanRecord>,
}

/// Monotonic allocator for [`SpanRecord::trace_id`]; ids start at 1 so
/// 0 never names a real trace.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

static FLIGHT: Mutex<Option<BoundedRing<SpanRecord>>> = Mutex::new(None);

/// Everything recorded by one [`profile`] call.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Name passed to [`profile`].
    pub root: &'static str,
    /// Process-unique id allocated for this profile; every span in
    /// [`ProfileReport::spans`] carries the same value.
    pub trace_id: u64,
    /// Total wall-clock time of the profiled closure.
    pub total: Duration,
    /// Spans recorded inside the closure, in completion order.
    pub spans: Vec<SpanRecord>,
}

/// Time attributed to one named phase of a [`PhaseBreakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTime {
    /// Phase name.
    pub name: &'static str,
    /// Summed wall-clock time across all spans with this name.
    pub total: Duration,
    /// Number of spans aggregated.
    pub count: u64,
}

/// A flat per-phase time breakdown derived from a [`ProfileReport`]:
/// depth-1 spans aggregated by name, in first-appearance order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Total wall-clock time of the profiled region.
    pub total: Duration,
    /// Top-level phases in first-appearance order.
    pub phases: Vec<PhaseTime>,
}

impl PhaseBreakdown {
    /// Summed time of all top-level phases (untracked time is
    /// `total - phase_sum()`).
    pub fn phase_sum(&self) -> Duration {
        self.phases.iter().map(|p| p.total).sum()
    }
}

impl ProfileReport {
    /// Aggregates the report's depth-1 spans into a flat per-phase
    /// breakdown.
    pub fn breakdown(&self) -> PhaseBreakdown {
        let mut phases: Vec<PhaseTime> = Vec::new();
        for record in self.spans.iter().filter(|s| s.depth == 1) {
            match phases.iter_mut().find(|p| p.name == record.name) {
                Some(phase) => {
                    phase.total += record.elapsed;
                    phase.count += 1;
                }
                None => phases.push(PhaseTime {
                    name: record.name,
                    total: record.elapsed,
                    count: 1,
                }),
            }
        }
        PhaseBreakdown { total: self.total, phases }
    }
}

/// RAII guard produced by [`span`]; records the span on drop.
#[must_use = "a span is timed from creation until the guard drops"]
#[derive(Debug)]
pub struct SpanGuard {
    // `None` when no profiler is installed on this thread.
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    depth: u16,
    start_offset: Duration,
    started: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed = active.started.elapsed();
        COLLECTOR.with(|slot| {
            if let Some(collector) = slot.borrow_mut().as_mut() {
                collector.records.push(SpanRecord {
                    name: active.name,
                    depth: active.depth,
                    start: active.start_offset,
                    elapsed,
                    trace_id: collector.trace_id,
                });
                collector.depth = collector.depth.saturating_sub(1);
            }
        });
    }
}

/// Opens a named span on the current thread. A no-op unless a
/// [`profile`] is active on this thread.
pub fn span(name: &'static str) -> SpanGuard {
    let active = COLLECTOR.with(|slot| {
        slot.borrow_mut().as_mut().map(|collector| {
            collector.depth += 1;
            ActiveSpan {
                name,
                depth: collector.depth,
                start_offset: collector.origin.elapsed(),
                started: Instant::now(),
            }
        })
    });
    SpanGuard { active }
}

// Uninstalls the thread-local collector even if the profiled closure
// panics, so a poisoned request can't leak spans into the next one.
struct Uninstall;

impl Drop for Uninstall {
    fn drop(&mut self) {
        COLLECTOR.with(|slot| slot.borrow_mut().take());
    }
}

/// Runs `f` with span collection enabled on the current thread and
/// returns its result together with the recorded [`ProfileReport`].
///
/// Returns `None` for the report when a profile is already active on
/// this thread (the inner call's spans then attach to the outer
/// profile instead of starting a new one).
pub fn profile<R>(root: &'static str, f: impl FnOnce() -> R) -> (R, Option<ProfileReport>) {
    let installed = COLLECTOR.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_some() {
            return false;
        }
        *slot = Some(Collector {
            root,
            origin: Instant::now(),
            depth: 0,
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            records: Vec::new(),
        });
        true
    });
    if !installed {
        return (f(), None);
    }
    let guard = Uninstall;
    let result = f();
    let collector = COLLECTOR.with(|slot| slot.borrow_mut().take());
    std::mem::forget(guard);
    let report = collector.map(|collector| {
        let total = collector.origin.elapsed();
        let mut spans = collector.records;
        spans.push(SpanRecord {
            name: collector.root,
            depth: 0,
            start: Duration::ZERO,
            elapsed: total,
            trace_id: collector.trace_id,
        });
        let report =
            ProfileReport { root: collector.root, trace_id: collector.trace_id, total, spans };
        record_flight(&report);
        report
    });
    (result, report)
}

/// Sizes the global flight-recorder ring that mirrors every completed
/// [`profile`]'s spans (capacity 0 disables it and clears any retained
/// spans).
pub fn set_flight_recorder(capacity: usize) {
    let mut flight = FLIGHT.lock().expect("flight recorder lock");
    *flight = if capacity == 0 { None } else { Some(BoundedRing::new(capacity)) };
}

/// The most recent spans retained by the flight recorder, oldest
/// first (empty when the recorder is disabled).
pub fn recent_spans() -> Vec<SpanRecord> {
    let flight = FLIGHT.lock().expect("flight recorder lock");
    flight.as_ref().map(|ring| ring.iter().copied().collect()).unwrap_or_default()
}

/// Health counters of the global flight recorder, for export as
/// metrics (`tcim_spans_dropped_total`, capacity/occupancy gauges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlightRecorderStats {
    /// Configured ring capacity (0 when the recorder is disabled).
    pub capacity: usize,
    /// Spans currently retained.
    pub retained: usize,
    /// Spans evicted since the recorder was last (re)sized — silent
    /// span loss made visible.
    pub dropped: u64,
}

/// Reads the flight recorder's health counters (all zero when the
/// recorder is disabled).
pub fn flight_recorder_stats() -> FlightRecorderStats {
    let flight = FLIGHT.lock().expect("flight recorder lock");
    flight
        .as_ref()
        .map(|ring| FlightRecorderStats {
            capacity: ring.capacity(),
            retained: ring.len(),
            dropped: ring.dropped(),
        })
        .unwrap_or_default()
}

fn record_flight(report: &ProfileReport) {
    let mut flight = FLIGHT.lock().expect("flight recorder lock");
    if let Some(ring) = flight.as_mut() {
        for span in &report.spans {
            ring.push(*span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_without_profile_is_a_no_op() {
        let guard = span("orphan");
        drop(guard);
        // Nothing to assert beyond "did not panic / did not record":
        let (_, report) = profile("empty", || ());
        assert!(report.expect("outer profile").spans.len() == 1);
    }

    #[test]
    fn profile_collects_nested_spans() {
        let ((), report) = profile("query", || {
            let _execute = span("execute");
            {
                let _shard = span("shard");
                std::hint::black_box(0u64);
            }
            let _compose = span("compose");
        });
        let report = report.expect("top-level profile");
        assert_eq!(report.root, "query");
        let names: Vec<_> = report.spans.iter().map(|s| (s.name, s.depth)).collect();
        assert!(names.contains(&("shard", 2)));
        assert!(names.contains(&("execute", 1)));
        assert!(names.contains(&("compose", 2)));
        assert!(names.contains(&("query", 0)));
    }

    #[test]
    fn sibling_spans_sit_at_equal_depth() {
        let ((), report) = profile("round", || {
            drop(span("delta"));
            drop(span("fold"));
        });
        let report = report.expect("top-level profile");
        let depths: Vec<_> =
            report.spans.iter().filter(|s| s.depth > 0).map(|s| s.depth).collect();
        assert_eq!(depths, vec![1, 1]);
    }

    #[test]
    fn breakdown_aggregates_depth_one_by_name() {
        let ((), report) = profile("loop", || {
            for _ in 0..3 {
                drop(span("step"));
            }
            drop(span("finish"));
        });
        let breakdown = report.expect("top-level profile").breakdown();
        assert_eq!(breakdown.phases.len(), 2);
        assert_eq!(breakdown.phases[0].name, "step");
        assert_eq!(breakdown.phases[0].count, 3);
        assert_eq!(breakdown.phases[1].name, "finish");
        assert!(breakdown.phase_sum() <= breakdown.total);
    }

    #[test]
    fn nested_profile_returns_no_report() {
        let ((), outer) = profile("outer", || {
            let ((), inner) = profile("inner", || drop(span("work")));
            assert!(inner.is_none());
        });
        let outer = outer.expect("outer profile");
        // The inner profile's spans attach to the outer collector.
        assert!(outer.spans.iter().any(|s| s.name == "work"));
    }

    #[test]
    fn trace_ids_are_unique_per_profile_and_shared_by_spans() {
        let ((), first) = profile("first", || drop(span("work")));
        let ((), second) = profile("second", || drop(span("work")));
        let first = first.expect("top-level profile");
        let second = second.expect("top-level profile");
        assert_ne!(first.trace_id, 0);
        assert_ne!(first.trace_id, second.trace_id);
        for report in [&first, &second] {
            assert!(report.spans.iter().all(|s| s.trace_id == report.trace_id));
        }
    }

    #[test]
    fn panic_inside_profile_uninstalls_collector() {
        let caught = std::panic::catch_unwind(|| {
            profile("doomed", || panic!("boom"));
        });
        assert!(caught.is_err());
        let ((), report) = profile("after", || ());
        assert!(report.is_some(), "collector must be free after a panic");
    }
}
