//! Unified observability for the TCIM reproduction: structured
//! tracing spans, a bounded ring recorder, and a metrics registry with
//! a Prometheus-style text exporter.
//!
//! The paper's claim is a *performance* claim — bitwise AND + BitCount
//! kernels in the MRAM array replace data movement — so the
//! reproduction needs to see where modelled and host time actually go.
//! This crate is the substrate every other `tcim-*` crate reports
//! into; it depends on nothing but `std`, so it sits below the whole
//! stack:
//!
//! * [`ring`] — [`BoundedRing`], a fixed-capacity drop-oldest ring
//!   buffer (the bounded-ring semantics formerly private to
//!   `tcim-arch`'s event trace, now shared by the kernel-event trace
//!   and the span recorder).
//! * [`trace`] — [`KernelEvent`] and [`EventTrace`]: the per-kernel
//!   simulator event stream (row-slice writes, column hits/misses,
//!   AND + BitCount completions).
//! * [`mod@span`] — the zero-cost-when-disabled tracing facade:
//!   [`span()`](span::span) guards record hierarchical phase timings
//!   (`prepare → slice`, `query → execute → shard → compose`,
//!   `update → delta → fold`) into a per-request profiler
//!   ([`span::profile`]) and an optional global flight-recorder ring.
//! * [`metrics`] — [`Counter`]/[`Gauge`]/[`Histogram`] primitives, a
//!   named [`MetricsRegistry`], point-in-time [`MetricsSnapshot`]s
//!   (including labelled counter families) and [`render_prometheus`]
//!   for scrape-style export.
//! * [`json`] — the hand-rolled JSON value/writer/parser shared by the
//!   trace exporter here and the `tcim-bench` perf artifacts.
//! * [`chrome_trace`] — renders [`SpanRecord`]s/[`ProfileReport`]s as
//!   chrome://tracing "Trace Event Format" JSON, one track per
//!   per-query trace id.
//!
//! # Example
//!
//! ```
//! use tcim_telemetry::{profile, span, MetricsRegistry};
//!
//! let registry = MetricsRegistry::new();
//! let kernels = registry.counter("tcim_kernel_invocations_total", "kernel dispatches");
//!
//! let (answer, report) = profile("query", || {
//!     let _guard = span("execute");
//!     kernels.add(5);
//!     42
//! });
//! assert_eq!(answer, 42);
//! let breakdown = report.expect("profiling is on for this thread").breakdown();
//! assert_eq!(breakdown.phases[0].name, "execute");
//! assert_eq!(registry.snapshot().counter("tcim_kernel_invocations_total"), Some(5));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chrome_trace;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod span;
pub mod trace;

pub use json::Json;
pub use metrics::{
    render_prometheus, Counter, Gauge, GaugeGuard, Histogram, HistogramSummary, MetricSample,
    MetricsRegistry, MetricsSnapshot, SampleValue,
};
pub use ring::BoundedRing;
pub use span::{
    flight_recorder_stats, profile, recent_spans, set_flight_recorder, span,
    FlightRecorderStats, PhaseBreakdown, PhaseTime, ProfileReport, SpanGuard, SpanRecord,
};
pub use trace::{EventTrace, KernelEvent};
