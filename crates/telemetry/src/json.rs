//! A minimal hand-rolled JSON layer: a value type, a pretty writer,
//! and a recursive-descent parser.
//!
//! The build environment is offline (no serde), so the subset needed
//! by the observability surfaces — objects, arrays, strings, numbers,
//! booleans, null — is implemented directly. It started life inside
//! `tcim-bench` for the `BENCH_*.json` perf artifacts and moved here
//! once the chrome-trace exporter ([`crate::chrome_trace`]) needed the
//! same writer below the bench layer; `tcim-bench` re-exports it and
//! keeps only the bench-schema validator.
//!
//! Numbers parse as `f64`, which is exact for every counter this stack
//! emits (all below 2^53).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (keys sorted for deterministic output).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) if items.is_empty() => out.push_str("[]"),
            Json::Array(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(map) if map.is_empty() => out.push_str("{}"),
            Json::Object(map) => {
                out.push_str("{\n");
                for (i, (key, value)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Builds a [`Json::Object`] from key/value pairs.
pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// A whole-number [`Json::Number`].
pub fn num_u64(n: u64) -> Json {
    Json::Number(n as f64)
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset on malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("peeked byte exists");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = object([
            ("bench", num_u64(6)),
            ("name", Json::String("a \"quoted\" name\n".to_string())),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("ratio", Json::Number(0.125)),
            ("list", Json::Array(vec![num_u64(1), num_u64(2)])),
            ("empty", Json::Array(vec![])),
        ]);
        let text = doc.to_pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn accessors_are_shape_checked() {
        let doc = object([("n", num_u64(3))]);
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(3.0));
        assert!(doc.get("n").unwrap().as_str().is_none());
        assert!(doc.as_array().is_none());
        assert!(Json::Null.get("n").is_none());
    }
}
