//! Export recorded spans as chrome://tracing "Trace Event Format"
//! JSON.
//!
//! Every [`SpanRecord`] becomes one complete event (`"ph": "X"`) with
//! microsecond timestamps; the span's [`trace_id`](SpanRecord::trace_id)
//! is used as the `tid`, so each profiled query renders as its own
//! horizontal track and interleaved requests stay visually separate.
//! The output is a single JSON object (`{"traceEvents": [...]}`) that
//! loads directly in `chrome://tracing` or Perfetto, and is written
//! with the hand-rolled [`crate::json`] writer so it round-trips
//! through [`crate::json::parse`].
//!
//! # Example
//!
//! ```
//! use tcim_telemetry::{chrome_trace, json, profile, span};
//!
//! let (_, report) = profile("query", || drop(span("execute")));
//! let trace = chrome_trace::render(&[report.expect("top-level profile")]);
//! let doc = json::parse(&trace).expect("exporter emits valid JSON");
//! assert_eq!(doc.get("traceEvents").and_then(|e| e.as_array()).unwrap().len(), 2);
//! ```

use crate::json::{num_u64, object, Json};
use crate::span::{ProfileReport, SpanRecord};

/// Converts a duration offset to fractional microseconds, the unit the
/// Trace Event Format expects for `ts` and `dur`.
fn micros(d: std::time::Duration) -> Json {
    Json::Number(d.as_secs_f64() * 1e6)
}

/// One complete ("X") trace event for a span.
fn event(span: &SpanRecord) -> Json {
    object([
        ("name", Json::String(span.name.to_string())),
        ("cat", Json::String("tcim".to_string())),
        ("ph", Json::String("X".to_string())),
        ("ts", micros(span.start)),
        ("dur", micros(span.elapsed)),
        ("pid", num_u64(1)),
        // One track per profiled query: interleaved requests separate.
        ("tid", num_u64(span.trace_id)),
        ("args", object([("depth", num_u64(span.depth as u64))])),
    ])
}

/// Renders profiled queries as a Trace Event Format JSON document.
///
/// Spans keep their per-profile relative timestamps; with one report
/// per track (`tid` = trace id) the viewer lays queries out side by
/// side, which is what per-query debugging wants.
pub fn render(reports: &[ProfileReport]) -> String {
    render_spans(reports.iter().flat_map(|r| r.spans.iter().copied()))
}

/// Renders a flat span stream (e.g. a [`crate::span::recent_spans`]
/// flight-recorder dump) as a Trace Event Format JSON document.
pub fn render_spans(spans: impl IntoIterator<Item = SpanRecord>) -> String {
    let events: Vec<Json> = spans.into_iter().map(|s| event(&s)).collect();
    object([
        ("traceEvents", Json::Array(events)),
        ("displayTimeUnit", Json::String("ms".to_string())),
    ])
    .to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::span::{profile, span};

    #[test]
    fn export_round_trips_through_the_parser() {
        let ((), report) = profile("query", || {
            let _execute = span("execute");
            drop(span("shard"));
        });
        let report = report.expect("top-level profile");
        let trace = render(std::slice::from_ref(&report));
        let doc = json::parse(&trace).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_array).expect("event array");
        assert_eq!(events.len(), report.spans.len());
        for ev in events {
            assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
            assert!(ev.get("ts").and_then(Json::as_f64).unwrap() >= 0.0);
            assert!(ev.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
            assert_eq!(
                ev.get("tid").and_then(Json::as_f64),
                Some(report.trace_id as f64),
                "every span sits on the profile's track"
            );
        }
        let names: Vec<&str> =
            events.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
        assert!(names.contains(&"query") && names.contains(&"execute"));
    }

    #[test]
    fn reports_render_on_separate_tracks() {
        let ((), a) = profile("a", || ());
        let ((), b) = profile("b", || ());
        let trace = render(&[a.expect("profile a"), b.expect("profile b")]);
        let doc = json::parse(&trace).expect("valid JSON");
        let tids: std::collections::BTreeSet<u64> = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(|e| e.get("tid").and_then(Json::as_f64))
            .map(|t| t as u64)
            .collect();
        assert_eq!(tids.len(), 2);
    }
}
