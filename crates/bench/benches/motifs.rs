//! Motif-query benchmark: what the iterated k-truss peeling and the
//! chained 4-clique pass cost on top of the anchor triangle run, per
//! backend, and how the sliced engine compares to the naive reference
//! oracle it is differentially tested against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcim_core::{Backend, Query, SchedPolicy, TcimConfig, TcimPipeline};
use tcim_graph::generators::{barabasi_albert, rmat, RmatParams};
use tcim_graph::oracle;

/// Per-backend motif cost over one prepared power-law artifact: the
/// peeling rounds re-run kernels per peeled edge, the clique pass
/// chains a second AND per surviving triangle.
fn bench_motif_queries(c: &mut Criterion) {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let g = barabasi_albert(900, 6, 5).unwrap();
    let prepared = pipeline.prepare(&g);
    let mut group = c.benchmark_group("motifs");
    group.sample_size(10);
    for backend in [
        Backend::SerialPim,
        Backend::ScheduledPim(SchedPolicy::with_arrays(4)),
        Backend::CpuMerge,
    ] {
        for query in [Query::KTruss { k: 4 }, Query::FourCliques] {
            group.bench_with_input(
                BenchmarkId::new(backend.label(), query.to_string()),
                &query,
                |b, query| {
                    b.iter(|| {
                        pipeline
                            .query(black_box(&prepared), &backend, query)
                            .unwrap()
                            .triangles
                    })
                },
            );
        }
    }
    group.finish();
}

/// The sliced engine against the naive oracle on the same graph —
/// the differential harness's two sides, timed head to head.
fn bench_engine_vs_oracle(c: &mut Criterion) {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let g = rmat(9, 2_600, RmatParams::default(), 17).unwrap();
    let prepared = pipeline.prepare(&g);
    let mut group = c.benchmark_group("motifs-vs-oracle");
    group.sample_size(10);
    group.bench_function("engine/k-truss", |b| {
        b.iter(|| {
            pipeline
                .query(black_box(&prepared), &Backend::SerialPim, &Query::KTruss { k: 4 })
                .unwrap()
                .triangles
        })
    });
    group.bench_function("oracle/k-truss", |b| b.iter(|| oracle::trussness(black_box(&g))));
    group.bench_function("engine/four-cliques", |b| {
        b.iter(|| {
            pipeline
                .query(black_box(&prepared), &Backend::SerialPim, &Query::FourCliques)
                .unwrap()
                .triangles
        })
    });
    group.bench_function("oracle/four-cliques", |b| {
        b.iter(|| oracle::four_cliques(black_box(&g)))
    });
    group.finish();
}

criterion_group!(motifs, bench_motif_queries, bench_engine_vs_oracle);
criterion_main!(motifs);
