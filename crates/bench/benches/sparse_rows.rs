//! Dense vs sparse row kernels across a valid-slice density sweep.
//!
//! Two complementary measurements:
//!
//! * `and_popcount` / `skewed` — the raw CPU kernel over a pair of
//!   rows. Here the *dense* encoding wins at every density (contiguous
//!   valid-slice payloads beat the sparse decode), quantifying the
//!   decode tax a host pays per visited pair.
//! * `pim_query` — the end-to-end simulated-PIM query across a graph
//!   density sweep, with the deterministic *modelled* accelerator time
//!   of each encoding printed alongside. The modelled time is where the
//!   crossover backing the default `EncodingPolicy::Auto` threshold
//!   (25% valid slices) lives: below it the skipped dispatches and
//!   AND+BitCount pairs dominate and sparse is the faster artifact on
//!   the modelled hardware, even while the host-side simulation clock
//!   still pays the decode tax.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tcim_bitmatrix::{BitVec, EncodingPolicy, RowEncoding, SliceSize, SlicedRow};
use tcim_core::{Backend, Query, TcimConfig, TcimPipeline};
use tcim_graph::generators::barabasi_albert;

const N_BITS: usize = 1 << 20;

/// A row whose valid-slice fraction is ~`per_mille`/1000: one set bit
/// per occupied 64-bit slice, occupied slices scattered by a salted
/// multiplicative hash. Two rows built from different salts then share
/// only ~density² of their slices — the decorrelated footprint of real
/// adjacency rows, where the sparse summary walk earns its keep.
fn row_at_density(per_mille: usize, salt: u64, encoding: RowEncoding) -> SlicedRow {
    let total_slices = (N_BITS / 64) as u64;
    let valid = (total_slices * per_mille as u64 / 1000).max(1);
    let mut slices: Vec<u64> = (0..valid)
        .map(|i| {
            (i.wrapping_add(salt).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) % total_slices
        })
        .collect();
    slices.sort_unstable();
    slices.dedup();
    let bits = slices.iter().map(|&s| (s * 64 + (s.wrapping_mul(7) + salt) % 64) as usize);
    let v = BitVec::from_indices(N_BITS, bits);
    SlicedRow::from_bitvec(&v, SliceSize::S64, encoding)
}

/// The headline sweep: AND+BitCount between two rows of equal density,
/// dense encoding vs sparse encoding, density 0.1% → 50% valid slices.
fn bench_density_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_rows/and_popcount");
    for &per_mille in &[1usize, 5, 10, 50, 100, 250, 500] {
        group.throughput(Throughput::Bytes((N_BITS / 8) as u64));
        for encoding in [RowEncoding::Dense, RowEncoding::Sparse] {
            let a = row_at_density(per_mille, 0, encoding);
            let b = row_at_density(per_mille, 3, encoding);
            let label = match encoding {
                RowEncoding::Dense => "dense",
                RowEncoding::Sparse => "sparse",
            };
            group.bench_with_input(
                BenchmarkId::new(label, format!("{per_mille}permille")),
                &per_mille,
                |bench, _| bench.iter(|| black_box(&a).and_popcount(black_box(&b))),
            );
        }
    }
    group.finish();
}

/// Skew: a cold row against a hot one — the power-law shape where one
/// endpoint of an edge is a hub. The pair walk is driven by the
/// *intersection* of valid slices, so the sparse summary walk prunes to
/// the cold side's footprint even when the other operand is dense with
/// bits. (A whole artifact shares one encoding, so both operands are
/// re-encoded together.)
fn bench_skewed_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_rows/skewed");
    for &per_mille in &[1usize, 10, 100] {
        for encoding in [RowEncoding::Dense, RowEncoding::Sparse] {
            let hot = row_at_density(500, 0, encoding);
            let cold = row_at_density(per_mille, 3, encoding);
            let label = match encoding {
                RowEncoding::Dense => "dense",
                RowEncoding::Sparse => "sparse",
            };
            group.bench_with_input(
                BenchmarkId::new(label, format!("{per_mille}permille_x_hot")),
                &per_mille,
                |bench, _| bench.iter(|| black_box(&cold).and_popcount(black_box(&hot))),
            );
        }
    }
    group.finish();
}

/// The crossover measurement: one simulated-PIM `TotalTriangles` query
/// per encoding, over power-law (BA) graphs whose attachment degree
/// sweeps the measured valid-slice fraction across the default 25%
/// threshold. Each point also prints the deterministic modelled
/// accelerator time and dispatch census of both encodings — sparse's
/// modelled time dips under dense's below the threshold (hub rows make
/// the skip filter bite), which is the measurement the default
/// `sparse_threshold_millis` encodes.
fn bench_pim_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_rows/pim_query");
    group.sample_size(12);
    for &degree in &[2usize, 5, 10, 16] {
        let g = barabasi_albert(600, degree, 7).unwrap();
        for encoding in [RowEncoding::Dense, RowEncoding::Sparse] {
            let pipeline = TcimPipeline::new(&TcimConfig {
                encoding: EncodingPolicy::force(encoding),
                ..TcimConfig::default()
            })
            .unwrap();
            let prepared = pipeline.prepare(&g);
            let label = match encoding {
                RowEncoding::Dense => "dense",
                RowEncoding::Sparse => "sparse",
            };
            let valid_pct = (prepared.slice_stats().valid_fraction() * 100.0).round();
            let report = pipeline
                .query(&prepared, &Backend::SerialPim, &Query::TotalTriangles)
                .unwrap();
            eprintln!(
                "pim_query m{degree} ({valid_pct}% valid) {label}: modelled {:.3e}s, \
                 {} kernels, {} pairs, {} skipped, {} bytes",
                report.modelled_time_s.unwrap_or(0.0),
                report.kernel.kernel_invocations,
                report.kernel.slice_pairs,
                report.kernel.blocks_skipped,
                report.compressed_bytes,
            );
            group.bench_with_input(
                BenchmarkId::new(label, format!("m{degree}_{valid_pct}pct")),
                &degree,
                |bench, _| {
                    bench.iter(|| {
                        pipeline
                            .query(
                                black_box(&prepared),
                                &Backend::SerialPim,
                                &Query::TotalTriangles,
                            )
                            .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

/// Re-encoding cost: what `TcimPipeline::prepare` pays once per row
/// when the automatic policy resolves sparse.
fn bench_reencode(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_rows/reencode");
    for &per_mille in &[10usize, 250] {
        let dense = row_at_density(per_mille, 0, RowEncoding::Dense);
        group.bench_with_input(
            BenchmarkId::new("dense_to_sparse", format!("{per_mille}permille")),
            &per_mille,
            |bench, _| bench.iter(|| black_box(&dense).reencoded(RowEncoding::Sparse)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_density_sweep,
    bench_skewed_pairs,
    bench_pim_query,
    bench_reencode
);
criterion_main!(benches);
