//! Streaming benchmark: incremental delta maintenance vs re-preparing
//! and recounting from scratch after every batch — the amortization win
//! the dynamic-graph subsystem exists for.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tcim_core::{Backend, TcimConfig, TcimPipeline};
use tcim_graph::generators::barabasi_albert;
use tcim_graph::CsrGraph;
use tcim_stream::{DriftPolicy, DynamicGraph, StreamConfig, Update, UpdateBatch};

const BATCHES: usize = 4;
const BATCH_LEN: usize = 50;

fn seed_graph() -> CsrGraph {
    barabasi_albert(1_500, 6, 11).unwrap()
}

/// Deterministic batches: fresh chords plus deletions of seed edges,
/// all valid against the evolving state when applied in order.
fn update_batches(g: &CsrGraph) -> Vec<UpdateBatch> {
    let n = g.vertex_count() as u64;
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let mut x = 0x5a5a_1234_u64;
    (0..BATCHES)
        .map(|b| {
            let mut batch = UpdateBatch::new();
            for k in 0..BATCH_LEN {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if k % 5 == 0 {
                    let (u, v) = edges[(b * BATCH_LEN + k) % edges.len()];
                    batch.push(Update::Delete(u, v));
                } else {
                    let u = ((x >> 11) % n) as u32;
                    let v = ((x >> 37) % n) as u32;
                    batch.push(Update::Insert(u, v));
                }
            }
            batch
        })
        .collect()
}

/// Incremental maintenance (no folds) vs a full prepare + count per
/// batch: the per-update kernel path against the static pipeline's
/// whole-graph path.
fn bench_incremental_vs_recount(c: &mut Criterion) {
    let g = seed_graph();
    let batches = update_batches(&g);
    let mut group = c.benchmark_group("stream");
    group.sample_size(10);

    group.bench_function("incremental-deltas", |b| {
        b.iter(|| {
            let config =
                StreamConfig { drift: DriftPolicy::never(), ..StreamConfig::default() };
            let mut dg = DynamicGraph::new(black_box(&g), config).unwrap();
            for batch in &batches {
                dg.apply_batch(batch).unwrap();
            }
            dg.triangles()
        })
    });

    group.bench_function("reprepare-recount", |b| {
        b.iter(|| {
            let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
            // Same traffic, but every batch pays a full re-prepare.
            let config =
                StreamConfig { drift: DriftPolicy::never(), ..StreamConfig::default() };
            let mut dg = DynamicGraph::new(black_box(&g), config).unwrap();
            let mut total = 0u64;
            for batch in &batches {
                dg.apply_batch(batch).unwrap();
                let prepared = pipeline.prepare_uncached(&dg.snapshot());
                total += pipeline.execute(&prepared, &Backend::CpuMerge).unwrap().triangles;
            }
            total
        })
    });
    group.finish();
}

/// Fold cost in isolation: how expensive is one drift-triggered rebuild
/// relative to the batch that caused it.
fn bench_fold(c: &mut Criterion) {
    let g = seed_graph();
    let batches = update_batches(&g);
    let mut group = c.benchmark_group("stream-fold");
    group.sample_size(10);
    group.bench_function("fold-after-churn", |b| {
        b.iter(|| {
            let config =
                StreamConfig { drift: DriftPolicy::never(), ..StreamConfig::default() };
            let mut dg = DynamicGraph::new(black_box(&g), config).unwrap();
            for batch in &batches {
                dg.apply_batch(batch).unwrap();
            }
            dg.fold().unwrap().slice_stats().valid_slices
        })
    });
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_recount, bench_fold);
criterion_main!(benches);
