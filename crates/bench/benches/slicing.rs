//! Benchmarks of the §IV-B compression machinery: slicing throughput and
//! the slice-size ablation (how |S| shifts compression cost and AND-op
//! volume — the quantities behind Tables III/IV).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcim_bitmatrix::{SliceSize, SlicedMatrix};
use tcim_graph::datasets::Dataset;
use tcim_graph::Orientation;

fn bench_compression(c: &mut Criterion) {
    let g = Dataset::by_name("ego-facebook").unwrap().synthesize(0.25, 42).unwrap();
    let oriented = Orientation::Natural.orient(&g);
    let mut group = c.benchmark_group("compression");
    group.sample_size(20);
    for s in [SliceSize::S16, SliceSize::S64, SliceSize::S256] {
        group.bench_with_input(BenchmarkId::new("slice_matrix", s), &s, |b, &s| {
            b.iter(|| SlicedMatrix::from_adjacency(black_box(oriented.rows()), s).unwrap())
        });
    }
    group.finish();
}

fn bench_valid_pair_iteration(c: &mut Criterion) {
    let g = Dataset::by_name("roadnet-pa").unwrap().synthesize(0.01, 42).unwrap();
    let oriented = Orientation::Natural.orient(&g);
    let mut group = c.benchmark_group("valid_pairs");
    group.sample_size(20);
    for s in SliceSize::ALL {
        let matrix = SlicedMatrix::from_adjacency(oriented.rows(), s).unwrap();
        group.bench_with_input(BenchmarkId::new("road", s), &matrix, |b, m| {
            b.iter(|| {
                let mut pairs = 0u64;
                for (i, j) in m.edges() {
                    pairs += m.row(i).matching_slices(m.col(j)).unwrap().count() as u64;
                }
                pairs
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compression, bench_valid_pair_iteration);
criterion_main!(benches);
