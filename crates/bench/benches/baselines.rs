//! Benchmarks of the CPU triangle-counting baselines (Table V's software
//! columns): framework-style hash intersect vs merge vs forward vs the
//! sliced software path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcim_bitmatrix::popcount::PopcountMethod;
use tcim_bitmatrix::SliceSize;
use tcim_core::baseline;
use tcim_core::software::sliced_software_tc;
use tcim_graph::generators::{barabasi_albert, road_grid};
use tcim_graph::{CsrGraph, Orientation};

fn workloads() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("social_ba_5k", barabasi_albert(5_000, 10, 1).unwrap()),
        ("road_50x50", road_grid(50, 50, 0.95, 0.03, 1).unwrap()),
    ]
}

fn bench_baselines(c: &mut Criterion) {
    for (name, g) in workloads() {
        let mut group = c.benchmark_group(format!("baselines/{name}"));
        group.sample_size(20);
        group.bench_function(BenchmarkId::from_parameter("hash_intersect"), |b| {
            b.iter(|| baseline::hash_intersect(black_box(&g)))
        });
        group.bench_function(BenchmarkId::from_parameter("edge_iterator_merge"), |b| {
            b.iter(|| baseline::edge_iterator_merge(black_box(&g)))
        });
        group.bench_function(BenchmarkId::from_parameter("forward"), |b| {
            b.iter(|| baseline::forward(black_box(&g)))
        });
        group.bench_function(BenchmarkId::from_parameter("parallel_x4"), |b| {
            b.iter(|| baseline::parallel_edge_iterator(black_box(&g), 4))
        });
        group.bench_function(BenchmarkId::from_parameter("sliced_software"), |b| {
            b.iter(|| {
                sliced_software_tc(
                    black_box(&g),
                    SliceSize::S64,
                    Orientation::Natural,
                    PopcountMethod::Native,
                )
                .unwrap()
                .triangles
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
