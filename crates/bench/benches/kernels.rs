//! Microbenchmarks of the TCIM kernel primitives: AND + BitCount over
//! dense and sliced vectors, LUT vs native popcount.
//!
//! Feeds the "w/o PIM" software-path numbers of Table V: these kernels
//! are what the sliced software implementation spends its time in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tcim_bitmatrix::popcount::{popcount_words, PopcountMethod};
use tcim_bitmatrix::{BitVec, SliceSize, SlicedBitVector};

fn bench_popcount(c: &mut Criterion) {
    let words: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
    let mut group = c.benchmark_group("popcount");
    group.throughput(Throughput::Bytes((words.len() * 8) as u64));
    group.bench_function("native_4096_words", |b| {
        b.iter(|| popcount_words(black_box(&words), PopcountMethod::Native))
    });
    group.bench_function("lut8_4096_words", |b| {
        b.iter(|| popcount_words(black_box(&words), PopcountMethod::Lut8))
    });
    group.finish();
}

fn bench_and_popcount(c: &mut Criterion) {
    let mut group = c.benchmark_group("and_popcount");
    for &n_bits in &[4096usize, 65_536, 1_048_576] {
        let a = BitVec::from_indices(n_bits, (0..n_bits).step_by(7));
        let bv = BitVec::from_indices(n_bits, (0..n_bits).step_by(11));
        group.throughput(Throughput::Bytes((n_bits / 8) as u64));
        group.bench_with_input(BenchmarkId::new("dense", n_bits), &n_bits, |bench, _| {
            bench.iter(|| black_box(&a).and_popcount(black_box(&bv)).unwrap())
        });
        let sa = SlicedBitVector::from_bitvec(&a, SliceSize::S64);
        let sb = SlicedBitVector::from_bitvec(&bv, SliceSize::S64);
        group.bench_with_input(BenchmarkId::new("sliced", n_bits), &n_bits, |bench, _| {
            bench.iter(|| black_box(&sa).and_popcount(black_box(&sb)))
        });
    }
    group.finish();
}

fn bench_sparse_advantage(c: &mut Criterion) {
    // The headline effect of slicing: a 1M-bit vector with 100 set bits
    // costs only its valid slices, not its length.
    let n_bits = 1_048_576;
    let a = BitVec::from_indices(n_bits, (0..100).map(|i| i * 9973));
    let bv = BitVec::from_indices(n_bits, (0..100).map(|i| i * 10007));
    let sa = SlicedBitVector::from_bitvec(&a, SliceSize::S64);
    let sb = SlicedBitVector::from_bitvec(&bv, SliceSize::S64);
    let mut group = c.benchmark_group("sparse_1Mbit_100set");
    group.bench_function("dense", |b| {
        b.iter(|| black_box(&a).and_popcount(black_box(&bv)).unwrap())
    });
    group.bench_function("sliced", |b| b.iter(|| black_box(&sa).and_popcount(black_box(&sb))));
    group.finish();
}

criterion_group!(benches, bench_popcount, bench_and_popcount, bench_sparse_advantage);
criterion_main!(benches);
