//! End-to-end pipeline benchmark: orient → slice → simulate Algorithm 1
//! on Table II stand-ins — the host cost of driving the TCIM simulation
//! (the simulated accelerator time itself is reported by `--bin table5`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcim_core::{TcimAccelerator, TcimConfig};
use tcim_graph::datasets::Dataset;

fn bench_pipeline(c: &mut Criterion) {
    let acc = TcimAccelerator::new(&TcimConfig::default()).unwrap();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for name in ["ego-facebook", "roadnet-pa"] {
        let dataset = Dataset::by_name(name).unwrap();
        for scale in [0.01f64, 0.05] {
            let g = dataset.synthesize(scale, 42).unwrap();
            let id = format!("{name}@{scale}");
            group.bench_with_input(BenchmarkId::new("count", &id), &g, |b, g| {
                b.iter(|| acc.count_triangles(black_box(g)).triangles)
            });
            let matrix = acc.compress(&g);
            group.bench_with_input(BenchmarkId::new("simulate_only", &id), &matrix, |b, m| {
                b.iter(|| {
                    acc.count_compressed(black_box(m), std::time::Duration::ZERO).triangles
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
