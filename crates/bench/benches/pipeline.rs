//! Staged-pipeline benchmark: preparation cost vs per-backend execution
//! cost, and the amortization win of executing N queries against one
//! `PreparedGraph` instead of re-preparing per query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcim_bitmatrix::popcount::PopcountMethod;
use tcim_core::{Backend, SchedPolicy, TcimConfig, TcimPipeline};
use tcim_graph::datasets::Dataset;

fn backend_suite() -> Vec<(&'static str, Backend)> {
    vec![
        ("serial-pim", Backend::SerialPim),
        ("sched-pim-4", Backend::ScheduledPim(SchedPolicy::with_arrays(4))),
        ("software", Backend::Software(PopcountMethod::Native)),
        ("cpu-merge", Backend::CpuMerge),
        ("cpu-forward", Backend::CpuForward),
    ]
}

/// Prepare time vs execute time, per backend, on Table II stand-ins.
fn bench_prepare_vs_execute(c: &mut Criterion) {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for name in ["ego-facebook", "roadnet-pa"] {
        let dataset = Dataset::by_name(name).unwrap();
        let g = dataset.synthesize(0.02, 42).unwrap();
        let id = format!("{name}@0.02");

        // The preparation stage alone (uncached, so it is measured).
        group.bench_with_input(BenchmarkId::new("prepare", &id), &g, |b, g| {
            b.iter(|| pipeline.prepare_uncached(black_box(g)).slice_stats().valid_slices)
        });

        // Each backend's execution stage over one prepared artifact.
        let prepared = pipeline.prepare(&g);
        for (label, spec) in backend_suite() {
            group.bench_with_input(
                BenchmarkId::new(format!("execute/{label}"), &id),
                &prepared,
                |b, prepared| {
                    b.iter(|| pipeline.execute(black_box(prepared), &spec).unwrap().triangles)
                },
            );
        }
    }
    group.finish();
}

/// The amortization win: N queries against one cached `PreparedGraph`
/// vs N one-shot prepare+execute cycles.
fn bench_amortization(c: &mut Criterion) {
    const QUERIES: usize = 8;
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let g = Dataset::by_name("ego-facebook").unwrap().synthesize(0.02, 42).unwrap();
    let mut group = c.benchmark_group("amortization");
    group.sample_size(10);

    group.bench_function(format!("reprepare-x{QUERIES}"), |b| {
        b.iter(|| {
            let mut total = 0u64;
            for _ in 0..QUERIES {
                let prepared = pipeline.prepare_uncached(black_box(&g));
                total += pipeline.execute(&prepared, &Backend::SerialPim).unwrap().triangles;
            }
            total
        })
    });

    group.bench_function(format!("prepared-x{QUERIES}"), |b| {
        let prepared = pipeline.prepare(&g);
        b.iter(|| {
            let mut total = 0u64;
            for _ in 0..QUERIES {
                total += pipeline
                    .execute(black_box(&prepared), &Backend::SerialPim)
                    .unwrap()
                    .triangles;
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_prepare_vs_execute, bench_amortization);
criterion_main!(benches);
