//! Sharding benchmarks: the shard-count sweep (how intra + composition
//! cost moves as the partition gets finer), the boundary-composition
//! overhead in isolation (1D arcs vs 2D edge blocks), and the one-time
//! partitioning cost against its cached reuse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcim_core::{Backend, Query, ShardPolicy, TcimConfig, TcimPipeline};
use tcim_graph::generators::barabasi_albert;
use tcim_graph::CsrGraph;
use tcim_shard::{compose, plan_shards, BoundarySlices, ShardMode, ShardSpec};

fn graph() -> CsrGraph {
    barabasi_albert(2_048, 8, 5).unwrap()
}

/// Shard-count sweep: total sharded execution (intra runs + the
/// composition pass) over one cached artifact, against the unsharded
/// serial engine.
fn bench_shard_count_sweep(c: &mut Criterion) {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let prepared = pipeline.prepare(&graph());
    let mut group = c.benchmark_group("sharding/sweep");
    group.sample_size(10);
    group.bench_function("unsharded-serial", |b| {
        b.iter(|| {
            pipeline.execute(black_box(&prepared), &Backend::SerialPim).unwrap().triangles
        })
    });
    for shards in [1usize, 2, 4, 8] {
        let spec = Backend::Sharded(ShardPolicy::with_shards(shards));
        // Warm the sharded cache so the sweep measures execution, not
        // partitioning.
        pipeline.execute(&prepared, &spec).unwrap();
        group.bench_with_input(BenchmarkId::new("sharded", shards), &spec, |b, spec| {
            b.iter(|| pipeline.execute(black_box(&prepared), spec).unwrap().triangles)
        });
    }
    group.finish();
}

/// Boundary-composition overhead in isolation: the cross-shard pass
/// alone, per composition mode — 2D edge blocks amortize operand
/// writes over whole blocks.
fn bench_composition_overhead(c: &mut Criterion) {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let engine = pipeline.engine();
    let prepared = pipeline.prepare(&graph());
    let oriented = prepared.oriented();
    let slice_size = prepared.slice_size();
    let costs = engine.cost_model();
    let mut group = c.benchmark_group("sharding/composition");
    group.sample_size(10);
    for mode in [ShardMode::OneD, ShardMode::TwoD] {
        let spec = ShardSpec { shards: 4, mode };
        let plan = plan_shards(oriented, &spec, slice_size).unwrap();
        let boundary =
            BoundarySlices::extract(oriented, &plan, slice_size, prepared.encoding());
        group.bench_with_input(BenchmarkId::new("mode", mode), &mode, |b, _| {
            b.iter(|| {
                compose(
                    oriented.vertex_count(),
                    black_box(&plan),
                    &boundary,
                    &tcim_core::SchedPolicy::with_arrays(4),
                    &costs,
                    false,
                    false,
                )
                .unwrap()
                .triangles
            })
        });
    }
    group.finish();
}

/// One-time partitioning cost vs the cached path repeated queries take.
fn bench_prepare_sharded_amortization(c: &mut Criterion) {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let prepared = pipeline.prepare(&graph());
    let policy = ShardPolicy::with_shards(4);
    let mut group = c.benchmark_group("sharding/prepare");
    group.sample_size(10);
    group.bench_function("build-uncached", |b| {
        b.iter(|| {
            tcim_core::ShardedPreparedGraph::build(
                black_box(&prepared),
                &policy.spec,
                pipeline.engine(),
            )
            .unwrap()
            .pieces()
            .len()
        })
    });
    pipeline.prepare_sharded(&prepared, &policy.spec).unwrap();
    group.bench_function("cached-query", |b| {
        b.iter(|| {
            pipeline
                .query(
                    black_box(&prepared),
                    &Backend::Sharded(policy.clone()),
                    &Query::TotalTriangles,
                )
                .unwrap()
                .triangles
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shard_count_sweep,
    bench_composition_overhead,
    bench_prepare_sharded_amortization
);
criterion_main!(benches);
