//! Typed-query benchmark: what each query shape costs relative to the
//! plain count, what the service facade adds on top of a raw pipeline
//! call, and how repeated mixed workloads amortize over one registered
//! artifact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcim_core::{Backend, Query, TcimConfig, TcimPipeline};
use tcim_graph::generators::barabasi_albert;
use tcim_service::{QueryRequest, ServiceConfig, TcimService};

fn workload() -> Vec<Query> {
    vec![
        Query::TotalTriangles,
        Query::PerVertexTriangles,
        Query::GlobalClustering,
        Query::TopKVertices { k: 10 },
        Query::EdgeSupport,
    ]
}

/// Per-query-shape execution cost over one prepared artifact: the
/// attributed shapes (per-vertex, edge support) pay for AND-result
/// readouts; the count-only shapes do not.
fn bench_query_shapes(c: &mut Criterion) {
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let g = barabasi_albert(1_500, 8, 5).unwrap();
    let prepared = pipeline.prepare(&g);
    let mut group = c.benchmark_group("queries");
    group.sample_size(10);
    for backend in [Backend::SerialPim, Backend::CpuMerge] {
        for query in workload() {
            group.bench_with_input(
                BenchmarkId::new(backend.label(), query.to_string()),
                &query,
                |b, query| {
                    b.iter(|| {
                        pipeline
                            .query(black_box(&prepared), &backend, query)
                            .unwrap()
                            .triangles
                    })
                },
            );
        }
    }
    group.finish();
}

/// Service dispatch overhead: the same query through the facade
/// (name lookup, provenance assembly) vs directly on the pipeline.
fn bench_service_dispatch(c: &mut Criterion) {
    let g = barabasi_albert(1_500, 8, 5).unwrap();
    let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
    let prepared = pipeline.prepare(&g);
    let service = TcimService::new(&ServiceConfig {
        default_backend: Backend::CpuMerge,
        ..ServiceConfig::default()
    })
    .unwrap();
    service.register("g", &g).unwrap();

    let mut group = c.benchmark_group("service-dispatch");
    group.sample_size(10);
    group.bench_function("pipeline-direct", |b| {
        b.iter(|| {
            pipeline
                .query(black_box(&prepared), &Backend::CpuMerge, &Query::TotalTriangles)
                .unwrap()
                .triangles
        })
    });
    group.bench_function("service-facade", |b| {
        b.iter(|| service.query(black_box("g"), &Query::TotalTriangles).unwrap().triangles)
    });
    group.finish();
}

/// Amortization of a repeated mixed workload: N mixed queries against
/// one registered graph vs re-preparing the graph for every query —
/// the whole point of serving from one prepared artifact.
fn bench_mixed_amortization(c: &mut Criterion) {
    const ROUNDS: usize = 4;
    let g = barabasi_albert(1_000, 6, 9).unwrap();
    let service = TcimService::new(&ServiceConfig {
        default_backend: Backend::CpuMerge,
        ..ServiceConfig::default()
    })
    .unwrap();
    service.register("g", &g).unwrap();
    let requests: Vec<QueryRequest> = (0..ROUNDS)
        .flat_map(|_| workload().into_iter().map(|q| QueryRequest::new("g", q)))
        .collect();

    let mut group = c.benchmark_group("mixed-amortization");
    group.sample_size(10);
    group.bench_function(format!("served-x{}", requests.len()), |b| {
        b.iter(|| {
            let responses = service.serve(black_box(&requests));
            responses.into_iter().map(|r| r.unwrap().triangles).sum::<u64>()
        })
    });
    group.bench_function(format!("reprepare-x{}", requests.len()), |b| {
        let pipeline = TcimPipeline::new(&TcimConfig::default()).unwrap();
        b.iter(|| {
            let mut sum = 0u64;
            for request in &requests {
                // Pathological baseline: rebuild the artifact per query.
                let prepared = pipeline.prepare_uncached(black_box(&g));
                sum += pipeline
                    .query(&prepared, &Backend::CpuMerge, &request.query)
                    .unwrap()
                    .triangles;
            }
            sum
        })
    });
    group.finish();
}

/// Telemetry overhead: the same served query with profiling off
/// (uninstalled spans are one thread-local read) vs on (every span is
/// timed and a `PhaseBreakdown` is assembled per response). The "off"
/// case must track `service-facade` above — disabled telemetry is the
/// no-regression acceptance bar.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let g = barabasi_albert(1_500, 8, 5).unwrap();
    let make = |profile_queries| {
        let service = TcimService::new(&ServiceConfig {
            default_backend: Backend::CpuMerge,
            profile_queries,
            ..ServiceConfig::default()
        })
        .unwrap();
        service.register("g", &g).unwrap();
        service
    };
    let plain = make(false);
    let profiled = make(true);

    let mut group = c.benchmark_group("telemetry-overhead");
    group.sample_size(10);
    group.bench_function("profiling-off", |b| {
        b.iter(|| plain.query(black_box("g"), &Query::TotalTriangles).unwrap().triangles)
    });
    group.bench_function("profiling-on", |b| {
        b.iter(|| {
            let response = profiled.query(black_box("g"), &Query::TotalTriangles).unwrap();
            (response.triangles, response.phases.unwrap().phase_sum())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_query_shapes,
    bench_service_dispatch,
    bench_mixed_amortization,
    bench_telemetry_overhead
);
criterion_main!(benches);
