//! Gateway benchmarks: what admission control costs over calling the
//! service directly, and how coalescing amortizes one attributed
//! execution over growing compatible bursts.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcim_core::Query;
use tcim_gateway::{Gateway, GatewayConfig};
use tcim_graph::generators::barabasi_albert;
use tcim_service::{BatchOptions, LiveReadMode, QueryRequest, ServiceConfig, TcimService};

fn serving() -> (Arc<TcimService>, Gateway) {
    let service = Arc::new(
        TcimService::new(&ServiceConfig::default()).expect("default config characterizes"),
    );
    let g = barabasi_albert(800, 6, 3).expect("generator parameters are valid");
    service.register("g", &g).expect("registration succeeds");
    let gateway = Gateway::new(Arc::clone(&service), &GatewayConfig::default());
    (service, gateway)
}

/// Admission overhead: one query answered directly by the service vs
/// submitted through the gateway's queue → wave → ticket path. The
/// difference is the price of backpressure, fairness and provenance.
fn bench_admission_overhead(c: &mut Criterion) {
    let (service, gateway) = serving();
    let mut group = c.benchmark_group("gateway/admission");
    group.sample_size(20);
    group.bench_function("direct-serve", |b| {
        b.iter(|| {
            let requests = [QueryRequest::new("g", Query::TotalTriangles)];
            black_box(service.serve(black_box(&requests)))
        })
    });
    group.bench_function("gateway-submit-pump", |b| {
        b.iter(|| {
            let ticket = gateway
                .submit("bench", QueryRequest::new("g", Query::TotalTriangles))
                .expect("admission succeeds");
            gateway.run_until_idle();
            black_box(ticket.wait().expect("query succeeds"))
        })
    });
    group.finish();
}

/// Coalescing amortization: a burst of k compatible attributed queries
/// served as one wave. With coalescing the wave costs ~1 execution
/// regardless of k; without, it costs k.
fn bench_coalescing_amortization(c: &mut Criterion) {
    let (service, _) = serving();
    let mut group = c.benchmark_group("gateway/coalesce");
    group.sample_size(10);
    for k in [2usize, 8, 32] {
        let requests: Vec<QueryRequest> =
            (0..k).map(|_| QueryRequest::new("g", Query::PerVertexTriangles)).collect();
        for (label, coalesce) in [("on", true), ("off", false)] {
            group.bench_with_input(BenchmarkId::new(label, k), &requests, |b, requests| {
                let opts = BatchOptions { coalesce, live: LiveReadMode::Pinned };
                b.iter(|| black_box(service.serve_with(black_box(requests), &opts)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_admission_overhead, bench_coalescing_amortization);
criterion_main!(benches);
