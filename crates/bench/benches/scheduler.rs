//! Host-side cost of the multi-array runtime: serial engine vs
//! scheduled execution across array counts, plus the planning
//! (decompose + place) overhead on its own.
//!
//! These benchmarks time the *simulator* (host wall-clock), answering
//! "what does scheduling cost the harness", not the modelled accelerator
//! time — that is what `--bin ablation_placement` reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcim_core::{PlacementPolicy, SchedPolicy, TcimAccelerator, TcimConfig};
use tcim_graph::generators::barabasi_albert;
use tcim_sched::ScheduledRun;

fn bench_serial_vs_scheduled(c: &mut Criterion) {
    let acc = TcimAccelerator::new(&TcimConfig::default()).unwrap();
    let g = barabasi_albert(2000, 8, 42).unwrap();
    let matrix = acc.compress(&g);

    let mut group = c.benchmark_group("scheduler/execute");
    group.sample_size(10);
    group.bench_function("serial_engine", |b| {
        b.iter(|| acc.engine().run(black_box(&matrix)).triangles)
    });
    for arrays in [2usize, 4, 8, 16] {
        let policy = SchedPolicy::with_arrays(arrays);
        let run = ScheduledRun::plan(acc.engine(), &matrix, &policy).unwrap();
        group.bench_with_input(BenchmarkId::new("scheduled", arrays), &run, |b, run| {
            b.iter(|| black_box(run).execute().triangles)
        });
    }
    group.finish();
}

fn bench_planning(c: &mut Criterion) {
    let acc = TcimAccelerator::new(&TcimConfig::default()).unwrap();
    let g = barabasi_albert(2000, 8, 42).unwrap();
    let matrix = acc.compress(&g);

    let mut group = c.benchmark_group("scheduler/plan");
    group.sample_size(10);
    for placement in PlacementPolicy::ALL {
        let policy = SchedPolicy { arrays: 8, placement, host_threads: Some(1) };
        group.bench_with_input(
            BenchmarkId::from_parameter(placement),
            &policy,
            |b, policy| {
                b.iter(|| {
                    ScheduledRun::plan(acc.engine(), black_box(&matrix), policy)
                        .unwrap()
                        .placement()
                        .est_imbalance()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serial_vs_scheduled, bench_planning);
criterion_main!(benches);
