//! Shared helpers for the TCIM benchmark harness.
//!
//! The `benches/` directory holds Criterion micro/mesobenchmarks of the
//! software kernels; the `src/bin/` binaries regenerate every table and
//! figure of the paper (see EXPERIMENTS.md). Both consume the experiment
//! drivers in `tcim_core::experiments`.

pub mod compare;
pub mod json;

use tcim_core::experiments::ExperimentScale;

/// Reads the experiment scale from `TCIM_SCALE` / `TCIM_SEED` environment
/// variables, defaulting to the fast harness configuration (5 % scale).
///
/// Full-size paper runs: `TCIM_SCALE=1.0 cargo run --release -p tcim-bench
/// --bin table5`.
pub fn scale_from_env() -> ExperimentScale {
    let scale =
        std::env::var("TCIM_SCALE").ok().and_then(|s| s.parse::<f64>().ok()).unwrap_or(0.05);
    let seed =
        std::env::var("TCIM_SEED").ok().and_then(|s| s.parse::<u64>().ok()).unwrap_or(42);
    ExperimentScale { scale, seed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_without_env() {
        // The test environment does not set the variables.
        if std::env::var("TCIM_SCALE").is_err() {
            let s = scale_from_env();
            assert_eq!(s.scale, 0.05);
            assert_eq!(s.seed, 42);
        }
    }
}
