//! Runs every table and figure back to back — the EXPERIMENTS.md driver.
//!
//! ```text
//! TCIM_SCALE=0.05 cargo run --release -p tcim-bench --bin all_experiments
//! ```

use tcim_core::experiments;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = tcim_bench::scale_from_env();
    println!(
        "TCIM reproduction — all experiments at scale {} (seed {})\n",
        scale.scale, scale.seed
    );
    println!("{}\n", experiments::table1()?);
    println!("{}\n", experiments::table2(scale)?);
    println!("{}\n", experiments::tables3_and_4(scale)?);
    println!("{}\n", experiments::table5(scale)?);
    println!("{}\n", experiments::fig5(scale)?);
    println!("{}", experiments::fig6(scale)?);
    Ok(())
}
