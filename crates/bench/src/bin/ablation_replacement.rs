//! Ablation: column-slice replacement policy (the paper uses LRU and
//! notes "more optimized replacement strategy could be possible").
//!
//! Sweeps buffer capacity × policy over a social and a road stand-in and
//! prints hit/exchange rates plus total WRITEs.

use tcim_arch::{PimConfig, ReplacementPolicy};
use tcim_core::{TcimAccelerator, TcimConfig};
use tcim_graph::datasets::Dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = tcim_bench::scale_from_env();
    for name in ["ego-facebook", "roadnet-pa"] {
        let g = Dataset::by_name(name).unwrap().synthesize(scale.scale, scale.seed)?;
        println!("\n== {name} (|V| = {}, |E| = {}) ==", g.vertex_count(), g.edge_count());
        println!(
            "{:<10} {:>10} {:>8} {:>8} {:>8} {:>12}",
            "policy", "capacity", "hit %", "miss %", "exch %", "writes"
        );
        for capacity in [100_000usize, 10_000, 1_000] {
            for policy in
                [ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Random]
            {
                let config = TcimConfig {
                    pim: PimConfig {
                        replacement: policy,
                        capacity_slices_override: Some(capacity),
                        ..PimConfig::default()
                    },
                    ..TcimConfig::default()
                };
                let report = TcimAccelerator::new(&config)?.count_triangles(&g);
                let s = report.sim.stats;
                println!(
                    "{:<10} {:>10} {:>8.1} {:>8.1} {:>8.1} {:>12}",
                    format!("{policy:?}"),
                    capacity,
                    100.0 * s.hit_rate(),
                    100.0 * s.miss_rate(),
                    100.0 * s.exchange_rate(),
                    s.total_writes()
                );
            }
        }
    }
    Ok(())
}
