//! Spot-check: simulated TCIM runtime on *full-size* stand-ins of the
//! two smallest Table V datasets, next to the paper's published TCIM
//! column. Documents the calibration claim made in EXPERIMENTS.md.

fn main() {
    use tcim_core::{TcimAccelerator, TcimConfig};
    use tcim_graph::datasets::Dataset;
    let acc = TcimAccelerator::new(&TcimConfig::default()).unwrap();
    for name in ["ego-facebook", "email-enron"] {
        let g = Dataset::by_name(name).unwrap().synthesize(1.0, 42).unwrap();
        let r = acc.count_triangles(&g);
        println!(
            "{name}: |E|={}, TCIM sim = {:.4} s (paper {})",
            g.edge_count(),
            r.sim.total_time_s(),
            if name == "ego-facebook" { "0.005" } else { "0.021" }
        );
    }
}
