//! Emits the perf-trajectory artifact `BENCH_7.json`: throughput,
//! exact latency percentiles and kernel/memory accounting per backend
//! × generator × row encoding.
//!
//! Both encodings are *forced* (not auto-resolved) so the artifact
//! always carries a dense/sparse pair per cell: BA at 600 vertices
//! measures ~26% valid density, just above the automatic threshold,
//! and would otherwise lose its sparse column.
//!
//! Percentiles come from sorted raw per-iteration samples (exact), not
//! from the runtime histogram's power-of-two buckets (approximate) —
//! the artifact is the reference record future PRs compare against, so
//! it uses the precise form.
//!
//! Usage:
//!
//! ```text
//! bench_json [--out PATH] [--full]     # run the harness and write PATH
//! bench_json --validate PATH           # schema-check an existing file
//! bench_json --compare OLD NEW [--threshold F]
//!                                      # per-cell QPS/p99 diff; exits
//!                                      # non-zero past the threshold
//! ```
//!
//! The default smoke mode (what CI runs) uses few iterations; `--full`
//! raises the iteration count for a lower-noise committed artifact.
//! `--compare` gates CI against the committed artifact: the threshold
//! (default 0.25 = 25%) is the fractional QPS drop / p99 rise that
//! counts as a regression; CI uses a generous one because it compares
//! a smoke run on a shared runner against a full run's numbers.

use std::process::ExitCode;
use std::time::Instant;

use tcim_bench::compare::compare_bench;
use tcim_bench::json::{self, num_u64, object, Json};
use tcim_bitmatrix::EncodingPolicy;
use tcim_core::{
    Backend, Query, SchedPolicy, ShardMode, ShardPolicy, ShardSpec, TcimConfig, TcimPipeline,
};
use tcim_graph::generators::{barabasi_albert, rmat, RmatParams};
use tcim_graph::CsrGraph;

struct Mode {
    label: &'static str,
    warmup: usize,
    iterations: usize,
}

const SMOKE: Mode = Mode { label: "smoke", warmup: 2, iterations: 12 };
const FULL: Mode = Mode { label: "full", warmup: 10, iterations: 80 };

fn backends() -> Vec<(&'static str, Backend)> {
    vec![
        ("serial-pim", Backend::SerialPim),
        ("scheduled-pim-4", Backend::ScheduledPim(SchedPolicy::with_arrays(4))),
        (
            "sharded-4",
            Backend::Sharded(ShardPolicy {
                spec: ShardSpec { shards: 4, mode: ShardMode::OneD },
                inner: SchedPolicy::with_arrays(2),
            }),
        ),
    ]
}

fn generators() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("ba", barabasi_albert(600, 5, 7).expect("generator parameters are valid")),
        (
            "rmat",
            rmat(9, 2600, RmatParams::default(), 17).expect("generator parameters are valid"),
        ),
    ]
}

fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1]
}

fn encodings() -> Vec<(&'static str, EncodingPolicy)> {
    vec![("dense", EncodingPolicy::ForceDense), ("sparse", EncodingPolicy::ForceSparse)]
}

fn run(mode: &Mode) -> Json {
    let mut results = Vec::new();
    for (encoding_label, encoding) in encodings() {
        let pipeline = TcimPipeline::new(&TcimConfig { encoding, ..TcimConfig::default() })
            .expect("default config characterizes");
        for (gen_label, graph) in generators() {
            let prepared = pipeline.prepare(&graph);
            for (backend_label, backend) in backends() {
                eprintln!(
                    "bench_json: {backend_label} × {gen_label} × {encoding_label} ({} iterations)",
                    mode.iterations
                );
                for _ in 0..mode.warmup {
                    pipeline
                        .query(&prepared, &backend, &Query::TotalTriangles)
                        .expect("warmup query succeeds");
                }
                let mut samples_ns = Vec::with_capacity(mode.iterations);
                let mut triangles = 0u64;
                let mut kernel_invocations = 0u64;
                let mut slice_pairs = 0u64;
                let mut blocks_skipped = 0u64;
                let mut compressed_bytes = 0u64;
                let mut modelled_s = 0.0f64;
                let started = Instant::now();
                for _ in 0..mode.iterations {
                    let iter_start = Instant::now();
                    let report = pipeline
                        .query(&prepared, &backend, &Query::TotalTriangles)
                        .expect("measured query succeeds");
                    samples_ns.push(iter_start.elapsed().as_nanos() as u64);
                    triangles = report.triangles;
                    kernel_invocations = report.kernel.kernel_invocations;
                    slice_pairs = report.kernel.slice_pairs;
                    blocks_skipped = report.kernel.blocks_skipped;
                    compressed_bytes = report.compressed_bytes;
                    modelled_s = report.modelled_time_s.unwrap_or(0.0);
                }
                let total = started.elapsed();
                samples_ns.sort_unstable();
                let sum: u64 = samples_ns.iter().sum();
                let qps = mode.iterations as f64 / total.as_secs_f64();
                results.push(object([
                    ("backend", Json::String(backend_label.to_string())),
                    ("generator", Json::String(gen_label.to_string())),
                    ("encoding", Json::String(encoding_label.to_string())),
                    ("vertices", num_u64(graph.vertex_count() as u64)),
                    ("edges", num_u64(graph.edge_count() as u64)),
                    ("triangles", num_u64(triangles)),
                    ("iterations", num_u64(mode.iterations as u64)),
                    ("qps", Json::Number(qps)),
                    (
                        "latency_ns",
                        object([
                            ("min", num_u64(samples_ns[0])),
                            ("p50", num_u64(percentile(&samples_ns, 0.50))),
                            ("p90", num_u64(percentile(&samples_ns, 0.90))),
                            ("p99", num_u64(percentile(&samples_ns, 0.99))),
                            ("max", num_u64(*samples_ns.last().expect("non-empty samples"))),
                            ("mean", Json::Number(sum as f64 / samples_ns.len() as f64)),
                        ]),
                    ),
                    ("modelled_time_s", Json::Number(modelled_s)),
                    ("kernel_invocations", num_u64(kernel_invocations)),
                    ("slice_pairs", num_u64(slice_pairs)),
                    ("blocks_skipped", num_u64(blocks_skipped)),
                    ("compressed_bytes", num_u64(compressed_bytes)),
                ]));
            }
        }
    }
    object([
        ("bench", num_u64(7)),
        ("schema_version", num_u64(2)),
        ("mode", Json::String(mode.label.to_string())),
        ("iterations", num_u64(mode.iterations as u64)),
        ("query", Json::String("TotalTriangles".to_string())),
        ("results", Json::Array(results)),
    ])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_7.json".to_string();
    let mut validate: Option<String> = None;
    let mut compare: Option<(String, String)> = None;
    let mut threshold = 0.25f64;
    let mut mode = &SMOKE;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out = args[i + 1].clone();
                i += 2;
            }
            "--validate" if i + 1 < args.len() => {
                validate = Some(args[i + 1].clone());
                i += 2;
            }
            "--compare" if i + 2 < args.len() => {
                compare = Some((args[i + 1].clone(), args[i + 2].clone()));
                i += 3;
            }
            "--threshold" if i + 1 < args.len() => {
                threshold = match args[i + 1].parse() {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("bench_json: bad --threshold {:?}: {e}", args[i + 1]);
                        return ExitCode::FAILURE;
                    }
                };
                i += 2;
            }
            "--full" => {
                mode = &FULL;
                i += 1;
            }
            other => {
                eprintln!("bench_json: unknown argument {other:?}");
                eprintln!(
                    "usage: bench_json [--out PATH] [--full] | --validate PATH \
                     | --compare OLD NEW [--threshold F]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some((old_path, new_path)) = compare {
        let load = |path: &str| -> Result<Json, String> {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            json::parse(&text).map_err(|e| format!("{path}: {e}"))
        };
        let report = match load(&old_path)
            .and_then(|old| load(&new_path).map(|new| (old, new)))
            .and_then(|(old, new)| compare_bench(&old, &new, threshold))
        {
            Ok(report) => report,
            Err(e) => {
                eprintln!("bench_json: compare failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{report}");
        return if report.passed() {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "bench_json: {} regression(s) past the {:.0}% threshold",
                report.regressions(),
                threshold * 100.0
            );
            ExitCode::FAILURE
        };
    }

    if let Some(path) = validate {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench_json: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match json::parse(&text).and_then(|doc| json::validate_bench(&doc)) {
            Ok(()) => {
                println!("bench_json: {path} is a valid BENCH artifact");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_json: {path} failed validation: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let doc = run(mode);
    json::validate_bench(&doc).expect("the harness emits its own schema");
    if let Err(e) = std::fs::write(&out, doc.to_pretty()) {
        eprintln!("bench_json: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench_json: wrote {out} ({} mode)", mode.label);
    ExitCode::SUCCESS
}
