//! Emits the perf-trajectory artifact `BENCH_7.json`: throughput,
//! exact latency percentiles and kernel/memory accounting per backend
//! × generator × row encoding.
//!
//! Both encodings are *forced* (not auto-resolved) so the artifact
//! always carries a dense/sparse pair per cell: BA at 600 vertices
//! measures ~26% valid density, just above the automatic threshold,
//! and would otherwise lose its sparse column.
//!
//! Percentiles come from sorted raw per-iteration samples (exact), not
//! from the runtime histogram's power-of-two buckets (approximate) —
//! the artifact is the reference record future PRs compare against, so
//! it uses the precise form.
//!
//! Usage:
//!
//! ```text
//! bench_json [--out PATH] [--full]     # run the harness and write PATH
//! bench_json --load [--out PATH] [--full]
//!                                      # gateway load generator: mixed
//!                                      # read/update traffic at several
//!                                      # offered loads × coalescing
//!                                      # on/off (BENCH_9.json)
//! bench_json --motifs [--out PATH] [--full]
//!                                      # k-truss + 4-clique sweep per
//!                                      # backend × generator × encoding,
//!                                      # oracle-checked (BENCH_10.json)
//! bench_json --validate PATH           # schema-check an existing file
//! bench_json --compare OLD NEW [--threshold F]
//!                                      # per-cell QPS/p99 diff; exits
//!                                      # non-zero past the threshold
//! ```
//!
//! The `--load` harness drives a `tcim_gateway::Gateway` (worker
//! threads, admission queue, micro-batching, snapshot-isolated live
//! reads) instead of a bare pipeline. It self-checks two acceptance
//! claims on every run: static-graph responses are bit-identical to
//! their unbatched reference, and at the highest offered load with
//! coalescing on, the attributed executions run are strictly fewer
//! than the queries answered (proven from per-response provenance).
//!
//! The default smoke mode (what CI runs) uses few iterations; `--full`
//! raises the iteration count for a lower-noise committed artifact.
//! `--compare` gates CI against the committed artifact: the threshold
//! (default 0.25 = 25%) is the fractional QPS drop / p99 rise that
//! counts as a regression; CI uses a generous one because it compares
//! a smoke run on a shared runner against a full run's numbers.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tcim_bench::compare::compare_bench;
use tcim_bench::json::{self, num_u64, object, Json};
use tcim_bitmatrix::EncodingPolicy;
use tcim_core::{
    Backend, Query, QueryValue, SchedPolicy, ShardMode, ShardPolicy, ShardSpec, TcimConfig,
    TcimPipeline,
};
use tcim_gateway::{Gateway, GatewayConfig, PublishPolicy, Ticket};
use tcim_graph::generators::{barabasi_albert, gnm, rmat, RmatParams};
use tcim_graph::CsrGraph;
use tcim_service::{QueryRequest, ServiceConfig, TcimService};
use tcim_stream::UpdateBatch;

struct Mode {
    label: &'static str,
    warmup: usize,
    iterations: usize,
}

const SMOKE: Mode = Mode { label: "smoke", warmup: 2, iterations: 12 };
const FULL: Mode = Mode { label: "full", warmup: 10, iterations: 80 };

fn backends() -> Vec<(&'static str, Backend)> {
    vec![
        ("serial-pim", Backend::SerialPim),
        ("scheduled-pim-4", Backend::ScheduledPim(SchedPolicy::with_arrays(4))),
        (
            "sharded-4",
            Backend::Sharded(ShardPolicy {
                spec: ShardSpec { shards: 4, mode: ShardMode::OneD },
                inner: SchedPolicy::with_arrays(2),
            }),
        ),
    ]
}

fn generators() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("ba", barabasi_albert(600, 5, 7).expect("generator parameters are valid")),
        (
            "rmat",
            rmat(9, 2600, RmatParams::default(), 17).expect("generator parameters are valid"),
        ),
    ]
}

fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1]
}

fn encodings() -> Vec<(&'static str, EncodingPolicy)> {
    vec![("dense", EncodingPolicy::ForceDense), ("sparse", EncodingPolicy::ForceSparse)]
}

fn run(mode: &Mode) -> Json {
    let mut results = Vec::new();
    for (encoding_label, encoding) in encodings() {
        let pipeline = TcimPipeline::new(&TcimConfig { encoding, ..TcimConfig::default() })
            .expect("default config characterizes");
        for (gen_label, graph) in generators() {
            let prepared = pipeline.prepare(&graph);
            for (backend_label, backend) in backends() {
                eprintln!(
                    "bench_json: {backend_label} × {gen_label} × {encoding_label} ({} iterations)",
                    mode.iterations
                );
                for _ in 0..mode.warmup {
                    pipeline
                        .query(&prepared, &backend, &Query::TotalTriangles)
                        .expect("warmup query succeeds");
                }
                let mut samples_ns = Vec::with_capacity(mode.iterations);
                let mut triangles = 0u64;
                let mut kernel_invocations = 0u64;
                let mut slice_pairs = 0u64;
                let mut blocks_skipped = 0u64;
                let mut compressed_bytes = 0u64;
                let mut modelled_s = 0.0f64;
                let started = Instant::now();
                for _ in 0..mode.iterations {
                    let iter_start = Instant::now();
                    let report = pipeline
                        .query(&prepared, &backend, &Query::TotalTriangles)
                        .expect("measured query succeeds");
                    samples_ns.push(iter_start.elapsed().as_nanos() as u64);
                    triangles = report.triangles;
                    kernel_invocations = report.kernel.kernel_invocations;
                    slice_pairs = report.kernel.slice_pairs;
                    blocks_skipped = report.kernel.blocks_skipped;
                    compressed_bytes = report.compressed_bytes;
                    modelled_s = report.modelled_time_s.unwrap_or(0.0);
                }
                let total = started.elapsed();
                samples_ns.sort_unstable();
                let sum: u64 = samples_ns.iter().sum();
                let qps = mode.iterations as f64 / total.as_secs_f64();
                results.push(object([
                    ("backend", Json::String(backend_label.to_string())),
                    ("generator", Json::String(gen_label.to_string())),
                    ("encoding", Json::String(encoding_label.to_string())),
                    ("vertices", num_u64(graph.vertex_count() as u64)),
                    ("edges", num_u64(graph.edge_count() as u64)),
                    ("triangles", num_u64(triangles)),
                    ("iterations", num_u64(mode.iterations as u64)),
                    ("qps", Json::Number(qps)),
                    (
                        "latency_ns",
                        object([
                            ("min", num_u64(samples_ns[0])),
                            ("p50", num_u64(percentile(&samples_ns, 0.50))),
                            ("p90", num_u64(percentile(&samples_ns, 0.90))),
                            ("p99", num_u64(percentile(&samples_ns, 0.99))),
                            ("max", num_u64(*samples_ns.last().expect("non-empty samples"))),
                            ("mean", Json::Number(sum as f64 / samples_ns.len() as f64)),
                        ]),
                    ),
                    ("modelled_time_s", Json::Number(modelled_s)),
                    ("kernel_invocations", num_u64(kernel_invocations)),
                    ("slice_pairs", num_u64(slice_pairs)),
                    ("blocks_skipped", num_u64(blocks_skipped)),
                    ("compressed_bytes", num_u64(compressed_bytes)),
                ]));
            }
        }
    }
    object([
        ("bench", num_u64(7)),
        ("schema_version", num_u64(2)),
        ("mode", Json::String(mode.label.to_string())),
        ("iterations", num_u64(mode.iterations as u64)),
        ("query", Json::String("TotalTriangles".to_string())),
        ("results", Json::Array(results)),
    ])
}

/// The `--motifs` harness (BENCH_10): the k-truss peeling and chained
/// 4-clique passes per backend × generator × forced encoding, with the
/// answer's cardinality recorded so the artifact doubles as a coarse
/// correctness pin — and a self-check against the reference oracle on
/// every cell before any timing is trusted.
fn run_motifs(mode: &Mode) -> Json {
    let motif_queries = [Query::KTruss { k: 4 }, Query::FourCliques];
    let mut results = Vec::new();
    for (encoding_label, encoding) in encodings() {
        let pipeline = TcimPipeline::new(&TcimConfig { encoding, ..TcimConfig::default() })
            .expect("default config characterizes");
        for (gen_label, graph) in generators() {
            let prepared = pipeline.prepare(&graph);
            let truss_oracle = tcim_graph::oracle::trussness(&graph);
            let (k4_oracle, _) = tcim_graph::oracle::four_cliques(&graph);
            for (backend_label, backend) in backends() {
                for query in &motif_queries {
                    eprintln!(
                        "bench_json: motifs {backend_label} × {gen_label} × {encoding_label} \
                         × {query} ({} iterations)",
                        mode.iterations
                    );
                    for _ in 0..mode.warmup {
                        pipeline.query(&prepared, &backend, query).expect("warmup succeeds");
                    }
                    let mut samples_ns = Vec::with_capacity(mode.iterations);
                    let mut cardinality = 0u64;
                    let mut kernel_invocations = 0u64;
                    let mut slice_pairs = 0u64;
                    let mut blocks_skipped = 0u64;
                    let mut compressed_bytes = 0u64;
                    let mut triangles = 0u64;
                    let mut modelled_s = 0.0f64;
                    let started = Instant::now();
                    for _ in 0..mode.iterations {
                        let iter_start = Instant::now();
                        let report = pipeline
                            .query(&prepared, &backend, query)
                            .expect("measured query succeeds");
                        samples_ns.push(iter_start.elapsed().as_nanos() as u64);
                        cardinality = match &report.value {
                            QueryValue::KTruss { edges, .. } => {
                                // Differential self-check: the timed
                                // engine must agree with the oracle.
                                assert!(
                                    edges.iter().zip(&truss_oracle).all(|(e, &(u, v, t))| {
                                        (e.u, e.v, e.trussness) == (u, v, t)
                                    }),
                                    "{backend_label} × {gen_label}: trussness diverged"
                                );
                                edges.len() as u64
                            }
                            QueryValue::FourCliques { total, .. } => {
                                assert_eq!(
                                    *total, k4_oracle,
                                    "{backend_label} × {gen_label}: 4-clique count diverged"
                                );
                                *total
                            }
                            other => panic!("unexpected motif answer shape {other:?}"),
                        };
                        triangles = report.triangles;
                        kernel_invocations = report.kernel.kernel_invocations;
                        slice_pairs = report.kernel.slice_pairs;
                        blocks_skipped = report.kernel.blocks_skipped;
                        compressed_bytes = report.compressed_bytes;
                        modelled_s = report.modelled_time_s.unwrap_or(0.0);
                    }
                    let total = started.elapsed();
                    samples_ns.sort_unstable();
                    let sum: u64 = samples_ns.iter().sum();
                    results.push(object([
                        ("backend", Json::String(backend_label.to_string())),
                        ("generator", Json::String(gen_label.to_string())),
                        ("encoding", Json::String(encoding_label.to_string())),
                        ("query", Json::String(query.label().to_string())),
                        ("vertices", num_u64(graph.vertex_count() as u64)),
                        ("edges", num_u64(graph.edge_count() as u64)),
                        ("triangles", num_u64(triangles)),
                        ("result_cardinality", num_u64(cardinality)),
                        ("iterations", num_u64(mode.iterations as u64)),
                        ("qps", Json::Number(mode.iterations as f64 / total.as_secs_f64())),
                        (
                            "latency_ns",
                            object([
                                ("min", num_u64(samples_ns[0])),
                                ("p50", num_u64(percentile(&samples_ns, 0.50))),
                                ("p90", num_u64(percentile(&samples_ns, 0.90))),
                                ("p99", num_u64(percentile(&samples_ns, 0.99))),
                                (
                                    "max",
                                    num_u64(*samples_ns.last().expect("non-empty samples")),
                                ),
                                ("mean", Json::Number(sum as f64 / samples_ns.len() as f64)),
                            ]),
                        ),
                        ("modelled_time_s", Json::Number(modelled_s)),
                        ("kernel_invocations", num_u64(kernel_invocations)),
                        ("slice_pairs", num_u64(slice_pairs)),
                        ("blocks_skipped", num_u64(blocks_skipped)),
                        ("compressed_bytes", num_u64(compressed_bytes)),
                    ]));
                }
            }
        }
    }
    object([
        ("bench", num_u64(10)),
        ("schema_version", num_u64(2)),
        ("mode", Json::String(mode.label.to_string())),
        ("iterations", num_u64(mode.iterations as u64)),
        ("query", Json::String("motifs".to_string())),
        ("results", Json::Array(results)),
    ])
}

/// The read-side query rotation of the load mix.
fn load_queries() -> Vec<Query> {
    vec![
        Query::TotalTriangles,
        Query::PerVertexTriangles,
        Query::TopKVertices { k: 8 },
        Query::GlobalClustering,
    ]
}

/// One offered-load × coalescing cell: paced mixed read/update traffic
/// through a worker-driven gateway. Returns the result entry.
fn run_load_cell(mode: &Mode, offered_qps: u64, coalesce: bool) -> Json {
    let queries = if mode.iterations >= FULL.iterations { 2_000 } else { 240 };
    eprintln!(
        "bench_json: gateway load, {offered_qps} offered qps, coalesce {}, {queries} queries",
        if coalesce { "on" } else { "off" }
    );
    let service = Arc::new(
        TcimService::new(&ServiceConfig::default()).expect("default config characterizes"),
    );
    let static_graph = barabasi_albert(600, 5, 7).expect("generator parameters are valid");
    let live_graph = gnm(400, 2_400, 11).expect("generator parameters are valid");
    service.register("static", &static_graph).expect("static registration succeeds");
    service.register_live("live", &live_graph).expect("live registration succeeds");

    // Unbatched reference answers for the static graph: the harness
    // asserts every coalesced response is bit-identical to these.
    let reference: HashMap<Query, QueryValue> = load_queries()
        .into_iter()
        .map(|q| {
            let value = service
                .serve(&[QueryRequest::new("static", q.clone())])
                .remove(0)
                .expect("reference query succeeds")
                .value;
            (q, value)
        })
        .collect();

    let gateway = Arc::new(Gateway::new(
        Arc::clone(&service),
        &GatewayConfig {
            queue_capacity: 4_096,
            workers: 2,
            coalesce,
            publish: PublishPolicy::OnDrift,
            ..GatewayConfig::default()
        },
    ));
    gateway.start_workers();

    // The collector waits tickets in submission order (resolved tickets
    // return immediately, so it keeps up) and records completion-
    // observed latency plus per-batch execution provenance.
    let (tx, rx) = std::sync::mpsc::channel::<(Instant, Option<Query>, Ticket)>();
    let collector = {
        let reference: HashMap<Query, QueryValue> = reference.clone();
        std::thread::spawn(move || {
            let mut latencies_ns: Vec<u64> = Vec::new();
            let mut batch_executions: HashMap<u64, u64> = HashMap::new();
            let mut unbatched = 0u64;
            let mut answered = 0u64;
            for (submitted, static_query, ticket) in rx {
                let response = ticket.wait().expect("admitted load queries succeed");
                latencies_ns.push(submitted.elapsed().as_nanos() as u64);
                answered += 1;
                match &response.batch {
                    Some(batch) => {
                        batch_executions.insert(batch.batch_id, batch.executions);
                    }
                    None => unbatched += 1,
                }
                if let Some(query) = static_query {
                    assert_eq!(
                        response.value, reference[&query],
                        "coalesced answer diverged from the unbatched reference: {query:?}"
                    );
                }
            }
            let executions: u64 = batch_executions.values().sum::<u64>() + unbatched;
            (latencies_ns, answered, executions, batch_executions.len() as u64)
        })
    };

    let interval = Duration::from_nanos(1_000_000_000 / offered_qps.max(1));
    let rotation = load_queries();
    let mut shed = 0u64;
    let mut updates = 0u64;
    let started = Instant::now();
    for i in 0..queries {
        // 1 in 4 requests reads the live graph; every 40th submission
        // interleaves a write batch (the "update" half of the mix).
        if i % 40 == 39 {
            let mut batch = UpdateBatch::new();
            let n = live_graph.vertex_count() as u32;
            for j in 0..4u32 {
                let u = (i as u32).wrapping_mul(31).wrapping_add(j * 7) % n;
                let v = (i as u32).wrapping_mul(17).wrapping_add(j * 13 + 1) % n;
                if u != v {
                    if (i + j as usize).is_multiple_of(3) {
                        batch.delete(u, v);
                    } else {
                        batch.insert(u, v);
                    }
                }
            }
            gateway.update("live", &batch).expect("live updates apply");
            updates += 1;
        }
        let query = rotation[i % rotation.len()].clone();
        let (graph, static_query) =
            if i % 4 == 3 { ("live", None) } else { ("static", Some(query.clone())) };
        match gateway.submit("load", QueryRequest::new(graph, query)) {
            Ok(ticket) => {
                tx.send((Instant::now(), static_query, ticket)).expect("collector alive")
            }
            Err(_) => shed += 1,
        }
        let next = interval * (i as u32 + 1);
        while started.elapsed() < next {
            std::hint::spin_loop();
        }
    }
    drop(tx);
    let (mut latencies_ns, answered, executions, batches) =
        collector.join().expect("collector thread completes");
    let elapsed = started.elapsed();
    gateway.shutdown();

    latencies_ns.sort_unstable();
    assert!(!latencies_ns.is_empty(), "load run answered no queries");
    assert!(executions <= answered, "provenance cannot exceed answered queries");
    let sum: u64 = latencies_ns.iter().sum();
    object([
        ("backend", Json::String("gateway".to_string())),
        ("generator", Json::String("mixed".to_string())),
        ("coalesce", Json::Bool(coalesce)),
        ("offered_qps", num_u64(offered_qps)),
        ("queries", num_u64(answered)),
        ("executions", num_u64(executions)),
        ("batches", num_u64(batches)),
        ("shed", num_u64(shed)),
        ("updates", num_u64(updates)),
        ("qps", Json::Number(answered as f64 / elapsed.as_secs_f64())),
        (
            "latency_ns",
            object([
                ("min", num_u64(latencies_ns[0])),
                ("p50", num_u64(percentile(&latencies_ns, 0.50))),
                ("p90", num_u64(percentile(&latencies_ns, 0.90))),
                ("p99", num_u64(percentile(&latencies_ns, 0.99))),
                ("max", num_u64(*latencies_ns.last().expect("non-empty samples"))),
                ("mean", Json::Number(sum as f64 / latencies_ns.len() as f64)),
            ]),
        ),
    ])
}

/// The `--load` harness: offered-load sweep × coalescing on/off.
fn run_load(mode: &Mode) -> Json {
    let offered = [500u64, 2_000, 8_000];
    let mut results = Vec::new();
    for coalesce in [true, false] {
        for qps in offered {
            results.push(run_load_cell(mode, qps, coalesce));
        }
    }
    // Acceptance: at the highest offered load with coalescing on, the
    // gateway must answer with strictly fewer attributed executions
    // than queries — provenance-proven amortization under pressure.
    let peak = results
        .iter()
        .find(|entry| {
            entry.get("coalesce") == Some(&Json::Bool(true))
                && entry.get("offered_qps").and_then(Json::as_f64) == Some(8_000.0)
        })
        .expect("the sweep includes the peak coalesced cell");
    let answered = peak.get("queries").and_then(Json::as_f64).expect("queries is numeric");
    let executions =
        peak.get("executions").and_then(Json::as_f64).expect("executions is numeric");
    assert!(
        executions < answered,
        "coalescing at peak load must save executions: {executions} for {answered} queries"
    );
    eprintln!(
        "bench_json: peak coalesced cell answered {answered} queries with {executions} executions"
    );
    object([
        ("bench", num_u64(9)),
        ("schema_version", num_u64(2)),
        ("mode", Json::String(mode.label.to_string())),
        ("iterations", num_u64(if mode.iterations >= FULL.iterations { 2_000 } else { 240 })),
        ("query", Json::String("mixed".to_string())),
        ("results", Json::Array(results)),
    ])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut compare: Option<(String, String)> = None;
    let mut threshold = 0.25f64;
    let mut mode = &SMOKE;
    let mut load = false;
    let mut motifs = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            "--load" => {
                load = true;
                i += 1;
            }
            "--motifs" => {
                motifs = true;
                i += 1;
            }
            "--validate" if i + 1 < args.len() => {
                validate = Some(args[i + 1].clone());
                i += 2;
            }
            "--compare" if i + 2 < args.len() => {
                compare = Some((args[i + 1].clone(), args[i + 2].clone()));
                i += 3;
            }
            "--threshold" if i + 1 < args.len() => {
                threshold = match args[i + 1].parse() {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("bench_json: bad --threshold {:?}: {e}", args[i + 1]);
                        return ExitCode::FAILURE;
                    }
                };
                i += 2;
            }
            "--full" => {
                mode = &FULL;
                i += 1;
            }
            other => {
                eprintln!("bench_json: unknown argument {other:?}");
                eprintln!(
                    "usage: bench_json [--load | --motifs] [--out PATH] [--full] \
                     | --validate PATH | --compare OLD NEW [--threshold F]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some((old_path, new_path)) = compare {
        let load = |path: &str| -> Result<Json, String> {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            json::parse(&text).map_err(|e| format!("{path}: {e}"))
        };
        let report = match load(&old_path)
            .and_then(|old| load(&new_path).map(|new| (old, new)))
            .and_then(|(old, new)| compare_bench(&old, &new, threshold))
        {
            Ok(report) => report,
            Err(e) => {
                eprintln!("bench_json: compare failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{report}");
        return if report.passed() {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "bench_json: {} regression(s) past the {:.0}% threshold",
                report.regressions(),
                threshold * 100.0
            );
            ExitCode::FAILURE
        };
    }

    if let Some(path) = validate {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench_json: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match json::parse(&text).and_then(|doc| json::validate_bench(&doc)) {
            Ok(()) => {
                println!("bench_json: {path} is a valid BENCH artifact");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_json: {path} failed validation: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let doc = if load {
        run_load(mode)
    } else if motifs {
        run_motifs(mode)
    } else {
        run(mode)
    };
    let out = out.unwrap_or_else(|| {
        if load {
            "BENCH_9.json"
        } else if motifs {
            "BENCH_10.json"
        } else {
            "BENCH_7.json"
        }
        .to_string()
    });
    json::validate_bench(&doc).expect("the harness emits its own schema");
    if let Err(e) = std::fs::write(&out, doc.to_pretty()) {
        eprintln!("bench_json: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench_json: wrote {out} ({} mode)", mode.label);
    ExitCode::SUCCESS
}
