//! Regenerates Table V: runtime comparison across CPU, w/o PIM and TCIM,
//! alongside the paper's published CPU/GPU/FPGA columns.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = tcim_bench::scale_from_env();
    println!("{}", tcim_core::experiments::table5(scale)?);
    Ok(())
}
