//! Regenerates Table I: MTJ parameters and the derived device quantities.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", tcim_core::experiments::table1()?);
    Ok(())
}
