//! Regenerates Fig. 5: data hit / miss / exchange percentages.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = tcim_bench::scale_from_env();
    println!("{}", tcim_core::experiments::fig5(scale)?);
    Ok(())
}
