//! Ablation: slice-to-array placement policy × array count.
//!
//! Compares the three `tcim-sched` placement policies across array
//! counts {1, 2, 4, 8, 16} on a skewed (Barabási–Albert) and a uniform
//! (road-grid) graph, reporting critical-path latency, load imbalance,
//! array speedup and column-slice hit rate. The headline effect: on
//! skewed degree distributions round-robin dealing leaves the heavy
//! rows stacked on few arrays, while LPT placement keeps the critical
//! path near `serial / arrays`.

use tcim_core::{PlacementPolicy, SchedPolicy, TcimAccelerator, TcimConfig};
use tcim_graph::generators::{barabasi_albert, road_grid};
use tcim_graph::CsrGraph;

fn report_graph(
    acc: &TcimAccelerator,
    name: &str,
    g: &CsrGraph,
) -> Result<(), Box<dyn std::error::Error>> {
    let serial = acc.count_triangles(g);
    println!(
        "\n== {name}: |V| = {}, |E| = {}, {} triangles, serial {:.3e} s ==",
        g.vertex_count(),
        g.edge_count(),
        serial.triangles,
        serial.sim.total_time_s(),
    );
    println!(
        "{:>14} {:>7} {:>14} {:>10} {:>9} {:>8}",
        "placement", "arrays", "crit path (s)", "imbalance", "speedup", "hit %"
    );
    for placement in PlacementPolicy::ALL {
        for arrays in [1usize, 2, 4, 8, 16] {
            let policy = SchedPolicy { arrays, placement, host_threads: None };
            let r = acc.count_triangles_scheduled(g, &policy)?;
            assert_eq!(r.triangles, serial.triangles, "scheduling must not change counts");
            println!(
                "{:>14} {:>7} {:>14.3e} {:>10.3} {:>9.2} {:>8.1}",
                placement.to_string(),
                arrays,
                r.critical_path_s,
                r.imbalance,
                r.array_speedup(),
                100.0 * r.stats.hit_rate(),
            );
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = tcim_bench::scale_from_env();
    let acc = TcimAccelerator::new(&TcimConfig::default())?;

    let n = ((4000.0 * scale.scale) / 0.05).max(200.0) as usize;
    let skewed = barabasi_albert(n, 8, scale.seed)?;
    report_graph(&acc, "barabasi-albert (skewed)", &skewed)?;

    let side = ((30.0 * (scale.scale / 0.05).sqrt()).max(10.0)) as usize;
    let uniform = road_grid(side, side, 0.9, 0.3, scale.seed)?;
    report_graph(&acc, "road grid (uniform)", &uniform)?;
    Ok(())
}
