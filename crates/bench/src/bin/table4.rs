//! Regenerates Table IV: percentage of valid slices per dataset.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = tcim_bench::scale_from_env();
    let report = tcim_core::experiments::tables3_and_4(scale)?;
    println!("Table IV: percentage of valid slices (|S| = 64, scale {})", scale.scale);
    println!("{:<14} {:>14} {:>14}", "dataset", "% (paper)", "% (ours)");
    for r in &report.rows {
        println!(
            "{:<14} {:>14.3} {:>14.3}",
            r.dataset.name, r.paper_valid_pct, r.measured_valid_pct
        );
    }
    Ok(())
}
