//! Regenerates Fig. 6: energy consumption of TCIM vs the FPGA
//! accelerator, normalized per dataset.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = tcim_bench::scale_from_env();
    println!("{}", tcim_core::experiments::fig6(scale)?);
    Ok(())
}
