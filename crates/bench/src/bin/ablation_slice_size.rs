//! Ablation: the slice size |S| (fixed to 64 in the paper).
//!
//! Reports compressed size, AND-op count and the simulated runtime at
//! every supported |S|. The knee claim is pinned by a test in
//! `tcim_core::ablations`.

use tcim_core::ablations::slice_size_ablation;
use tcim_graph::datasets::Dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = tcim_bench::scale_from_env();
    for name in ["ego-facebook", "roadnet-pa"] {
        let g = Dataset::by_name(name).unwrap().synthesize(scale.scale, scale.seed)?;
        println!("\n== {name} (|V| = {}, |E| = {}) ==", g.vertex_count(), g.edge_count());
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12}",
            "|S|", "bytes", "AND ops", "time (ms)", "triangles"
        );
        for p in slice_size_ablation(&g)? {
            println!(
                "{:>6} {:>12} {:>12} {:>12.3} {:>12}",
                p.slice_size.to_string(),
                p.compressed_bytes,
                p.and_ops,
                p.time_s * 1e3,
                p.triangles,
            );
        }
    }
    Ok(())
}
