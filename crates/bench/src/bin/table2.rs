//! Regenerates Table II: the dataset inventory with synthetic stand-ins.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = tcim_bench::scale_from_env();
    println!("{}", tcim_core::experiments::table2(scale)?);
    Ok(())
}
