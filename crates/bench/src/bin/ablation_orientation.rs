//! Ablation: edge orientation (the paper uses the natural vertex order).
//!
//! Degree and degeneracy orders bound the DAG out-degree, which shifts
//! row/column slice density, the AND-op count and the hit rate. The
//! headline finding (degree order lifts hit rates on collaboration
//! graphs) is pinned by a test in `tcim_core::ablations`.

use tcim_core::ablations::orientation_ablation;
use tcim_graph::datasets::Dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = tcim_bench::scale_from_env();
    for name in ["ego-facebook", "com-dblp", "roadnet-pa"] {
        let g = Dataset::by_name(name).unwrap().synthesize(scale.scale, scale.seed)?;
        println!("\n== {name} (|V| = {}, |E| = {}) ==", g.vertex_count(), g.edge_count());
        println!(
            "{:<12} {:>12} {:>10} {:>10} {:>12}",
            "orientation", "AND ops", "hit %", "valid %", "triangles"
        );
        for p in orientation_ablation(&g)? {
            println!(
                "{:<12} {:>12} {:>10.1} {:>10.4} {:>12}",
                format!("{:?}", p.orientation),
                p.and_ops,
                100.0 * p.hit_rate,
                100.0 * p.valid_fraction,
                p.triangles,
            );
        }
    }
    Ok(())
}
