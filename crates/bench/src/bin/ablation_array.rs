//! Ablation: computational array size (the paper fixes 16 MB).
//!
//! Sweeps the buffer capacity from far-too-small to ample on the com-lj
//! stand-in — the graph whose working set exceeds 16 MB in the paper —
//! showing how exchanges grow and writes blow up as capacity shrinks.

use tcim_arch::sweep::capacity_sweep;
use tcim_arch::PimConfig;
use tcim_bitmatrix::SlicedMatrix;
use tcim_graph::datasets::Dataset;
use tcim_graph::Orientation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = tcim_bench::scale_from_env();
    let g = Dataset::by_name("com-lj").unwrap().synthesize(scale.scale, scale.seed)?;
    println!("com-lj stand-in: |V| = {}, |E| = {}", g.vertex_count(), g.edge_count());

    let oriented = Orientation::Natural.orient(&g);
    let matrix =
        SlicedMatrix::from_adjacency(oriented.rows(), PimConfig::default().slice_size)?;

    // From 1/64 of the scale-adjusted 16 MB-equivalent capacity up to 4x.
    let base = (16.0 * 1024.0 * 1024.0 / 12.0 * scale.scale) as usize;
    let capacities: Vec<usize> =
        [64usize, 16, 4, 1].iter().map(|f| (base / f).max(16)).chain([base * 4]).collect();

    println!(
        "{:>14} {:>8} {:>8} {:>8} {:>12} {:>12}",
        "capacity (sl.)", "hit %", "miss %", "exch %", "writes", "energy (mJ)"
    );
    for point in capacity_sweep(&PimConfig::default(), &matrix, &capacities)? {
        let s = point.stats;
        println!(
            "{:>14} {:>8.1} {:>8.1} {:>8.1} {:>12} {:>12.3}",
            point.capacity_slices,
            100.0 * s.hit_rate(),
            100.0 * s.miss_rate(),
            100.0 * s.exchange_rate(),
            s.total_writes(),
            point.energy_j * 1e3,
        );
    }
    Ok(())
}
