//! Regenerates Table III: valid slice data size per dataset.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = tcim_bench::scale_from_env();
    let report = tcim_core::experiments::tables3_and_4(scale)?;
    println!("Table III: valid slice data size (|S| = 64, scale {})", scale.scale);
    println!("{:<14} {:>14} {:>14}", "dataset", "MB (paper)", "MiB (ours)");
    for r in &report.rows {
        println!("{:<14} {:>14.3} {:>14.3}", r.dataset.name, r.paper_mb, r.measured_mib);
    }
    Ok(())
}
