//! Minimal JSON support for the perf-trajectory artifacts
//! (`BENCH_*.json`): a writer, a recursive-descent parser, and the
//! schema validator CI runs over emitted files.
//!
//! The build environment is offline (no serde), so the subset needed
//! here — objects, arrays, strings, numbers, booleans, null — is
//! implemented directly. Numbers parse as `f64`, which is exact for
//! every counter this harness emits (all below 2^53).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (keys sorted for deterministic output).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) if items.is_empty() => out.push_str("[]"),
            Json::Array(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(map) if map.is_empty() => out.push_str("{}"),
            Json::Object(map) => {
                out.push_str("{\n");
                for (i, (key, value)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Builds a [`Json::Object`] from key/value pairs.
pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// A whole-number [`Json::Number`].
pub fn num_u64(n: u64) -> Json {
    Json::Number(n as f64)
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset on malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("peeked byte exists");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Validates a parsed `BENCH_*.json` document against the schema the
/// harness emits (see ARCHITECTURE.md "Observability"): top-level
/// metadata plus one result entry per backend × generator with QPS and
/// latency percentiles.
///
/// # Errors
///
/// Returns the first schema violation found.
pub fn validate_bench(doc: &Json) -> Result<(), String> {
    for key in ["bench", "schema_version", "mode", "iterations"] {
        doc.get(key).ok_or_else(|| format!("missing top-level key {key:?}"))?;
    }
    // BENCH_7 added the row-encoding dimension and its kernel/memory
    // accounting; earlier artifacts stay valid without them.
    let per_encoding = doc.get("bench").and_then(Json::as_f64).unwrap_or(0.0) >= 7.0;
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing or non-array \"results\"".to_string())?;
    if results.is_empty() {
        return Err("\"results\" must not be empty".to_string());
    }
    for (i, entry) in results.iter().enumerate() {
        for key in ["backend", "generator"] {
            entry
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("results[{i}]: missing string {key:?}"))?;
        }
        let mut numbers = vec!["vertices", "edges", "triangles", "iterations", "qps"];
        if per_encoding {
            let encoding = entry
                .get("encoding")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("results[{i}]: missing string \"encoding\""))?;
            if !matches!(encoding, "dense" | "sparse") {
                return Err(format!(
                    "results[{i}]: \"encoding\" must be \"dense\" or \"sparse\", got {encoding:?}"
                ));
            }
            numbers.extend([
                "kernel_invocations",
                "slice_pairs",
                "blocks_skipped",
                "compressed_bytes",
            ]);
        }
        for key in numbers {
            let n = entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("results[{i}]: missing number {key:?}"))?;
            if !n.is_finite() || n < 0.0 {
                return Err(format!("results[{i}]: {key:?} must be finite and non-negative"));
            }
        }
        let latency = entry
            .get("latency_ns")
            .ok_or_else(|| format!("results[{i}]: missing \"latency_ns\""))?;
        let mut prev = 0.0f64;
        for key in ["min", "p50", "p90", "p99", "max"] {
            let n = latency
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("results[{i}].latency_ns: missing {key:?}"))?;
            if n < prev {
                return Err(format!(
                    "results[{i}].latency_ns: {key:?} = {n} below preceding percentile {prev}"
                ));
            }
            prev = n;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = object([
            ("bench", num_u64(6)),
            ("name", Json::String("a \"quoted\" name\n".to_string())),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("ratio", Json::Number(0.125)),
            ("list", Json::Array(vec![num_u64(1), num_u64(2)])),
            ("empty", Json::Array(vec![])),
        ]);
        let text = doc.to_pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    fn minimal_bench() -> Json {
        object([
            ("bench", num_u64(6)),
            ("schema_version", num_u64(1)),
            ("mode", Json::String("smoke".to_string())),
            ("iterations", num_u64(5)),
            (
                "results",
                Json::Array(vec![object([
                    ("backend", Json::String("serial-pim".to_string())),
                    ("generator", Json::String("ba".to_string())),
                    ("vertices", num_u64(300)),
                    ("edges", num_u64(1475)),
                    ("triangles", num_u64(778)),
                    ("iterations", num_u64(5)),
                    ("qps", Json::Number(123.4)),
                    (
                        "latency_ns",
                        object([
                            ("min", num_u64(100)),
                            ("p50", num_u64(110)),
                            ("p90", num_u64(120)),
                            ("p99", num_u64(130)),
                            ("max", num_u64(140)),
                            ("mean", Json::Number(112.5)),
                        ]),
                    ),
                ])]),
            ),
        ])
    }

    #[test]
    fn validator_accepts_the_emitted_schema() {
        assert_eq!(validate_bench(&minimal_bench()), Ok(()));
    }

    #[test]
    fn validator_requires_encoding_accounting_from_bench_seven_on() {
        let mut v7 = minimal_bench();
        if let Json::Object(map) = &mut v7 {
            map.insert("bench".to_string(), num_u64(7));
        }
        let err = validate_bench(&v7).unwrap_err();
        assert!(err.contains("encoding"), "{err}");

        if let Json::Object(map) = &mut v7 {
            if let Some(Json::Array(items)) = map.get_mut("results") {
                if let Json::Object(entry) = &mut items[0] {
                    entry.insert("encoding".to_string(), Json::String("sparse".to_string()));
                    for key in [
                        "kernel_invocations",
                        "slice_pairs",
                        "blocks_skipped",
                        "compressed_bytes",
                    ] {
                        entry.insert(key.to_string(), num_u64(1));
                    }
                }
            }
        }
        assert_eq!(validate_bench(&v7), Ok(()));
    }

    #[test]
    fn validator_rejects_missing_and_disordered_fields() {
        let mut missing = minimal_bench();
        if let Json::Object(map) = &mut missing {
            map.remove("results");
        }
        assert!(validate_bench(&missing).unwrap_err().contains("results"));

        let mut disordered = minimal_bench();
        if let Json::Object(map) = &mut disordered {
            let results = map.get_mut("results").unwrap();
            if let Json::Array(items) = results {
                if let Json::Object(entry) = &mut items[0] {
                    let latency = entry.get_mut("latency_ns").unwrap();
                    if let Json::Object(lat) = latency {
                        lat.insert("p99".to_string(), num_u64(1));
                    }
                }
            }
        }
        assert!(validate_bench(&disordered).unwrap_err().contains("p99"));
    }
}
