//! JSON support for the perf-trajectory artifacts (`BENCH_*.json`):
//! the schema validator CI runs over emitted files, plus re-exports of
//! the hand-rolled JSON value/writer/parser.
//!
//! The generic JSON layer lives in [`tcim_telemetry::json`] (the
//! chrome-trace exporter needs it below the bench layer); this module
//! keeps the bench-specific schema validation and re-exports the value
//! type so existing `tcim_bench::json::{Json, parse, ...}` paths keep
//! working.

pub use tcim_telemetry::json::{num_u64, object, parse, Json};

/// Validates a parsed `BENCH_*.json` document against the schema the
/// harness emits (see ARCHITECTURE.md "Observability"): top-level
/// metadata plus one result entry per backend × generator with QPS and
/// latency percentiles.
///
/// # Errors
///
/// Returns the first schema violation found.
pub fn validate_bench(doc: &Json) -> Result<(), String> {
    for key in ["bench", "schema_version", "mode", "iterations"] {
        doc.get(key).ok_or_else(|| format!("missing top-level key {key:?}"))?;
    }
    // BENCH_7 added the row-encoding dimension and its kernel/memory
    // accounting; earlier artifacts stay valid without them.
    let bench = doc.get("bench").and_then(Json::as_f64).unwrap_or(0.0);
    let per_encoding = bench >= 7.0;
    // BENCH_9 added gateway load-generator entries (recognized by their
    // "offered_qps" key): those carry admission/coalescing accounting
    // instead of the per-encoding kernel columns.
    let per_load = bench >= 9.0;
    // BENCH_10 added the motif-query dimension: every entry names the
    // query shape it timed and the answer's cardinality (truss edges
    // decomposed / 4-cliques counted), so the artifact doubles as a
    // coarse correctness pin.
    let per_query = bench >= 10.0;
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing or non-array \"results\"".to_string())?;
    if results.is_empty() {
        return Err("\"results\" must not be empty".to_string());
    }
    for (i, entry) in results.iter().enumerate() {
        for key in ["backend", "generator"] {
            entry
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("results[{i}]: missing string {key:?}"))?;
        }
        if per_load && entry.get("offered_qps").is_some() {
            if !matches!(entry.get("coalesce"), Some(Json::Bool(_))) {
                return Err(format!("results[{i}]: load entry missing bool \"coalesce\""));
            }
            let mut counts = [0.0f64; 2];
            for (slot, key) in
                ["queries", "executions", "batches", "shed", "updates", "offered_qps", "qps"]
                    .into_iter()
                    .enumerate()
            {
                let n = entry.get(key).and_then(Json::as_f64).ok_or_else(|| {
                    format!("results[{i}]: load entry missing number {key:?}")
                })?;
                if !n.is_finite() || n < 0.0 {
                    return Err(format!(
                        "results[{i}]: {key:?} must be finite and non-negative"
                    ));
                }
                if slot < 2 {
                    counts[slot] = n;
                }
            }
            if counts[1] > counts[0] {
                return Err(format!(
                    "results[{i}]: \"executions\" ({}) exceeds \"queries\" ({})",
                    counts[1], counts[0]
                ));
            }
            validate_latency(entry, i)?;
            continue;
        }
        let mut numbers = vec!["vertices", "edges", "triangles", "iterations", "qps"];
        if per_query {
            entry
                .get("query")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("results[{i}]: missing string \"query\""))?;
            numbers.push("result_cardinality");
        }
        if per_encoding {
            let encoding = entry
                .get("encoding")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("results[{i}]: missing string \"encoding\""))?;
            if !matches!(encoding, "dense" | "sparse") {
                return Err(format!(
                    "results[{i}]: \"encoding\" must be \"dense\" or \"sparse\", got {encoding:?}"
                ));
            }
            numbers.extend([
                "kernel_invocations",
                "slice_pairs",
                "blocks_skipped",
                "compressed_bytes",
            ]);
        }
        for key in numbers {
            let n = entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("results[{i}]: missing number {key:?}"))?;
            if !n.is_finite() || n < 0.0 {
                return Err(format!("results[{i}]: {key:?} must be finite and non-negative"));
            }
        }
        validate_latency(entry, i)?;
    }
    Ok(())
}

/// Checks one result entry's `latency_ns` block: present, with
/// monotonically non-decreasing percentiles.
fn validate_latency(entry: &Json, i: usize) -> Result<(), String> {
    let latency = entry
        .get("latency_ns")
        .ok_or_else(|| format!("results[{i}]: missing \"latency_ns\""))?;
    let mut prev = 0.0f64;
    for key in ["min", "p50", "p90", "p99", "max"] {
        let n = latency
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("results[{i}].latency_ns: missing {key:?}"))?;
        if n < prev {
            return Err(format!(
                "results[{i}].latency_ns: {key:?} = {n} below preceding percentile {prev}"
            ));
        }
        prev = n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn minimal_bench() -> Json {
        object([
            ("bench", num_u64(6)),
            ("schema_version", num_u64(1)),
            ("mode", Json::String("smoke".to_string())),
            ("iterations", num_u64(5)),
            (
                "results",
                Json::Array(vec![object([
                    ("backend", Json::String("serial-pim".to_string())),
                    ("generator", Json::String("ba".to_string())),
                    ("vertices", num_u64(300)),
                    ("edges", num_u64(1475)),
                    ("triangles", num_u64(778)),
                    ("iterations", num_u64(5)),
                    ("qps", Json::Number(123.4)),
                    (
                        "latency_ns",
                        object([
                            ("min", num_u64(100)),
                            ("p50", num_u64(110)),
                            ("p90", num_u64(120)),
                            ("p99", num_u64(130)),
                            ("max", num_u64(140)),
                            ("mean", Json::Number(112.5)),
                        ]),
                    ),
                ])]),
            ),
        ])
    }

    #[test]
    fn validator_accepts_the_emitted_schema() {
        assert_eq!(validate_bench(&minimal_bench()), Ok(()));
    }

    #[test]
    fn validator_requires_encoding_accounting_from_bench_seven_on() {
        let mut v7 = minimal_bench();
        if let Json::Object(map) = &mut v7 {
            map.insert("bench".to_string(), num_u64(7));
        }
        let err = validate_bench(&v7).unwrap_err();
        assert!(err.contains("encoding"), "{err}");

        if let Json::Object(map) = &mut v7 {
            if let Some(Json::Array(items)) = map.get_mut("results") {
                if let Json::Object(entry) = &mut items[0] {
                    entry.insert("encoding".to_string(), Json::String("sparse".to_string()));
                    for key in [
                        "kernel_invocations",
                        "slice_pairs",
                        "blocks_skipped",
                        "compressed_bytes",
                    ] {
                        entry.insert(key.to_string(), num_u64(1));
                    }
                }
            }
        }
        assert_eq!(validate_bench(&v7), Ok(()));
    }

    #[test]
    fn validator_accepts_and_checks_load_entries() {
        let load_entry = |executions: u64| {
            object([
                ("backend", Json::String("gateway".to_string())),
                ("generator", Json::String("mixed".to_string())),
                ("coalesce", Json::Bool(true)),
                ("offered_qps", num_u64(2000)),
                ("queries", num_u64(240)),
                ("executions", num_u64(executions)),
                ("batches", num_u64(40)),
                ("shed", num_u64(0)),
                ("updates", num_u64(6)),
                ("qps", Json::Number(1987.0)),
                (
                    "latency_ns",
                    object([
                        ("min", num_u64(100)),
                        ("p50", num_u64(110)),
                        ("p90", num_u64(120)),
                        ("p99", num_u64(130)),
                        ("max", num_u64(140)),
                        ("mean", Json::Number(112.5)),
                    ]),
                ),
            ])
        };
        let doc = |entry: Json| {
            object([
                ("bench", num_u64(9)),
                ("schema_version", num_u64(2)),
                ("mode", Json::String("smoke".to_string())),
                ("iterations", num_u64(240)),
                ("results", Json::Array(vec![entry])),
            ])
        };
        assert_eq!(validate_bench(&doc(load_entry(60))), Ok(()));
        // More executions than queries is impossible provenance.
        let err = validate_bench(&doc(load_entry(241))).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        // A load entry without its coalesce flag is rejected.
        let mut stripped = load_entry(60);
        if let Json::Object(map) = &mut stripped {
            map.remove("coalesce");
        }
        let err = validate_bench(&doc(stripped)).unwrap_err();
        assert!(err.contains("coalesce"), "{err}");
    }

    #[test]
    fn validator_requires_query_shape_from_bench_ten_on() {
        let mut v10 = minimal_bench();
        if let Json::Object(map) = &mut v10 {
            map.insert("bench".to_string(), num_u64(10));
            if let Some(Json::Array(items)) = map.get_mut("results") {
                if let Json::Object(entry) = &mut items[0] {
                    entry.insert("encoding".to_string(), Json::String("dense".to_string()));
                    for key in [
                        "kernel_invocations",
                        "slice_pairs",
                        "blocks_skipped",
                        "compressed_bytes",
                    ] {
                        entry.insert(key.to_string(), num_u64(1));
                    }
                }
            }
        }
        let err = validate_bench(&v10).unwrap_err();
        assert!(err.contains("query"), "{err}");

        if let Json::Object(map) = &mut v10 {
            if let Some(Json::Array(items)) = map.get_mut("results") {
                if let Json::Object(entry) = &mut items[0] {
                    entry.insert("query".to_string(), Json::String("k-truss".to_string()));
                }
            }
        }
        let err = validate_bench(&v10).unwrap_err();
        assert!(err.contains("result_cardinality"), "{err}");

        if let Json::Object(map) = &mut v10 {
            if let Some(Json::Array(items)) = map.get_mut("results") {
                if let Json::Object(entry) = &mut items[0] {
                    entry.insert("result_cardinality".to_string(), num_u64(42));
                }
            }
        }
        assert_eq!(validate_bench(&v10), Ok(()));
    }

    #[test]
    fn validator_rejects_missing_and_disordered_fields() {
        let mut missing = minimal_bench();
        if let Json::Object(map) = &mut missing {
            map.remove("results");
        }
        assert!(validate_bench(&missing).unwrap_err().contains("results"));

        let mut disordered = minimal_bench();
        if let Json::Object(map) = &mut disordered {
            let results = map.get_mut("results").unwrap();
            if let Json::Array(items) = results {
                if let Json::Object(entry) = &mut items[0] {
                    let latency = entry.get_mut("latency_ns").unwrap();
                    if let Json::Object(lat) = latency {
                        lat.insert("p99".to_string(), num_u64(1));
                    }
                }
            }
        }
        assert!(validate_bench(&disordered).unwrap_err().contains("p99"));
    }
}
