//! BENCH artifact comparison: per-cell QPS/p99 deltas between two
//! `BENCH_*.json` files, with a configurable regression gate.
//!
//! `bench_json --compare OLD.json NEW.json [--threshold F]` drives
//! this from the CLI; CI runs it with a generous threshold against the
//! committed `BENCH_7.json` so a catastrophic perf regression (an
//! accidentally quadratic path, a lost fast path) fails the build while
//! ordinary cross-machine noise between the committed full run and the
//! CI smoke run does not.
//!
//! Cells are keyed by `backend × generator × encoding` (the encoding
//! key is absent for pre-BENCH_7 artifacts and compares as `-`). A cell
//! *regresses* when its throughput falls below `old × (1 − threshold)`
//! or its p99 latency rises above `old × (1 + threshold)`; cells
//! present in OLD but missing from NEW count as regressions too (a
//! silently dropped backend must not pass the gate).

use std::fmt;

use crate::json::Json;

/// One compared `backend × generator × encoding` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDelta {
    /// Human-readable cell key, `backend × generator × encoding`.
    pub key: String,
    /// Throughput in the OLD artifact (queries per second).
    pub old_qps: f64,
    /// Throughput in the NEW artifact.
    pub new_qps: f64,
    /// p99 latency in the OLD artifact (ns).
    pub old_p99_ns: f64,
    /// p99 latency in the NEW artifact (ns).
    pub new_p99_ns: f64,
    /// Whether this cell breached the regression threshold.
    pub regressed: bool,
}

impl CellDelta {
    /// `new / old` throughput ratio (> 1 is faster).
    pub fn qps_ratio(&self) -> f64 {
        if self.old_qps > 0.0 {
            self.new_qps / self.old_qps
        } else {
            f64::INFINITY
        }
    }

    /// `new / old` p99 ratio (< 1 is faster).
    pub fn p99_ratio(&self) -> f64 {
        if self.old_p99_ns > 0.0 {
            self.new_p99_ns / self.old_p99_ns
        } else {
            f64::INFINITY
        }
    }
}

/// The outcome of comparing two BENCH artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// The regression threshold in force (fractional: 0.25 = 25%).
    pub threshold: f64,
    /// Every cell present in both artifacts, in OLD order.
    pub cells: Vec<CellDelta>,
    /// Cells present in OLD but missing from NEW (each a regression).
    pub missing: Vec<String>,
    /// Cells present only in NEW (informational, never a failure).
    pub added: Vec<String>,
}

impl CompareReport {
    /// Number of regressed cells, dropped cells included.
    pub fn regressions(&self) -> usize {
        self.cells.iter().filter(|c| c.regressed).count() + self.missing.len()
    }

    /// Whether the comparison passes the gate.
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }
}

impl fmt::Display for CompareReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<40} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8}",
            "cell", "old qps", "new qps", "ratio", "old p99 ns", "new p99 ns", "ratio"
        )?;
        for cell in &self.cells {
            writeln!(
                f,
                "{:<40} {:>12.1} {:>12.1} {:>7.2}x {:>12.0} {:>12.0} {:>7.2}x{}",
                cell.key,
                cell.old_qps,
                cell.new_qps,
                cell.qps_ratio(),
                cell.old_p99_ns,
                cell.new_p99_ns,
                cell.p99_ratio(),
                if cell.regressed { "  REGRESSED" } else { "" }
            )?;
        }
        for key in &self.missing {
            writeln!(f, "{key:<40} MISSING from new artifact  REGRESSED")?;
        }
        for key in &self.added {
            writeln!(f, "{key:<40} new cell (no baseline)")?;
        }
        write!(
            f,
            "{} cells compared, {} regressions (threshold {:.0}%)",
            self.cells.len(),
            self.regressions(),
            self.threshold * 100.0
        )
    }
}

fn cells_of(doc: &Json) -> Result<Vec<(String, f64, f64)>, String> {
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing or non-array \"results\"".to_string())?;
    let mut cells = Vec::with_capacity(results.len());
    for (i, entry) in results.iter().enumerate() {
        let backend = entry
            .get("backend")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("results[{i}]: missing \"backend\""))?;
        let generator = entry
            .get("generator")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("results[{i}]: missing \"generator\""))?;
        let encoding = entry.get("encoding").and_then(Json::as_str).unwrap_or("-");
        let qps = entry
            .get("qps")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("results[{i}]: missing number \"qps\""))?;
        let p99 = entry
            .get("latency_ns")
            .and_then(|l| l.get("p99"))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("results[{i}]: missing number \"latency_ns.p99\""))?;
        cells.push((format!("{backend} × {generator} × {encoding}"), qps, p99));
    }
    Ok(cells)
}

/// Compares two parsed BENCH artifacts cell by cell.
///
/// # Errors
///
/// Returns the first schema problem found in either document, or a
/// rejection of a non-finite / out-of-range `threshold`.
pub fn compare_bench(old: &Json, new: &Json, threshold: f64) -> Result<CompareReport, String> {
    if !threshold.is_finite() || !(0.0..1.0).contains(&threshold) {
        return Err(format!("threshold must be in [0, 1), got {threshold}"));
    }
    let old_cells = cells_of(old).map_err(|e| format!("old artifact: {e}"))?;
    let new_cells = cells_of(new).map_err(|e| format!("new artifact: {e}"))?;

    let mut cells = Vec::new();
    let mut missing = Vec::new();
    for (key, old_qps, old_p99) in &old_cells {
        match new_cells.iter().find(|(k, _, _)| k == key) {
            Some((_, new_qps, new_p99)) => {
                let regressed = *new_qps < old_qps * (1.0 - threshold)
                    || *new_p99 > old_p99 * (1.0 + threshold);
                cells.push(CellDelta {
                    key: key.clone(),
                    old_qps: *old_qps,
                    new_qps: *new_qps,
                    old_p99_ns: *old_p99,
                    new_p99_ns: *new_p99,
                    regressed,
                });
            }
            None => missing.push(key.clone()),
        }
    }
    let added = new_cells
        .iter()
        .filter(|(k, _, _)| !old_cells.iter().any(|(ok, _, _)| ok == k))
        .map(|(k, _, _)| k.clone())
        .collect();
    Ok(CompareReport { threshold, cells, missing, added })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{num_u64, object, parse};

    fn artifact(cells: &[(&str, &str, &str, f64, u64)]) -> Json {
        object([
            ("bench", num_u64(7)),
            (
                "results",
                Json::Array(
                    cells
                        .iter()
                        .map(|(b, g, e, qps, p99)| {
                            object([
                                ("backend", Json::String((*b).to_string())),
                                ("generator", Json::String((*g).to_string())),
                                ("encoding", Json::String((*e).to_string())),
                                ("qps", Json::Number(*qps)),
                                ("latency_ns", object([("p99", num_u64(*p99))])),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn equal_artifacts_pass() {
        let doc = artifact(&[("serial-pim", "ba", "dense", 1000.0, 900)]);
        let report = compare_bench(&doc, &doc, 0.25).unwrap();
        assert!(report.passed());
        assert_eq!(report.cells.len(), 1);
        assert!((report.cells[0].qps_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qps_collapse_and_p99_blowup_regress() {
        let old = artifact(&[
            ("serial-pim", "ba", "dense", 1000.0, 900),
            ("sharded-4", "rmat", "sparse", 500.0, 2000),
        ]);
        let new = artifact(&[
            ("serial-pim", "ba", "dense", 700.0, 900), // −30% qps
            ("sharded-4", "rmat", "sparse", 500.0, 2600), // +30% p99
        ]);
        let report = compare_bench(&old, &new, 0.25).unwrap();
        assert_eq!(report.regressions(), 2);
        assert!(!report.passed());
        // A looser gate lets both through.
        assert!(compare_bench(&old, &new, 0.35).unwrap().passed());
    }

    #[test]
    fn dropped_cells_regress_and_added_cells_inform() {
        let old = artifact(&[("serial-pim", "ba", "dense", 1000.0, 900)]);
        let new = artifact(&[("scheduled-pim-4", "ba", "dense", 1000.0, 900)]);
        let report = compare_bench(&old, &new, 0.25).unwrap();
        assert_eq!(report.missing, vec!["serial-pim × ba × dense"]);
        assert_eq!(report.added, vec!["scheduled-pim-4 × ba × dense"]);
        assert!(!report.passed());
        let text = report.to_string();
        assert!(text.contains("MISSING"), "{text}");
    }

    #[test]
    fn invalid_thresholds_are_rejected() {
        let doc = artifact(&[("serial-pim", "ba", "dense", 1000.0, 900)]);
        assert!(compare_bench(&doc, &doc, 1.0).is_err());
        assert!(compare_bench(&doc, &doc, -0.1).is_err());
        assert!(compare_bench(&doc, &doc, f64::NAN).is_err());
    }

    #[test]
    fn compares_the_committed_artifact_against_itself() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_7.json"
        ))
        .expect("committed artifact exists");
        let doc = parse(&text).expect("committed artifact parses");
        let report = compare_bench(&doc, &doc, 0.25).unwrap();
        assert!(report.passed());
        assert_eq!(report.cells.len(), 12, "3 backends × 2 generators × 2 encodings");
    }
}
