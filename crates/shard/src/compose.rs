//! The cross-shard composition pass: one AND + BitCount kernel per
//! cross-shard arc, fanned over computational arrays through the
//! `tcim-sched` delta-job machinery.
//!
//! A cross arc `(a, c)` (tail shard `s`, head shard `t > s`) needs
//! `popcount(R_a AND C_c)` over the global bit universe. Both operands
//! are stored split at their shard cuts ([`crate::boundary`]), and
//! because shard slice ranges are disjoint the full kernel decomposes
//! into three region-disjoint sub-passes whose valid-pair counts sum to
//! the monolithic arc's:
//!
//! ```text
//!   R_a.local    AND  C_c.boundary   → middles in shard s
//!   R_a.boundary AND  C_c.boundary   → middles in shards between s and t
//!   R_a.boundary AND  C_c.local      → middles in shard t
//! ```
//!
//! Each surviving bit `w` names the triangle `(a, w, c)` — read back
//! out when attribution is requested, exactly like the monolithic
//! attributed run.

use tcim_arch::{SliceCostModel, TriangleSink, TriangleTally};
use tcim_bitmatrix::popcount::{popcount_word, visit_set_bits, PopcountMethod};
use tcim_bitmatrix::RowEncoding;
use tcim_sched::{parallel_map_indexed, plan_deltas, DeltaJob, SchedPolicy};

use crate::boundary::{BoundarySlices, SplitOperand};
use crate::error::{Result, ShardError};
use crate::plan::ShardPlan;
use crate::spec::ShardMode;

/// The merged outcome of one composition pass.
#[derive(Debug, Clone)]
pub struct CompositionRun {
    /// Triangles spanning at least two shards.
    pub triangles: u64,
    /// Per-vertex participation over the *global oriented* id space;
    /// present only for attributed runs.
    pub per_vertex: Option<Vec<u64>>,
    /// Per-arc triangle support `(i, j, count)` over global oriented
    /// arcs, ascending; present only when support was requested.
    pub support: Option<Vec<(u32, u32, u64)>>,
    /// Kernel dispatches: one per cross-shard arc on dense operands;
    /// sparse operands skip arcs whose summary walk visits nothing.
    pub kernel_invocations: u64,
    /// Valid slice pairs AND + BitCounted across all region sub-passes
    /// (equal to the monolithic pair count over the same arcs on dense
    /// operands; sparse operands skip byte-disjoint pairs).
    pub slice_pairs: u64,
    /// Mutually valid pairs proven zero by the sparse byte-mask filter
    /// and skipped before the AND (zero on dense operands).
    pub blocks_skipped: u64,
    /// Non-zero AND results read back out (attributed runs only).
    pub result_readouts: u64,
    /// Operand slices written into arrays.
    pub write_slices: u64,
    /// Modelled critical path of the pass (serial host dispatch plus
    /// the busiest array's AND/BitCount/readout work), in seconds.
    pub critical_path_s: f64,
    /// Modelled energy of the pass (J).
    pub modelled_energy_j: f64,
    /// Load-imbalance factor of the placement (`max / mean` busy time).
    pub imbalance: f64,
    /// Placement units the pass was scheduled as: arcs in
    /// [`ShardMode::OneD`], `(tail shard, head shard)` edge blocks in
    /// [`ShardMode::TwoD`].
    pub placement_units: usize,
}

/// The structural kernel census of a composition pass, computed
/// without executing any kernels.
///
/// The composition's dispatch accounting is *structural*: whether an
/// arc dispatches and how many slice pairs it visits depend only on
/// the boundary operands' valid-slice structure (and the sparse
/// byte-mask filter), never on placement or AND results. A dry run
/// over the same [`BoundarySlices`] therefore predicts the executed
/// [`CompositionRun`]'s `kernel_invocations` / `slice_pairs` /
/// `blocks_skipped` bit-exactly — which is what query EXPLAIN plans
/// rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComposeCensus {
    /// Kernel dispatches the pass will make (one per cross arc on
    /// dense operands; sparse arcs whose sub-passes all filter to
    /// nothing are skipped).
    pub kernel_invocations: u64,
    /// Valid slice pairs the pass will AND + BitCount.
    pub slice_pairs: u64,
    /// Mutually valid pairs the sparse byte-mask filter will skip.
    pub blocks_skipped: u64,
}

/// Walks the composition pass's arcs without executing kernels and
/// returns the exact dispatch census the pass will produce (the same
/// per-arc rule as [`compose`]'s inner loop, minus the ANDs).
///
/// # Errors
///
/// Returns [`ShardError::MissingBoundary`] when an arc's operands were
/// not extracted (an internal invariant violation).
pub fn compose_census(boundary: &BoundarySlices) -> Result<ComposeCensus> {
    let mut census = ComposeCensus::default();
    for &(a, c) in boundary.cross_arcs() {
        let row = operand(boundary.row(a), a, "row")?;
        let col = operand(boundary.col(c), c, "column")?;
        let sparse = row.local.encoding() == RowEncoding::Sparse;
        let pairs_before = census.slice_pairs;
        for (left, right) in [
            (&row.local, &col.boundary),
            (&row.boundary, &col.boundary),
            (&row.boundary, &col.local),
        ] {
            let pair_stats = left
                .for_each_matching_index(right, |_| {})
                .expect("boundary operands share slice size and universe");
            census.slice_pairs += pair_stats.visited;
            census.blocks_skipped += pair_stats.skipped;
        }
        if !sparse || census.slice_pairs > pairs_before {
            census.kernel_invocations += 1;
        }
    }
    Ok(census)
}

/// One worker array's partial results.
struct ArrayPartial {
    triangles: u64,
    invocations: u64,
    pairs: u64,
    skipped: u64,
    readouts: u64,
    writes: u64,
    busy_s: f64,
    tally: Option<TriangleTally>,
}

/// Runs the composition pass for `plan` over the extracted `boundary`
/// material, placing kernels onto `policy.arrays` arrays.
///
/// With `attributed` set, every non-zero AND result is read back out
/// and each surviving middle vertex `w` is recorded as the triangle
/// `(a, w, c)`; `need_support` additionally accumulates per-arc
/// support.
///
/// # Errors
///
/// Returns [`ShardError::MissingBoundary`] when an arc's operands were
/// not extracted (an internal invariant violation) and propagates
/// placement errors.
pub fn compose(
    vertex_count: usize,
    plan: &ShardPlan,
    boundary: &BoundarySlices,
    policy: &SchedPolicy,
    costs: &SliceCostModel,
    attributed: bool,
    need_support: bool,
) -> Result<CompositionRun> {
    policy.validate().map_err(ShardError::Sched)?;
    let arcs = boundary.cross_arcs();

    // Group arcs into placement units and price each unit.
    let units: Vec<Vec<usize>> = match plan.mode() {
        ShardMode::OneD => (0..arcs.len()).map(|k| vec![k]).collect(),
        ShardMode::TwoD => {
            let mut blocks: std::collections::BTreeMap<(usize, usize), Vec<usize>> =
                std::collections::BTreeMap::new();
            for (k, &(a, c)) in arcs.iter().enumerate() {
                blocks.entry((plan.shard_of(a), plan.shard_of(c))).or_default().push(k);
            }
            blocks.into_values().collect()
        }
    };
    let jobs: Vec<DeltaJob> = units
        .iter()
        .enumerate()
        .map(|(id, unit)| price_unit(id, unit, arcs, boundary, costs))
        .collect::<Result<_>>()?;
    let delta_plan = plan_deltas(&jobs, policy).map_err(ShardError::Sched)?;
    let per_array = delta_plan.per_array_jobs();

    // Execute each array's units; merge deterministically in array
    // order afterwards.
    let threads = policy.resolved_host_threads();
    let partials: Vec<Result<ArrayPartial>> =
        parallel_map_indexed(per_array.len(), threads, |array| {
            let mut partial = ArrayPartial {
                triangles: 0,
                invocations: 0,
                pairs: 0,
                skipped: 0,
                readouts: 0,
                writes: 0,
                busy_s: 0.0,
                tally: attributed.then(|| TriangleTally::new(vertex_count, need_support)),
            };
            for &unit in &per_array[array] {
                run_unit(&units[unit], arcs, boundary, &mut partial)?;
            }
            partial.busy_s = costs.write_latency_s * partial.writes as f64
                + (costs.and_latency_s + costs.bitcount_latency_s) * partial.pairs as f64
                + costs.readout_latency_s * partial.readouts as f64;
            Ok(partial)
        });

    let mut triangles = 0u64;
    let mut invocations = 0u64;
    let mut pairs = 0u64;
    let mut skipped = 0u64;
    let mut readouts = 0u64;
    let mut writes = 0u64;
    let mut busy: Vec<f64> = Vec::with_capacity(per_array.len());
    let mut per_vertex = attributed.then(|| vec![0u64; vertex_count]);
    let mut support: Option<std::collections::BTreeMap<(u32, u32), u64>> =
        (attributed && need_support).then(std::collections::BTreeMap::new);
    for partial in partials {
        let partial = partial?;
        triangles += partial.triangles;
        invocations += partial.invocations;
        pairs += partial.pairs;
        skipped += partial.skipped;
        readouts += partial.readouts;
        writes += partial.writes;
        busy.push(partial.busy_s);
        if let Some(tally) = partial.tally {
            let (_, pv, sp) = tally.into_parts();
            if let Some(total) = per_vertex.as_mut() {
                for (t, p) in total.iter_mut().zip(&pv) {
                    *t += p;
                }
            }
            if let (Some(map), Some(sp)) = (support.as_mut(), sp) {
                for (i, j, c) in sp {
                    *map.entry((i, j)).or_insert(0) += c;
                }
            }
        }
    }

    // Host dispatch stays serial (one controller), array work runs on
    // the busiest array's clock.
    let host_s = arcs.len() as f64 * costs.controller_overhead_s;
    let max_busy = busy.iter().copied().fold(0.0, f64::max);
    let mean_busy =
        if busy.is_empty() { 0.0 } else { busy.iter().sum::<f64>() / busy.len() as f64 };
    let energy = costs.write_energy_j * writes as f64
        + (costs.and_energy_j + costs.bitcount_energy_j) * pairs as f64
        + costs.readout_energy_j * readouts as f64;

    Ok(CompositionRun {
        triangles,
        per_vertex,
        support: support.map(|map| map.into_iter().map(|((i, j), c)| (i, j, c)).collect()),
        kernel_invocations: invocations,
        slice_pairs: pairs,
        blocks_skipped: skipped,
        result_readouts: readouts,
        write_slices: writes,
        critical_path_s: host_s + max_busy,
        modelled_energy_j: energy,
        imbalance: if mean_busy > 0.0 { max_busy / mean_busy } else { 1.0 },
        placement_units: units.len(),
    })
}

/// Prices one placement unit: operand write slices (each distinct
/// operand written once per unit — the 2D mode's reuse) plus a pair
/// upper bound for load balancing.
fn price_unit(
    id: usize,
    unit: &[usize],
    arcs: &[(u32, u32)],
    boundary: &BoundarySlices,
    costs: &SliceCostModel,
) -> Result<DeltaJob> {
    let mut row_writes = 0u64;
    let mut col_writes = 0u64;
    let mut est_pairs = 0u64;
    let mut seen_rows: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut seen_cols: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for &k in unit {
        let (a, c) = arcs[k];
        let row = operand(boundary.row(a), a, "row")?;
        let col = operand(boundary.col(c), c, "column")?;
        if seen_rows.insert(a) {
            row_writes += row.valid_slices();
        }
        if seen_cols.insert(c) {
            col_writes += col.valid_slices();
        }
        est_pairs += row.valid_slices().min(col.valid_slices());
    }
    Ok(DeltaJob::price(id, row_writes, col_writes, est_pairs, costs))
}

fn operand<'a>(
    found: Option<&'a SplitOperand>,
    vertex: u32,
    side: &'static str,
) -> Result<&'a SplitOperand> {
    found.ok_or(ShardError::MissingBoundary { vertex, side })
}

/// Executes one placement unit's arcs on one array: every arc runs its
/// three region sub-passes, counting operand writes with per-unit
/// reuse (a 2D block writes each distinct operand once).
fn run_unit(
    unit: &[usize],
    arcs: &[(u32, u32)],
    boundary: &BoundarySlices,
    partial: &mut ArrayPartial,
) -> Result<()> {
    let mut seen_rows: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut seen_cols: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for &k in unit {
        let (a, c) = arcs[k];
        let row = operand(boundary.row(a), a, "row")?;
        let col = operand(boundary.col(c), c, "column")?;
        if seen_rows.insert(a) {
            partial.writes += row.valid_slices();
        }
        if seen_cols.insert(c) {
            partial.writes += col.valid_slices();
        }
        // A sparse arc whose three sub-passes all filter to nothing is
        // never dispatched; dense arcs always are.
        let sparse = row.local.encoding() == RowEncoding::Sparse;
        let pairs_before = partial.pairs;
        for (left, right) in [
            (&row.local, &col.boundary),
            (&row.boundary, &col.boundary),
            (&row.boundary, &col.local),
        ] {
            let slice_bits = left.slice_size().bits();
            let pair_stats = left
                .for_each_matching(right, |slice, anded| {
                    partial.pairs += 1;
                    let count: u64 = anded
                        .iter()
                        .map(|&w| u64::from(popcount_word(w, PopcountMethod::Native)))
                        .sum();
                    partial.triangles += count;
                    if count > 0 {
                        if let Some(tally) = partial.tally.as_mut() {
                            partial.readouts += 1;
                            visit_set_bits(anded.iter().copied(), |offset| {
                                tally.triangle(a, slice * slice_bits + offset, c);
                            });
                        }
                    }
                })
                .expect("boundary operands share slice size and universe");
            partial.skipped += pair_stats.skipped;
        }
        if !sparse || partial.pairs > pairs_before {
            partial.invocations += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_shards;
    use crate::spec::ShardSpec;
    use tcim_arch::{PimConfig, PimEngine};
    use tcim_bitmatrix::SliceSize;
    use tcim_graph::generators::gnm;
    use tcim_graph::{CsrGraph, Orientation, OrientedGraph};

    fn costs() -> SliceCostModel {
        PimEngine::new(&PimConfig::default()).unwrap().cost_model()
    }

    fn fixture(shards: usize, mode_2d: bool) -> (CsrGraph, OrientedGraph, CompositionRun) {
        let g = gnm(512, 3500, 9).unwrap();
        let oriented = Orientation::Natural.orient(&g);
        let spec = if mode_2d { ShardSpec::two_d(shards) } else { ShardSpec::one_d(shards) };
        let plan = plan_shards(&oriented, &spec, SliceSize::S64).unwrap();
        let boundary =
            BoundarySlices::extract(&oriented, &plan, SliceSize::S64, RowEncoding::Dense);
        let run = compose(
            oriented.vertex_count(),
            &plan,
            &boundary,
            &SchedPolicy::with_arrays(4),
            &costs(),
            true,
            true,
        )
        .unwrap();
        (g, oriented, run)
    }

    /// CPU reference: triangles whose extreme vertices span shards.
    fn cross_reference(oriented: &OrientedGraph, plan: &ShardPlan) -> u64 {
        let mut count = 0u64;
        for (a, c) in oriented.arcs() {
            if !plan.is_cross(a, c) {
                continue;
            }
            // Middles w: heads of a that are tails of c.
            for &w in oriented.row(a) {
                if w < c && oriented.row(w).binary_search(&c).is_ok() {
                    count += 1;
                }
            }
        }
        count
    }

    #[test]
    fn composition_counts_exactly_the_cross_shard_triangles() {
        for shards in [2usize, 4, 8] {
            let g = gnm(512, 3500, 9).unwrap();
            let oriented = Orientation::Natural.orient(&g);
            let plan =
                plan_shards(&oriented, &ShardSpec::one_d(shards), SliceSize::S64).unwrap();
            let boundary =
                BoundarySlices::extract(&oriented, &plan, SliceSize::S64, RowEncoding::Dense);
            let run = compose(
                oriented.vertex_count(),
                &plan,
                &boundary,
                &SchedPolicy::with_arrays(4),
                &costs(),
                false,
                false,
            )
            .unwrap();
            assert_eq!(run.triangles, cross_reference(&oriented, &plan), "{shards} shards");
            assert_eq!(run.kernel_invocations, plan.cross_arcs());
            assert_eq!(run.result_readouts, 0, "count-only runs read nothing out");
        }
    }

    #[test]
    fn attribution_sums_to_three_per_triangle_and_support_to_three() {
        let (_, _, run) = fixture(4, false);
        let pv = run.per_vertex.as_ref().unwrap();
        assert_eq!(pv.iter().sum::<u64>(), 3 * run.triangles);
        let support = run.support.as_ref().unwrap();
        assert_eq!(support.iter().map(|&(_, _, c)| c).sum::<u64>(), 3 * run.triangles);
        assert!(run.result_readouts > 0);
        assert!(run.critical_path_s > 0.0);
        assert!(run.modelled_energy_j > 0.0);
    }

    #[test]
    fn two_d_blocks_count_identically_with_fewer_units_and_writes() {
        let (_, _, one_d) = fixture(4, false);
        let (_, _, two_d) = fixture(4, true);
        assert_eq!(one_d.triangles, two_d.triangles);
        assert_eq!(one_d.slice_pairs, two_d.slice_pairs);
        assert_eq!(one_d.per_vertex, two_d.per_vertex);
        assert_eq!(one_d.support, two_d.support);
        assert!(
            two_d.placement_units < one_d.placement_units,
            "blocks must coarsen placement ({} vs {})",
            two_d.placement_units,
            one_d.placement_units
        );
        assert!(
            two_d.write_slices < one_d.write_slices,
            "block operand reuse must save writes ({} vs {})",
            two_d.write_slices,
            one_d.write_slices
        );
    }

    #[test]
    fn slice_pairs_match_the_monolithic_pair_count_over_cross_arcs() {
        // The three region sub-passes partition the monolithic arc's
        // matching pairs, so totals must agree with a full-vector AND.
        let g = gnm(512, 3500, 9).unwrap();
        let oriented = Orientation::Natural.orient(&g);
        let plan = plan_shards(&oriented, &ShardSpec::one_d(4), SliceSize::S64).unwrap();
        let boundary =
            BoundarySlices::extract(&oriented, &plan, SliceSize::S64, RowEncoding::Dense);
        let run = compose(
            oriented.vertex_count(),
            &plan,
            &boundary,
            &SchedPolicy::with_arrays(2),
            &costs(),
            false,
            false,
        )
        .unwrap();

        let n = oriented.vertex_count();
        let mut in_lists: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, c) in oriented.arcs() {
            in_lists[c as usize].push(a as usize);
        }
        let mut expected = 0u64;
        for &(a, c) in boundary.cross_arcs() {
            let row = tcim_bitmatrix::SlicedBitVector::from_sorted_indices(
                n,
                oriented.row(a).iter().map(|&j| j as usize),
                SliceSize::S64,
            );
            let col = tcim_bitmatrix::SlicedBitVector::from_sorted_indices(
                n,
                in_lists[c as usize].iter().copied(),
                SliceSize::S64,
            );
            expected += row.matching_slices(&col).unwrap().count() as u64;
        }
        assert_eq!(run.slice_pairs, expected);
    }

    #[test]
    fn census_dry_run_matches_the_executed_pass_exactly() {
        for encoding in [RowEncoding::Dense, RowEncoding::Sparse] {
            let g = gnm(512, 3500, 9).unwrap();
            let oriented = Orientation::Natural.orient(&g);
            let plan = plan_shards(&oriented, &ShardSpec::one_d(4), SliceSize::S64).unwrap();
            let boundary = BoundarySlices::extract(&oriented, &plan, SliceSize::S64, encoding);
            let census = compose_census(&boundary).unwrap();
            let run = compose(
                oriented.vertex_count(),
                &plan,
                &boundary,
                &SchedPolicy::with_arrays(4),
                &costs(),
                false,
                false,
            )
            .unwrap();
            assert_eq!(census.kernel_invocations, run.kernel_invocations, "{encoding}");
            assert_eq!(census.slice_pairs, run.slice_pairs, "{encoding}");
            assert_eq!(census.blocks_skipped, run.blocks_skipped, "{encoding}");
        }
    }

    #[test]
    fn empty_composition_is_a_no_op() {
        let g = gnm(128, 600, 1).unwrap();
        let oriented = Orientation::Natural.orient(&g);
        let plan = plan_shards(&oriented, &ShardSpec::one_d(1), SliceSize::S64).unwrap();
        let boundary =
            BoundarySlices::extract(&oriented, &plan, SliceSize::S64, RowEncoding::Dense);
        let run = compose(
            oriented.vertex_count(),
            &plan,
            &boundary,
            &SchedPolicy::with_arrays(4),
            &costs(),
            true,
            true,
        )
        .unwrap();
        assert_eq!(run.triangles, 0);
        assert_eq!(run.slice_pairs, 0);
        assert_eq!(run.imbalance, 1.0);
        assert_eq!(run.placement_units, 0);
    }
}
