//! Degree-aware 1D partitioning of the oriented DAG into contiguous,
//! slice-aligned vertex ranges.
//!
//! A shard owns a contiguous range of *oriented* vertex ids, cut at
//! multiples of the slice size so every shard's bit-space is a whole
//! number of slices — the property that makes boundary extraction
//! ([`crate::boundary`]) a pure slice-index restriction. Cuts are
//! placed by weighted prefix sums (weight = 1 + out-degree), so a
//! hub-heavy prefix gets a narrower range than a sparse tail: the
//! degree-aware balancing the UPMEM triangle-counting study found
//! necessary for real PIM fleets.

use tcim_bitmatrix::SliceSize;
use tcim_graph::OrientedGraph;

use crate::error::Result;
use crate::spec::{ShardMode, ShardSpec};

/// A partition of the oriented DAG's vertices into contiguous,
/// slice-aligned ranges, one per shard.
///
/// Because ranges are contiguous in oriented-id order, a triangle
/// `a < b < c` whose extreme vertices `a` and `c` land in one shard has
/// its middle vertex `b` in the same shard — so intra-shard runs over
/// induced subgraphs and a composition pass over cross-shard arcs
/// `(a, c)` together count every triangle exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `ranges[s] = (lo, hi)`: shard `s` owns oriented ids `lo..hi`.
    ranges: Vec<(u32, u32)>,
    mode: ShardMode,
    /// Per-shard weight (1 + out-degree summed over owned vertices).
    weights: Vec<u64>,
    /// Slice width the cuts are aligned to.
    align_bits: u32,
    /// Arcs with both endpoints in one shard.
    intra_arcs: u64,
    /// Arcs whose endpoints land in different shards.
    cross_arcs: u64,
}

impl ShardPlan {
    /// Number of shards (including empty trailing ranges).
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }

    /// The vertex range `(lo, hi)` owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics when `s` is out of bounds.
    pub fn range(&self, s: usize) -> (u32, u32) {
        self.ranges[s]
    }

    /// All ranges, in shard order.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// The shard owning oriented vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is beyond the partitioned universe.
    pub fn shard_of(&self, v: u32) -> usize {
        let s = self.ranges.partition_point(|&(_, hi)| hi <= v);
        assert!(
            s < self.ranges.len() && v >= self.ranges[s].0,
            "vertex {v} outside the partitioned universe"
        );
        s
    }

    /// Whether arc `(a, c)` spans two shards (and therefore belongs to
    /// the composition pass rather than an intra-shard run).
    pub fn is_cross(&self, a: u32, c: u32) -> bool {
        self.shard_of(a) != self.shard_of(c)
    }

    /// The composition grouping mode the plan was built for.
    pub fn mode(&self) -> ShardMode {
        self.mode
    }

    /// The slice width (bits) the cuts are aligned to.
    pub fn align_bits(&self) -> u32 {
        self.align_bits
    }

    /// The slice-index range `[lo / |S|, ⌈hi / |S|⌉)` of shard `s` —
    /// disjoint across shards because cuts are slice-aligned and empty
    /// ranges yield empty slice ranges (a trailing empty shard after a
    /// cut clamped to an unaligned `n` must not re-cover the final
    /// partial slice).
    pub fn slice_range(&self, s: usize) -> std::ops::Range<u32> {
        let (lo, hi) = self.ranges[s];
        let start = lo / self.align_bits;
        if lo == hi {
            return start..start;
        }
        start..hi.div_ceil(self.align_bits)
    }

    /// Per-shard partition weight (1 + out-degree over owned vertices).
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Load-imbalance factor of the partition: heaviest shard weight
    /// over mean shard weight (idle shards included); `1.0` for an
    /// empty graph or a perfect split.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.weights.iter().sum();
        if total == 0 || self.weights.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.weights.len() as f64;
        let max = self.weights.iter().copied().max().unwrap_or(0) as f64;
        max / mean
    }

    /// Arcs with both endpoints inside one shard.
    pub fn intra_arcs(&self) -> u64 {
        self.intra_arcs
    }

    /// Arcs spanning two shards — the composition pass's workload (the
    /// *boundary edges* of the partition).
    pub fn cross_arcs(&self) -> u64 {
        self.cross_arcs
    }

    /// Number of shards owning a non-empty vertex range.
    pub fn occupied_shards(&self) -> usize {
        self.ranges.iter().filter(|&&(lo, hi)| hi > lo).count()
    }
}

/// Partitions `oriented` into `spec.shards` contiguous, slice-aligned
/// vertex ranges balanced by out-degree weight.
///
/// # Errors
///
/// Returns [`ShardError::InvalidSpec`](crate::ShardError::InvalidSpec)
/// for a malformed spec.
///
/// # Examples
///
/// ```
/// use tcim_bitmatrix::SliceSize;
/// use tcim_graph::{generators::gnm, Orientation};
/// use tcim_shard::{plan_shards, ShardSpec};
///
/// let g = gnm(512, 4000, 7)?;
/// let oriented = Orientation::Natural.orient(&g);
/// let plan = plan_shards(&oriented, &ShardSpec::one_d(4), SliceSize::S64)?;
/// assert_eq!(plan.shard_count(), 4);
/// // Every cut lands on a slice boundary and the ranges tile 0..512.
/// assert_eq!(plan.range(0).0, 0);
/// assert_eq!(plan.range(3).1, 512);
/// assert_eq!(plan.intra_arcs() + plan.cross_arcs(), g.edge_count() as u64);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn plan_shards(
    oriented: &OrientedGraph,
    spec: &ShardSpec,
    slice_size: SliceSize,
) -> Result<ShardPlan> {
    spec.validate()?;
    let n = oriented.vertex_count();
    let align = slice_size.bits();
    let k = spec.shards;

    // Weighted prefix sums: weight = 1 + out-degree, so empty rows
    // still advance cuts and hub rows attract narrower ranges.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0u64);
    for v in 0..n as u32 {
        prefix.push(prefix[v as usize] + 1 + oriented.row(v).len() as u64);
    }
    let total = *prefix.last().unwrap_or(&0);

    // Ideal cut s sits where the prefix reaches s/k of the total;
    // round to the nearest slice boundary, keeping cuts monotone.
    let mut cuts = Vec::with_capacity(k + 1);
    cuts.push(0u32);
    for s in 1..k {
        let target = total.div_ceil(k as u64) * s as u64;
        let ideal = prefix.partition_point(|&w| w < target).min(n);
        let aligned = ((ideal as u32 + align / 2) / align) * align;
        let cut = aligned.min(n as u32).max(*cuts.last().expect("cuts start non-empty"));
        cuts.push(cut);
    }
    cuts.push(n as u32);

    let ranges: Vec<(u32, u32)> = cuts.windows(2).map(|w| (w[0], w[1])).collect();
    let weights: Vec<u64> =
        ranges.iter().map(|&(lo, hi)| prefix[hi as usize] - prefix[lo as usize]).collect();

    let mut plan = ShardPlan {
        ranges,
        mode: spec.mode,
        weights,
        align_bits: align,
        intra_arcs: 0,
        cross_arcs: 0,
    };
    for (a, c) in oriented.arcs() {
        if plan.is_cross(a, c) {
            plan.cross_arcs += 1;
        } else {
            plan.intra_arcs += 1;
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_graph::generators::{classic, gnm};
    use tcim_graph::Orientation;

    fn plan(n: usize, m: usize, shards: usize) -> ShardPlan {
        let g = gnm(n, m, 11).unwrap();
        let oriented = Orientation::Natural.orient(&g);
        plan_shards(&oriented, &ShardSpec::one_d(shards), SliceSize::S64).unwrap()
    }

    #[test]
    fn ranges_tile_the_vertex_universe_with_aligned_cuts() {
        let p = plan(1000, 8000, 4);
        assert_eq!(p.shard_count(), 4);
        assert_eq!(p.range(0).0, 0);
        assert_eq!(p.range(3).1, 1000);
        for w in p.ranges().windows(2) {
            assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
        }
        for s in 0..3 {
            assert_eq!(p.range(s).1 % 64, 0, "interior cuts must be slice-aligned");
        }
        // Slice ranges are pairwise disjoint.
        for s in 0..3 {
            assert!(p.slice_range(s).end <= p.slice_range(s + 1).start);
        }
    }

    #[test]
    fn shard_of_respects_ranges_and_classifies_arcs() {
        let p = plan(640, 4000, 4);
        for s in 0..p.shard_count() {
            let (lo, hi) = p.range(s);
            if hi > lo {
                assert_eq!(p.shard_of(lo), s);
                assert_eq!(p.shard_of(hi - 1), s);
            }
        }
        assert_eq!(p.intra_arcs() + p.cross_arcs(), 4000);
    }

    #[test]
    fn degree_weighting_narrows_hub_ranges() {
        // A star with hub 0 under natural orientation: the hub row
        // carries all the weight, so the first cut hugs the hub.
        let g = classic::star(1024);
        let oriented = Orientation::Natural.orient(&g);
        let p = plan_shards(&oriented, &ShardSpec::one_d(2), SliceSize::S64).unwrap();
        let (lo, hi) = p.range(0);
        assert_eq!(lo, 0);
        assert!(hi <= 128, "hub-heavy prefix should get a narrow range, got 0..{hi}");
        assert!(p.imbalance() >= 1.0);
    }

    #[test]
    fn small_graphs_degenerate_to_fewer_occupied_shards() {
        let g = classic::wheel(20);
        let oriented = Orientation::Natural.orient(&g);
        let p = plan_shards(&oriented, &ShardSpec::one_d(8), SliceSize::S64).unwrap();
        assert_eq!(p.shard_count(), 8);
        assert_eq!(p.occupied_shards(), 1, "20 vertices < one 64-bit slice");
        assert_eq!(p.cross_arcs(), 0);
        // Empty shards own empty slice ranges — even when the occupied
        // shard ends at an unaligned n, no empty shard may re-cover
        // its final partial slice.
        for s in 0..8 {
            let (lo, hi) = p.range(s);
            if hi > lo {
                assert_eq!(p.slice_range(s), 0..1, "occupied shard {s}");
            } else {
                assert!(p.slice_range(s).is_empty(), "empty shard {s}");
            }
        }
    }

    #[test]
    fn single_shard_has_no_cross_arcs() {
        let p = plan(300, 2000, 1);
        assert_eq!(p.cross_arcs(), 0);
        assert_eq!(p.intra_arcs(), 2000);
        assert_eq!(p.imbalance(), 1.0);
    }

    #[test]
    fn empty_graph_plans_cleanly() {
        let g = tcim_graph::CsrGraph::from_edges(0, []).unwrap();
        let oriented = Orientation::Natural.orient(&g);
        let p = plan_shards(&oriented, &ShardSpec::one_d(3), SliceSize::S64).unwrap();
        assert_eq!(p.shard_count(), 3);
        assert_eq!(p.occupied_shards(), 0);
        assert_eq!(p.imbalance(), 1.0);
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let g = classic::wheel(10);
        let oriented = Orientation::Natural.orient(&g);
        assert!(plan_shards(&oriented, &ShardSpec::one_d(0), SliceSize::S64).is_err());
    }
}
