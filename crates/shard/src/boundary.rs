//! Cross-shard boundary slices: the sliced row/column material the
//! composition pass ANDs.
//!
//! For a cross-shard arc `(a, c)` the TCIM kernel needs row `R_a` and
//! column `C_c` of the *global* oriented matrix. Shard cuts are
//! slice-aligned, so each operand splits cleanly (via
//! [`SlicedRow::restrict_slices`]) into a **local** part — the
//! slices covering the owning shard's own vertex range — and a
//! **boundary** part — the slices referring to other shards. Only
//! vertices that actually terminate a cross arc get material extracted;
//! everything else stays inside its shard's own prepared artifact.
//! Operands are built under the caller's [`RowEncoding`] so a sparse
//! base artifact keeps its skip-empty walk across shard cuts.

use std::collections::HashMap;

use tcim_bitmatrix::{RowEncoding, SliceSize, SlicedRow};
use tcim_graph::OrientedGraph;

use crate::plan::ShardPlan;

/// One operand of a composition kernel, split at its owning shard's
/// slice range.
///
/// For a row (out-neighbourhood of a tail vertex) `local` covers the
/// shard's own slice range and `boundary` the slices *after* it (arcs
/// only point upward). For a column (in-neighbourhood of a head
/// vertex) `boundary` covers the slices *before* the shard and `local`
/// the shard's own range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitOperand {
    /// Slices inside the owning shard's slice range.
    pub local: SlicedRow,
    /// Slices outside it — the cross-shard boundary material.
    pub boundary: SlicedRow,
}

impl SplitOperand {
    /// Total valid slices across both parts (what a composition kernel
    /// writes for this operand).
    pub fn valid_slices(&self) -> u64 {
        (self.local.valid_slice_count() + self.boundary.valid_slice_count()) as u64
    }
}

/// The extracted boundary material of a sharded graph: split sliced
/// rows for every vertex with an outgoing cross arc, split sliced
/// columns for every vertex with an incoming one, plus the cross-arc
/// list itself (row-major, deterministic).
#[derive(Debug, Clone)]
pub struct BoundarySlices {
    rows: HashMap<u32, SplitOperand>,
    cols: HashMap<u32, SplitOperand>,
    cross_arcs: Vec<(u32, u32)>,
    boundary_valid_slices: u64,
}

impl BoundarySlices {
    /// Extracts the boundary material for `plan` over `oriented`.
    ///
    /// One pass classifies arcs; marked tail vertices get their full
    /// oriented row sliced and split at their shard's upper cut, marked
    /// head vertices get their in-neighbour column sliced and split at
    /// their shard's lower cut. Every operand is compressed under
    /// `encoding` — pass the base artifact's resolved encoding so the
    /// composition pass runs the same kernel walk the shards do.
    pub fn extract(
        oriented: &OrientedGraph,
        plan: &ShardPlan,
        slice_size: SliceSize,
        encoding: RowEncoding,
    ) -> BoundarySlices {
        let n = oriented.vertex_count();
        let total_slices = slice_size.slices_for(n) as u32;
        let mut cross_arcs = Vec::new();
        for (a, c) in oriented.arcs() {
            if plan.is_cross(a, c) {
                cross_arcs.push((a, c));
            }
        }
        // Full in-neighbour lists for cross heads: a middle vertex `w`
        // closes the triangle through arc `(w, c)` whether that arc is
        // intra- or cross-shard, so the column operand must carry every
        // tail of `c`. Row-major arc order appends tails ascending, as
        // slicing requires.
        let mut col_tails: HashMap<u32, Vec<u32>> =
            cross_arcs.iter().map(|&(_, c)| (c, Vec::new())).collect();
        for (a, c) in oriented.arcs() {
            if let Some(tails) = col_tails.get_mut(&c) {
                tails.push(a);
            }
        }

        let mut rows = HashMap::new();
        for &(a, _) in &cross_arcs {
            rows.entry(a).or_insert_with(|| {
                let full = SlicedRow::from_sorted_indices(
                    n,
                    oriented.row(a).iter().map(|&j| j as usize),
                    slice_size,
                    encoding,
                );
                let own = plan.slice_range(plan.shard_of(a));
                SplitOperand {
                    local: full.restrict_slices(own.clone()),
                    boundary: full.restrict_slices(own.end..total_slices),
                }
            });
        }
        let cols: HashMap<u32, SplitOperand> = col_tails
            .into_iter()
            .map(|(c, tails)| {
                let full = SlicedRow::from_sorted_indices(
                    n,
                    tails.iter().map(|&a| a as usize),
                    slice_size,
                    encoding,
                );
                let own = plan.slice_range(plan.shard_of(c));
                let split = SplitOperand {
                    boundary: full.restrict_slices(0..own.start),
                    local: full.restrict_slices(own),
                };
                (c, split)
            })
            .collect();

        let boundary_valid_slices = rows
            .values()
            .chain(cols.values())
            .map(|s| s.boundary.valid_slice_count() as u64)
            .sum();
        BoundarySlices { rows, cols, cross_arcs, boundary_valid_slices }
    }

    /// The split row of cross-tail vertex `a`, if one was extracted.
    pub fn row(&self, a: u32) -> Option<&SplitOperand> {
        self.rows.get(&a)
    }

    /// The split column of cross-head vertex `c`, if one was extracted.
    pub fn col(&self, c: u32) -> Option<&SplitOperand> {
        self.cols.get(&c)
    }

    /// The cross-shard arcs, in deterministic row-major order.
    pub fn cross_arcs(&self) -> &[(u32, u32)] {
        &self.cross_arcs
    }

    /// Valid slices in the *boundary* parts across all extracted
    /// operands — the material that crosses shard cuts.
    pub fn boundary_valid_slices(&self) -> u64 {
        self.boundary_valid_slices
    }

    /// Number of extracted row operands.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of extracted column operands.
    pub fn col_count(&self) -> usize {
        self.cols.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_shards;
    use crate::spec::ShardSpec;
    use tcim_graph::generators::gnm;
    use tcim_graph::Orientation;

    fn fixture(shards: usize) -> (OrientedGraph, ShardPlan, BoundarySlices) {
        let g = gnm(512, 3500, 3).unwrap();
        let oriented = Orientation::Natural.orient(&g);
        let plan = plan_shards(&oriented, &ShardSpec::one_d(shards), SliceSize::S64).unwrap();
        let b = BoundarySlices::extract(&oriented, &plan, SliceSize::S64, RowEncoding::Dense);
        (oriented, plan, b)
    }

    #[test]
    fn sparse_extraction_carries_the_same_material() {
        let (oriented, plan, dense) = fixture(4);
        let sparse =
            BoundarySlices::extract(&oriented, &plan, SliceSize::S64, RowEncoding::Sparse);
        assert_eq!(sparse.cross_arcs(), dense.cross_arcs());
        assert_eq!(sparse.boundary_valid_slices(), dense.boundary_valid_slices());
        for &(a, c) in dense.cross_arcs() {
            let (ds, ss) = (dense.row(a).unwrap(), sparse.row(a).unwrap());
            assert_eq!(ss.local.encoding(), RowEncoding::Sparse);
            assert_eq!(ss.local.to_bitvec(), ds.local.to_bitvec(), "row {a} local");
            assert_eq!(ss.boundary.to_bitvec(), ds.boundary.to_bitvec(), "row {a} boundary");
            assert_eq!(ss.valid_slices(), ds.valid_slices());
            let (dc, sc) = (dense.col(c).unwrap(), sparse.col(c).unwrap());
            assert_eq!(sc.local.to_bitvec(), dc.local.to_bitvec(), "col {c} local");
            assert_eq!(sc.boundary.to_bitvec(), dc.boundary.to_bitvec(), "col {c} boundary");
        }
    }

    #[test]
    fn extracts_exactly_the_cross_arc_endpoints() {
        let (oriented, plan, b) = fixture(4);
        assert_eq!(b.cross_arcs().len() as u64, plan.cross_arcs());
        for &(a, c) in b.cross_arcs() {
            assert!(plan.is_cross(a, c));
            assert!(b.row(a).is_some(), "tail {a} must have a split row");
            assert!(b.col(c).is_some(), "head {c} must have a split column");
        }
        // No spurious extractions: every extracted row belongs to some
        // cross arc tail.
        assert!(b.row_count() <= oriented.vertex_count());
        assert!(b.boundary_valid_slices() > 0);
    }

    #[test]
    fn split_row_reconstitutes_the_full_oriented_row() {
        let (oriented, _, b) = fixture(4);
        for &(a, _) in b.cross_arcs().iter().take(50) {
            let split = b.row(a).unwrap();
            let got = split.local.count_ones() + split.boundary.count_ones();
            assert_eq!(got, oriented.row(a).len() as u64, "row {a}");
            assert_eq!(
                split.valid_slices(),
                (split.local.valid_slice_count() + split.boundary.valid_slice_count()) as u64
            );
        }
    }

    #[test]
    fn column_carries_every_tail_of_each_cross_head() {
        let (oriented, plan, b) = fixture(4);
        // Full in-degree per cross head: intra tails complete cross
        // triangles too, so the column operand must carry all of them.
        let mut in_degree: HashMap<u32, u64> = HashMap::new();
        let mut cross_heads: std::collections::HashSet<u32> = Default::default();
        for (a, c) in oriented.arcs() {
            *in_degree.entry(c).or_default() += 1;
            if plan.is_cross(a, c) {
                cross_heads.insert(c);
            }
        }
        for c in cross_heads {
            let split = b.col(c).unwrap();
            assert_eq!(
                split.local.count_ones() + split.boundary.count_ones(),
                in_degree[&c],
                "column {c}"
            );
        }
    }

    #[test]
    fn single_shard_extracts_nothing() {
        let (_, plan, b) = fixture(1);
        assert_eq!(plan.cross_arcs(), 0);
        assert!(b.cross_arcs().is_empty());
        assert_eq!(b.row_count() + b.col_count(), 0);
        assert_eq!(b.boundary_valid_slices(), 0);
    }
}
