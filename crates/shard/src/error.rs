//! Error type of the sharding layer.

use std::error::Error;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ShardError>;

/// Errors surfaced by shard planning, boundary extraction and the
/// cross-shard composition pass.
#[derive(Debug)]
#[non_exhaustive]
pub enum ShardError {
    /// The shard specification is malformed (zero shards, or an
    /// edge-block mode parameter out of range).
    InvalidSpec {
        /// What was invalid.
        reason: String,
    },
    /// A composition arc referenced a vertex with no extracted boundary
    /// slices — a planning/extraction mismatch (internal invariant).
    MissingBoundary {
        /// The vertex whose sliced row/column was absent.
        vertex: u32,
        /// Which operand side was missing (`"row"` or `"column"`).
        side: &'static str,
    },
    /// Bit-matrix construction failed while building boundary slices.
    BitMatrix(tcim_bitmatrix::BitMatrixError),
    /// Scheduling the composition kernels failed.
    Sched(tcim_sched::SchedError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::InvalidSpec { reason } => write!(f, "invalid shard spec: {reason}"),
            ShardError::MissingBoundary { vertex, side } => {
                write!(f, "no boundary {side} slices extracted for vertex {vertex}")
            }
            ShardError::BitMatrix(e) => write!(f, "bit-matrix error: {e}"),
            ShardError::Sched(e) => write!(f, "scheduling error: {e}"),
        }
    }
}

impl Error for ShardError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ShardError::BitMatrix(e) => Some(e),
            ShardError::Sched(e) => Some(e),
            ShardError::InvalidSpec { .. } | ShardError::MissingBoundary { .. } => None,
        }
    }
}

impl From<tcim_bitmatrix::BitMatrixError> for ShardError {
    fn from(e: tcim_bitmatrix::BitMatrixError) -> Self {
        ShardError::BitMatrix(e)
    }
}

impl From<tcim_sched::SchedError> for ShardError {
    fn from(e: tcim_sched::SchedError) -> Self {
        ShardError::Sched(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = ShardError::InvalidSpec { reason: "zero shards".into() };
        assert!(e.to_string().contains("zero shards"));
        assert!(e.source().is_none());
        let e = ShardError::from(tcim_sched::SchedError::InvalidPolicy { reason: "x".into() });
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardError>();
    }
}
