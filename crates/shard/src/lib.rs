//! Sharded large-graph execution for the TCIM reproduction: vertex-range
//! partitioning, cross-shard boundary slices, and the composition pass
//! that counts the triangles no single shard sees.
//!
//! The paper's evaluation stops at graphs whose sliced bit-matrix fits
//! one computational array. The journal follow-up ("Triangle Counting
//! Accelerations: From Algorithm to In-Memory Computing Architecture")
//! and the UPMEM study ("Accelerating Triangle Counting with Real
//! Processing-in-Memory Systems") both scale past that point the same
//! way: partition the graph across in-memory compute units and reason
//! about cross-partition triangles explicitly. This crate is that layer
//! for the TCIM stack:
//!
//! * [`ShardSpec`] / [`plan_shards`] — degree-aware 1D partitioning of
//!   the *oriented* DAG into contiguous, slice-aligned vertex ranges
//!   ([`ShardPlan`]), with an optional 2D edge-block grouping mode for
//!   the composition pass ([`ShardMode::TwoD`]).
//! * [`BoundarySlices`] — per cross-arc endpoint, the global sliced
//!   row/column split at the shard cuts via
//!   [`SlicedBitVector::restrict_slices`](tcim_bitmatrix::SlicedBitVector::restrict_slices)
//!   into a local part and a *boundary* part.
//! * [`compose`] — the cross-shard pass: one AND + BitCount kernel per
//!   cross arc, decomposed into three region-disjoint sub-passes over
//!   the split operands, priced as `tcim-sched` delta jobs and fanned
//!   over arrays with a deterministic merge ([`CompositionRun`]).
//!
//! **Exactness.** Shards own contiguous ranges of oriented ids, and the
//! TCIM kernel counts a triangle `a < b < c` at its extreme arc
//! `(a, c)`. If `a` and `c` share a shard, so does `b` — the triangle
//! is intra-shard and counted by that shard's own induced-subgraph run.
//! Otherwise `(a, c)` is a cross arc and the triangle is counted by
//! exactly one composition kernel. Intra runs plus composition
//! therefore count every triangle exactly once (property-tested in
//! `tests/exactness.rs` and at the workspace level).
//!
//! The pipeline-level artifact of this scheme — per-shard
//! `PreparedGraph`s behind a `ShardedPreparedGraph`, selected as
//! `Backend::Sharded` — lives in `tcim-core`, which builds on the
//! primitives here; `tcim-service` auto-selects it when a registered
//! graph exceeds the configured per-array slice budget.
//!
//! # Example
//!
//! ```
//! use tcim_arch::{PimConfig, PimEngine};
//! use tcim_bitmatrix::SliceSize;
//! use tcim_graph::{generators::gnm, Orientation};
//! use tcim_sched::SchedPolicy;
//! use tcim_shard::{compose, plan_shards, BoundarySlices, ShardSpec};
//!
//! let g = gnm(512, 4000, 7)?;
//! let oriented = Orientation::Natural.orient(&g);
//!
//! // Partition into 4 slice-aligned vertex ranges…
//! let plan = plan_shards(&oriented, &ShardSpec::one_d(4), SliceSize::S64)?;
//! assert!(plan.cross_arcs() > 0);
//!
//! // …extract the boundary material and run the composition pass.
//! let boundary = BoundarySlices::extract(&oriented, &plan, SliceSize::S64,
//!                                          tcim_bitmatrix::RowEncoding::Dense);
//! let engine = PimEngine::new(&PimConfig::default())?;
//! let run = compose(
//!     oriented.vertex_count(),
//!     &plan,
//!     &boundary,
//!     &SchedPolicy::with_arrays(4),
//!     &engine.cost_model(),
//!     false,
//!     false,
//! )?;
//! assert_eq!(run.kernel_invocations, plan.cross_arcs());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod boundary;
mod compose;
mod error;
mod plan;
mod spec;

pub use boundary::{BoundarySlices, SplitOperand};
pub use compose::{compose, compose_census, ComposeCensus, CompositionRun};
pub use error::{Result, ShardError};
pub use plan::{plan_shards, ShardPlan};
pub use spec::{ShardMode, ShardSpec};
