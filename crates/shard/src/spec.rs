//! The shard specification: how many shards, and how cross-shard work
//! is grouped for placement.

use std::fmt;

use crate::error::{Result, ShardError};

/// How the cross-shard composition pass groups its kernels for
/// placement onto arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum ShardMode {
    /// 1D vertex-range sharding: every cross-shard arc is its own
    /// placement unit — finest-grained balancing, one operand write
    /// pair per kernel.
    #[default]
    OneD,
    /// 2D edge-block mode: cross-shard arcs are grouped into `(tail
    /// shard, head shard)` blocks and each block is one placement
    /// unit. An array processes a whole block, writing each distinct
    /// row/column operand once — coarser balancing, amortized operand
    /// traffic (the layout of the journal follow-up's blocked
    /// partitioning and of UPMEM-style per-DPU edge blocks).
    TwoD,
}

impl ShardMode {
    /// Short stable label (`"1d"` / `"2d"`), used in backend names.
    pub fn label(&self) -> &'static str {
        match self {
            ShardMode::OneD => "1d",
            ShardMode::TwoD => "2d",
        }
    }
}

impl fmt::Display for ShardMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Specification of a sharded execution: shard count plus the
/// composition grouping mode.
///
/// # Examples
///
/// ```
/// use tcim_shard::{ShardMode, ShardSpec};
///
/// let spec = ShardSpec::one_d(4);
/// assert_eq!(spec.shards, 4);
/// spec.validate()?;
///
/// let blocked = ShardSpec::two_d(8);
/// assert_eq!(blocked.mode, ShardMode::TwoD);
/// assert!(ShardSpec::one_d(0).validate().is_err());
/// # Ok::<(), tcim_shard::ShardError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    /// Number of vertex-range shards to partition the oriented DAG
    /// into. Ranges are slice-aligned, so on graphs with fewer
    /// vertices than `shards × |S|` some trailing shards may own an
    /// empty range (execution handles them as no-ops).
    pub shards: usize,
    /// How the composition pass groups cross-shard kernels.
    pub mode: ShardMode,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec { shards: 4, mode: ShardMode::OneD }
    }
}

impl ShardSpec {
    /// A 1D vertex-range specification with `shards` shards.
    pub fn one_d(shards: usize) -> Self {
        ShardSpec { shards, mode: ShardMode::OneD }
    }

    /// A 2D edge-block specification with `shards` shards.
    pub fn two_d(shards: usize) -> Self {
        ShardSpec { shards, mode: ShardMode::TwoD }
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::InvalidSpec`] for zero shards.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(ShardError::InvalidSpec {
                reason: "at least one shard is required".to_string(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.shards, self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(ShardSpec::one_d(4).to_string(), "4x1d");
        assert_eq!(ShardSpec::two_d(2).to_string(), "2x2d");
        assert_eq!(ShardMode::TwoD.label(), "2d");
    }

    #[test]
    fn zero_shards_is_invalid() {
        assert!(ShardSpec::one_d(0).validate().is_err());
        assert!(ShardSpec::default().validate().is_ok());
    }
}
