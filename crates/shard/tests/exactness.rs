//! The exactly-once property of sharded counting: partition the
//! oriented DAG any way the planner allows, and every triangle is
//! counted by precisely one of (a) its home shard's induced subgraph or
//! (b) one cross-shard composition kernel — never zero, never twice.

use proptest::prelude::*;
use tcim_arch::{PimConfig, PimEngine, SliceCostModel};
use tcim_bitmatrix::{RowEncoding, SliceSize};
use tcim_graph::{CsrGraph, Orientation, OrientedGraph};
use tcim_sched::SchedPolicy;
use tcim_shard::{compose, plan_shards, BoundarySlices, ShardMode, ShardPlan, ShardSpec};

fn costs() -> SliceCostModel {
    PimEngine::new(&PimConfig::default()).unwrap().cost_model()
}

/// Enumerates every triangle `(a, b, c)` with `a < b < c` of the
/// oriented DAG and classifies it: `Some(s)` when all three vertices
/// live in shard `s`, `None` when it spans shards.
fn classify_triangles(oriented: &OrientedGraph, plan: &ShardPlan) -> (Vec<u64>, u64) {
    let mut intra = vec![0u64; plan.shard_count()];
    let mut cross = 0u64;
    for (a, b) in oriented.arcs() {
        for &c in oriented.row(b) {
            if oriented.row(a).binary_search(&c).is_ok() {
                // Contiguous ranges: a and c agreeing pins b too.
                if plan.shard_of(a) == plan.shard_of(c) {
                    intra[plan.shard_of(a)] += 1;
                } else {
                    cross += 1;
                }
            }
        }
    }
    (intra, cross)
}

/// Triangle count of the subgraph induced on `lo..hi` (merge-intersect
/// over range-filtered rows).
fn induced_triangles(oriented: &OrientedGraph, lo: u32, hi: u32) -> u64 {
    let mut count = 0u64;
    for a in lo..hi {
        for &b in oriented.row(a) {
            if b >= hi {
                break;
            }
            for &c in oriented.row(b) {
                if c >= hi {
                    break;
                }
                if oriented.row(a).binary_search(&c).is_ok() {
                    count += 1;
                }
            }
        }
    }
    count
}

fn graph_strategy() -> impl Strategy<Value = CsrGraph> {
    (30usize..400).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..1500)
            .prop_map(move |edges| CsrGraph::from_edges(n, edges).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every triangle is counted exactly once across the intra-shard
    /// and cross-shard passes, for every shard count and both
    /// composition modes.
    #[test]
    fn every_triangle_is_counted_exactly_once(
        g in graph_strategy(),
        shards in 1usize..9,
        two_d in 0u8..2,
    ) {
        let oriented = Orientation::Natural.orient(&g);
        let spec =
            ShardSpec { shards, mode: if two_d == 1 { ShardMode::TwoD } else { ShardMode::OneD } };
        let plan = plan_shards(&oriented, &spec, SliceSize::S64).unwrap();
        let (intra_expected, cross_expected) = classify_triangles(&oriented, &plan);

        // Intra pass: each shard's induced subgraph holds exactly its
        // classified triangles.
        let mut intra_total = 0u64;
        for (s, &expected) in intra_expected.iter().enumerate() {
            let (lo, hi) = plan.range(s);
            let got = induced_triangles(&oriented, lo, hi);
            prop_assert_eq!(got, expected, "shard {} of {}", s, shards);
            intra_total += got;
        }

        // Cross pass: the composition kernels find exactly the rest.
        let boundary = BoundarySlices::extract(&oriented, &plan, SliceSize::S64, RowEncoding::Dense);
        let run = compose(
            oriented.vertex_count(),
            &plan,
            &boundary,
            &SchedPolicy::with_arrays(3),
            &costs(),
            true,
            true,
        ).unwrap();
        prop_assert_eq!(run.triangles, cross_expected);

        // Together: the whole graph, exactly once.
        let total: u64 = intra_total + run.triangles;
        let whole = induced_triangles(&oriented, 0, oriented.vertex_count() as u32);
        prop_assert_eq!(total, whole);

        // Attribution conserves the same invariant per vertex and per arc.
        let pv = run.per_vertex.unwrap();
        prop_assert_eq!(pv.iter().sum::<u64>(), 3 * cross_expected);
        let support = run.support.unwrap();
        prop_assert_eq!(support.iter().map(|&(_, _, c)| c).sum::<u64>(), 3 * cross_expected);
        // Every supported arc really exists in the DAG.
        for &(i, j, _) in &support {
            prop_assert!(oriented.row(i).binary_search(&j).is_ok(), "arc ({}, {})", i, j);
        }
    }
}
