//! Property-based tests for the bit-matrix substrate.
//!
//! These pin the invariants the rest of the reproduction relies on:
//! compression is lossless, the sliced AND+popcount kernel agrees with the
//! dense one, the LUT popcount agrees with the native instruction, and the
//! paper's byte-size formula holds exactly.

use proptest::prelude::*;
use tcim_bitmatrix::popcount::{popcount_lut8, popcount_native};
use tcim_bitmatrix::{BitMatrix, BitVec, SliceSize, SlicedBitVector};

/// Strategy: a bit-vector length and a set of bit indices below it.
fn bits_strategy() -> impl Strategy<Value = (usize, Vec<usize>)> {
    (1usize..2000).prop_flat_map(|len| {
        (
            Just(len),
            proptest::collection::btree_set(0..len, 0..128)
                .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
        )
    })
}

fn slice_size_strategy() -> impl Strategy<Value = SliceSize> {
    proptest::sample::select(&SliceSize::ALL[..])
}

proptest! {
    #[test]
    fn compression_roundtrips((len, ones) in bits_strategy(), s in slice_size_strategy()) {
        let dense = BitVec::from_indices(len, ones.iter().copied());
        let sliced = SlicedBitVector::from_bitvec(&dense, s);
        prop_assert_eq!(sliced.to_bitvec(), dense);
    }

    #[test]
    fn compression_preserves_popcount((len, ones) in bits_strategy(), s in slice_size_strategy()) {
        let dense = BitVec::from_indices(len, ones.iter().copied());
        let sliced = SlicedBitVector::from_bitvec(&dense, s);
        prop_assert_eq!(sliced.count_ones(), ones.len() as u64);
    }

    #[test]
    fn from_sorted_indices_equals_from_bitvec(
        (len, ones) in bits_strategy(),
        s in slice_size_strategy(),
    ) {
        let dense = BitVec::from_indices(len, ones.iter().copied());
        let a = SlicedBitVector::from_bitvec(&dense, s);
        let b = SlicedBitVector::from_sorted_indices(len, ones.iter().copied(), s);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sliced_and_popcount_matches_dense(
        (len, a_ones) in bits_strategy(),
        b_seed in proptest::collection::vec(0usize..usize::MAX, 0..128),
        s in slice_size_strategy(),
    ) {
        let b_ones: Vec<usize> = {
            let mut v: Vec<usize> = b_seed.into_iter().map(|x| x % len).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let da = BitVec::from_indices(len, a_ones.iter().copied());
        let db = BitVec::from_indices(len, b_ones.iter().copied());
        let ca = SlicedBitVector::from_bitvec(&da, s);
        let cb = SlicedBitVector::from_bitvec(&db, s);
        prop_assert_eq!(ca.and_popcount(&cb), da.and_popcount(&db).unwrap());
    }

    #[test]
    fn byte_size_formula_holds((len, ones) in bits_strategy(), s in slice_size_strategy()) {
        let sliced = SlicedBitVector::from_sorted_indices(len, ones.iter().copied(), s);
        prop_assert_eq!(
            sliced.compressed_bytes(),
            sliced.valid_slice_count() * (s.bits() as usize / 8 + 4)
        );
        // Every set bit lands in some valid slice and no slice is empty, so
        // NVS ≤ popcount and NVS ≤ total slices.
        prop_assert!(sliced.valid_slice_count() as u64 <= ones.len() as u64);
        prop_assert!(sliced.valid_slice_count() <= sliced.total_slices());
    }

    #[test]
    fn lut_popcount_equals_native(word in any::<u64>()) {
        prop_assert_eq!(popcount_lut8(word), popcount_native(word));
    }

    #[test]
    fn and_popcount_is_commutative(
        (len, a_ones) in bits_strategy(),
        b_seed in proptest::collection::vec(0usize..usize::MAX, 0..64),
    ) {
        let b_ones: Vec<usize> = {
            let mut v: Vec<usize> = b_seed.into_iter().map(|x| x % len).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let a = SlicedBitVector::from_sorted_indices(len, a_ones.iter().copied(), SliceSize::S64);
        let b = SlicedBitVector::from_sorted_indices(len, b_ones.iter().copied(), SliceSize::S64);
        prop_assert_eq!(a.and_popcount(&b), b.and_popcount(&a));
    }
}

/// Random graph edges on `n` vertices.
fn edges_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..40).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), 0..200).prop_map(|pairs| {
                pairs.into_iter().filter(|(u, v)| u != v).collect::<Vec<_>>()
            }),
        )
    })
}

proptest! {
    /// The paper's Equation (5) on the oriented matrix must agree with the
    /// classical trace(A³)/6 identity for every graph.
    #[test]
    fn bitwise_tc_equals_trace_identity((n, edges) in edges_strategy()) {
        let upper = BitMatrix::from_edges(n, &edges).unwrap();
        prop_assert_eq!(
            upper.triangle_count_bitwise().unwrap(),
            upper.triangle_count_trace()
        );
    }

    /// Counting on the symmetric matrix (÷6) agrees with the oriented count.
    #[test]
    fn symmetric_and_oriented_counts_agree((n, edges) in edges_strategy()) {
        let upper = BitMatrix::from_edges(n, &edges).unwrap();
        let sym = BitMatrix::from_edges_symmetric(n, &edges).unwrap();
        prop_assert_eq!(
            upper.triangle_count_bitwise().unwrap(),
            sym.triangle_count_bitwise().unwrap()
        );
    }
}
