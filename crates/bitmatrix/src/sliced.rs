//! The compressed `(valid slice index, slice data)` vector of §IV-B.

use std::fmt;

use crate::bitvec::BitVec;
use crate::error::{BitMatrixError, Result};
use crate::popcount::{popcount_words, PopcountMethod};
use crate::slice::SliceSize;

/// One valid slice of a [`SlicedBitVector`]: its position and payload.
///
/// For slice sizes below 64 bits the payload still occupies one `u64` word
/// with the unused high bits zeroed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidSlice<'a> {
    /// The slice index `k` (the slice covers bits `[k·|S|, (k+1)·|S|)`).
    pub index: u32,
    /// The slice payload, `words_per_slice` little-endian words.
    pub words: &'a [u64],
}

/// A bit vector stored in the paper's compressed sliced format.
///
/// Only *valid* (non-zero) slices are stored, each as a `u32` index plus
/// `|S|` bits of payload, which is exactly the format the paper maps onto
/// the computational STT-MRAM array: `NVS × (|S|/8 + 4)` bytes total
/// ([`SlicedBitVector::compressed_bytes`]).
///
/// # Example
///
/// ```
/// use tcim_bitmatrix::{BitVec, SliceSize, SlicedBitVector};
///
/// // The Fig. 3 row of the paper: bits set only in slices 3 and 5 … here a
/// // small analogue with |S| = 16 for readability.
/// let v = BitVec::from_indices(96, [50, 85]);
/// let s = SlicedBitVector::from_bitvec(&v, SliceSize::S16);
/// assert_eq!(s.valid_slice_count(), 2);
/// assert_eq!(s.total_slices(), 6);
/// assert_eq!(s.compressed_bytes(), 2 * (2 + 4));
/// assert_eq!(s.to_bitvec(), v);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SlicedBitVector {
    slice_size: SliceSize,
    len_bits: usize,
    /// Sorted indices of valid slices.
    indices: Vec<u32>,
    /// `indices.len() * words_per_slice` payload words.
    data: Vec<u64>,
}

impl SlicedBitVector {
    /// Compresses `v` with slice size `slice_size`.
    pub fn from_bitvec(v: &BitVec, slice_size: SliceSize) -> Self {
        let bits = slice_size.bits() as usize;
        let wps = slice_size.words_per_slice();
        let n_slices = slice_size.slices_for(v.len());
        let mut indices = Vec::new();
        let mut data = Vec::new();

        if bits >= 64 {
            // Each slice groups `wps` whole words.
            for k in 0..n_slices {
                let start = k * wps;
                let end = ((k + 1) * wps).min(v.words().len());
                let words = &v.words()[start..end];
                if words.iter().any(|&w| w != 0) {
                    indices.push(k as u32);
                    data.extend_from_slice(words);
                    // Pad a trailing partial slice to full width.
                    data.extend(std::iter::repeat_n(0, wps - words.len()));
                }
            }
        } else {
            // Multiple slices per word; extract with shift + mask.
            let per_word = 64 / bits;
            let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            for k in 0..n_slices {
                let word = v.words().get(k / per_word).copied().unwrap_or(0);
                let payload = (word >> ((k % per_word) * bits)) & mask;
                if payload != 0 {
                    indices.push(k as u32);
                    data.push(payload);
                }
            }
        }

        SlicedBitVector { slice_size, len_bits: v.len(), indices, data }
    }

    /// Compresses a vector of `len_bits` bits given the ascending indices of
    /// its set bits, without materialising an intermediate [`BitVec`].
    ///
    /// This is the path used for CSR adjacency rows, whose neighbour lists
    /// are already sorted.
    ///
    /// # Panics
    ///
    /// Panics if the indices are not strictly ascending or reach `len_bits`.
    pub fn from_sorted_indices<I>(len_bits: usize, set_bits: I, slice_size: SliceSize) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        let bits = slice_size.bits() as usize;
        let wps = slice_size.words_per_slice();
        let mut indices: Vec<u32> = Vec::new();
        let mut data: Vec<u64> = Vec::new();
        let mut last: Option<usize> = None;

        for b in set_bits {
            assert!(b < len_bits, "set bit {b} out of bounds for {len_bits}");
            if let Some(prev) = last {
                assert!(b > prev, "set-bit indices must be strictly ascending");
            }
            last = Some(b);
            let slice = (b / bits) as u32;
            if indices.last() != Some(&slice) {
                indices.push(slice);
                data.extend(std::iter::repeat_n(0, wps));
            }
            let within = b % bits;
            let base = data.len() - wps;
            data[base + within / 64] |= 1u64 << (within % 64);
        }

        SlicedBitVector { slice_size, len_bits, indices, data }
    }

    /// Assembles a vector from already-compressed parts: ascending valid
    /// slice `indices` and `indices.len() * words_per_slice` payload
    /// `data` words, none of them all-zero. Used by the sparse encoding's
    /// decompression path, which produces exactly this layout.
    pub(crate) fn from_parts(
        slice_size: SliceSize,
        len_bits: usize,
        indices: Vec<u32>,
        data: Vec<u64>,
    ) -> Self {
        debug_assert_eq!(data.len(), indices.len() * slice_size.words_per_slice());
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        SlicedBitVector { slice_size, len_bits, indices, data }
    }

    /// The slice size this vector was compressed with.
    pub fn slice_size(&self) -> SliceSize {
        self.slice_size
    }

    /// Length of the uncompressed vector in bits.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Returns `true` when no slice is valid (the all-zero vector).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Number of valid (stored) slices — the paper's `NVS` contribution of
    /// this vector.
    pub fn valid_slice_count(&self) -> usize {
        self.indices.len()
    }

    /// Number of slices the uncompressed vector would occupy,
    /// `⌈len / |S|⌉`.
    pub fn total_slices(&self) -> usize {
        self.slice_size.slices_for(self.len_bits)
    }

    /// Fraction of slices that are valid, in `[0, 1]`.
    pub fn valid_fraction(&self) -> f64 {
        if self.total_slices() == 0 {
            0.0
        } else {
            self.valid_slice_count() as f64 / self.total_slices() as f64
        }
    }

    /// Bytes of the compressed representation per the paper's formula
    /// `NVS × (|S|/8 + 4)`.
    pub fn compressed_bytes(&self) -> usize {
        self.valid_slice_count() * self.slice_size.bytes_per_valid_slice()
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        popcount_words(&self.data, PopcountMethod::Native)
    }

    /// Payload of slice `k`, or `None` when the slice is not valid.
    pub fn slice_data(&self, k: u32) -> Option<&[u64]> {
        let wps = self.slice_size.words_per_slice();
        self.indices.binary_search(&k).ok().map(|pos| &self.data[pos * wps..(pos + 1) * wps])
    }

    /// Iterates over the valid slices in ascending index order.
    pub fn valid_slices(&self) -> impl Iterator<Item = ValidSlice<'_>> + '_ {
        let wps = self.slice_size.words_per_slice();
        self.indices.iter().enumerate().map(move |(pos, &index)| ValidSlice {
            index,
            words: &self.data[pos * wps..(pos + 1) * wps],
        })
    }

    /// The merge-join of valid slices of `self` and `other`: yields the
    /// *valid slice pairs* `(RiSk, CjSk)` of the paper — exactly the pairs
    /// TCIM loads into the computational array.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::SliceSizeMismatch`] when the operands use
    /// different slice sizes and [`BitMatrixError::LengthMismatch`] when the
    /// uncompressed lengths differ.
    pub fn matching_slices<'a>(
        &'a self,
        other: &'a SlicedBitVector,
    ) -> Result<MatchingSlices<'a>> {
        if self.slice_size != other.slice_size {
            return Err(BitMatrixError::SliceSizeMismatch {
                left: self.slice_size.bits(),
                right: other.slice_size.bits(),
            });
        }
        if self.len_bits != other.len_bits {
            return Err(BitMatrixError::LengthMismatch {
                left: self.len_bits,
                right: other.len_bits,
            });
        }
        Ok(MatchingSlices { left: self, right: other, li: 0, ri: 0 })
    }

    /// `popcount(self AND other)` over valid slice pairs only — the TCIM
    /// kernel of Equation (5).
    ///
    /// Lengths are reconciled implicitly: both vectors must describe the same
    /// universe; call sites in the accelerator guarantee this and the method
    /// panics otherwise to surface mapping bugs early.
    ///
    /// # Panics
    ///
    /// Panics if the slice sizes or lengths differ.
    pub fn and_popcount(&self, other: &SlicedBitVector) -> u64 {
        self.and_popcount_with(other, PopcountMethod::Native)
    }

    /// [`SlicedBitVector::and_popcount`] with an explicit popcount strategy.
    ///
    /// # Panics
    ///
    /// Panics if the slice sizes or lengths differ.
    pub fn and_popcount_with(&self, other: &SlicedBitVector, method: PopcountMethod) -> u64 {
        let pairs =
            self.matching_slices(other).expect("operands must share slice size and length");
        let mut total = 0u64;
        for (_, a, b) in pairs {
            for (x, y) in a.iter().zip(b) {
                total += u64::from(crate::popcount::popcount_word(x & y, method));
            }
        }
        total
    }

    /// Sets bit `bit` in place, inserting a freshly valid slice when the
    /// bit's slice was previously all-zero. Returns `true` when the bit
    /// was newly set (`false` when it was already 1).
    ///
    /// The compressed invariant — only non-zero slices are stored, in
    /// ascending index order — is preserved, so a mutated vector compares
    /// equal to a from-scratch compression of the same bits.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::IndexOutOfBounds`] when `bit` is at or
    /// beyond the vector length.
    pub fn set_bit(&mut self, bit: usize) -> Result<bool> {
        let (slice, word, mask) = self.locate(bit)?;
        let wps = self.slice_size.words_per_slice();
        match self.indices.binary_search(&slice) {
            Ok(pos) => {
                let w = &mut self.data[pos * wps + word];
                let was_set = *w & mask != 0;
                *w |= mask;
                Ok(!was_set)
            }
            Err(pos) => {
                self.indices.insert(pos, slice);
                let base = pos * wps;
                self.data.splice(base..base, std::iter::repeat_n(0u64, wps));
                self.data[base + word] |= mask;
                Ok(true)
            }
        }
    }

    /// Clears bit `bit` in place, dropping the slice from the valid set
    /// when it becomes all-zero. Returns `true` when the bit was
    /// previously set (`false` when it was already 0).
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::IndexOutOfBounds`] when `bit` is at or
    /// beyond the vector length.
    pub fn clear_bit(&mut self, bit: usize) -> Result<bool> {
        let (slice, word, mask) = self.locate(bit)?;
        let wps = self.slice_size.words_per_slice();
        let Ok(pos) = self.indices.binary_search(&slice) else {
            return Ok(false); // bit lives in an invalid (all-zero) slice
        };
        let base = pos * wps;
        let w = &mut self.data[base + word];
        if *w & mask == 0 {
            return Ok(false);
        }
        *w &= !mask;
        if self.data[base..base + wps].iter().all(|&x| x == 0) {
            self.indices.remove(pos);
            self.data.drain(base..base + wps);
        }
        Ok(true)
    }

    /// Extracts the valid slices whose index falls in `slices`,
    /// preserving the vector's length and slice size — the
    /// *boundary-slice extraction* primitive of sharded execution.
    ///
    /// A shard owns a contiguous, slice-aligned vertex range, so the
    /// part of a row (or column) that refers to *other* shards is
    /// exactly a slice-index range of the compressed vector. The result
    /// is a well-formed [`SlicedBitVector`] over the same bit universe:
    /// restrictions with disjoint slice ranges AND/popcount
    /// independently and their valid-pair counts sum to the full
    /// vector's, which is what makes the cross-shard composition pass
    /// exact.
    ///
    /// # Example
    ///
    /// ```
    /// use tcim_bitmatrix::{BitVec, SliceSize, SlicedBitVector};
    ///
    /// // Bits in slices 0, 2 and 5 of a 6-slice vector (|S| = 16).
    /// let v = BitVec::from_indices(96, [3, 40, 85]);
    /// let s = SlicedBitVector::from_bitvec(&v, SliceSize::S16);
    ///
    /// // Split at slice 3: a "local" prefix and a "boundary" tail.
    /// let local = s.restrict_slices(0..3);
    /// let boundary = s.restrict_slices(3..6);
    /// assert_eq!(local.valid_slice_count(), 2);
    /// assert_eq!(boundary.valid_slice_count(), 1);
    /// assert_eq!(local.count_ones() + boundary.count_ones(), s.count_ones());
    /// // Both halves still describe the original 96-bit universe.
    /// assert_eq!(boundary.len_bits(), 96);
    /// // Empty (or decreasing) ranges restrict to the empty vector.
    /// assert!(s.restrict_slices(3..1).is_empty());
    /// ```
    pub fn restrict_slices(&self, slices: std::ops::Range<u32>) -> SlicedBitVector {
        let wps = self.slice_size.words_per_slice();
        let lo = self.indices.partition_point(|&k| k < slices.start);
        let hi = self.indices.partition_point(|&k| k < slices.end).max(lo);
        SlicedBitVector {
            slice_size: self.slice_size,
            len_bits: self.len_bits,
            indices: self.indices[lo..hi].to_vec(),
            data: self.data[lo * wps..hi * wps].to_vec(),
        }
    }

    /// Number of valid slices whose index falls in `slices`, without
    /// materialising the restriction (sizing pass of boundary
    /// extraction). Empty and decreasing ranges count zero.
    pub fn valid_slices_in(&self, slices: std::ops::Range<u32>) -> usize {
        let lo = self.indices.partition_point(|&k| k < slices.start);
        self.indices.partition_point(|&k| k < slices.end).saturating_sub(lo)
    }

    /// Resolves `bit` into its `(slice index, word-within-slice, mask)`
    /// coordinates, bounds-checked.
    fn locate(&self, bit: usize) -> Result<(u32, usize, u64)> {
        if bit >= self.len_bits {
            return Err(BitMatrixError::IndexOutOfBounds { index: bit, len: self.len_bits });
        }
        let bits = self.slice_size.bits() as usize;
        let within = bit % bits;
        Ok(((bit / bits) as u32, within / 64, 1u64 << (within % 64)))
    }

    /// Decompresses back to a dense [`BitVec`].
    pub fn to_bitvec(&self) -> BitVec {
        let mut v = BitVec::new(self.len_bits);
        let bits = self.slice_size.bits() as usize;
        for s in self.valid_slices() {
            let base = s.index as usize * bits;
            for (w, &word) in s.words.iter().enumerate() {
                let mut rem = word;
                while rem != 0 {
                    let tz = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    let bit = base + w * 64 + tz;
                    if bit < self.len_bits {
                        v.set(bit);
                    }
                }
            }
        }
        v
    }
}

impl fmt::Debug for SlicedBitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SlicedBitVector(|S|={}, len={}, valid={}/{})",
            self.slice_size,
            self.len_bits,
            self.valid_slice_count(),
            self.total_slices()
        )
    }
}

/// Iterator over matching valid slice pairs, created by
/// [`SlicedBitVector::matching_slices`].
#[derive(Debug, Clone)]
pub struct MatchingSlices<'a> {
    left: &'a SlicedBitVector,
    right: &'a SlicedBitVector,
    li: usize,
    ri: usize,
}

impl<'a> Iterator for MatchingSlices<'a> {
    /// `(slice index, left payload, right payload)`.
    type Item = (u32, &'a [u64], &'a [u64]);

    fn next(&mut self) -> Option<Self::Item> {
        let wps = self.left.slice_size.words_per_slice();
        while self.li < self.left.indices.len() && self.ri < self.right.indices.len() {
            let l = self.left.indices[self.li];
            let r = self.right.indices[self.ri];
            match l.cmp(&r) {
                std::cmp::Ordering::Less => self.li += 1,
                std::cmp::Ordering::Greater => self.ri += 1,
                std::cmp::Ordering::Equal => {
                    let a = &self.left.data[self.li * wps..(self.li + 1) * wps];
                    let b = &self.right.data[self.ri * wps..(self.ri + 1) * wps];
                    self.li += 1;
                    self.ri += 1;
                    return Some((l, a, b));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sliced(len: usize, ones: &[usize], s: SliceSize) -> SlicedBitVector {
        SlicedBitVector::from_bitvec(&BitVec::from_indices(len, ones.iter().copied()), s)
    }

    #[test]
    fn roundtrip_all_slice_sizes() {
        let ones = [0usize, 3, 17, 64, 100, 255, 256, 511];
        for s in SliceSize::ALL {
            let v = BitVec::from_indices(512, ones.iter().copied());
            let c = SlicedBitVector::from_bitvec(&v, s);
            assert_eq!(c.to_bitvec(), v, "slice size {s}");
            assert_eq!(c.count_ones(), ones.len() as u64, "slice size {s}");
        }
    }

    #[test]
    fn from_sorted_indices_matches_from_bitvec() {
        let ones = [1usize, 62, 63, 64, 127, 200, 201, 450];
        for s in SliceSize::ALL {
            let a = sliced(451, &ones, s);
            let b = SlicedBitVector::from_sorted_indices(451, ones.iter().copied(), s);
            assert_eq!(a, b, "slice size {s}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_unsorted_indices_panics() {
        SlicedBitVector::from_sorted_indices(100, [5usize, 3], SliceSize::S64);
    }

    #[test]
    fn fig3_style_valid_slices() {
        // Mirror of the paper's Fig. 3: row valid in slices {0, 3, 5},
        // column valid in slices {2, 3, 5} with |S| = 4 … we use |S| = 16.
        let bits = 16;
        let row = sliced(96, &[2, 3 * bits + 1, 5 * bits + 2], SliceSize::S16);
        let col = sliced(96, &[2 * bits, 3 * bits + 1, 5 * bits + 3], SliceSize::S16);
        let row_valid: Vec<u32> = row.valid_slices().map(|s| s.index).collect();
        let col_valid: Vec<u32> = col.valid_slices().map(|s| s.index).collect();
        assert_eq!(row_valid, vec![0, 3, 5]);
        assert_eq!(col_valid, vec![2, 3, 5]);
        // Only the {3, 5} pairs match.
        let pairs: Vec<u32> = row.matching_slices(&col).unwrap().map(|(k, _, _)| k).collect();
        assert_eq!(pairs, vec![3, 5]);
        // One common bit (3·16+1); the slice-5 pair ANDs to zero.
        assert_eq!(row.and_popcount(&col), 1);
    }

    #[test]
    fn and_popcount_matches_dense() {
        let a_ones: Vec<usize> = (0..700).step_by(3).collect();
        let b_ones: Vec<usize> = (0..700).step_by(5).collect();
        let da = BitVec::from_indices(700, a_ones.iter().copied());
        let db = BitVec::from_indices(700, b_ones.iter().copied());
        let expected = da.and_popcount(&db).unwrap();
        for s in SliceSize::ALL {
            let ca = SlicedBitVector::from_bitvec(&da, s);
            let cb = SlicedBitVector::from_bitvec(&db, s);
            assert_eq!(ca.and_popcount(&cb), expected, "slice size {s}");
            assert_eq!(
                ca.and_popcount_with(&cb, PopcountMethod::Lut8),
                expected,
                "LUT, slice size {s}"
            );
        }
    }

    #[test]
    fn compressed_bytes_formula() {
        // 3 valid 64-bit slices → 3 × (8 + 4) = 36 bytes.
        let v = sliced(64 * 10, &[0, 64 * 4 + 7, 64 * 9 + 63], SliceSize::S64);
        assert_eq!(v.valid_slice_count(), 3);
        assert_eq!(v.compressed_bytes(), 36);
    }

    #[test]
    fn empty_vector_has_no_valid_slices() {
        let v = sliced(1000, &[], SliceSize::S64);
        assert!(v.is_empty());
        assert_eq!(v.valid_slice_count(), 0);
        assert_eq!(v.compressed_bytes(), 0);
        assert_eq!(v.valid_fraction(), 0.0);
        assert_eq!(v.to_bitvec(), BitVec::new(1000));
    }

    #[test]
    fn dense_vector_is_fully_valid() {
        let ones: Vec<usize> = (0..256).collect();
        let v = sliced(256, &ones, SliceSize::S64);
        assert_eq!(v.valid_fraction(), 1.0);
        assert_eq!(v.valid_slice_count(), 4);
    }

    #[test]
    fn slice_data_lookup() {
        let v = sliced(256, &[70], SliceSize::S64);
        assert_eq!(v.slice_data(1), Some(&[1u64 << 6][..]));
        assert_eq!(v.slice_data(0), None);
        assert_eq!(v.slice_data(99), None);
    }

    #[test]
    fn mismatched_slice_size_is_error() {
        let a = sliced(128, &[0], SliceSize::S64);
        let b = sliced(128, &[0], SliceSize::S32);
        assert!(matches!(
            a.matching_slices(&b),
            Err(BitMatrixError::SliceSizeMismatch { .. })
        ));
    }

    #[test]
    fn mismatched_length_is_error() {
        let a = sliced(128, &[0], SliceSize::S64);
        let b = sliced(129, &[0], SliceSize::S64);
        assert!(matches!(a.matching_slices(&b), Err(BitMatrixError::LengthMismatch { .. })));
    }

    #[test]
    fn set_bit_inserts_and_clear_bit_drops_valid_slices() {
        for s in SliceSize::ALL {
            let mut v = sliced(600, &[], s);
            assert!(v.set_bit(70).unwrap());
            assert!(v.set_bit(71).unwrap());
            assert!(!v.set_bit(70).unwrap(), "already set, slice size {s}");
            assert_eq!(v, sliced(600, &[70, 71], s), "slice size {s}");

            assert!(v.clear_bit(70).unwrap());
            assert!(!v.clear_bit(70).unwrap(), "already clear, slice size {s}");
            assert!(!v.clear_bit(599).unwrap(), "never set, slice size {s}");
            assert_eq!(v, sliced(600, &[71], s), "slice size {s}");

            // Emptying the last slice restores the canonical empty form.
            assert!(v.clear_bit(71).unwrap());
            assert_eq!(v, sliced(600, &[], s), "slice size {s}");
            assert!(v.is_empty());
        }
    }

    #[test]
    fn random_mutation_sequence_matches_rebuild() {
        // Deterministic pseudo-random set/clear churn; after every step the
        // mutated vector must equal a fresh compression of the dense truth.
        let len = 900usize;
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for s in [SliceSize::S16, SliceSize::S64, SliceSize::S256] {
            let mut dense = BitVec::new(len);
            let mut v = SlicedBitVector::from_bitvec(&dense, s);
            for _ in 0..500 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let bit = (x >> 11) as usize % len;
                if x & 1 == 0 {
                    let newly = v.set_bit(bit).unwrap();
                    assert_eq!(newly, !dense.get(bit));
                    dense.set(bit);
                } else {
                    let was = v.clear_bit(bit).unwrap();
                    assert_eq!(was, dense.get(bit));
                    dense.clear(bit);
                }
            }
            assert_eq!(v, SlicedBitVector::from_bitvec(&dense, s), "slice size {s}");
            assert_eq!(v.count_ones(), dense.count_ones(), "slice size {s}");
        }
    }

    #[test]
    fn mutation_out_of_bounds_is_error() {
        let mut v = sliced(100, &[3], SliceSize::S64);
        assert!(matches!(
            v.set_bit(100),
            Err(BitMatrixError::IndexOutOfBounds { index: 100, len: 100 })
        ));
        assert!(matches!(v.clear_bit(512), Err(BitMatrixError::IndexOutOfBounds { .. })));
        // The failed mutations left the vector untouched.
        assert_eq!(v, sliced(100, &[3], SliceSize::S64));
    }

    #[test]
    fn restrict_slices_partitions_valid_slices_exactly() {
        let ones = [1usize, 62, 64, 127, 200, 450, 700];
        for s in SliceSize::ALL {
            let v = sliced(701, &ones, s);
            let total = v.total_slices() as u32;
            // Any split point partitions ones and valid slices exactly.
            for cut in [0u32, 1, total / 2, total] {
                let head = v.restrict_slices(0..cut);
                let tail = v.restrict_slices(cut..total);
                assert_eq!(
                    head.count_ones() + tail.count_ones(),
                    v.count_ones(),
                    "cut {cut}, slice size {s}"
                );
                assert_eq!(
                    head.valid_slice_count() + tail.valid_slice_count(),
                    v.valid_slice_count(),
                    "cut {cut}, slice size {s}"
                );
                assert_eq!(head.valid_slices_in(0..cut), head.valid_slice_count());
                assert_eq!(v.valid_slices_in(0..cut), head.valid_slice_count());
                // Restrictions stay canonical: re-compressing the dense
                // form of the restriction reproduces it.
                let dense = head.to_bitvec();
                assert_eq!(SlicedBitVector::from_bitvec(&dense, s), head, "slice size {s}");
            }
        }
    }

    #[test]
    fn disjoint_restrictions_and_popcount_independently() {
        // The sharded composition invariant: AND over disjoint slice
        // ranges sums to the AND over the whole vector.
        let a = sliced(640, &(0..640).step_by(3).collect::<Vec<_>>(), SliceSize::S64);
        let b = sliced(640, &(0..640).step_by(5).collect::<Vec<_>>(), SliceSize::S64);
        let full = a.and_popcount(&b);
        let cut = 4u32;
        let split = a.restrict_slices(0..cut).and_popcount(&b.restrict_slices(0..cut))
            + a.restrict_slices(cut..10).and_popcount(&b.restrict_slices(cut..10));
        assert_eq!(split, full);
        // Restricting only one operand also works: matching pairs only
        // exist where both operands hold valid slices.
        let one_sided = a.restrict_slices(0..cut).and_popcount(&b)
            + a.restrict_slices(cut..10).and_popcount(&b);
        assert_eq!(one_sided, full);
    }

    #[test]
    fn restrict_slices_of_empty_range_is_empty() {
        let v = sliced(256, &[0, 70, 200], SliceSize::S64);
        assert!(v.restrict_slices(2..2).is_empty());
        assert_eq!(v.restrict_slices(99..120).valid_slice_count(), 0);
        assert_eq!(v.valid_slices_in(99..120), 0);
    }

    #[test]
    fn wide_slices_pad_trailing_partial_slice() {
        // 100 bits with |S| = 512: one partial slice padded to 8 words.
        let v = sliced(100, &[99], SliceSize::S512);
        assert_eq!(v.valid_slice_count(), 1);
        let s = v.valid_slices().next().unwrap();
        assert_eq!(s.words.len(), 8);
        assert_eq!(v.to_bitvec(), BitVec::from_indices(100, [99]));
    }
}
