//! The `|S|` slice-size parameter of the paper's data-slicing scheme.

use std::fmt;

use crate::error::{BitMatrixError, Result};

/// Size of one slice in bits (the paper's `|S|`, fixed to 64 in §IV-B).
///
/// Every row and column of the adjacency matrix is partitioned into
/// `⌈|V| / |S|⌉` slices; a slice is *valid* iff it contains at least one set
/// bit, and only valid slices are stored or computed on. The paper evaluates
/// with `|S| = 64`; the other variants exist for the slice-size ablation
/// called out in DESIGN.md.
///
/// # Example
///
/// ```
/// use tcim_bitmatrix::SliceSize;
///
/// let s = SliceSize::S64;
/// assert_eq!(s.bits(), 64);
/// assert_eq!(s.slices_for(100), 2);   // ⌈100 / 64⌉
/// assert_eq!(s.index_bytes(), 4);     // a u32 slice index
/// assert_eq!(s.data_bytes(), 8);      // 64 bits of payload
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[non_exhaustive]
pub enum SliceSize {
    /// 16-bit slices.
    S16,
    /// 32-bit slices.
    S32,
    /// 64-bit slices — the paper's configuration.
    #[default]
    S64,
    /// 128-bit slices.
    S128,
    /// 256-bit slices.
    S256,
    /// 512-bit slices.
    S512,
}

impl SliceSize {
    /// All supported sizes in ascending order (useful for sweeps).
    pub const ALL: [SliceSize; 6] = [
        SliceSize::S16,
        SliceSize::S32,
        SliceSize::S64,
        SliceSize::S128,
        SliceSize::S256,
        SliceSize::S512,
    ];

    /// Builds a slice size from a bit count.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::InvalidSliceSize`] for anything other than
    /// 16, 32, 64, 128, 256 or 512.
    pub fn from_bits(bits: u32) -> Result<Self> {
        match bits {
            16 => Ok(SliceSize::S16),
            32 => Ok(SliceSize::S32),
            64 => Ok(SliceSize::S64),
            128 => Ok(SliceSize::S128),
            256 => Ok(SliceSize::S256),
            512 => Ok(SliceSize::S512),
            _ => Err(BitMatrixError::InvalidSliceSize { bits }),
        }
    }

    /// The slice width in bits.
    pub fn bits(self) -> u32 {
        match self {
            SliceSize::S16 => 16,
            SliceSize::S32 => 32,
            SliceSize::S64 => 64,
            SliceSize::S128 => 128,
            SliceSize::S256 => 256,
            SliceSize::S512 => 512,
        }
    }

    /// Number of backing `u64` words one slice occupies (1 for ≤ 64 bits).
    pub fn words_per_slice(self) -> usize {
        (self.bits() as usize).div_ceil(64)
    }

    /// Number of slices needed to cover a vector of `len` bits
    /// (the paper's `⌈|V| / |S|⌉`).
    pub fn slices_for(self, len: usize) -> usize {
        len.div_ceil(self.bits() as usize)
    }

    /// Bytes used to store one valid-slice index. The paper uses "an integer
    /// (four Bytes)".
    pub fn index_bytes(self) -> usize {
        4
    }

    /// Bytes used to store one slice's payload (`|S| / 8`).
    pub fn data_bytes(self) -> usize {
        self.bits() as usize / 8
    }

    /// Bytes per stored valid slice: `|S|/8 + 4` per the paper's
    /// memory-requirement analysis in §IV-B.
    pub fn bytes_per_valid_slice(self) -> usize {
        self.data_bytes() + self.index_bytes()
    }
}

impl fmt::Display for SliceSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        assert_eq!(SliceSize::default(), SliceSize::S64);
        assert_eq!(SliceSize::default().bits(), 64);
    }

    #[test]
    fn from_bits_roundtrips() {
        for s in SliceSize::ALL {
            assert_eq!(SliceSize::from_bits(s.bits()).unwrap(), s);
        }
    }

    #[test]
    fn from_bits_rejects_odd_sizes() {
        for bits in [0, 1, 8, 24, 63, 65, 1024] {
            assert_eq!(
                SliceSize::from_bits(bits),
                Err(BitMatrixError::InvalidSliceSize { bits })
            );
        }
    }

    #[test]
    fn paper_byte_accounting() {
        // |S| = 64 → 8 bytes data + 4 bytes index = 12 bytes per valid slice.
        let s = SliceSize::S64;
        assert_eq!(s.bytes_per_valid_slice(), 12);
        assert_eq!(SliceSize::S16.bytes_per_valid_slice(), 6);
        assert_eq!(SliceSize::S512.bytes_per_valid_slice(), 68);
    }

    #[test]
    fn words_per_slice_geometry() {
        assert_eq!(SliceSize::S16.words_per_slice(), 1);
        assert_eq!(SliceSize::S64.words_per_slice(), 1);
        assert_eq!(SliceSize::S128.words_per_slice(), 2);
        assert_eq!(SliceSize::S512.words_per_slice(), 8);
    }

    #[test]
    fn slices_for_rounds_up() {
        assert_eq!(SliceSize::S64.slices_for(0), 0);
        assert_eq!(SliceSize::S64.slices_for(1), 1);
        assert_eq!(SliceSize::S64.slices_for(64), 1);
        assert_eq!(SliceSize::S64.slices_for(65), 2);
        assert_eq!(SliceSize::S16.slices_for(64), 4);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(SliceSize::S64.to_string(), "64b");
    }
}
