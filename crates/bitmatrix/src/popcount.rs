//! Bit-count (`BitCount`) implementations.
//!
//! The TCIM paper implements `BitCount` in hardware as a synthesized module
//! that "splits the vector and feeds each 8-bit sub-vector into an 8-256
//! look-up-table to get its non-zero element number, then sums up the
//! non-zero numbers in all sub-vectors" (§V-A). [`popcount_lut8`] mirrors
//! that structure bit-for-bit so the software path can be validated against
//! the hardware-faithful one; [`popcount_native`] uses the CPU `popcnt`
//! instruction via [`u64::count_ones`].
//!
//! Both strategies always return identical results; the LUT variant exists
//! so that the architecture simulator exercises the same dataflow as the
//! synthesized bit-counter (see `tcim-arch`'s `BitCounterModel` for the
//! timing/energy side).

/// The 8-bit-input/9-value-output look-up table of the paper's bit counter.
///
/// Entry `i` holds the number of set bits in the byte `i`. Built at compile
/// time; 256 entries exactly as in the synthesized 8-256 LUT.
pub const POPCOUNT_LUT8: [u8; 256] = build_lut8();

const fn build_lut8() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        table[i] = (i as u8).count_ones() as u8;
        i += 1;
    }
    table
}

/// Strategy used to count set bits in a word or slice.
///
/// # Example
///
/// ```
/// use tcim_bitmatrix::popcount::{popcount_word, PopcountMethod};
///
/// let w = 0b0110_u64;
/// assert_eq!(popcount_word(w, PopcountMethod::Native), 2);
/// assert_eq!(popcount_word(w, PopcountMethod::Lut8), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PopcountMethod {
    /// Hardware `popcnt` via [`u64::count_ones`] (fast software path).
    #[default]
    Native,
    /// 8-bit look-up table + adder tree, mirroring the paper's synthesized
    /// bit-counter module.
    Lut8,
}

/// Counts set bits in `word` using the native `popcnt` path.
#[inline]
pub fn popcount_native(word: u64) -> u32 {
    word.count_ones()
}

/// Counts set bits in `word` via the 8-256 LUT, exactly as the paper's
/// hardware bit counter does: eight byte-wide LUT lookups summed by an
/// adder tree.
#[inline]
pub fn popcount_lut8(word: u64) -> u32 {
    let bytes = word.to_le_bytes();
    // Two levels of the adder tree, matching a radix-2 hardware reduction.
    let s0 = POPCOUNT_LUT8[bytes[0] as usize] as u32 + POPCOUNT_LUT8[bytes[1] as usize] as u32;
    let s1 = POPCOUNT_LUT8[bytes[2] as usize] as u32 + POPCOUNT_LUT8[bytes[3] as usize] as u32;
    let s2 = POPCOUNT_LUT8[bytes[4] as usize] as u32 + POPCOUNT_LUT8[bytes[5] as usize] as u32;
    let s3 = POPCOUNT_LUT8[bytes[6] as usize] as u32 + POPCOUNT_LUT8[bytes[7] as usize] as u32;
    (s0 + s1) + (s2 + s3)
}

/// Counts set bits in `word` with the chosen [`PopcountMethod`].
#[inline]
pub fn popcount_word(word: u64, method: PopcountMethod) -> u32 {
    match method {
        PopcountMethod::Native => popcount_native(word),
        PopcountMethod::Lut8 => popcount_lut8(word),
    }
}

/// Counts set bits across a slice of words with the chosen method.
///
/// # Example
///
/// ```
/// use tcim_bitmatrix::popcount::{popcount_words, PopcountMethod};
///
/// assert_eq!(popcount_words(&[u64::MAX, 1], PopcountMethod::Lut8), 65);
/// ```
pub fn popcount_words(words: &[u64], method: PopcountMethod) -> u64 {
    match method {
        PopcountMethod::Native => words.iter().map(|&w| u64::from(w.count_ones())).sum(),
        PopcountMethod::Lut8 => words.iter().map(|&w| u64::from(popcount_lut8(w))).sum(),
    }
}

/// Visits the bit offset of every set bit across `words` (ascending;
/// word `w`'s bit `b` is offset `64·w + b`) — the readout primitive
/// every attributed counting path drains AND results with.
///
/// # Example
///
/// ```
/// use tcim_bitmatrix::popcount::visit_set_bits;
///
/// let mut seen = Vec::new();
/// visit_set_bits([0b0110u64, 1].into_iter(), |offset| seen.push(offset));
/// assert_eq!(seen, vec![1, 2, 64]);
/// ```
pub fn visit_set_bits(words: impl IntoIterator<Item = u64>, mut visit: impl FnMut(u32)) {
    for (word, w) in words.into_iter().enumerate() {
        let mut rem = w;
        while rem != 0 {
            let tz = rem.trailing_zeros();
            rem &= rem - 1;
            visit(word as u32 * 64 + tz);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_table_matches_count_ones() {
        for i in 0..=255u8 {
            assert_eq!(POPCOUNT_LUT8[i as usize], i.count_ones() as u8);
        }
    }

    #[test]
    fn lut_word_matches_native_on_patterns() {
        let patterns = [
            0u64,
            u64::MAX,
            0x5555_5555_5555_5555,
            0xAAAA_AAAA_AAAA_AAAA,
            0x0123_4567_89AB_CDEF,
            1,
            1 << 63,
            0x8000_0000_0000_0001,
        ];
        for &p in &patterns {
            assert_eq!(popcount_lut8(p), popcount_native(p), "pattern {p:#x}");
        }
    }

    #[test]
    fn lut_word_matches_native_exhaustive_low_16() {
        for w in 0..=0xFFFFu64 {
            assert_eq!(popcount_lut8(w), popcount_native(w));
        }
    }

    #[test]
    fn paper_example_bitcount_0110_is_2() {
        // "BitCount(0110) = 2" from §III of the paper.
        assert_eq!(popcount_lut8(0b0110), 2);
    }

    #[test]
    fn slice_popcount_sums_words() {
        let words = [0b1u64, 0b11, 0b111];
        assert_eq!(popcount_words(&words, PopcountMethod::Native), 6);
        assert_eq!(popcount_words(&words, PopcountMethod::Lut8), 6);
    }

    #[test]
    fn empty_slice_counts_zero() {
        assert_eq!(popcount_words(&[], PopcountMethod::Native), 0);
        assert_eq!(popcount_words(&[], PopcountMethod::Lut8), 0);
    }
}
