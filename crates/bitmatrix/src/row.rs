//! Density-adaptive row encoding: one type over the dense
//! [`SlicedBitVector`] and the hierarchical [`SparseSlicedRow`], plus the
//! policy that picks between them.
//!
//! Every consumer of a sliced row — the architecture simulator, the
//! scheduler's row jobs, shard boundary extraction, streaming patches —
//! goes through [`SlicedRow`], so a prepared graph can switch encodings
//! wholesale without its consumers caring which layout is underneath.
//! The dense encoding is bit-identical to the paper's `(index, payload)`
//! format; the sparse encoding stores the same bit set hierarchically
//! and intersects it with the two-level skip-empty walk.

use std::fmt;

use crate::bitvec::BitVec;
use crate::error::{BitMatrixError, Result};
use crate::popcount::{popcount_words, PopcountMethod};
use crate::slice::SliceSize;
use crate::sliced::{MatchingSlices, SlicedBitVector};
use crate::sparse::{walk_matching, SparseSlicedRow};

/// Which physical layout a row (or a whole prepared matrix) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum RowEncoding {
    /// The paper's flat `(u32 index, |S|-bit payload)` list.
    #[default]
    Dense,
    /// Hierarchical summary masks over packed non-zero payload bytes.
    Sparse,
}

impl fmt::Display for RowEncoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RowEncoding::Dense => "dense",
            RowEncoding::Sparse => "sparse",
        })
    }
}

/// How a prepared graph chooses its [`RowEncoding`].
///
/// The threshold is carried in thousandths (`250` = switch to sparse
/// below 25% valid slices) so the policy stays `Eq + Hash` and can live
/// inside prepared-cache keys.
///
/// # Example
///
/// ```
/// use tcim_bitmatrix::{EncodingPolicy, RowEncoding};
///
/// let auto = EncodingPolicy::default();
/// assert_eq!(auto.resolve(0.40), RowEncoding::Dense);
/// assert_eq!(auto.resolve(0.10), RowEncoding::Sparse);
/// assert_eq!(EncodingPolicy::ForceSparse.resolve(0.99), RowEncoding::Sparse);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingPolicy {
    /// Measure the matrix's valid-slice fraction and go sparse below
    /// `sparse_threshold_millis / 1000`.
    Auto {
        /// Valid-fraction threshold in thousandths; the default `250`
        /// (25%) sits under the dense/sparse crossover measured by the
        /// `sparse_rows` bench group.
        sparse_threshold_millis: u32,
    },
    /// Always use the dense encoding (the paper's baseline layout).
    ForceDense,
    /// Always use the sparse encoding, regardless of density.
    ForceSparse,
}

impl Default for EncodingPolicy {
    fn default() -> Self {
        EncodingPolicy::Auto { sparse_threshold_millis: 250 }
    }
}

impl EncodingPolicy {
    /// The encoding this policy selects for a matrix whose fraction of
    /// valid slices is `valid_fraction`.
    pub fn resolve(&self, valid_fraction: f64) -> RowEncoding {
        match *self {
            EncodingPolicy::ForceDense => RowEncoding::Dense,
            EncodingPolicy::ForceSparse => RowEncoding::Sparse,
            EncodingPolicy::Auto { sparse_threshold_millis } => {
                if valid_fraction < f64::from(sparse_threshold_millis) / 1000.0 {
                    RowEncoding::Sparse
                } else {
                    RowEncoding::Dense
                }
            }
        }
    }

    /// The fixed encoding that reproduces this policy's choice, once
    /// resolved — used to keep shard-local rebuilds on the exact
    /// encoding the monolithic prepare selected.
    pub fn force(encoding: RowEncoding) -> EncodingPolicy {
        match encoding {
            RowEncoding::Dense => EncodingPolicy::ForceDense,
            RowEncoding::Sparse => EncodingPolicy::ForceSparse,
        }
    }
}

impl fmt::Display for EncodingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EncodingPolicy::Auto { sparse_threshold_millis } => {
                write!(f, "auto<{:.3}", f64::from(sparse_threshold_millis) / 1000.0)
            }
            EncodingPolicy::ForceDense => f.write_str("dense"),
            EncodingPolicy::ForceSparse => f.write_str("sparse"),
        }
    }
}

/// Slice-pair accounting of one row-column intersection: how many
/// mutually valid pairs the kernel actually visited and how many the
/// sparse byte-mask filter proved zero and skipped.
///
/// Dense rows visit every mutually valid pair (`skipped == 0`), so
/// `visited + skipped` is always the dense merge-join's pair count —
/// the sparse walk is a strict refinement, never a different population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairStats {
    /// Pairs decoded and fed to the AND + BitCount kernel.
    pub visited: u64,
    /// Mutually valid pairs skipped because their byte masks were
    /// disjoint (the AND is provably zero).
    pub skipped: u64,
}

impl PairStats {
    /// Total mutually valid pairs (what the dense encoding would visit).
    pub fn matched(&self) -> u64 {
        self.visited + self.skipped
    }
}

/// A sliced bit row in either encoding, with a common API for every
/// consumer of the prepared matrix.
///
/// # Example
///
/// ```
/// use tcim_bitmatrix::{RowEncoding, SliceSize, SlicedRow};
///
/// let len = 4096;
/// let a = SlicedRow::from_sorted_indices(len, [3, 700, 4000], SliceSize::S64,
///     RowEncoding::Sparse);
/// let b = SlicedRow::from_sorted_indices(len, [3, 700, 900], SliceSize::S64,
///     RowEncoding::Sparse);
/// assert_eq!(a.and_popcount(&b), 2);
/// // The skip-empty walk visits only byte-intersecting pairs.
/// let stats = a.matching_stats(&b).unwrap();
/// assert_eq!(stats.visited, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlicedRow {
    /// The paper's flat compressed layout.
    Dense(SlicedBitVector),
    /// The hierarchical summary-mask layout.
    Sparse(SparseSlicedRow),
}

impl From<SlicedBitVector> for SlicedRow {
    fn from(v: SlicedBitVector) -> Self {
        SlicedRow::Dense(v)
    }
}

impl From<SparseSlicedRow> for SlicedRow {
    fn from(v: SparseSlicedRow) -> Self {
        SlicedRow::Sparse(v)
    }
}

impl SlicedRow {
    /// Compresses `v` under `encoding`.
    pub fn from_bitvec(v: &BitVec, slice_size: SliceSize, encoding: RowEncoding) -> Self {
        match encoding {
            RowEncoding::Dense => {
                SlicedRow::Dense(SlicedBitVector::from_bitvec(v, slice_size))
            }
            RowEncoding::Sparse => {
                SlicedRow::Sparse(SparseSlicedRow::from_bitvec(v, slice_size))
            }
        }
    }

    /// Compresses a vector given the ascending indices of its set bits.
    ///
    /// # Panics
    ///
    /// Panics if the indices are not strictly ascending or reach
    /// `len_bits`.
    pub fn from_sorted_indices<I>(
        len_bits: usize,
        set_bits: I,
        slice_size: SliceSize,
        encoding: RowEncoding,
    ) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        let dense = SlicedBitVector::from_sorted_indices(len_bits, set_bits, slice_size);
        SlicedRow::encode(dense, encoding)
    }

    /// Wraps (or re-encodes) an already-compressed dense vector.
    pub fn encode(dense: SlicedBitVector, encoding: RowEncoding) -> Self {
        match encoding {
            RowEncoding::Dense => SlicedRow::Dense(dense),
            RowEncoding::Sparse => SlicedRow::Sparse(SparseSlicedRow::from_dense(&dense)),
        }
    }

    /// This row's physical encoding.
    pub fn encoding(&self) -> RowEncoding {
        match self {
            SlicedRow::Dense(_) => RowEncoding::Dense,
            SlicedRow::Sparse(_) => RowEncoding::Sparse,
        }
    }

    /// The same bit set under `encoding` (a clone when it already is).
    pub fn reencoded(&self, encoding: RowEncoding) -> SlicedRow {
        match (self, encoding) {
            (SlicedRow::Dense(v), RowEncoding::Sparse) => {
                SlicedRow::Sparse(SparseSlicedRow::from_dense(v))
            }
            (SlicedRow::Sparse(v), RowEncoding::Dense) => SlicedRow::Dense(v.to_dense()),
            _ => self.clone(),
        }
    }

    /// The dense view, when this row is dense.
    pub fn as_dense(&self) -> Option<&SlicedBitVector> {
        match self {
            SlicedRow::Dense(v) => Some(v),
            SlicedRow::Sparse(_) => None,
        }
    }

    /// The sparse view, when this row is sparse.
    pub fn as_sparse(&self) -> Option<&SparseSlicedRow> {
        match self {
            SlicedRow::Sparse(v) => Some(v),
            SlicedRow::Dense(_) => None,
        }
    }

    /// The slice size this row was compressed with.
    pub fn slice_size(&self) -> SliceSize {
        match self {
            SlicedRow::Dense(v) => v.slice_size(),
            SlicedRow::Sparse(v) => v.slice_size(),
        }
    }

    /// Length of the uncompressed vector in bits.
    pub fn len_bits(&self) -> usize {
        match self {
            SlicedRow::Dense(v) => v.len_bits(),
            SlicedRow::Sparse(v) => v.len_bits(),
        }
    }

    /// Returns `true` when no slice is valid.
    pub fn is_empty(&self) -> bool {
        match self {
            SlicedRow::Dense(v) => v.is_empty(),
            SlicedRow::Sparse(v) => v.is_empty(),
        }
    }

    /// Number of valid slices (identical across encodings).
    pub fn valid_slice_count(&self) -> usize {
        match self {
            SlicedRow::Dense(v) => v.valid_slice_count(),
            SlicedRow::Sparse(v) => v.valid_slice_count(),
        }
    }

    /// Number of slices the uncompressed vector would occupy.
    pub fn total_slices(&self) -> usize {
        match self {
            SlicedRow::Dense(v) => v.total_slices(),
            SlicedRow::Sparse(v) => v.total_slices(),
        }
    }

    /// Fraction of slices that are valid, in `[0, 1]`.
    pub fn valid_fraction(&self) -> f64 {
        match self {
            SlicedRow::Dense(v) => v.valid_fraction(),
            SlicedRow::Sparse(v) => v.valid_fraction(),
        }
    }

    /// Bytes of the compressed representation under this row's own
    /// encoding: `NVS × (|S|/8 + 4)` for dense, the full hierarchy
    /// accounting for sparse.
    pub fn compressed_bytes(&self) -> usize {
        match self {
            SlicedRow::Dense(v) => v.compressed_bytes(),
            SlicedRow::Sparse(v) => v.compressed_bytes(),
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        match self {
            SlicedRow::Dense(v) => v.count_ones(),
            SlicedRow::Sparse(v) => v.count_ones(),
        }
    }

    /// Decompresses back to a dense [`BitVec`].
    pub fn to_bitvec(&self) -> BitVec {
        match self {
            SlicedRow::Dense(v) => v.to_bitvec(),
            SlicedRow::Sparse(v) => v.to_bitvec(),
        }
    }

    /// The dense merge-join iterator over mutually valid slice pairs.
    ///
    /// This is the raw dense-layout view; encoding-generic consumers use
    /// [`SlicedRow::for_each_matching`] instead, which also works (and
    /// skips) on sparse rows.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::EncodingMismatch`] unless both rows are
    /// dense, plus the dense iterator's own slice-size/length checks.
    pub fn matching_slices<'a>(&'a self, other: &'a SlicedRow) -> Result<MatchingSlices<'a>> {
        match (self, other) {
            (SlicedRow::Dense(a), SlicedRow::Dense(b)) => a.matching_slices(b),
            _ => Err(BitMatrixError::EncodingMismatch),
        }
    }

    fn check_compatible(&self, other: &SlicedRow) -> Result<()> {
        if self.slice_size() != other.slice_size() {
            return Err(BitMatrixError::SliceSizeMismatch {
                left: self.slice_size().bits(),
                right: other.slice_size().bits(),
            });
        }
        if self.len_bits() != other.len_bits() {
            return Err(BitMatrixError::LengthMismatch {
                left: self.len_bits(),
                right: other.len_bits(),
            });
        }
        if self.encoding() != other.encoding() {
            return Err(BitMatrixError::EncodingMismatch);
        }
        Ok(())
    }

    /// Runs `f(slice index, ANDed payload words)` over every visited
    /// slice pair of `self AND other` — the encoding-generic kernel
    /// walk. Dense rows visit every mutually valid pair; sparse rows
    /// additionally skip pairs whose byte masks are disjoint (the AND is
    /// provably zero), reported in [`PairStats::skipped`].
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::SliceSizeMismatch`],
    /// [`BitMatrixError::LengthMismatch`] or
    /// [`BitMatrixError::EncodingMismatch`] when the operands don't
    /// agree.
    pub fn for_each_matching(
        &self,
        other: &SlicedRow,
        mut f: impl FnMut(u32, &[u64]),
    ) -> Result<PairStats> {
        self.check_compatible(other)?;
        match (self, other) {
            (SlicedRow::Dense(a), SlicedRow::Dense(b)) => {
                let wps = self.slice_size().words_per_slice();
                let mut scratch = vec![0u64; wps];
                let mut stats = PairStats::default();
                for (k, left, right) in a.matching_slices(b)? {
                    for (s, (&x, &y)) in scratch.iter_mut().zip(left.iter().zip(right)) {
                        *s = x & y;
                    }
                    stats.visited += 1;
                    f(k, &scratch);
                }
                Ok(stats)
            }
            (SlicedRow::Sparse(a), SlicedRow::Sparse(b)) => Ok(walk_matching::<true>(a, b, f)),
            _ => unreachable!("check_compatible rejects mixed encodings"),
        }
    }

    /// Like [`SlicedRow::for_each_matching`] but hands out only the
    /// slice index of each visited pair, skipping payload decode — the
    /// path for job decomposition, which needs pair identities, not
    /// data.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SlicedRow::for_each_matching`].
    pub fn for_each_matching_index(
        &self,
        other: &SlicedRow,
        mut f: impl FnMut(u32),
    ) -> Result<PairStats> {
        self.check_compatible(other)?;
        match (self, other) {
            (SlicedRow::Dense(a), SlicedRow::Dense(b)) => {
                let mut stats = PairStats::default();
                for (k, _, _) in a.matching_slices(b)? {
                    stats.visited += 1;
                    f(k);
                }
                Ok(stats)
            }
            (SlicedRow::Sparse(a), SlicedRow::Sparse(b)) => {
                Ok(walk_matching::<false>(a, b, |k, _| f(k)))
            }
            _ => unreachable!("check_compatible rejects mixed encodings"),
        }
    }

    /// The pair accounting of `self AND other` without visiting payloads
    /// — what the cost model prices.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SlicedRow::for_each_matching`].
    pub fn matching_stats(&self, other: &SlicedRow) -> Result<PairStats> {
        self.for_each_matching_index(other, |_| {})
    }

    /// `popcount(self AND other)` — the full TCIM kernel over one
    /// row-column pair, in either encoding.
    ///
    /// # Panics
    ///
    /// Panics when the operands disagree in slice size, length or
    /// encoding (matrix rows and columns always agree by construction).
    pub fn and_popcount(&self, other: &SlicedRow) -> u64 {
        self.and_popcount_with(other, PopcountMethod::Native)
    }

    /// [`SlicedRow::and_popcount`] with an explicit bit-count method.
    ///
    /// # Panics
    ///
    /// Panics when the operands disagree in slice size, length or
    /// encoding.
    pub fn and_popcount_with(&self, other: &SlicedRow, method: PopcountMethod) -> u64 {
        match (self, other) {
            (SlicedRow::Dense(a), SlicedRow::Dense(b)) => a.and_popcount_with(b, method),
            _ => {
                let mut total = 0u64;
                self.for_each_matching(other, |_, anded| {
                    total += popcount_words(anded, method);
                })
                .expect("operands must agree in slice size, length and encoding");
                total
            }
        }
    }

    /// Sets bit `bit` in place under this row's encoding. Returns `true`
    /// when the bit was newly set.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::IndexOutOfBounds`] when `bit` is at or
    /// beyond the vector length.
    pub fn set_bit(&mut self, bit: usize) -> Result<bool> {
        match self {
            SlicedRow::Dense(v) => v.set_bit(bit),
            SlicedRow::Sparse(v) => v.set_bit(bit),
        }
    }

    /// Clears bit `bit` in place. Returns `true` when the bit was
    /// previously set.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::IndexOutOfBounds`] when `bit` is at or
    /// beyond the vector length.
    pub fn clear_bit(&mut self, bit: usize) -> Result<bool> {
        match self {
            SlicedRow::Dense(v) => v.clear_bit(bit),
            SlicedRow::Sparse(v) => v.clear_bit(bit),
        }
    }

    /// Extracts the valid slices whose index falls in `slices`,
    /// preserving length, slice size and encoding.
    pub fn restrict_slices(&self, slices: std::ops::Range<u32>) -> SlicedRow {
        match self {
            SlicedRow::Dense(v) => SlicedRow::Dense(v.restrict_slices(slices)),
            SlicedRow::Sparse(v) => SlicedRow::Sparse(v.restrict_slices(slices)),
        }
    }

    /// Number of valid slices whose index falls in `slices`.
    pub fn valid_slices_in(&self, slices: std::ops::Range<u32>) -> usize {
        match self {
            SlicedRow::Dense(v) => v.valid_slices_in(slices),
            SlicedRow::Sparse(v) => v.valid_slices_in(slices),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(
        len: usize,
        a: &[usize],
        b: &[usize],
        encoding: RowEncoding,
    ) -> (SlicedRow, SlicedRow) {
        (
            SlicedRow::from_sorted_indices(len, a.iter().copied(), SliceSize::S64, encoding),
            SlicedRow::from_sorted_indices(len, b.iter().copied(), SliceSize::S64, encoding),
        )
    }

    #[test]
    fn policy_resolution_and_threshold() {
        let auto = EncodingPolicy::default();
        assert_eq!(auto, EncodingPolicy::Auto { sparse_threshold_millis: 250 });
        assert_eq!(auto.resolve(0.25), RowEncoding::Dense, "threshold is exclusive");
        assert_eq!(auto.resolve(0.2499), RowEncoding::Sparse);
        assert_eq!(EncodingPolicy::ForceDense.resolve(0.0), RowEncoding::Dense);
        assert_eq!(EncodingPolicy::ForceSparse.resolve(1.0), RowEncoding::Sparse);
        assert_eq!(EncodingPolicy::force(RowEncoding::Sparse), EncodingPolicy::ForceSparse);
        assert_eq!(EncodingPolicy::force(RowEncoding::Dense), EncodingPolicy::ForceDense);
    }

    #[test]
    fn encodings_agree_on_every_accessor() {
        let ones: Vec<usize> = (0..900).step_by(7).collect();
        let dense = SlicedRow::from_sorted_indices(
            1000,
            ones.iter().copied(),
            SliceSize::S64,
            RowEncoding::Dense,
        );
        let sparse = dense.reencoded(RowEncoding::Sparse);
        assert_eq!(sparse.encoding(), RowEncoding::Sparse);
        assert_eq!(sparse.count_ones(), dense.count_ones());
        assert_eq!(sparse.valid_slice_count(), dense.valid_slice_count());
        assert_eq!(sparse.total_slices(), dense.total_slices());
        assert_eq!(sparse.valid_fraction(), dense.valid_fraction());
        assert_eq!(sparse.to_bitvec(), dense.to_bitvec());
        assert_eq!(sparse.reencoded(RowEncoding::Dense), dense, "round trip");
        assert!(sparse.as_sparse().is_some() && sparse.as_dense().is_none());
    }

    #[test]
    fn kernel_results_are_encoding_invariant() {
        let a_ones: Vec<usize> = (0..2000).step_by(3).collect();
        let b_ones: Vec<usize> = (0..2000).step_by(5).collect();
        let (da, db) = pair(2000, &a_ones, &b_ones, RowEncoding::Dense);
        let (sa, sb) = pair(2000, &a_ones, &b_ones, RowEncoding::Sparse);
        assert_eq!(sa.and_popcount(&sb), da.and_popcount(&db));
        assert_eq!(
            sa.and_popcount_with(&sb, PopcountMethod::Lut8),
            da.and_popcount_with(&db, PopcountMethod::Lut8)
        );
        let dense_stats = da.matching_stats(&db).unwrap();
        let sparse_stats = sa.matching_stats(&sb).unwrap();
        assert_eq!(dense_stats.skipped, 0, "dense never skips");
        assert_eq!(sparse_stats.matched(), dense_stats.matched());
        assert!(sparse_stats.visited <= dense_stats.visited);
    }

    #[test]
    fn mixed_encodings_are_rejected() {
        let (a, _) = pair(128, &[1, 2], &[2, 3], RowEncoding::Dense);
        let (_, b) = pair(128, &[1, 2], &[2, 3], RowEncoding::Sparse);
        assert_eq!(
            a.for_each_matching(&b, |_, _| {}).unwrap_err(),
            BitMatrixError::EncodingMismatch
        );
        assert_eq!(a.matching_stats(&b).unwrap_err(), BitMatrixError::EncodingMismatch);
        assert_eq!(b.matching_slices(&a).unwrap_err(), BitMatrixError::EncodingMismatch);
        assert!(a.matching_slices(&a).is_ok(), "dense pairs keep the raw view");
    }

    #[test]
    fn size_and_length_mismatches_still_surface() {
        let a = SlicedRow::from_sorted_indices(100, [1], SliceSize::S64, RowEncoding::Sparse);
        let b = SlicedRow::from_sorted_indices(100, [1], SliceSize::S32, RowEncoding::Sparse);
        assert!(matches!(a.matching_stats(&b), Err(BitMatrixError::SliceSizeMismatch { .. })));
        let c = SlicedRow::from_sorted_indices(99, [1], SliceSize::S64, RowEncoding::Sparse);
        assert!(matches!(a.matching_stats(&c), Err(BitMatrixError::LengthMismatch { .. })));
    }

    #[test]
    fn index_walk_matches_decode_walk() {
        let a_ones: Vec<usize> = (0..3000).step_by(11).collect();
        let b_ones: Vec<usize> = (0..3000).step_by(13).collect();
        for encoding in [RowEncoding::Dense, RowEncoding::Sparse] {
            let (a, b) = pair(3000, &a_ones, &b_ones, encoding);
            let mut decoded = Vec::new();
            let full = a.for_each_matching(&b, |k, _| decoded.push(k)).unwrap();
            let mut indexed = Vec::new();
            let index = a.for_each_matching_index(&b, |k| indexed.push(k)).unwrap();
            assert_eq!(decoded, indexed, "{encoding}");
            assert_eq!(full, index, "{encoding}");
        }
    }

    #[test]
    fn patches_work_under_both_encodings() {
        for encoding in [RowEncoding::Dense, RowEncoding::Sparse] {
            let mut row =
                SlicedRow::from_sorted_indices(500, [7, 450], SliceSize::S64, encoding);
            assert!(row.set_bit(100).unwrap());
            assert!(row.clear_bit(7).unwrap());
            assert_eq!(
                row,
                SlicedRow::from_sorted_indices(500, [100, 450], SliceSize::S64, encoding),
                "{encoding}"
            );
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(RowEncoding::Dense.to_string(), "dense");
        assert_eq!(RowEncoding::Sparse.to_string(), "sparse");
        assert_eq!(EncodingPolicy::default().to_string(), "auto<0.250");
        assert_eq!(EncodingPolicy::ForceSparse.to_string(), "sparse");
    }
}
