//! Whole-matrix sliced storage: every row and column of the (oriented)
//! adjacency matrix in compressed sliced form.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{BitMatrixError, Result};
use crate::row::{EncodingPolicy, RowEncoding, SlicedRow};
use crate::slice::SliceSize;
use crate::sliced::SlicedBitVector;

/// Process-wide count of [`SlicedMatrix`] constructions — a work counter
/// for the slicing stage.
static MATRICES_BUILT: AtomicU64 = AtomicU64::new(0);

/// How many [`SlicedMatrix`] values this process has built so far (every
/// [`SlicedMatrix::from_adjacency`] call, including via
/// [`SlicedMatrixBuilder::build`]).
///
/// Slicing is the expensive preparation step of the TCIM pipeline;
/// callers that cache prepared matrices can read this counter before and
/// after a workload to *prove* the cache prevented re-slicing rather
/// than assume it. Monotone, never reset.
pub fn matrices_built() -> u64 {
    MATRICES_BUILT.load(Ordering::Relaxed)
}

/// Aggregate slicing statistics for a [`SlicedMatrix`] — the quantities
/// behind the paper's Table III (valid slice data size) and Table IV
/// (percentage of valid slices).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SliceStats {
    /// Valid slices across all rows and columns (`NVS`).
    pub valid_slices: u64,
    /// Total slice positions across all rows and columns,
    /// `2 · n · ⌈n / |S|⌉`.
    pub total_slices: u64,
    /// Compressed size in bytes under the matrix's row encoding:
    /// `NVS × (|S|/8 + 4)` for dense, the summary/mask/block hierarchy
    /// total for sparse.
    pub compressed_bytes: u64,
    /// Non-zero matrix entries counted over the rows.
    pub nnz: u64,
}

impl SliceStats {
    /// Fraction of valid slices (Table IV's percentage, as a ratio).
    pub fn valid_fraction(&self) -> f64 {
        if self.total_slices == 0 {
            0.0
        } else {
            self.valid_slices as f64 / self.total_slices as f64
        }
    }

    /// Compressed size in mebibytes (the unit of Table III).
    pub fn compressed_mib(&self) -> f64 {
        self.compressed_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// An adjacency matrix with every row `A[i][*]` and column `A[*][j]ᵀ`
/// stored as a [`SlicedBitVector`].
///
/// The matrix is *oriented*: the caller decides which direction each
/// undirected edge takes (the paper's Fig. 2 uses the upper-triangular
/// orientation `i < j`, which makes Equation (5) count each triangle exactly
/// once). Rows and columns are materialised separately because the TCIM
/// dataflow reads rows and columns independently (§IV-A).
///
/// # Example
///
/// ```
/// use tcim_bitmatrix::{SliceSize, SlicedMatrixBuilder};
///
/// // Fig. 2 of the paper.
/// let mut b = SlicedMatrixBuilder::new(4, SliceSize::S64);
/// for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
///     b.add_edge(u, v)?;
/// }
/// let m = b.build();
/// // Σ over edges of popcount(row AND column) = 2 triangles.
/// let mut tc = 0;
/// for (i, j) in m.edges() {
///     tc += m.row(i).and_popcount(m.col(j));
/// }
/// assert_eq!(tc, 2);
/// # Ok::<(), tcim_bitmatrix::BitMatrixError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SlicedMatrix {
    n: usize,
    slice_size: SliceSize,
    encoding: RowEncoding,
    rows: Vec<SlicedRow>,
    cols: Vec<SlicedRow>,
    /// Oriented edges (i, j) in row-major order — the iteration order of
    /// Algorithm 1.
    edges: Vec<(u32, u32)>,
}

impl SlicedMatrix {
    /// Builds the matrix from per-row neighbour lists that are already
    /// oriented and **sorted ascending**, in the paper's dense encoding.
    ///
    /// `rows[i]` holds the column indices `j` with `A[i][j] = 1`.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::DimensionOutOfBounds`] if any neighbour
    /// index is `>= n` (checked before any allocation-heavy work).
    pub fn from_adjacency(adjacency: &[Vec<u32>], slice_size: SliceSize) -> Result<Self> {
        SlicedMatrix::from_adjacency_with(adjacency, slice_size, EncodingPolicy::ForceDense)
    }

    /// [`SlicedMatrix::from_adjacency`] with a row-encoding policy: the
    /// matrix is sliced densely first, its valid-slice fraction measured,
    /// and every row and column re-encoded when the policy resolves to
    /// [`RowEncoding::Sparse`].
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::DimensionOutOfBounds`] if any neighbour
    /// index is `>= n` (checked before any allocation-heavy work).
    pub fn from_adjacency_with(
        adjacency: &[Vec<u32>],
        slice_size: SliceSize,
        policy: EncodingPolicy,
    ) -> Result<Self> {
        let n = adjacency.len();
        for row in adjacency {
            for &j in row {
                if j as usize >= n {
                    return Err(BitMatrixError::DimensionOutOfBounds {
                        index: j as usize,
                        dim: n,
                    });
                }
            }
        }

        let mut edges = Vec::new();
        let mut col_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, row) in adjacency.iter().enumerate() {
            for &j in row {
                edges.push((i as u32, j));
                col_lists[j as usize].push(i as u32);
            }
        }

        let dense_rows: Vec<SlicedBitVector> = adjacency
            .iter()
            .map(|r| {
                SlicedBitVector::from_sorted_indices(
                    n,
                    r.iter().map(|&j| j as usize),
                    slice_size,
                )
            })
            .collect();
        // Column lists are filled in ascending i because rows are scanned in
        // order, so they are already sorted.
        let dense_cols: Vec<SlicedBitVector> = col_lists
            .iter()
            .map(|c| {
                SlicedBitVector::from_sorted_indices(
                    n,
                    c.iter().map(|&i| i as usize),
                    slice_size,
                )
            })
            .collect();

        // Resolve the encoding from the measured density, then wrap (or
        // re-encode) every vector under it.
        let valid: u64 = dense_rows
            .iter()
            .chain(dense_cols.iter())
            .map(|v| v.valid_slice_count() as u64)
            .sum();
        let total = 2 * slice_size.slices_for(n) as u64 * n as u64;
        let fraction = if total == 0 { 0.0 } else { valid as f64 / total as f64 };
        let encoding = policy.resolve(fraction);
        let wrap = |vs: Vec<SlicedBitVector>| -> Vec<SlicedRow> {
            vs.into_iter().map(|v| SlicedRow::encode(v, encoding)).collect()
        };
        let (rows, cols) = (wrap(dense_rows), wrap(dense_cols));

        MATRICES_BUILT.fetch_add(1, Ordering::Relaxed);
        Ok(SlicedMatrix { n, slice_size, encoding, rows, cols, edges })
    }

    /// Matrix dimension `n` (number of vertices).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The slice size `|S|`.
    pub fn slice_size(&self) -> SliceSize {
        self.slice_size
    }

    /// The row encoding every row and column of this matrix uses.
    pub fn encoding(&self) -> RowEncoding {
        self.encoding
    }

    /// Row `A[i][*]` in sliced form.
    ///
    /// # Panics
    ///
    /// Panics when `i >= n`.
    pub fn row(&self, i: u32) -> &SlicedRow {
        &self.rows[i as usize]
    }

    /// Column `A[*][j]ᵀ` in sliced form.
    ///
    /// # Panics
    ///
    /// Panics when `j >= n`.
    pub fn col(&self, j: u32) -> &SlicedRow {
        &self.cols[j as usize]
    }

    /// Oriented edges `(i, j)` in row-major order — the non-zero elements
    /// Algorithm 1 iterates over.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.edges.iter().copied()
    }

    /// Number of oriented edges (non-zero entries).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Sets entry `A[i][j] = 1` in place — the row-patch primitive of
    /// the dynamic-graph layer: row `i`, column `j` and the oriented edge
    /// list are all updated without rebuilding (or re-slicing) the
    /// matrix. Returns `true` when the entry was newly set.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::DimensionOutOfBounds`] when `i` or `j`
    /// is at or beyond the matrix dimension.
    pub fn set_entry(&mut self, i: u32, j: u32) -> Result<bool> {
        self.check_entry(i, j)?;
        let newly = self.rows[i as usize].set_bit(j as usize)?;
        if newly {
            self.cols[j as usize].set_bit(i as usize)?;
            let pos = self
                .edges
                .binary_search(&(i, j))
                .expect_err("row bit was clear, so the edge cannot be listed");
            self.edges.insert(pos, (i, j));
        }
        Ok(newly)
    }

    /// Clears entry `A[i][j]` in place (row, column and edge list).
    /// Returns `true` when the entry was previously set.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::DimensionOutOfBounds`] when `i` or `j`
    /// is at or beyond the matrix dimension.
    pub fn clear_entry(&mut self, i: u32, j: u32) -> Result<bool> {
        self.check_entry(i, j)?;
        let was_set = self.rows[i as usize].clear_bit(j as usize)?;
        if was_set {
            self.cols[j as usize].clear_bit(i as usize)?;
            let pos = self
                .edges
                .binary_search(&(i, j))
                .expect("row bit was set, so the edge must be listed");
            self.edges.remove(pos);
        }
        Ok(was_set)
    }

    fn check_entry(&self, i: u32, j: u32) -> Result<()> {
        for idx in [i, j] {
            if idx as usize >= self.n {
                return Err(BitMatrixError::DimensionOutOfBounds {
                    index: idx as usize,
                    dim: self.n,
                });
            }
        }
        Ok(())
    }

    /// Aggregate slicing statistics over all rows *and* columns.
    ///
    /// `compressed_bytes` is summed per vector under the matrix's actual
    /// encoding, so dense (`NVS × (|S|/8 + 4)`) and sparse (hierarchy
    /// levels included) sizes are directly comparable.
    pub fn stats(&self) -> SliceStats {
        let row_valid: u64 = self.rows.iter().map(|r| r.valid_slice_count() as u64).sum();
        let col_valid: u64 = self.cols.iter().map(|c| c.valid_slice_count() as u64).sum();
        let valid = row_valid + col_valid;
        let per_vector = self.slice_size.slices_for(self.n) as u64;
        SliceStats {
            valid_slices: valid,
            total_slices: 2 * per_vector * self.n as u64,
            compressed_bytes: self
                .rows
                .iter()
                .chain(self.cols.iter())
                .map(|v| v.compressed_bytes() as u64)
                .sum(),
            nnz: self.rows.iter().map(SlicedRow::count_ones).sum(),
        }
    }
}

impl fmt::Debug for SlicedMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "SlicedMatrix(n={}, |S|={}, nnz={}, valid {}/{} slices, {:.3} MiB)",
            self.n,
            self.slice_size,
            s.nnz,
            s.valid_slices,
            s.total_slices,
            s.compressed_mib()
        )
    }
}

/// Incremental builder for a [`SlicedMatrix`] from individual undirected
/// edges, applying the paper's upper-triangular orientation.
#[derive(Debug, Clone)]
pub struct SlicedMatrixBuilder {
    n: usize,
    slice_size: SliceSize,
    adjacency: Vec<Vec<u32>>,
}

impl SlicedMatrixBuilder {
    /// Creates a builder for an `n × n` matrix with slice size `slice_size`.
    pub fn new(n: usize, slice_size: SliceSize) -> Self {
        SlicedMatrixBuilder { n, slice_size, adjacency: vec![Vec::new(); n] }
    }

    /// Adds undirected edge `{u, v}` (stored as `A[min][max] = 1`).
    ///
    /// The builder does not trust the caller: the streaming layer feeds
    /// it adversarial update streams, so malformed edges are rejected
    /// here rather than silently normalised away.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::DimensionOutOfBounds`] for vertices
    /// outside `0..n`, [`BitMatrixError::SelfLoop`] when `u == v`, and
    /// [`BitMatrixError::DuplicateEdge`] when the edge was already added
    /// (in either endpoint order).
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<&mut Self> {
        if u >= self.n {
            return Err(BitMatrixError::DimensionOutOfBounds { index: u, dim: self.n });
        }
        if v >= self.n {
            return Err(BitMatrixError::DimensionOutOfBounds { index: v, dim: self.n });
        }
        if u == v {
            return Err(BitMatrixError::SelfLoop { vertex: u });
        }
        let (lo, hi) = (u.min(v), u.max(v) as u32);
        let row = &mut self.adjacency[lo];
        // Fast path for the dominant construction pattern (neighbours
        // arriving in ascending order): amortized O(1) append instead
        // of a shifting insert.
        if row.last().is_none_or(|&last| last < hi) {
            row.push(hi);
            return Ok(self);
        }
        match row.binary_search(&hi) {
            Ok(_) => Err(BitMatrixError::DuplicateEdge { u: lo, v: hi as usize }),
            Err(pos) => {
                row.insert(pos, hi);
                Ok(self)
            }
        }
    }

    /// Finishes the matrix. Rows are kept sorted and duplicate-free at
    /// insertion time, so no normalisation pass is needed.
    pub fn build(self) -> SlicedMatrix {
        SlicedMatrix::from_adjacency(&self.adjacency, self.slice_size)
            .expect("builder validated all indices")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2() -> SlicedMatrix {
        let mut b = SlicedMatrixBuilder::new(4, SliceSize::S64);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v).unwrap();
        }
        b.build()
    }

    #[test]
    fn fig2_edge_iteration_order_is_row_major() {
        let m = fig2();
        let edges: Vec<(u32, u32)> = m.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn fig2_bitwise_tc_is_two() {
        let m = fig2();
        let tc: u64 = m.edges().map(|(i, j)| m.row(i).and_popcount(m.col(j))).sum();
        assert_eq!(tc, 2);
    }

    #[test]
    fn rows_and_columns_are_consistent() {
        let m = fig2();
        for (i, j) in m.edges() {
            assert!(m.row(i).to_bitvec().get(j as usize));
            assert!(m.col(j).to_bitvec().get(i as usize));
        }
    }

    #[test]
    fn stats_accounting_identities() {
        let m = fig2();
        let s = m.stats();
        assert_eq!(s.nnz, 5);
        // n = 4, |S| = 64 → 1 slice per vector, 8 vectors total.
        assert_eq!(s.total_slices, 8);
        // Rows 0..2 valid, row 3 empty; cols 1..3 valid, col 0 empty.
        assert_eq!(s.valid_slices, 6);
        assert_eq!(s.compressed_bytes, 6 * 12);
        assert!((s.valid_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn duplicate_edges_are_rejected_in_either_order() {
        let mut b = SlicedMatrixBuilder::new(3, SliceSize::S64);
        b.add_edge(0, 1).unwrap();
        assert_eq!(
            b.add_edge(1, 0).unwrap_err(),
            BitMatrixError::DuplicateEdge { u: 0, v: 1 }
        );
        assert_eq!(
            b.add_edge(0, 1).unwrap_err(),
            BitMatrixError::DuplicateEdge { u: 0, v: 1 }
        );
        // The rejections left the builder state intact.
        let m = b.build();
        assert_eq!(m.edge_count(), 1);
        assert_eq!(m.stats().nnz, 1);
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut b = SlicedMatrixBuilder::new(3, SliceSize::S64);
        assert_eq!(b.add_edge(1, 1).unwrap_err(), BitMatrixError::SelfLoop { vertex: 1 });
        assert_eq!(b.add_edge(0, 0).unwrap_err(), BitMatrixError::SelfLoop { vertex: 0 });
        assert_eq!(b.build().edge_count(), 0);
    }

    #[test]
    fn builder_rejects_out_of_bounds_edges() {
        let mut b = SlicedMatrixBuilder::new(3, SliceSize::S64);
        assert_eq!(
            b.add_edge(0, 3).unwrap_err(),
            BitMatrixError::DimensionOutOfBounds { index: 3, dim: 3 }
        );
        assert_eq!(
            b.add_edge(3, 0).unwrap_err(),
            BitMatrixError::DimensionOutOfBounds { index: 3, dim: 3 }
        );
    }

    #[test]
    fn entry_patches_update_rows_columns_and_edges() {
        let mut m = fig2();
        // (0, 3) closes two more triangles in Fig. 2.
        assert!(m.set_entry(0, 3).unwrap());
        assert!(!m.set_entry(0, 3).unwrap(), "already set");
        let edges: Vec<(u32, u32)> = m.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!(m.row(0).to_bitvec().get(3));
        assert!(m.col(3).to_bitvec().get(0));
        let tc: u64 = m.edges().map(|(i, j)| m.row(i).and_popcount(m.col(j))).sum();
        assert_eq!(tc, 4);

        // Clearing restores the original matrix exactly.
        assert!(m.clear_entry(0, 3).unwrap());
        assert!(!m.clear_entry(0, 3).unwrap(), "already clear");
        assert_eq!(m, fig2());
    }

    #[test]
    fn patched_matrix_equals_from_scratch_build() {
        let mut m = fig2();
        m.clear_entry(1, 2).unwrap();
        m.set_entry(0, 3).unwrap();
        let mut b = SlicedMatrixBuilder::new(4, SliceSize::S64);
        for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)] {
            b.add_edge(u, v).unwrap();
        }
        assert_eq!(m, b.build());
        assert_eq!(m.stats(), {
            let mut b2 = SlicedMatrixBuilder::new(4, SliceSize::S64);
            for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)] {
                b2.add_edge(u, v).unwrap();
            }
            b2.build().stats()
        });
    }

    #[test]
    fn entry_patch_bounds_are_checked() {
        let mut m = fig2();
        assert_eq!(
            m.set_entry(0, 4).unwrap_err(),
            BitMatrixError::DimensionOutOfBounds { index: 4, dim: 4 }
        );
        assert_eq!(
            m.clear_entry(9, 0).unwrap_err(),
            BitMatrixError::DimensionOutOfBounds { index: 9, dim: 4 }
        );
        assert_eq!(m, fig2());
    }

    #[test]
    fn entry_patches_do_not_bump_the_build_counter() {
        let mut m = fig2();
        let before = matrices_built();
        m.set_entry(0, 3).unwrap();
        m.clear_entry(0, 1).unwrap();
        assert_eq!(matrices_built(), before);
    }

    #[test]
    fn from_adjacency_rejects_out_of_bounds() {
        let err = SlicedMatrix::from_adjacency(&[vec![5]], SliceSize::S64).unwrap_err();
        assert_eq!(err, BitMatrixError::DimensionOutOfBounds { index: 5, dim: 1 });
    }

    #[test]
    fn empty_matrix() {
        let m = SlicedMatrix::from_adjacency(&[], SliceSize::S64).unwrap();
        assert_eq!(m.dim(), 0);
        assert_eq!(m.edge_count(), 0);
        let s = m.stats();
        assert_eq!(s.valid_slices, 0);
        assert_eq!(s.total_slices, 0);
        assert_eq!(s.valid_fraction(), 0.0);
    }

    #[test]
    fn build_counter_is_monotone() {
        // Other tests in this binary may build matrices concurrently, so
        // only the monotone lower bound is asserted.
        let before = matrices_built();
        let _ = fig2();
        let _ = SlicedMatrix::from_adjacency(&[], SliceSize::S64).unwrap();
        assert!(matrices_built() >= before + 2);
    }

    #[test]
    fn auto_policy_selects_sparse_on_sparse_graphs_and_preserves_results() {
        // A scattered sparse random graph on 1024 vertices (~6 neighbours
        // each, spread across the whole index range): most slices are
        // empty, and valid slices hold only a few non-zero bytes.
        let n = 1024usize;
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, row) in adj.iter_mut().enumerate().take(n - 8) {
            let mut out = std::collections::BTreeSet::new();
            for _ in 0..6 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                out.insert((i + 1 + state as usize % (n - i - 1)) as u32);
            }
            *row = out.into_iter().collect();
        }
        let dense = SlicedMatrix::from_adjacency(&adj, SliceSize::S64).unwrap();
        let auto =
            SlicedMatrix::from_adjacency_with(&adj, SliceSize::S64, EncodingPolicy::default())
                .unwrap();
        assert_eq!(dense.encoding(), RowEncoding::Dense);
        assert_eq!(auto.encoding(), RowEncoding::Sparse);

        let tc = |m: &SlicedMatrix| -> u64 {
            m.edges().map(|(i, j)| m.row(i).and_popcount(m.col(j))).sum()
        };
        assert_eq!(tc(&auto), tc(&dense));

        let (ds, ss) = (dense.stats(), auto.stats());
        assert_eq!(ss.valid_slices, ds.valid_slices);
        assert_eq!(ss.nnz, ds.nnz);
        assert!(
            ss.compressed_bytes < ds.compressed_bytes,
            "sparse {} must undercut dense {}",
            ss.compressed_bytes,
            ds.compressed_bytes
        );
    }

    #[test]
    fn entry_patches_work_on_sparse_matrices() {
        let mut adj = vec![Vec::new(); 512];
        adj[0] = vec![100, 300];
        adj[100] = vec![300];
        let mut m = SlicedMatrix::from_adjacency_with(
            &adj,
            SliceSize::S64,
            EncodingPolicy::ForceSparse,
        )
        .unwrap();
        assert_eq!(m.encoding(), RowEncoding::Sparse);
        let tc = |m: &SlicedMatrix| -> u64 {
            m.edges().map(|(i, j)| m.row(i).and_popcount(m.col(j))).sum()
        };
        assert_eq!(tc(&m), 1);
        assert!(m.clear_entry(100, 300).unwrap());
        assert_eq!(tc(&m), 0);
        assert!(m.set_entry(100, 300).unwrap());
        adj[0].push(400);
        adj[0].sort_unstable();
        assert!(m.set_entry(0, 400).unwrap());
        let rebuilt = SlicedMatrix::from_adjacency_with(
            &adj,
            SliceSize::S64,
            EncodingPolicy::ForceSparse,
        )
        .unwrap();
        assert_eq!(m, rebuilt, "patched sparse matrix stays canonical");
    }

    #[test]
    fn larger_graph_spans_multiple_slices() {
        // Star graph centred at 0 with 200 leaves: row 0 spans 4 slices.
        let mut b = SlicedMatrixBuilder::new(201, SliceSize::S64);
        for v in 1..201 {
            b.add_edge(0, v).unwrap();
        }
        let m = b.build();
        assert_eq!(m.row(0).valid_slice_count(), 4);
        // No triangles in a star.
        let tc: u64 = m.edges().map(|(i, j)| m.row(i).and_popcount(m.col(j))).sum();
        assert_eq!(tc, 0);
    }
}
